//! Fast Gradient Sign Method (FGSM) adversarial examples and robust-accuracy
//! evaluation.
//!
//! §IV-C studies models "robust to adversarial attacks"; FGSM is the
//! standard one-step attack used to sanity-check such training. An
//! IBP-trained network (see [`crate::ibp`]) should retain markedly more
//! accuracy under FGSM at its training radius than an undefended baseline —
//! which is also how the tests validate that our IBP objective really
//! produces robustness rather than just regularization.

use rustfi_nn::loss::cross_entropy;
use rustfi_nn::Network;
use rustfi_tensor::Tensor;

/// Crafts an FGSM adversarial example: `x' = x + ε · sign(∇ₓ L(x, y))`.
///
/// The returned tensor has the same shape as `image` (batch 1).
///
/// # Panics
///
/// Panics if `image` is not batch-1 or `label` is out of range.
pub fn fgsm(net: &mut Network, image: &Tensor, label: usize, eps: f32) -> Tensor {
    assert_eq!(image.dims()[0], 1, "fgsm expects a single image");
    assert!(eps >= 0.0, "negative epsilon");
    let was_training = net.is_training();
    net.set_training(false);
    let logits = net.forward(image);
    let (_, classes) = logits.dims2();
    assert!(
        label < classes,
        "label {label} out of range for {classes} classes"
    );
    let (_, grad_logits) = cross_entropy(&logits, &[label]);
    let grad_input = net.backward(&grad_logits);
    net.set_training(was_training);
    image.zip_map(&grad_input, |x, g| x + eps * g.signum())
}

/// Accuracy of `net` on FGSM-perturbed versions of `(images, labels)` at
/// radius `eps` (`eps = 0` reduces to clean accuracy).
///
/// # Panics
///
/// Panics if lengths disagree or the set is empty.
pub fn fgsm_accuracy(net: &mut Network, images: &Tensor, labels: &[usize], eps: f32) -> f32 {
    let n = images.dims()[0];
    assert_eq!(n, labels.len(), "{n} images, {} labels", labels.len());
    assert!(n > 0, "empty evaluation set");
    let mut correct = 0;
    for (i, &label) in labels.iter().enumerate() {
        let x = images.select_batch(i);
        let adv = fgsm(net, &x, label, eps);
        let out = net.forward(&adv);
        if rustfi::metrics::top1(out.data()) == label {
            correct += 1;
        }
    }
    correct as f32 / n as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ibp::{IbpNet, IbpSpec, IbpTrainConfig};
    use rustfi_data::SynthSpec;
    use rustfi_nn::train::accuracy;

    fn data() -> rustfi_data::ClassificationDataset {
        let mut spec = SynthSpec::cifar10_like().with_budget(20, 8);
        spec.noise = 0.5;
        spec.generate()
    }

    #[test]
    fn fgsm_moves_pixels_by_exactly_eps() {
        let data = data();
        let mut net = IbpNet::alexnet_like(&IbpSpec::tiny(10)).to_network();
        let x = data.test_images.select_batch(0);
        let adv = fgsm(&mut net, &x, data.test_labels[0], 0.1);
        for (a, b) in adv.data().iter().zip(x.data()) {
            let d = (a - b).abs();
            // sign() of a zero gradient contributes 0; otherwise exactly eps.
            assert!(d < 1e-6 || (d - 0.1).abs() < 1e-5, "delta {d}");
        }
    }

    #[test]
    fn zero_eps_is_identity() {
        let data = data();
        let mut net = IbpNet::alexnet_like(&IbpSpec::tiny(10)).to_network();
        let x = data.test_images.select_batch(1);
        let adv = fgsm(&mut net, &x, data.test_labels[1], 0.0);
        assert_eq!(adv, x);
    }

    #[test]
    fn attack_reduces_accuracy_of_trained_model() {
        let data = data();
        let mut ibp = IbpNet::alexnet_like(&IbpSpec::tiny(10));
        // Nominal-only training (no robustness).
        ibp.train(
            &data.train_images,
            &data.train_labels,
            &IbpTrainConfig {
                alpha_max: 0.0,
                eps_max: 0.0,
                epochs: 20,
                ..IbpTrainConfig::default()
            },
        );
        let mut net = ibp.to_network();
        let clean = accuracy(&mut net, &data.test_images, &data.test_labels, 16);
        let attacked = fgsm_accuracy(&mut net, &data.test_images, &data.test_labels, 0.15);
        assert!(clean > 0.85, "clean accuracy {clean}");
        assert!(
            attacked < clean - 0.1,
            "FGSM at eps 0.15 should bite: clean {clean}, attacked {attacked}"
        );
    }

    #[test]
    fn ibp_training_improves_certified_accuracy() {
        // The property IBP optimizes directly: at the training radius, the
        // worst-case (certified) accuracy of the defended model must beat
        // the undefended one. (One-step FGSM robustness at this scale is
        // too noisy to separate the models reliably; certification is not.)
        let data = data();
        let radius = 0.02; // certify inside the trained radius
        let train = |alpha: f32, eps: f32| {
            let mut ibp = IbpNet::alexnet_like(&IbpSpec::tiny(10));
            ibp.train(
                &data.train_images,
                &data.train_labels,
                &IbpTrainConfig {
                    alpha_max: alpha,
                    eps_max: eps,
                    epochs: 24,
                    ..IbpTrainConfig::default()
                },
            );
            ibp.certified_accuracy(&data.test_images, &data.test_labels, radius)
        };
        let undefended = train(0.0, 0.0);
        let defended = train(0.05, 0.05);
        assert!(
            defended > undefended + 0.05,
            "IBP should improve certified accuracy at its radius: {defended} vs {undefended}"
        );
    }
}
