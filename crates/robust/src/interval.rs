//! Interval arithmetic through network layers.
//!
//! For a layer `y = f(x)` and an input box `[lo, hi]`, these functions
//! compute a sound output box: every `x ∈ [lo, hi]` maps into
//! `[f_lo, f_hi]`. For affine layers the standard IBP decomposition is used:
//! split the weights into positive and negative parts, route the lower bound
//! through `W⁺` and the upper through `W⁻` (and vice versa).

use rustfi_tensor::{conv2d, ConvSpec, Tensor};

/// Splits a weight tensor into its positive and negative parts
/// (`w = w_pos + w_neg`, `w_pos ≥ 0`, `w_neg ≤ 0`).
pub fn split_weights(w: &Tensor) -> (Tensor, Tensor) {
    (w.map(|v| v.max(0.0)), w.map(|v| v.min(0.0)))
}

/// Interval convolution: sound bounds of `conv(x, w) + b` over `x ∈ [lo, hi]`.
///
/// # Panics
///
/// Panics if shapes are inconsistent (see [`conv2d`]).
pub fn conv_interval(
    lo: &Tensor,
    hi: &Tensor,
    w: &Tensor,
    b: &Tensor,
    spec: &ConvSpec,
) -> (Tensor, Tensor) {
    let (wp, wn) = split_weights(w);
    let zero_bias = Tensor::zeros(&[w.dims()[0]]);
    let out_lo = conv2d(lo, &wp, b, spec).add(&conv2d(hi, &wn, &zero_bias, spec));
    let out_hi = conv2d(hi, &wp, b, spec).add(&conv2d(lo, &wn, &zero_bias, spec));
    (out_lo, out_hi)
}

/// Interval dense layer: sound bounds of `x W^T + b`.
///
/// # Panics
///
/// Panics if shapes are inconsistent.
pub fn linear_interval(lo: &Tensor, hi: &Tensor, w: &Tensor, b: &Tensor) -> (Tensor, Tensor) {
    use rustfi_tensor::linalg::{matmul, transpose};
    let (wp, wn) = split_weights(w);
    let wp_t = transpose(&wp);
    let wn_t = transpose(&wn);
    let mut out_lo = matmul(lo, &wp_t).add(&matmul(hi, &wn_t));
    let mut out_hi = matmul(hi, &wp_t).add(&matmul(lo, &wn_t));
    let (batch, out_f) = out_lo.dims2();
    for bi in 0..batch {
        for o in 0..out_f {
            let off = bi * out_f + o;
            out_lo.data_mut()[off] += b.data()[o];
            out_hi.data_mut()[off] += b.data()[o];
        }
    }
    (out_lo, out_hi)
}

/// Interval ReLU: elementwise `max(·, 0)` on both bounds (monotone).
pub fn relu_interval(lo: &Tensor, hi: &Tensor) -> (Tensor, Tensor) {
    (lo.relu(), hi.relu())
}

/// Interval max pooling: pool both bounds independently (max is monotone).
/// Returns the bounds and their argmax index vectors (for backward).
pub fn max_pool_interval(
    lo: &Tensor,
    hi: &Tensor,
    spec: &rustfi_tensor::PoolSpec,
) -> ((Tensor, Vec<usize>), (Tensor, Vec<usize>)) {
    (
        rustfi_tensor::max_pool2d(lo, spec),
        rustfi_tensor::max_pool2d(hi, spec),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rustfi_tensor::SeededRng;

    fn assert_sound(lo: &Tensor, hi: &Tensor) {
        for (l, h) in lo.data().iter().zip(hi.data()) {
            assert!(l <= h, "interval inverted: {l} > {h}");
        }
    }

    #[test]
    fn split_weights_partition() {
        let w = Tensor::from_vec(vec![1.0, -2.0, 0.0, 3.0], &[2, 2]);
        let (p, n) = split_weights(&w);
        assert_eq!(p.data(), &[1.0, 0.0, 0.0, 3.0]);
        assert_eq!(n.data(), &[0.0, -2.0, 0.0, 0.0]);
        assert_eq!(p.add(&n), w);
    }

    #[test]
    fn conv_interval_contains_samples() {
        let mut rng = SeededRng::new(1);
        let x = Tensor::rand_normal(&[1, 2, 6, 6], 0.0, 1.0, &mut rng);
        let w = Tensor::rand_normal(&[3, 2, 3, 3], 0.0, 0.5, &mut rng);
        let b = Tensor::rand_normal(&[3], 0.0, 0.1, &mut rng);
        let spec = ConvSpec::new().padding(1);
        let eps = 0.1;
        let (lo, hi) = conv_interval(&x.add_scalar(-eps), &x.add_scalar(eps), &w, &b, &spec);
        assert_sound(&lo, &hi);
        // Sample 20 random points in the box and check containment.
        for _ in 0..20 {
            let xs = Tensor::from_fn(x.dims(), |i| x.data()[i] + rng.uniform(-eps, eps));
            let y = conv2d(&xs, &w, &b, &spec);
            for ((yl, yv), yh) in lo.data().iter().zip(y.data()).zip(hi.data()) {
                assert!(yl - 1e-4 <= *yv && *yv <= yh + 1e-4);
            }
        }
    }

    #[test]
    fn conv_interval_degenerate_box_is_exact() {
        let mut rng = SeededRng::new(2);
        let x = Tensor::rand_normal(&[1, 2, 5, 5], 0.0, 1.0, &mut rng);
        let w = Tensor::rand_normal(&[2, 2, 3, 3], 0.0, 0.5, &mut rng);
        let b = Tensor::zeros(&[2]);
        let spec = ConvSpec::new();
        let (lo, hi) = conv_interval(&x, &x, &w, &b, &spec);
        let y = conv2d(&x, &w, &b, &spec);
        for ((l, v), h) in lo.data().iter().zip(y.data()).zip(hi.data()) {
            assert!((l - v).abs() < 1e-4 && (h - v).abs() < 1e-4);
        }
    }

    #[test]
    fn linear_interval_contains_samples() {
        use rustfi_tensor::linalg::{matmul, transpose};
        let mut rng = SeededRng::new(3);
        let x = Tensor::rand_normal(&[2, 5], 0.0, 1.0, &mut rng);
        let w = Tensor::rand_normal(&[4, 5], 0.0, 0.5, &mut rng);
        let b = Tensor::rand_normal(&[4], 0.0, 0.1, &mut rng);
        let eps = 0.2;
        let (lo, hi) = linear_interval(&x.add_scalar(-eps), &x.add_scalar(eps), &w, &b);
        assert_sound(&lo, &hi);
        for _ in 0..20 {
            let xs = Tensor::from_fn(x.dims(), |i| x.data()[i] + rng.uniform(-eps, eps));
            let mut y = matmul(&xs, &transpose(&w));
            let (batch, out_f) = y.dims2();
            for bi in 0..batch {
                for o in 0..out_f {
                    y.data_mut()[bi * out_f + o] += b.data()[o];
                }
            }
            for ((yl, yv), yh) in lo.data().iter().zip(y.data()).zip(hi.data()) {
                assert!(yl - 1e-4 <= *yv && *yv <= yh + 1e-4);
            }
        }
    }

    #[test]
    fn relu_interval_is_sound_and_monotone() {
        let lo = Tensor::from_vec(vec![-1.0, -0.5, 0.5], &[3]);
        let hi = Tensor::from_vec(vec![-0.5, 0.5, 1.0], &[3]);
        let (l, h) = relu_interval(&lo, &hi);
        assert_eq!(l.data(), &[0.0, 0.0, 0.5]);
        assert_eq!(h.data(), &[0.0, 0.5, 1.0]);
        assert_sound(&l, &h);
    }

    #[test]
    fn wider_input_boxes_give_wider_outputs() {
        let mut rng = SeededRng::new(4);
        let x = Tensor::rand_normal(&[1, 1, 4, 4], 0.0, 1.0, &mut rng);
        let w = Tensor::rand_normal(&[1, 1, 3, 3], 0.0, 0.5, &mut rng);
        let b = Tensor::zeros(&[1]);
        let spec = ConvSpec::new();
        let width = |eps: f32| {
            let (lo, hi) = conv_interval(&x.add_scalar(-eps), &x.add_scalar(eps), &w, &b, &spec);
            hi.sub(&lo).sum()
        };
        assert!(width(0.2) > width(0.1));
        assert!(width(0.1) > width(0.0) - 1e-6);
    }
}
