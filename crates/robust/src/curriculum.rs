//! The linear α/ε ramp schedule used by IBP training.
//!
//! Gowal et al. (and the paper's §IV-C) ramp both the worst-case loss weight
//! α and the perturbation radius ε linearly from zero to their maxima over a
//! window of training steps to keep convergence stable; the paper uses
//! iterations 41→123.

/// Linear ramp schedule for `(α, ε)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Curriculum {
    /// First step of the ramp (α = ε = 0 before it).
    pub ramp_start: usize,
    /// Last step of the ramp (maxima from here on).
    pub ramp_end: usize,
    /// Final worst-case loss weight.
    pub alpha_max: f32,
    /// Final perturbation radius.
    pub eps_max: f32,
}

impl Curriculum {
    /// Creates a schedule.
    ///
    /// # Panics
    ///
    /// Panics if `ramp_end < ramp_start` or maxima are negative.
    pub fn new(ramp_start: usize, ramp_end: usize, alpha_max: f32, eps_max: f32) -> Self {
        assert!(ramp_end >= ramp_start, "ramp must not be inverted");
        assert!(
            alpha_max >= 0.0 && eps_max >= 0.0,
            "maxima must be non-negative"
        );
        Self {
            ramp_start,
            ramp_end,
            alpha_max,
            eps_max,
        }
    }

    /// `(α, ε)` at a training step.
    pub fn at(&self, step: usize) -> (f32, f32) {
        let t = if step <= self.ramp_start {
            0.0
        } else if step >= self.ramp_end {
            1.0
        } else {
            (step - self.ramp_start) as f32 / (self.ramp_end - self.ramp_start) as f32
        };
        (self.alpha_max * t, self.eps_max * t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ramp_endpoints() {
        let c = Curriculum::new(41, 123, 0.25, 0.5);
        assert_eq!(c.at(0), (0.0, 0.0));
        assert_eq!(c.at(41), (0.0, 0.0));
        assert_eq!(c.at(123), (0.25, 0.5));
        assert_eq!(c.at(1000), (0.25, 0.5));
    }

    #[test]
    fn ramp_is_linear_in_between() {
        let c = Curriculum::new(0, 100, 1.0, 2.0);
        let (a, e) = c.at(50);
        assert!((a - 0.5).abs() < 1e-6);
        assert!((e - 1.0).abs() < 1e-6);
        // Monotone.
        let mut last = (0.0, 0.0);
        for s in 0..=100 {
            let cur = c.at(s);
            assert!(cur.0 >= last.0 && cur.1 >= last.1);
            last = cur;
        }
    }

    #[test]
    fn degenerate_ramp_is_a_step() {
        let c = Curriculum::new(10, 10, 0.3, 0.3);
        assert_eq!(c.at(9), (0.0, 0.0));
        assert_eq!(c.at(10), (0.0, 0.0));
        assert_eq!(c.at(11), (0.3, 0.3));
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn rejects_inverted_ramp() {
        Curriculum::new(10, 5, 0.1, 0.1);
    }
}
