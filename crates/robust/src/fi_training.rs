//! Error injection *during training* (paper §IV-D / Table I).
//!
//! The paper's protocol: during every training forward pass, one random
//! neuron per layer is set to a uniformly random value in `[-1, 1]`. Because
//! the site is re-sampled on every forward call, this is implemented as a
//! *persistent stochastic hook* per injectable layer rather than a
//! per-batch re-planned fault: the hook itself samples a fresh neuron each
//! time it fires.

use parking_lot::Mutex;
use rustfi_nn::{HookHandle, HookRegistry, Network};
use rustfi_tensor::SeededRng;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Handle over the stochastic training-injection hooks; removing it (or
/// dropping after [`TrainingInjector::remove`]) restores the clean network.
pub struct TrainingInjector {
    hooks: Arc<HookRegistry>,
    handles: Vec<HookHandle>,
    fired: Arc<AtomicUsize>,
}

impl TrainingInjector {
    /// Installs a per-forward-pass random-neuron perturbation (uniform in
    /// `[lo, hi]`) on every injectable layer of `net`.
    ///
    /// # Panics
    ///
    /// Panics if the interval is empty.
    pub fn install(net: &Network, lo: f32, hi: f32, seed: u64) -> Self {
        Self::install_impl(net, lo, hi, seed, false, 1)
    }

    /// Like [`TrainingInjector::install`] but leaves the final injectable
    /// layer (the classifier logits) clean.
    ///
    /// On production-scale networks every layer has thousands of neurons and
    /// injecting into the classifier is harmless noise; on the scaled-down
    /// zoo the logits layer may have as few as `num_classes` neurons, where
    /// corrupting one every forward pass destabilizes cross-entropy
    /// training. This variant keeps the protocol faithful for hidden layers
    /// while avoiding that scaling artifact.
    ///
    /// # Panics
    ///
    /// Panics if the interval is empty.
    pub fn install_hidden(net: &Network, lo: f32, hi: f32, seed: u64) -> Self {
        Self::install_impl(net, lo, hi, seed, true, 1)
    }

    /// Like [`TrainingInjector::install_hidden`] but corrupting `dose`
    /// random neurons per layer on every forward pass.
    ///
    /// The paper injects one neuron per layer per forward and notes that
    /// "the frequency with which we inject errors … may likely provide
    /// different robustness, accuracy, and training time trade-offs"
    /// (§IV-D). On scaled-down models a single neuron is a vanishing
    /// fraction of a layer; a higher dose delivers the same *relative*
    /// training signal as the paper's setup delivers at production scale.
    ///
    /// # Panics
    ///
    /// Panics if the interval is empty or `dose` is zero.
    pub fn install_hidden_with_dose(
        net: &Network,
        lo: f32,
        hi: f32,
        seed: u64,
        dose: usize,
    ) -> Self {
        assert!(dose > 0, "dose must be positive");
        Self::install_impl(net, lo, hi, seed, true, dose)
    }

    fn install_impl(
        net: &Network,
        lo: f32,
        hi: f32,
        seed: u64,
        skip_last: bool,
        dose: usize,
    ) -> Self {
        assert!(lo < hi, "empty injection interval [{lo}, {hi})");
        let rng = Arc::new(Mutex::new(SeededRng::new(seed)));
        let fired = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        let injectable: Vec<_> = net
            .layer_infos()
            .iter()
            .filter(|l| l.kind.is_injectable())
            .cloned()
            .collect();
        let take = if skip_last {
            injectable.len().saturating_sub(1)
        } else {
            injectable.len()
        };
        for info in injectable.into_iter().take(take) {
            let rng = Arc::clone(&rng);
            let fired = Arc::clone(&fired);
            let handle = net.hooks().register_forward(info.id, move |_ctx, out| {
                if out.is_empty() {
                    return;
                }
                let mut rng = rng.lock();
                for _ in 0..dose {
                    let off = rng.below(out.len());
                    out.data_mut()[off] = rng.uniform(lo, hi);
                    fired.fetch_add(1, Ordering::Relaxed);
                }
            });
            handles.push(handle);
        }
        Self {
            hooks: Arc::clone(net.hooks()),
            handles,
            fired,
        }
    }

    /// How many single-neuron injections have fired so far.
    pub fn injections(&self) -> usize {
        self.fired.load(Ordering::Relaxed)
    }

    /// Number of hooked layers.
    pub fn hooked_layers(&self) -> usize {
        self.handles.len()
    }

    /// Removes the hooks, restoring clean inference.
    pub fn remove(mut self) {
        for handle in self.handles.drain(..) {
            self.hooks.remove(handle);
        }
    }
}

impl Drop for TrainingInjector {
    fn drop(&mut self) {
        for handle in self.handles.drain(..) {
            self.hooks.remove(handle);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rustfi_nn::train::{accuracy, fit, TrainConfig};
    use rustfi_nn::{zoo, ZooConfig};
    use rustfi_tensor::Tensor;

    #[test]
    fn install_hooks_every_injectable_layer() {
        let net = zoo::lenet(&ZooConfig::tiny(10));
        let inj = TrainingInjector::install(&net, -1.0, 1.0, 1);
        assert_eq!(inj.hooked_layers(), 4);
        assert_eq!(net.hooks().len(), 4);
        inj.remove();
        assert!(net.hooks().is_empty());
    }

    #[test]
    fn injections_fire_once_per_layer_per_forward() {
        let mut net = zoo::lenet(&ZooConfig::tiny(10));
        let inj = TrainingInjector::install(&net, -1.0, 1.0, 2);
        let x = Tensor::ones(&[1, 3, 16, 16]);
        net.forward(&x);
        assert_eq!(inj.injections(), 4);
        net.forward(&x);
        assert_eq!(inj.injections(), 8);
    }

    #[test]
    fn drop_removes_hooks() {
        let mut net = zoo::lenet(&ZooConfig::tiny(10));
        let clean = net.forward(&Tensor::ones(&[1, 3, 16, 16]));
        {
            let _inj = TrainingInjector::install(&net, -1.0, 1.0, 3);
            // Perturbed inference differs (with overwhelming probability).
            let perturbed = net.forward(&Tensor::ones(&[1, 3, 16, 16]));
            let _ = perturbed;
        }
        assert!(net.hooks().is_empty(), "drop cleaned up");
        assert_eq!(net.forward(&Tensor::ones(&[1, 3, 16, 16])), clean);
    }

    #[test]
    fn training_with_injection_still_converges() {
        // A miniature Table-I check: FI-trained model reaches comparable
        // accuracy on an easy task.
        let mut spec = rustfi_data::SynthSpec::cifar10_like().with_budget(16, 8);
        // Keep the toy task easy: this test is about injection hooks not
        // hurting convergence, not about margin calibration.
        spec.noise = 0.5;
        let data = spec.generate();
        let cfg = TrainConfig {
            epochs: 8,
            batch_size: 8,
            lr: 0.02,
            ..TrainConfig::default()
        };
        let mut baseline = zoo::lenet(&ZooConfig::tiny(10));
        fit(&mut baseline, &data.train_images, &data.train_labels, &cfg);
        let base_acc = accuracy(&mut baseline, &data.test_images, &data.test_labels, 16);

        let mut fi_net = zoo::lenet(&ZooConfig::tiny(10));
        let inj = TrainingInjector::install_hidden(&fi_net, -1.0, 1.0, 4);
        fit(&mut fi_net, &data.train_images, &data.train_labels, &cfg);
        inj.remove();
        let fi_acc = accuracy(&mut fi_net, &data.test_images, &data.test_labels, 16);

        assert!(base_acc > 0.7, "baseline learned: {base_acc}");
        assert!(
            fi_acc > base_acc - 0.15,
            "FI training should not destroy accuracy: {fi_acc} vs {base_acc}"
        );
    }
}
