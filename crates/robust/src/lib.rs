//! # rustfi-robust
//!
//! Robust-training machinery for two PyTorchFI use cases:
//!
//! - **Interval Bound Propagation (IBP)** training (paper §IV-C / Fig. 6):
//!   trains a network to minimize `(1-α)·CE(z) + α·CE(z_worst)`, where
//!   `z_worst` are the worst-case logits under an L∞ input perturbation of
//!   radius ε, computed by propagating `[x-ε, x+ε]` intervals through every
//!   layer ([`interval`], [`ibp`]). A curriculum schedule ramps α and ε
//!   linearly, as in Gowal et al. ([`curriculum`]).
//! - **Fault-injection-in-training** (paper §IV-D / Table I): a persistent
//!   stochastic hook that, on every forward pass during training, sets one
//!   random neuron per injectable layer to a uniform value in `[-1, 1]`
//!   ([`fi_training`]).
//!
//! # Example
//!
//! ```
//! use rustfi_robust::ibp::{IbpNet, IbpSpec};
//! use rustfi_tensor::Tensor;
//!
//! let mut net = IbpNet::alexnet_like(&IbpSpec::tiny(10));
//! let x = Tensor::zeros(&[1, 3, 16, 16]);
//! let (lo, hi) = net.forward_interval(&x.add_scalar(-0.1), &x.add_scalar(0.1));
//! // Interval soundness: lower bounds never exceed upper bounds.
//! for (l, h) in lo.data().iter().zip(hi.data()) {
//!     assert!(l <= h);
//! }
//! ```

pub mod curriculum;
pub mod fgsm;
pub mod fi_training;
pub mod ibp;
pub mod interval;

pub use curriculum::Curriculum;
pub use fgsm::{fgsm, fgsm_accuracy};
pub use fi_training::TrainingInjector;
pub use ibp::{IbpNet, IbpSpec, IbpTrainConfig};
