//! IBP-trainable network (paper §IV-C, Eq. 1).
//!
//! [`IbpNet`] is a dedicated AlexNet-topology network that supports *two*
//! differentiable paths sharing one set of weights:
//!
//! - the **nominal** path (ordinary forward/backward), and
//! - the **interval** path (forward/backward through the IBP bound
//!   propagation of [`crate::interval`]).
//!
//! Training minimizes `(1-α)·CE(z, y) + α·CE(z_worst, y)` with `z_worst`
//! assembled from the output bounds (`lo` for the true class, `hi` for the
//! rest). After training, [`IbpNet::to_network`] exports the weights into an
//! ordinary [`rustfi_nn::Network`] so the fault injector can analyze it.

use crate::curriculum::Curriculum;
use crate::interval::{conv_interval, linear_interval, split_weights};
use rustfi_nn::layer::{Conv2d, Flatten, Linear, MaxPool2d, Relu, Sequential};
use rustfi_nn::loss::cross_entropy;
use rustfi_nn::module::{Module, Network};
use rustfi_tensor::linalg::{matmul, transpose};
use rustfi_tensor::{
    conv2d, conv2d_backward, max_pool2d, max_pool2d_backward, ConvSpec, PoolSpec, SeededRng, Tensor,
};

/// Architecture parameters for [`IbpNet::alexnet_like`].
#[derive(Debug, Clone)]
pub struct IbpSpec {
    /// Output classes.
    pub num_classes: usize,
    /// Input channels.
    pub in_channels: usize,
    /// Square input size (multiple of 8).
    pub image_hw: usize,
    /// Base width (channels of the first conv).
    pub width: usize,
    /// Weight-init seed.
    pub seed: u64,
}

impl IbpSpec {
    /// 3×16×16 inputs, base width 8.
    pub fn tiny(num_classes: usize) -> Self {
        Self {
            num_classes,
            in_channels: 3,
            image_hw: 16,
            width: 8,
            seed: 0x1B9,
        }
    }

    /// Replaces the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Training hyperparameters for [`IbpNet::train`].
#[derive(Debug, Clone)]
pub struct IbpTrainConfig {
    /// Epochs over the training set.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Learning rate.
    pub lr: f32,
    /// Momentum.
    pub momentum: f32,
    /// Final worst-case loss weight α.
    pub alpha_max: f32,
    /// Final perturbation radius ε.
    pub eps_max: f32,
    /// Fraction of total steps at which the α/ε ramp starts.
    pub ramp_start_frac: f32,
    /// Fraction of total steps at which the ramp ends.
    pub ramp_end_frac: f32,
    /// Shuffling seed.
    pub seed: u64,
}

impl Default for IbpTrainConfig {
    fn default() -> Self {
        Self {
            epochs: 30,
            batch_size: 16,
            lr: 0.01,
            momentum: 0.8,
            alpha_max: 0.1,
            eps_max: 0.25,
            // Scaled version of the paper's iteration 41 -> 123 ramp.
            ramp_start_frac: 0.25,
            ramp_end_frac: 0.75,
            seed: 0,
        }
    }
}

/// `(argmax indices, input dims)` cached by a pooling layer.
type PoolCache = (Vec<usize>, Vec<usize>);

enum Layer {
    Conv {
        w: Tensor,
        b: Tensor,
        gw: Tensor,
        gb: Tensor,
        spec: ConvSpec,
        nom_in: Option<Tensor>,
        int_in: Option<(Tensor, Tensor)>,
    },
    Relu {
        nom_mask: Option<Tensor>,
        int_mask: Option<(Tensor, Tensor)>,
    },
    MaxPool {
        spec: PoolSpec,
        nom: Option<PoolCache>,
        int: Option<(PoolCache, PoolCache)>,
    },
    Flatten {
        nom_dims: Option<Vec<usize>>,
        int_dims: Option<Vec<usize>>,
    },
    Linear {
        w: Tensor,
        b: Tensor,
        gw: Tensor,
        gb: Tensor,
        nom_in: Option<Tensor>,
        int_in: Option<(Tensor, Tensor)>,
    },
}

/// Result of [`IbpNet::train`].
#[derive(Debug, Clone)]
pub struct IbpTrainReport {
    /// Mean combined loss per epoch.
    pub epoch_losses: Vec<f32>,
    /// `(α, ε)` at the final step.
    pub final_schedule: (f32, f32),
}

/// An AlexNet-topology network trainable with Interval Bound Propagation.
pub struct IbpNet {
    layers: Vec<Layer>,
    velocities: Vec<Tensor>,
    spec: IbpSpec,
}

impl IbpNet {
    /// Builds the AlexNet-like architecture: five 3×3 convolutions with
    /// three max-pools, then a two-layer fully-connected head. No batch norm
    /// (IBP bounds through batch statistics are not well-defined).
    ///
    /// # Panics
    ///
    /// Panics if `image_hw` is not a positive multiple of 8.
    pub fn alexnet_like(spec: &IbpSpec) -> Self {
        assert!(
            spec.image_hw >= 8 && spec.image_hw.is_multiple_of(8),
            "image size must be a positive multiple of 8"
        );
        let mut rng = SeededRng::new(spec.seed);
        let w = spec.width;
        let feat = spec.image_hw / 8;
        let conv = |ci: usize, co: usize, rng: &mut SeededRng| {
            let std = (2.0 / (ci * 9) as f32).sqrt();
            Layer::Conv {
                w: Tensor::rand_normal(&[co, ci, 3, 3], 0.0, std, rng),
                b: Tensor::zeros(&[co]),
                gw: Tensor::zeros(&[co, ci, 3, 3]),
                gb: Tensor::zeros(&[co]),
                spec: ConvSpec::new().padding(1),
                nom_in: None,
                int_in: None,
            }
        };
        let linear = |fi: usize, fo: usize, rng: &mut SeededRng| {
            let std = (2.0 / fi as f32).sqrt();
            Layer::Linear {
                w: Tensor::rand_normal(&[fo, fi], 0.0, std, rng),
                b: Tensor::zeros(&[fo]),
                gw: Tensor::zeros(&[fo, fi]),
                gb: Tensor::zeros(&[fo]),
                nom_in: None,
                int_in: None,
            }
        };
        let relu = || Layer::Relu {
            nom_mask: None,
            int_mask: None,
        };
        let pool = || Layer::MaxPool {
            spec: PoolSpec::new(2, 2),
            nom: None,
            int: None,
        };
        let layers = vec![
            conv(spec.in_channels, w, &mut rng),
            relu(),
            pool(),
            conv(w, 2 * w, &mut rng),
            relu(),
            pool(),
            conv(2 * w, 3 * w, &mut rng),
            relu(),
            conv(3 * w, 2 * w, &mut rng),
            relu(),
            conv(2 * w, 2 * w, &mut rng),
            relu(),
            pool(),
            Layer::Flatten {
                nom_dims: None,
                int_dims: None,
            },
            linear(2 * w * feat * feat, 4 * w, &mut rng),
            relu(),
            linear(4 * w, spec.num_classes, &mut rng),
        ];
        Self {
            layers,
            velocities: Vec::new(),
            spec: spec.clone(),
        }
    }

    /// The architecture spec.
    pub fn spec(&self) -> &IbpSpec {
        &self.spec
    }

    /// Nominal forward pass (caches activations for `backward_nominal`).
    pub fn forward(&mut self, x: &Tensor) -> Tensor {
        let mut cur = x.clone();
        for layer in &mut self.layers {
            cur = match layer {
                Layer::Conv {
                    w, b, spec, nom_in, ..
                } => {
                    *nom_in = Some(cur.clone());
                    conv2d(&cur, w, b, spec)
                }
                Layer::Relu { nom_mask, .. } => {
                    *nom_mask = Some(cur.map(|v| if v > 0.0 { 1.0 } else { 0.0 }));
                    cur.relu()
                }
                Layer::MaxPool { spec, nom, .. } => {
                    let (out, argmax) = max_pool2d(&cur, spec);
                    *nom = Some((argmax, cur.dims().to_vec()));
                    out
                }
                Layer::Flatten { nom_dims, .. } => {
                    *nom_dims = Some(cur.dims().to_vec());
                    let n = cur.dims()[0];
                    let rest = cur.len() / n;
                    cur.reshaped(&[n, rest]).expect("flatten")
                }
                Layer::Linear { w, b, nom_in, .. } => {
                    *nom_in = Some(cur.clone());
                    let mut out = matmul(&cur, &transpose(w));
                    let (batch, out_f) = out.dims2();
                    for bi in 0..batch {
                        for o in 0..out_f {
                            out.data_mut()[bi * out_f + o] += b.data()[o];
                        }
                    }
                    out
                }
            };
        }
        cur
    }

    /// Interval forward pass: sound output bounds for inputs in
    /// `[lo, hi]` (caches for `backward_interval`).
    pub fn forward_interval(&mut self, lo: &Tensor, hi: &Tensor) -> (Tensor, Tensor) {
        let mut cur = (lo.clone(), hi.clone());
        for layer in &mut self.layers {
            cur = match layer {
                Layer::Conv {
                    w, b, spec, int_in, ..
                } => {
                    *int_in = Some(cur.clone());
                    conv_interval(&cur.0, &cur.1, w, b, spec)
                }
                Layer::Relu { int_mask, .. } => {
                    *int_mask = Some((
                        cur.0.map(|v| if v > 0.0 { 1.0 } else { 0.0 }),
                        cur.1.map(|v| if v > 0.0 { 1.0 } else { 0.0 }),
                    ));
                    (cur.0.relu(), cur.1.relu())
                }
                Layer::MaxPool { spec, int, .. } => {
                    let (out_lo, arg_lo) = max_pool2d(&cur.0, spec);
                    let (out_hi, arg_hi) = max_pool2d(&cur.1, spec);
                    *int = Some((
                        (arg_lo, cur.0.dims().to_vec()),
                        (arg_hi, cur.1.dims().to_vec()),
                    ));
                    (out_lo, out_hi)
                }
                Layer::Flatten { int_dims, .. } => {
                    *int_dims = Some(cur.0.dims().to_vec());
                    let n = cur.0.dims()[0];
                    let rest = cur.0.len() / n;
                    (
                        cur.0.reshaped(&[n, rest]).expect("flatten"),
                        cur.1.reshaped(&[n, rest]).expect("flatten"),
                    )
                }
                Layer::Linear { w, b, int_in, .. } => {
                    *int_in = Some(cur.clone());
                    linear_interval(&cur.0, &cur.1, w, b)
                }
            };
        }
        cur
    }

    /// Nominal backward pass; accumulates `scale ×` gradients.
    ///
    /// # Panics
    ///
    /// Panics if called before [`IbpNet::forward`].
    pub fn backward_nominal(&mut self, grad_out: &Tensor, scale: f32) {
        let mut g = grad_out.scale(scale);
        for layer in self.layers.iter_mut().rev() {
            g = match layer {
                Layer::Conv {
                    w,
                    gw,
                    gb,
                    spec,
                    nom_in,
                    ..
                } => {
                    let input = nom_in.as_ref().expect("nominal forward first");
                    let grads = conv2d_backward(input, w, &g, spec);
                    gw.add_assign(&grads.weight);
                    gb.add_assign(&grads.bias);
                    grads.input
                }
                Layer::Relu { nom_mask, .. } => {
                    g.mul(nom_mask.as_ref().expect("nominal forward first"))
                }
                Layer::MaxPool { nom, .. } => {
                    let (argmax, dims) = nom.as_ref().expect("nominal forward first");
                    max_pool2d_backward(&g, argmax, dims)
                }
                Layer::Flatten { nom_dims, .. } => g
                    .reshaped(nom_dims.as_ref().expect("nominal forward first"))
                    .expect("unflatten"),
                Layer::Linear {
                    w, gw, gb, nom_in, ..
                } => {
                    let input = nom_in.as_ref().expect("nominal forward first");
                    gw.add_assign(&matmul(&transpose(&g), input));
                    let (batch, out_f) = g.dims2();
                    for bi in 0..batch {
                        for o in 0..out_f {
                            gb.data_mut()[o] += g.data()[bi * out_f + o];
                        }
                    }
                    matmul(&g, w)
                }
            };
        }
    }

    /// Interval backward pass from output-bound gradients `(g_lo, g_hi)`;
    /// accumulates `scale ×` gradients.
    ///
    /// # Panics
    ///
    /// Panics if called before [`IbpNet::forward_interval`].
    pub fn backward_interval(&mut self, grad_lo: &Tensor, grad_hi: &Tensor, scale: f32) {
        let mut glo = grad_lo.scale(scale);
        let mut ghi = grad_hi.scale(scale);
        for layer in self.layers.iter_mut().rev() {
            match layer {
                Layer::Conv {
                    w,
                    gw,
                    gb,
                    spec,
                    int_in,
                    ..
                } => {
                    let (lo_in, hi_in) = int_in.as_ref().expect("interval forward first");
                    let (wp, wn) = split_weights(w);
                    let a = conv2d_backward(lo_in, &wp, &glo, spec);
                    let bb = conv2d_backward(hi_in, &wn, &glo, spec);
                    let c = conv2d_backward(hi_in, &wp, &ghi, spec);
                    let d = conv2d_backward(lo_in, &wn, &ghi, spec);
                    // dW routes through the sign of each weight.
                    let pos_part = a.weight.add(&c.weight);
                    let neg_part = bb.weight.add(&d.weight);
                    let dw = Tensor::from_fn(w.dims(), |i| {
                        if w.data()[i] > 0.0 {
                            pos_part.data()[i]
                        } else if w.data()[i] < 0.0 {
                            neg_part.data()[i]
                        } else {
                            0.0
                        }
                    });
                    gw.add_assign(&dw);
                    gb.add_assign(&a.bias.add(&c.bias));
                    glo = a.input.add(&d.input);
                    ghi = bb.input.add(&c.input);
                }
                Layer::Relu { int_mask, .. } => {
                    let (mlo, mhi) = int_mask.as_ref().expect("interval forward first");
                    glo = glo.mul(mlo);
                    ghi = ghi.mul(mhi);
                }
                Layer::MaxPool { int, .. } => {
                    let ((arg_lo, dims_lo), (arg_hi, dims_hi)) =
                        int.as_ref().expect("interval forward first");
                    glo = max_pool2d_backward(&glo, arg_lo, dims_lo);
                    ghi = max_pool2d_backward(&ghi, arg_hi, dims_hi);
                }
                Layer::Flatten { int_dims, .. } => {
                    let dims = int_dims.as_ref().expect("interval forward first");
                    glo = glo.reshaped(dims).expect("unflatten");
                    ghi = ghi.reshaped(dims).expect("unflatten");
                }
                Layer::Linear {
                    w, gw, gb, int_in, ..
                } => {
                    let (lo_in, hi_in) = int_in.as_ref().expect("interval forward first");
                    let (wp, wn) = split_weights(w);
                    // dWp = glo^T lo + ghi^T hi ; dWn = glo^T hi + ghi^T lo.
                    let pos_part =
                        matmul(&transpose(&glo), lo_in).add(&matmul(&transpose(&ghi), hi_in));
                    let neg_part =
                        matmul(&transpose(&glo), hi_in).add(&matmul(&transpose(&ghi), lo_in));
                    let dw = Tensor::from_fn(w.dims(), |i| {
                        if w.data()[i] > 0.0 {
                            pos_part.data()[i]
                        } else if w.data()[i] < 0.0 {
                            neg_part.data()[i]
                        } else {
                            0.0
                        }
                    });
                    gw.add_assign(&dw);
                    let (batch, out_f) = glo.dims2();
                    for bi in 0..batch {
                        for o in 0..out_f {
                            gb.data_mut()[o] +=
                                glo.data()[bi * out_f + o] + ghi.data()[bi * out_f + o];
                        }
                    }
                    let new_glo = matmul(&glo, &wp).add(&matmul(&ghi, &wn));
                    let new_ghi = matmul(&ghi, &wp).add(&matmul(&glo, &wn));
                    glo = new_glo;
                    ghi = new_ghi;
                }
            }
        }
    }

    /// Zeroes accumulated gradients.
    pub fn zero_grad(&mut self) {
        for layer in &mut self.layers {
            match layer {
                Layer::Conv { gw, gb, .. } | Layer::Linear { gw, gb, .. } => {
                    gw.map_inplace(|_| 0.0);
                    gb.map_inplace(|_| 0.0);
                }
                _ => {}
            }
        }
    }

    /// One SGD-with-momentum update from the accumulated gradients.
    pub fn step(&mut self, lr: f32, momentum: f32) {
        let mut idx = 0;
        for layer in &mut self.layers {
            let pairs: Vec<(&mut Tensor, &Tensor)> = match layer {
                Layer::Conv { w, b, gw, gb, .. } | Layer::Linear { w, b, gw, gb, .. } => {
                    vec![(w, gw), (b, gb)]
                }
                _ => continue,
            };
            for (value, grad) in pairs {
                if self.velocities.len() == idx {
                    self.velocities.push(Tensor::zeros(value.dims()));
                }
                let v = &mut self.velocities[idx];
                for ((vv, &g), wv) in v
                    .data_mut()
                    .iter_mut()
                    .zip(grad.data())
                    .zip(value.data_mut())
                {
                    *vv = momentum * *vv - lr * g;
                    *wv += *vv;
                }
                idx += 1;
            }
        }
    }

    /// Worst-case logits from output bounds: the true class takes its lower
    /// bound, every other class its upper bound.
    ///
    /// # Panics
    ///
    /// Panics if shapes disagree or a label is out of range.
    pub fn worst_case_logits(lo: &Tensor, hi: &Tensor, labels: &[usize]) -> Tensor {
        let (batch, classes) = lo.dims2();
        assert_eq!(labels.len(), batch, "one label per batch element");
        Tensor::from_fn(lo.dims(), |i| {
            let b = i / classes;
            let k = i % classes;
            assert!(labels[b] < classes, "label out of range");
            if k == labels[b] {
                lo.data()[i]
            } else {
                hi.data()[i]
            }
        })
    }

    /// IBP training with the Eq. 1 objective and a linear α/ε curriculum.
    #[allow(clippy::needless_range_loop)]
    ///
    /// # Panics
    ///
    /// Panics on empty data or mismatched lengths.
    pub fn train(
        &mut self,
        images: &Tensor,
        labels: &[usize],
        cfg: &IbpTrainConfig,
    ) -> IbpTrainReport {
        let n = images.dims()[0];
        assert_eq!(n, labels.len(), "{n} images, {} labels", labels.len());
        assert!(n > 0 && cfg.batch_size > 0, "empty data or batch");
        let steps_per_epoch = n.div_ceil(cfg.batch_size);
        let total_steps = steps_per_epoch * cfg.epochs;
        let schedule = Curriculum::new(
            (total_steps as f32 * cfg.ramp_start_frac) as usize,
            ((total_steps as f32 * cfg.ramp_end_frac) as usize).max(1),
            cfg.alpha_max,
            cfg.eps_max,
        );
        let mut rng = SeededRng::new(cfg.seed).fork(0x1B9);
        let mut order: Vec<usize> = (0..n).collect();
        let mut epoch_losses = Vec::with_capacity(cfg.epochs);
        let mut step = 0;
        let mut final_schedule = (0.0, 0.0);
        for _epoch in 0..cfg.epochs {
            rng.shuffle(&mut order);
            let mut epoch_loss = 0.0;
            let mut batches = 0;
            for chunk in order.chunks(cfg.batch_size) {
                let imgs: Vec<Tensor> = chunk.iter().map(|&i| images.select_batch(i)).collect();
                let x = Tensor::stack_batch(&imgs);
                let y: Vec<usize> = chunk.iter().map(|&i| labels[i]).collect();
                let (alpha, eps) = schedule.at(step);
                final_schedule = (alpha, eps);

                self.zero_grad();
                // Nominal path.
                let z = self.forward(&x);
                let (loss_nom, g_nom) = cross_entropy(&z, &y);
                self.backward_nominal(&g_nom, 1.0 - alpha);
                let mut loss = (1.0 - alpha) * loss_nom;
                // Worst-case path.
                if alpha > 0.0 && eps > 0.0 {
                    let (lo, hi) = self.forward_interval(&x.add_scalar(-eps), &x.add_scalar(eps));
                    let z_wc = Self::worst_case_logits(&lo, &hi, &y);
                    let (loss_wc, g_wc) = cross_entropy(&z_wc, &y);
                    // Distribute the worst-case gradient to the bounds it
                    // came from.
                    let (batch, classes) = z_wc.dims2();
                    let mut g_lo = Tensor::zeros(z_wc.dims());
                    let mut g_hi = Tensor::zeros(z_wc.dims());
                    for b in 0..batch {
                        for k in 0..classes {
                            let off = b * classes + k;
                            if k == y[b] {
                                g_lo.data_mut()[off] = g_wc.data()[off];
                            } else {
                                g_hi.data_mut()[off] = g_wc.data()[off];
                            }
                        }
                    }
                    self.backward_interval(&g_lo, &g_hi, alpha);
                    loss += alpha * loss_wc;
                }
                self.step(cfg.lr, cfg.momentum);
                epoch_loss += loss;
                batches += 1;
                step += 1;
            }
            epoch_losses.push(epoch_loss / batches as f32);
        }
        IbpTrainReport {
            epoch_losses,
            final_schedule,
        }
    }

    /// Fraction of `(images, labels)` whose classification is *certified*
    /// robust at radius `eps`: the worst-case logits over the input box
    /// `[x-ε, x+ε]` still rank the true class first. This is the quantity
    /// the IBP objective optimizes, so it is the natural check that robust
    /// training actually worked.
    ///
    /// # Panics
    ///
    /// Panics if lengths disagree or the set is empty.
    pub fn certified_accuracy(&mut self, images: &Tensor, labels: &[usize], eps: f32) -> f32 {
        let n = images.dims()[0];
        assert_eq!(n, labels.len(), "{n} images, {} labels", labels.len());
        assert!(n > 0, "empty evaluation set");
        let mut certified = 0;
        for (i, &label) in labels.iter().enumerate() {
            let x = images.select_batch(i);
            let (lo, hi) = self.forward_interval(&x.add_scalar(-eps), &x.add_scalar(eps));
            // Certified iff the true class's lower bound beats every other
            // class's upper bound.
            let lo_true = lo.at(&[0, label]);
            let beaten = (0..hi.dims2().1)
                .filter(|&k| k != label)
                .all(|k| hi.at(&[0, k]) < lo_true);
            if beaten {
                certified += 1;
            }
        }
        certified as f32 / n as f32
    }

    /// Exports the trained weights into an ordinary hook-capable
    /// [`Network`] with the identical topology, ready for fault injection.
    pub fn to_network(&self) -> Network {
        let mut rng = SeededRng::new(self.spec.seed);
        let w = self.spec.width;
        let feat = self.spec.image_hw / 8;
        let mut layers: Vec<Box<dyn Module>> = Vec::new();
        for layer in &self.layers {
            match layer {
                Layer::Conv { w: cw, .. } => {
                    let dims = cw.dims();
                    layers.push(Box::new(Conv2d::new(
                        dims[1],
                        dims[0],
                        dims[2],
                        ConvSpec::new().padding(1),
                        &mut rng,
                    )));
                }
                Layer::Relu { .. } => layers.push(Box::new(Relu::new())),
                Layer::MaxPool { .. } => layers.push(Box::new(MaxPool2d::new(2, 2))),
                Layer::Flatten { .. } => layers.push(Box::new(Flatten::new())),
                Layer::Linear { w: lw, .. } => {
                    let (fo, fi) = lw.dims2();
                    layers.push(Box::new(Linear::new(fi, fo, &mut rng)));
                }
            }
        }
        let _ = (w, feat);
        let mut net = Network::new(Box::new(Sequential::new(layers)));
        // Copy weights: state order is (w, b) per affine layer, in order.
        let mut tensors: Vec<Tensor> = Vec::new();
        for layer in &self.layers {
            match layer {
                Layer::Conv { w, b, .. } | Layer::Linear { w, b, .. } => {
                    tensors.push(w.clone());
                    tensors.push(b.clone());
                }
                _ => {}
            }
        }
        let mut iter = tensors.into_iter();
        net.for_each_state(&mut |t| {
            let src = iter.next().expect("matching state count");
            assert_eq!(t.dims(), src.dims(), "topology mismatch in export");
            *t = src;
        });
        net
    }
}

impl IbpNet {
    /// Accumulated gradients in deterministic `(w, b)` order — debugging aid.
    #[doc(hidden)]
    pub fn debug_grads(&self) -> Vec<Tensor> {
        let mut out = Vec::new();
        for layer in &self.layers {
            match layer {
                Layer::Conv { gw, gb, .. } | Layer::Linear { gw, gb, .. } => {
                    out.push(gw.clone());
                    out.push(gb.clone());
                }
                _ => {}
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rustfi_data::SynthSpec;
    use rustfi_nn::train::accuracy;

    #[test]
    fn nominal_forward_shapes() {
        let mut net = IbpNet::alexnet_like(&IbpSpec::tiny(10));
        let z = net.forward(&Tensor::zeros(&[2, 3, 16, 16]));
        assert_eq!(z.dims(), &[2, 10]);
    }

    #[test]
    fn interval_bounds_contain_nominal() {
        let mut net = IbpNet::alexnet_like(&IbpSpec::tiny(10));
        let mut rng = SeededRng::new(1);
        let x = Tensor::rand_normal(&[1, 3, 16, 16], 0.0, 1.0, &mut rng);
        let z = net.forward(&x);
        let (lo, hi) = net.forward_interval(&x.add_scalar(-0.1), &x.add_scalar(0.1));
        for ((l, v), h) in lo.data().iter().zip(z.data()).zip(hi.data()) {
            assert!(l - 1e-4 <= *v && *v <= h + 1e-4, "{l} <= {v} <= {h}");
        }
    }

    #[test]
    fn zero_eps_interval_equals_nominal() {
        let mut net = IbpNet::alexnet_like(&IbpSpec::tiny(4));
        let mut rng = SeededRng::new(2);
        let x = Tensor::rand_normal(&[1, 3, 16, 16], 0.0, 1.0, &mut rng);
        let z = net.forward(&x);
        let (lo, hi) = net.forward_interval(&x, &x);
        for ((l, v), h) in lo.data().iter().zip(z.data()).zip(hi.data()) {
            assert!((l - v).abs() < 1e-3 && (h - v).abs() < 1e-3);
        }
    }

    #[test]
    fn nominal_gradients_match_numeric() {
        let mut net = IbpNet::alexnet_like(&IbpSpec::tiny(4));
        let mut rng = SeededRng::new(3);
        let x = Tensor::rand_normal(&[2, 3, 16, 16], 0.0, 1.0, &mut rng);
        let labels = [1usize, 2];
        net.zero_grad();
        let z = net.forward(&x);
        let (_, g) = cross_entropy(&z, &labels);
        net.backward_nominal(&g, 1.0);
        // Probe first conv weight elements.
        let idx_list = [0usize, 7, 31];
        let analytic: Vec<f32> = {
            let Layer::Conv { gw, .. } = &net.layers[0] else {
                panic!("layer 0 is conv")
            };
            idx_list.iter().map(|&i| gw.data()[i]).collect()
        };
        let eps = 1e-2;
        for (k, &i) in idx_list.iter().enumerate() {
            let loss_at = |net: &mut IbpNet, delta: f32| {
                {
                    let Layer::Conv { w, .. } = &mut net.layers[0] else {
                        panic!()
                    };
                    w.data_mut()[i] += delta;
                }
                let z = net.forward(&x);
                let (l, _) = cross_entropy(&z, &labels);
                {
                    let Layer::Conv { w, .. } = &mut net.layers[0] else {
                        panic!()
                    };
                    w.data_mut()[i] -= delta;
                }
                l
            };
            let num = (loss_at(&mut net, eps) - loss_at(&mut net, -eps)) / (2.0 * eps);
            // f32 finite differences through five conv layers and max-pool
            // kinks are noisy; the exact check against the rustfi-nn
            // reference lives in nominal_gradients_match_nn_reference.
            let tol = 0.03 + 0.15 * analytic[k].abs();
            assert!(
                (num - analytic[k]).abs() < tol,
                "conv grad {i}: {num} vs {}",
                analytic[k]
            );
        }
    }

    #[test]
    fn degenerate_interval_backward_equals_nominal() {
        // With lo = hi = x the interval pass computes the nominal function,
        // and backward_interval(g/2, g/2) must accumulate exactly the
        // nominal parameter gradients of g — this exercises every routing
        // path (W+/W- splits, dual pooling argmaxes, dual ReLU masks).
        let mut rng = SeededRng::new(4);
        let x = Tensor::rand_normal(&[2, 3, 16, 16], 0.0, 0.5, &mut rng);
        let labels = [0usize, 2];

        let mut net_a = IbpNet::alexnet_like(&IbpSpec::tiny(3));
        net_a.zero_grad();
        let z = net_a.forward(&x);
        let (_, g) = cross_entropy(&z, &labels);
        net_a.backward_nominal(&g, 1.0);
        let nominal_grads = net_a.debug_grads();

        let mut net_b = IbpNet::alexnet_like(&IbpSpec::tiny(3));
        net_b.zero_grad();
        let (lo, hi) = net_b.forward_interval(&x, &x);
        assert_eq!(lo, hi, "degenerate interval stays degenerate");
        let half = g.scale(0.5);
        net_b.backward_interval(&half, &half, 1.0);
        let interval_grads = net_b.debug_grads();

        for (a, b) in nominal_grads.iter().zip(&interval_grads) {
            for (x, y) in a.data().iter().zip(b.data()) {
                assert!((x - y).abs() < 1e-4, "{x} vs {y}");
            }
        }
    }

    #[test]
    fn interval_gradient_descends_worst_case_loss() {
        // First-order sanity under a real interval: a small step along the
        // negative accumulated gradient must reduce the worst-case loss.
        let mut net = IbpNet::alexnet_like(&IbpSpec::tiny(3));
        let mut rng = SeededRng::new(5);
        let x = Tensor::rand_normal(&[2, 3, 16, 16], 0.0, 0.5, &mut rng);
        let labels = [0usize, 1];
        // Interval widths amplify ~6e5x through the untrained stack; keep
        // eps small enough that the worst-case cross-entropy is not
        // saturated at the log clamp.
        let eps_in = 1e-5;

        let wc_loss = |net: &mut IbpNet| {
            let (lo, hi) = net.forward_interval(&x.add_scalar(-eps_in), &x.add_scalar(eps_in));
            let z_wc = IbpNet::worst_case_logits(&lo, &hi, &labels);
            cross_entropy(&z_wc, &labels).0
        };

        net.zero_grad();
        let before = {
            let (lo, hi) = net.forward_interval(&x.add_scalar(-eps_in), &x.add_scalar(eps_in));
            let z_wc = IbpNet::worst_case_logits(&lo, &hi, &labels);
            let (loss, g_wc) = cross_entropy(&z_wc, &labels);
            assert!(loss < 27.0, "test premise: loss not saturated, got {loss}");
            let (_, classes) = z_wc.dims2();
            let mut g_lo = Tensor::zeros(z_wc.dims());
            let mut g_hi = Tensor::zeros(z_wc.dims());
            for (b, &label) in labels.iter().enumerate() {
                for k in 0..classes {
                    let off = b * classes + k;
                    if k == label {
                        g_lo.data_mut()[off] = g_wc.data()[off];
                    } else {
                        g_hi.data_mut()[off] = g_wc.data()[off];
                    }
                }
            }
            net.backward_interval(&g_lo, &g_hi, 1.0);
            loss
        };
        net.step(1e-4, 0.0);
        let after = wc_loss(&mut net);
        assert!(after < before, "descent step: {after} !< {before}");
    }

    #[test]
    fn worst_case_logits_mix_bounds() {
        let lo = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]);
        let hi = Tensor::from_vec(vec![4.0, 5.0, 6.0], &[1, 3]);
        let wc = IbpNet::worst_case_logits(&lo, &hi, &[1]);
        assert_eq!(wc.data(), &[4.0, 2.0, 6.0]);
    }

    #[test]
    fn nominal_gradients_match_nn_reference() {
        // Exact check: the IbpNet nominal backward must agree bit-for-bit
        // with the independently tested rustfi-nn implementation.
        let mut net = IbpNet::alexnet_like(&IbpSpec::tiny(4));
        let mut rng = SeededRng::new(7);
        let x = Tensor::rand_normal(&[2, 3, 16, 16], 0.0, 1.0, &mut rng);
        let labels = [1usize, 2];
        net.zero_grad();
        let z = net.forward(&x);
        let (_, g) = cross_entropy(&z, &labels);
        net.backward_nominal(&g, 1.0);

        let mut exported = net.to_network();
        let z2 = exported.forward(&x);
        assert_eq!(z, z2, "forward passes agree exactly");
        let (_, g2) = cross_entropy(&z2, &labels);
        exported.backward(&g2);
        let mut ref_grads: Vec<Tensor> = Vec::new();
        exported.for_each_param(&mut |p| ref_grads.push(p.grad.clone()));
        for (a, b) in net.debug_grads().iter().zip(&ref_grads) {
            for (x, y) in a.data().iter().zip(b.data()) {
                assert!((x - y).abs() < 1e-5, "{x} vs {y}");
            }
        }
    }

    #[test]
    fn ibp_training_learns_and_exports() {
        let data = SynthSpec::cifar10_like().with_budget(20, 6).generate();
        let mut net = IbpNet::alexnet_like(&IbpSpec::tiny(10));
        let report = net.train(
            &data.train_images,
            &data.train_labels,
            &IbpTrainConfig {
                epochs: 60,
                ..IbpTrainConfig::default()
            },
        );
        // The combined loss includes the ramped worst-case term, so compare
        // against the pre-ramp epochs rather than demanding monotonicity.
        assert!(report.epoch_losses.iter().all(|l| l.is_finite()));
        assert!(report.final_schedule.0 > 0.0, "curriculum ramped alpha");

        let mut exported = net.to_network();
        let acc = accuracy(&mut exported, &data.test_images, &data.test_labels, 16);
        assert!(acc > 0.5, "exported IBP model accuracy {acc}");

        // The exported network agrees with the IBP net exactly.
        let x = data.test_images.select_batch(0);
        let z_ibp = net.forward(&x);
        let z_exp = exported.forward(&x);
        for (a, b) in z_ibp.data().iter().zip(z_exp.data()) {
            assert!((a - b).abs() < 1e-4);
        }
    }
}
