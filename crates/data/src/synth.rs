//! Smooth synthetic image primitives.

use rustfi_tensor::{SeededRng, Tensor};

/// Generates a smooth prototype image `[1, channels, hw, hw]` by bilinearly
/// upsampling a low-resolution random grid. Values land roughly in
/// `[-1, 1]`.
///
/// Smoothness matters: convolutional features pick up low-frequency class
/// structure the way they do on natural images, so scaled-down networks
/// separate the classes without memorizing pixels.
///
/// # Panics
///
/// Panics if `hw < grid` or `grid < 2`.
pub fn smooth_prototype(channels: usize, hw: usize, grid: usize, rng: &mut SeededRng) -> Tensor {
    assert!(grid >= 2, "grid must be at least 2");
    assert!(hw >= grid, "image {hw} smaller than grid {grid}");
    let coarse = Tensor::rand_uniform(&[channels, grid, grid], -1.0, 1.0, rng);
    let mut out = Tensor::zeros(&[1, channels, hw, hw]);
    let scale = (grid - 1) as f32 / (hw - 1) as f32;
    for c in 0..channels {
        for y in 0..hw {
            let fy = y as f32 * scale;
            let y0 = fy.floor() as usize;
            let y1 = (y0 + 1).min(grid - 1);
            let ty = fy - y0 as f32;
            for x in 0..hw {
                let fx = x as f32 * scale;
                let x0 = fx.floor() as usize;
                let x1 = (x0 + 1).min(grid - 1);
                let tx = fx - x0 as f32;
                let v00 = coarse.at(&[c, y0, x0]);
                let v01 = coarse.at(&[c, y0, x1]);
                let v10 = coarse.at(&[c, y1, x0]);
                let v11 = coarse.at(&[c, y1, x1]);
                let v = v00 * (1.0 - ty) * (1.0 - tx)
                    + v01 * (1.0 - ty) * tx
                    + v10 * ty * (1.0 - tx)
                    + v11 * ty * tx;
                out.set(&[0, c, y, x], v);
            }
        }
    }
    out
}

/// Adds i.i.d. Gaussian noise to a copy of `proto`.
pub fn noisy_sample(proto: &Tensor, noise: f32, rng: &mut SeededRng) -> Tensor {
    Tensor::from_fn(proto.dims(), |i| proto.data()[i] + rng.normal(0.0, noise))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prototype_shape_and_range() {
        let mut rng = SeededRng::new(1);
        let p = smooth_prototype(3, 16, 4, &mut rng);
        assert_eq!(p.dims(), &[1, 3, 16, 16]);
        assert!(p.max_abs() <= 1.0 + 1e-6);
    }

    #[test]
    fn prototype_is_smooth() {
        let mut rng = SeededRng::new(2);
        let p = smooth_prototype(1, 32, 4, &mut rng);
        // Neighboring pixels differ by much less than the global range.
        let mut max_step = 0.0f32;
        for y in 0..32 {
            for x in 0..31 {
                max_step = max_step.max((p.at(&[0, 0, y, x + 1]) - p.at(&[0, 0, y, x])).abs());
            }
        }
        let range = p.max() - p.min();
        assert!(max_step < range * 0.2, "step {max_step} vs range {range}");
    }

    #[test]
    fn prototypes_are_seed_deterministic() {
        let a = smooth_prototype(2, 16, 4, &mut SeededRng::new(3));
        let b = smooth_prototype(2, 16, 4, &mut SeededRng::new(3));
        assert_eq!(a, b);
        let c = smooth_prototype(2, 16, 4, &mut SeededRng::new(4));
        assert_ne!(a, c);
    }

    #[test]
    fn noisy_samples_scatter_around_prototype() {
        let mut rng = SeededRng::new(5);
        let p = smooth_prototype(1, 8, 4, &mut rng);
        let s = noisy_sample(&p, 0.1, &mut rng);
        let diff = s.sub(&p);
        assert!(diff.max_abs() > 0.0);
        assert!(diff.max_abs() < 1.0, "noise is small relative to signal");
    }

    #[test]
    #[should_panic(expected = "smaller than grid")]
    fn rejects_tiny_images() {
        smooth_prototype(1, 2, 4, &mut SeededRng::new(1));
    }
}
