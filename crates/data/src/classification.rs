//! Synthetic classification datasets (CIFAR-10/100- and ImageNet-like).

use crate::synth::{noisy_sample, smooth_prototype};
use rustfi_tensor::{SeededRng, Tensor};

/// Specification of a synthetic classification dataset.
#[derive(Debug, Clone)]
pub struct SynthSpec {
    /// Dataset display name ("cifar10-like", …).
    pub name: &'static str,
    /// Number of classes.
    pub num_classes: usize,
    /// Image channels.
    pub channels: usize,
    /// Square image size.
    pub image_hw: usize,
    /// Training samples per class.
    pub train_per_class: usize,
    /// Test samples per class.
    pub test_per_class: usize,
    /// Gaussian noise standard deviation around each class prototype.
    pub noise: f32,
    /// Generation seed.
    pub seed: u64,
}

impl SynthSpec {
    /// 10-class, 3×16×16, matching `ZooConfig::cifar10_like`.
    pub fn cifar10_like() -> Self {
        Self {
            name: "cifar10-like",
            num_classes: 10,
            channels: 3,
            image_hw: 16,
            train_per_class: 40,
            test_per_class: 16,
            // Noise is tuned so trained models sit in a realistic-margin
            // regime: high accuracy but with decision boundaries close
            // enough that hardware bit flips occasionally cross them (the
            // precondition for the paper's resiliency experiments).
            noise: 1.0,
            seed: 0xC1FA_0010,
        }
    }

    /// 100-class, 3×16×16, matching `ZooConfig::cifar100_like`.
    pub fn cifar100_like() -> Self {
        Self {
            name: "cifar100-like",
            num_classes: 100,
            channels: 3,
            image_hw: 16,
            train_per_class: 12,
            test_per_class: 4,
            noise: 0.5,
            seed: 0xC1FA_0100,
        }
    }

    /// 20-class, 3×16×16, matching `ZooConfig::imagenet_like`.
    pub fn imagenet_like() -> Self {
        Self {
            name: "imagenet-like",
            num_classes: 20,
            channels: 3,
            image_hw: 16,
            train_per_class: 60,
            test_per_class: 12,
            // See cifar10_like: 1.45 puts trained models at ~85-97% accuracy
            // with sub-1% single-bit-flip SDC rates, the Fig. 4 regime.
            noise: 1.45,
            seed: 0x13A6_E7E7,
        }
    }

    /// Overrides per-class sample budgets (handy for fast tests).
    pub fn with_budget(mut self, train_per_class: usize, test_per_class: usize) -> Self {
        self.train_per_class = train_per_class;
        self.test_per_class = test_per_class;
        self
    }

    /// Overrides the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Looks a spec up by its dataset name.
    pub fn by_name(name: &str) -> Option<Self> {
        match name {
            "cifar10-like" => Some(Self::cifar10_like()),
            "cifar100-like" => Some(Self::cifar100_like()),
            "imagenet-like" => Some(Self::imagenet_like()),
            _ => None,
        }
    }

    /// Materializes the dataset.
    ///
    /// # Panics
    ///
    /// Panics if any budget or dimension is zero.
    pub fn generate(&self) -> ClassificationDataset {
        assert!(self.num_classes >= 2, "need at least two classes");
        assert!(
            self.train_per_class > 0 && self.test_per_class > 0,
            "budgets must be positive"
        );
        let mut proto_rng = SeededRng::new(self.seed);
        let prototypes: Vec<Tensor> = (0..self.num_classes)
            .map(|_| smooth_prototype(self.channels, self.image_hw, 4, &mut proto_rng))
            .collect();

        let make_split = |per_class: usize, stream: u64| {
            let mut rng = SeededRng::new(self.seed).fork(stream);
            let mut images = Vec::with_capacity(per_class * self.num_classes);
            let mut labels = Vec::with_capacity(per_class * self.num_classes);
            // Interleave classes so any prefix is roughly balanced.
            for i in 0..per_class {
                for (class, proto) in prototypes.iter().enumerate() {
                    let _ = i;
                    images.push(noisy_sample(proto, self.noise, &mut rng));
                    labels.push(class);
                }
            }
            (Tensor::stack_batch(&images), labels)
        };
        let (train_images, train_labels) = make_split(self.train_per_class, 1);
        let (test_images, test_labels) = make_split(self.test_per_class, 2);

        ClassificationDataset {
            name: self.name,
            num_classes: self.num_classes,
            prototypes,
            train_images,
            train_labels,
            test_images,
            test_labels,
        }
    }
}

/// A materialized classification dataset.
#[derive(Debug, Clone)]
pub struct ClassificationDataset {
    /// Dataset display name.
    pub name: &'static str,
    /// Number of classes.
    pub num_classes: usize,
    /// One prototype image per class (`[1, c, hw, hw]` each).
    pub prototypes: Vec<Tensor>,
    /// Training images `[n, c, hw, hw]`.
    pub train_images: Tensor,
    /// Training labels (length `n`).
    pub train_labels: Vec<usize>,
    /// Test images.
    pub test_images: Tensor,
    /// Test labels.
    pub test_labels: Vec<usize>,
}

impl ClassificationDataset {
    /// Number of training samples.
    pub fn train_len(&self) -> usize {
        self.train_labels.len()
    }

    /// Number of test samples.
    pub fn test_len(&self) -> usize {
        self.test_labels.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_shapes_are_consistent() {
        let d = SynthSpec::cifar10_like().with_budget(5, 3).generate();
        assert_eq!(d.train_images.dims(), &[50, 3, 16, 16]);
        assert_eq!(d.test_images.dims(), &[30, 3, 16, 16]);
        assert_eq!(d.train_labels.len(), 50);
        assert_eq!(d.prototypes.len(), 10);
    }

    #[test]
    fn labels_are_balanced() {
        let d = SynthSpec::imagenet_like().with_budget(4, 2).generate();
        for class in 0..20 {
            assert_eq!(d.train_labels.iter().filter(|&&l| l == class).count(), 4);
            assert_eq!(d.test_labels.iter().filter(|&&l| l == class).count(), 2);
        }
    }

    #[test]
    fn train_and_test_are_disjoint_samples() {
        let d = SynthSpec::cifar10_like().with_budget(2, 2).generate();
        // Same prototypes, different noise draws.
        assert_ne!(
            d.train_images.select_batch(0),
            d.test_images.select_batch(0)
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let a = SynthSpec::cifar10_like().with_budget(3, 1).generate();
        let b = SynthSpec::cifar10_like().with_budget(3, 1).generate();
        assert_eq!(a.train_images, b.train_images);
        assert_eq!(a.test_labels, b.test_labels);
        let c = SynthSpec::cifar10_like()
            .with_budget(3, 1)
            .with_seed(7)
            .generate();
        assert_ne!(a.train_images, c.train_images);
    }

    #[test]
    fn classes_are_separated_in_pixel_space() {
        // Nearest-prototype classification should already be accurate, which
        // guarantees a CNN can learn the task.
        let d = SynthSpec::cifar10_like().with_budget(1, 4).generate();
        let mut correct = 0;
        for i in 0..d.test_len() {
            let img = d.test_images.select_batch(i);
            let mut best = (f32::INFINITY, 0);
            for (k, proto) in d.prototypes.iter().enumerate() {
                let dist = img.sub(proto).sq_norm();
                if dist < best.0 {
                    best = (dist, k);
                }
            }
            if best.1 == d.test_labels[i] {
                correct += 1;
            }
        }
        let acc = correct as f32 / d.test_len() as f32;
        assert!(acc > 0.9, "nearest-prototype accuracy {acc}");
    }

    #[test]
    fn by_name_roundtrip() {
        for name in ["cifar10-like", "cifar100-like", "imagenet-like"] {
            assert_eq!(SynthSpec::by_name(name).unwrap().name, name);
        }
        assert!(SynthSpec::by_name("mnist").is_none());
    }
}
