//! # rustfi-data
//!
//! Deterministic synthetic datasets standing in for CIFAR-10, CIFAR-100,
//! ImageNet, and COCO in the RustFI reproduction of *PyTorchFI* (DSN 2020).
//!
//! Fault-injection studies need (a) models that classify well above chance —
//! so that "Top-1 misclassification caused by a perturbation" is a
//! meaningful event — and (b) a held-out set of inputs the clean model gets
//! right. They do *not* need natural images. Each classification dataset
//! here is a seeded Gaussian-mixture over smooth per-class prototype images
//! ([`synth`]); detection scenes are procedurally composed geometric objects
//! with exact ground-truth boxes ([`detection`]).
//!
//! Everything is generated from a `u64` seed: the same seed yields the same
//! bytes on every machine, so experiments are reproducible without data
//! downloads.
//!
//! # Example
//!
//! ```
//! use rustfi_data::classification::SynthSpec;
//!
//! let data = SynthSpec::cifar10_like().with_budget(8, 4).generate();
//! assert_eq!(data.num_classes, 10);
//! assert_eq!(data.train_images.dims()[0], 80);
//! assert_eq!(data.test_labels.len(), 40);
//! ```

pub mod batch;
pub mod classification;
pub mod detection;
pub mod synth;

pub use batch::BatchIter;
pub use classification::{ClassificationDataset, SynthSpec};
pub use detection::{DetectionSpec, GroundTruth, Scene};
