//! Procedural object-detection scenes (COCO-like).
//!
//! Each scene is a noisy background with 1–3 geometric objects drawn at
//! random positions and sizes. Object classes are visually distinct shapes:
//! `0` = filled square, `1` = disc, `2` = cross. Ground truth is exact, so a
//! detector's phantom/missed objects under fault injection can be counted
//! precisely.

use rustfi_tensor::{SeededRng, Tensor};

/// An axis-aligned ground-truth box in normalized `[0, 1]` coordinates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroundTruth {
    /// Object class (0 = square, 1 = disc, 2 = cross).
    pub class: usize,
    /// Box center x.
    pub cx: f32,
    /// Box center y.
    pub cy: f32,
    /// Box width.
    pub w: f32,
    /// Box height.
    pub h: f32,
}

/// A generated scene: image plus exact ground truth.
#[derive(Debug, Clone)]
pub struct Scene {
    /// Image `[1, channels, hw, hw]`.
    pub image: Tensor,
    /// Ground-truth objects.
    pub objects: Vec<GroundTruth>,
}

/// Number of object classes produced by the generator.
pub const NUM_SHAPE_CLASSES: usize = 3;

/// Specification of a batch of detection scenes.
#[derive(Debug, Clone)]
pub struct DetectionSpec {
    /// Square image size.
    pub image_hw: usize,
    /// Image channels.
    pub channels: usize,
    /// Objects per scene: sampled uniformly in `[min_objects, max_objects]`.
    pub min_objects: usize,
    /// Upper bound on objects per scene.
    pub max_objects: usize,
    /// Background noise standard deviation.
    pub noise: f32,
    /// Generation seed.
    pub seed: u64,
}

impl Default for DetectionSpec {
    fn default() -> Self {
        Self {
            image_hw: 32,
            channels: 3,
            min_objects: 1,
            max_objects: 3,
            noise: 0.1,
            seed: 0xC0C0,
        }
    }
}

impl DetectionSpec {
    /// COCO-like default: 3×32×32 scenes with 1–3 objects.
    pub fn coco_like() -> Self {
        Self::default()
    }

    /// Overrides the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Generates `n` scenes.
    ///
    /// # Panics
    ///
    /// Panics if the spec is inconsistent (`min > max`, zero sizes).
    pub fn generate(&self, n: usize) -> Vec<Scene> {
        assert!(self.image_hw >= 16, "scenes need at least 16x16 pixels");
        assert!(
            self.min_objects >= 1 && self.min_objects <= self.max_objects,
            "bad object count range [{}, {}]",
            self.min_objects,
            self.max_objects
        );
        let rng = SeededRng::new(self.seed);
        (0..n)
            .map(|i| self.scene(&mut rng.fork(i as u64)))
            .collect()
    }

    fn scene(&self, rng: &mut SeededRng) -> Scene {
        let hw = self.image_hw;
        let mut image =
            Tensor::from_fn(&[1, self.channels, hw, hw], |_| rng.normal(0.0, self.noise));
        let count = rng.range(self.min_objects, self.max_objects + 1);
        let mut objects = Vec::with_capacity(count);
        for _ in 0..count {
            let class = rng.below(NUM_SHAPE_CLASSES);
            // Size 20%-40% of the image, center placed to keep it in frame.
            let size = rng.uniform(0.20, 0.40);
            let half = size / 2.0;
            let cx = rng.uniform(half, 1.0 - half);
            let cy = rng.uniform(half, 1.0 - half);
            let intensity = rng.uniform(0.8, 1.2);
            self.draw(&mut image, class, cx, cy, size, intensity);
            objects.push(GroundTruth {
                class,
                cx,
                cy,
                w: size,
                h: size,
            });
        }
        Scene { image, objects }
    }

    fn draw(&self, image: &mut Tensor, class: usize, cx: f32, cy: f32, size: f32, intensity: f32) {
        let hw = self.image_hw as f32;
        let x0 = ((cx - size / 2.0) * hw) as usize;
        let y0 = ((cy - size / 2.0) * hw) as usize;
        let px = ((size * hw) as usize).max(3);
        // Each class dominates one channel so shape and colour both carry
        // class information.
        let ch = class % self.channels;
        for y in y0..(y0 + px).min(self.image_hw) {
            for x in x0..(x0 + px).min(self.image_hw) {
                let fy = (y - y0) as f32 / px as f32 - 0.5;
                let fx = (x - x0) as f32 / px as f32 - 0.5;
                let inside = match class {
                    0 => true,                               // filled square
                    1 => fx * fx + fy * fy <= 0.25,          // disc
                    _ => fx.abs() < 0.17 || fy.abs() < 0.17, // cross
                };
                if inside {
                    let fm = image.fmap_mut(0, ch);
                    fm[y * self.image_hw + x] = intensity;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenes_have_requested_shapes() {
        let scenes = DetectionSpec::coco_like().generate(5);
        assert_eq!(scenes.len(), 5);
        for s in &scenes {
            assert_eq!(s.image.dims(), &[1, 3, 32, 32]);
            assert!(!s.objects.is_empty() && s.objects.len() <= 3);
        }
    }

    #[test]
    fn boxes_stay_in_frame() {
        let scenes = DetectionSpec::coco_like().generate(50);
        for s in &scenes {
            for o in &s.objects {
                assert!(o.cx - o.w / 2.0 >= -1e-5 && o.cx + o.w / 2.0 <= 1.0 + 1e-5);
                assert!(o.cy - o.h / 2.0 >= -1e-5 && o.cy + o.h / 2.0 <= 1.0 + 1e-5);
                assert!(o.class < NUM_SHAPE_CLASSES);
            }
        }
    }

    #[test]
    fn objects_are_brighter_than_background() {
        let scenes = DetectionSpec::coco_like().generate(3);
        for s in &scenes {
            let o = &s.objects[0];
            let hw = 32.0;
            let x = (o.cx * hw) as usize;
            let y = (o.cy * hw) as usize;
            let ch = o.class % 3;
            let center = s.image.at(&[0, ch, y, x]);
            // Square and disc are solid at the center; a cross has an arm
            // through the center too.
            assert!(center > 0.5, "object center {center} should be bright");
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = DetectionSpec::coco_like().generate(4);
        let b = DetectionSpec::coco_like().generate(4);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.image, y.image);
            assert_eq!(x.objects, y.objects);
        }
        let c = DetectionSpec::coco_like().with_seed(1).generate(4);
        assert_ne!(a[0].image, c[0].image);
    }

    #[test]
    #[should_panic(expected = "bad object count range")]
    fn rejects_inverted_range() {
        let spec = DetectionSpec {
            min_objects: 3,
            max_objects: 1,
            ..DetectionSpec::default()
        };
        spec.generate(1);
    }
}
