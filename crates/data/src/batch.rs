//! Mini-batch iteration and light augmentation over image datasets.
//!
//! The training loop in `rustfi-nn` batches internally; this module exposes
//! the same machinery as a reusable iterator for custom loops (the IBP and
//! detector trainers, user code), plus the two cheap augmentations that make
//! sense for synthetic prototype data: horizontal flips and integer shifts.

use rustfi_tensor::{SeededRng, Tensor};

/// Iterator over shuffled mini-batches of `(images, labels)`.
///
/// Each epoch's order is derived from `(seed, epoch)`, so resuming with the
/// same parameters reproduces the same batches.
#[derive(Debug)]
pub struct BatchIter<'a> {
    images: &'a Tensor,
    labels: &'a [usize],
    order: Vec<usize>,
    batch_size: usize,
    cursor: usize,
}

impl<'a> BatchIter<'a> {
    /// Creates a shuffled batch iterator for one epoch.
    ///
    /// # Panics
    ///
    /// Panics if lengths disagree, the set is empty, or `batch_size == 0`.
    pub fn new(
        images: &'a Tensor,
        labels: &'a [usize],
        batch_size: usize,
        seed: u64,
        epoch: usize,
    ) -> Self {
        let n = images.dims()[0];
        assert_eq!(n, labels.len(), "{n} images but {} labels", labels.len());
        assert!(n > 0, "empty dataset");
        assert!(batch_size > 0, "batch size must be positive");
        let mut order: Vec<usize> = (0..n).collect();
        SeededRng::new(seed).fork(epoch as u64).shuffle(&mut order);
        Self {
            images,
            labels,
            order,
            batch_size,
            cursor: 0,
        }
    }

    /// Number of batches this epoch will yield.
    pub fn len(&self) -> usize {
        self.order.len().div_ceil(self.batch_size)
    }

    /// Whether the epoch is exhausted before it starts (never true for a
    /// validly constructed iterator).
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }
}

impl Iterator for BatchIter<'_> {
    type Item = (Tensor, Vec<usize>);

    fn next(&mut self) -> Option<Self::Item> {
        if self.cursor >= self.order.len() {
            return None;
        }
        let hi = (self.cursor + self.batch_size).min(self.order.len());
        let idx = &self.order[self.cursor..hi];
        self.cursor = hi;
        let imgs: Vec<Tensor> = idx.iter().map(|&i| self.images.select_batch(i)).collect();
        let labels: Vec<usize> = idx.iter().map(|&i| self.labels[i]).collect();
        Some((Tensor::stack_batch(&imgs), labels))
    }
}

/// Horizontally mirrors every image of an `NCHW` tensor.
///
/// # Panics
///
/// Panics if the tensor is not rank 4.
pub fn flip_horizontal(images: &Tensor) -> Tensor {
    let (n, c, h, w) = images.dims4();
    let mut out = Tensor::zeros(images.dims());
    for bn in 0..n {
        for ch in 0..c {
            let src = images.fmap(bn, ch).to_vec();
            let dst = out.fmap_mut(bn, ch);
            for y in 0..h {
                for x in 0..w {
                    dst[y * w + x] = src[y * w + (w - 1 - x)];
                }
            }
        }
    }
    out
}

/// Shifts every image by `(dy, dx)` pixels, filling vacated pixels with 0.
///
/// # Panics
///
/// Panics if the tensor is not rank 4.
pub fn shift(images: &Tensor, dy: isize, dx: isize) -> Tensor {
    let (n, c, h, w) = images.dims4();
    let mut out = Tensor::zeros(images.dims());
    for bn in 0..n {
        for ch in 0..c {
            let src = images.fmap(bn, ch).to_vec();
            let dst = out.fmap_mut(bn, ch);
            for y in 0..h {
                let sy = y as isize - dy;
                if sy < 0 || sy >= h as isize {
                    continue;
                }
                for x in 0..w {
                    let sx = x as isize - dx;
                    if sx < 0 || sx >= w as isize {
                        continue;
                    }
                    dst[y * w + x] = src[sy as usize * w + sx as usize];
                }
            }
        }
    }
    out
}

/// Randomly augments a batch: each image independently flips with
/// probability 1/2 and shifts by up to ±`max_shift` in both axes.
pub fn augment(images: &Tensor, max_shift: usize, rng: &mut SeededRng) -> Tensor {
    let n = images.dims()[0];
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let mut img = images.select_batch(i);
        if rng.chance(0.5) {
            img = flip_horizontal(&img);
        }
        if max_shift > 0 {
            let span = 2 * max_shift + 1;
            let dy = rng.below(span) as isize - max_shift as isize;
            let dx = rng.below(span) as isize - max_shift as isize;
            img = shift(&img, dy, dx);
        }
        out.push(img);
    }
    Tensor::stack_batch(&out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset(n: usize) -> (Tensor, Vec<usize>) {
        (
            Tensor::from_fn(&[n, 1, 4, 4], |i| i as f32),
            (0..n).map(|i| i % 3).collect(),
        )
    }

    #[test]
    fn batches_cover_every_sample_exactly_once() {
        let (images, labels) = dataset(10);
        let iter = BatchIter::new(&images, &labels, 3, 1, 0);
        assert_eq!(iter.len(), 4);
        let mut seen = Vec::new();
        for (batch, y) in iter {
            assert_eq!(batch.dims()[0], y.len());
            for b in 0..y.len() {
                // First pixel identifies the source image (from_fn layout).
                seen.push((batch.at(&[b, 0, 0, 0]) / 16.0) as usize);
            }
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn epochs_shuffle_differently_but_reproducibly() {
        let (images, labels) = dataset(8);
        let first = |epoch| {
            BatchIter::new(&images, &labels, 8, 7, epoch)
                .next()
                .unwrap()
                .1
        };
        assert_eq!(first(0), first(0), "same epoch reproduces");
        assert_ne!(first(0), first(1), "epochs differ");
    }

    #[test]
    fn flip_is_involutive_and_mirrors() {
        let img = Tensor::from_fn(&[1, 1, 2, 3], |i| i as f32);
        let flipped = flip_horizontal(&img);
        assert_eq!(flipped.at(&[0, 0, 0, 0]), img.at(&[0, 0, 0, 2]));
        assert_eq!(flip_horizontal(&flipped), img);
    }

    #[test]
    fn shift_moves_and_zero_fills() {
        let img = Tensor::from_fn(&[1, 1, 3, 3], |i| 1.0 + i as f32);
        let moved = shift(&img, 1, 1);
        assert_eq!(moved.at(&[0, 0, 1, 1]), img.at(&[0, 0, 0, 0]));
        assert_eq!(moved.at(&[0, 0, 0, 0]), 0.0, "vacated pixels are zero");
        // Shifting out of frame entirely yields zeros.
        let gone = shift(&img, 5, 0);
        assert_eq!(gone.sum(), 0.0);
    }

    #[test]
    fn augment_preserves_shape_and_determinism() {
        let (images, _) = dataset(6);
        let mut a = SeededRng::new(3);
        let mut b = SeededRng::new(3);
        let out_a = augment(&images, 1, &mut a);
        let out_b = augment(&images, 1, &mut b);
        assert_eq!(out_a.dims(), images.dims());
        assert_eq!(out_a, out_b);
        let mut c = SeededRng::new(4);
        assert_ne!(augment(&images, 1, &mut c), out_a);
    }
}
