//! # rustfi-nn
//!
//! A small CPU deep-learning framework with PyTorch-style **forward hooks** —
//! the substrate on which the RustFI fault injector (a reproduction of
//! *PyTorchFI*, DSN 2020) instruments perturbations.
//!
//! The design mirrors the part of PyTorch that PyTorchFI relies on:
//!
//! - every layer implements [`Module`] and carries a stable [`LayerId`];
//! - a [`Network`] owns a module tree plus a shared [`HookRegistry`];
//! - after computing its output, each *leaf* layer runs the forward hooks
//!   registered for its id (or for all layers), handing them `&mut Tensor` —
//!   exactly the mutation point PyTorchFI uses to corrupt neurons;
//! - backward passes symmetrically run *gradient hooks*, which is what
//!   Grad-CAM-style interpretability consumes.
//!
//! Training is supported end-to-end: every layer implements `backward`,
//! [`optim::Sgd`] updates parameters, and [`train`] provides a batching
//! fit/evaluate loop. A twelve-architecture [`zoo`] provides scaled-down but
//! topologically faithful versions of the networks evaluated in the paper.
//!
//! # Example: three lines to perturb a model
//!
//! ```
//! use rustfi_nn::{zoo, ZooConfig};
//! use rustfi_tensor::Tensor;
//!
//! let mut net = zoo::lenet(&ZooConfig::tiny(10));
//! // Register a forward hook that zeroes neuron (0, 0, 0, 0) of layer 0.
//! let id = net.layer_infos()[0].id;
//! net.hooks().register_forward(id, |_ctx, out| out.data_mut()[0] = 0.0);
//! let y = net.forward(&Tensor::zeros(&[1, 3, 16, 16]));
//! assert_eq!(y.dims()[0], 1);
//! ```

pub mod checkpoint;
pub mod guard;
pub mod hook;
pub mod layer;
pub mod loss;
pub mod module;
pub mod optim;
pub mod quantized;
pub mod shape;
pub mod train;
pub mod zoo;

pub use guard::{DeadlineInterrupt, GuardConfig, GuardHook, NonFiniteInterrupt};
pub use hook::{HookHandle, HookRegistry, LayerCtx};
pub use module::{
    BackwardCtx, ForwardCtx, FusePartner, LayerId, LayerInfo, LayerKind, LayerMeta, Module,
    Network, Param,
};
pub use quantized::{Backend, CalibrationTable};
pub use shape::ShapeError;
pub use zoo::ZooConfig;
