//! Forward and gradient hooks — the instrumentation point PyTorchFI's design
//! is built on.
//!
//! Hooks attach to a [`HookRegistry`] shared by all layers of a [`Network`].
//! A *forward hook* runs after a leaf layer computes its output and may
//! mutate it in place (this is how neuron perturbations are injected without
//! touching the network topology or the framework internals). A *gradient
//! hook* runs during the backward pass with the gradient flowing into a
//! layer's output (this is what Grad-CAM consumes).
//!
//! Dispatch cost with no hooks registered is a single read-locked emptiness
//! check per layer, matching the paper's "single check on every layer"
//! overhead claim (§III-C); `rustfi-bench` measures it.
//!
//! [`Network`]: crate::module::Network

use crate::module::{LayerId, LayerKind};
use parking_lot::RwLock;
use rustfi_tensor::Tensor;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Information about the layer a hook fired on.
#[derive(Debug)]
pub struct LayerCtx<'a> {
    /// The layer's stable id.
    pub id: LayerId,
    /// The layer's name.
    pub name: &'a str,
    /// The layer's kind.
    pub kind: LayerKind,
}

/// A forward hook: may mutate the layer output in place.
pub type ForwardHookFn = dyn Fn(&LayerCtx<'_>, &mut Tensor) + Send + Sync;
/// A gradient hook: observes the gradient w.r.t. the layer output.
pub type GradHookFn = dyn Fn(&LayerCtx<'_>, &Tensor) + Send + Sync;

/// Token returned on registration; pass to [`HookRegistry::remove`] to
/// unregister.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HookHandle(u64);

enum Target {
    Layer(LayerId),
    All,
}

/// Registry of forward and gradient hooks for one network.
///
/// Cheap to share (`Arc`) and safe to mutate while inference runs on another
/// thread; hooks fire in registration order.
pub struct HookRegistry {
    forward: RwLock<HookTable<Arc<ForwardHookFn>>>,
    grad: RwLock<HookTable<Arc<GradHookFn>>>,
    forward_nonempty: AtomicBool,
    grad_nonempty: AtomicBool,
    next_handle: AtomicU64,
}

struct HookTable<H> {
    by_layer: HashMap<LayerId, Vec<(HookHandle, H)>>,
    all: Vec<(HookHandle, H)>,
}

impl<H> HookTable<H> {
    fn new() -> Self {
        Self {
            by_layer: HashMap::new(),
            all: Vec::new(),
        }
    }

    fn insert(&mut self, target: Target, handle: HookHandle, hook: H) {
        match target {
            Target::Layer(id) => self.by_layer.entry(id).or_default().push((handle, hook)),
            Target::All => self.all.push((handle, hook)),
        }
    }

    fn remove(&mut self, handle: HookHandle) -> bool {
        let before = self.all.len();
        self.all.retain(|(h, _)| *h != handle);
        if self.all.len() != before {
            return true;
        }
        for list in self.by_layer.values_mut() {
            let before = list.len();
            list.retain(|(h, _)| *h != handle);
            if list.len() != before {
                return true;
            }
        }
        false
    }

    fn is_empty(&self) -> bool {
        self.all.is_empty() && self.by_layer.values().all(Vec::is_empty)
    }

    fn count(&self) -> usize {
        self.all.len() + self.by_layer.values().map(Vec::len).sum::<usize>()
    }
}

impl HookRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self {
            forward: RwLock::new(HookTable::new()),
            grad: RwLock::new(HookTable::new()),
            forward_nonempty: AtomicBool::new(false),
            grad_nonempty: AtomicBool::new(false),
            next_handle: AtomicU64::new(1),
        }
    }

    fn fresh_handle(&self) -> HookHandle {
        HookHandle(self.next_handle.fetch_add(1, Ordering::Relaxed))
    }

    /// Registers a forward hook on one layer.
    pub fn register_forward<F>(&self, layer: LayerId, hook: F) -> HookHandle
    where
        F: Fn(&LayerCtx<'_>, &mut Tensor) + Send + Sync + 'static,
    {
        let handle = self.fresh_handle();
        self.forward
            .write()
            .insert(Target::Layer(layer), handle, Arc::new(hook));
        self.forward_nonempty.store(true, Ordering::Release);
        handle
    }

    /// Registers a forward hook that fires on *every* leaf layer (used for
    /// model profiling).
    pub fn register_forward_all<F>(&self, hook: F) -> HookHandle
    where
        F: Fn(&LayerCtx<'_>, &mut Tensor) + Send + Sync + 'static,
    {
        let handle = self.fresh_handle();
        self.forward
            .write()
            .insert(Target::All, handle, Arc::new(hook));
        self.forward_nonempty.store(true, Ordering::Release);
        handle
    }

    /// Registers a gradient hook on one layer.
    pub fn register_grad<F>(&self, layer: LayerId, hook: F) -> HookHandle
    where
        F: Fn(&LayerCtx<'_>, &Tensor) + Send + Sync + 'static,
    {
        let handle = self.fresh_handle();
        self.grad
            .write()
            .insert(Target::Layer(layer), handle, Arc::new(hook));
        self.grad_nonempty.store(true, Ordering::Release);
        handle
    }

    /// Removes a hook by handle. Returns whether anything was removed.
    pub fn remove(&self, handle: HookHandle) -> bool {
        let mut fwd = self.forward.write();
        if fwd.remove(handle) {
            if fwd.is_empty() {
                self.forward_nonempty.store(false, Ordering::Release);
            }
            return true;
        }
        drop(fwd);
        let mut grad = self.grad.write();
        let removed = grad.remove(handle);
        if removed && grad.is_empty() {
            self.grad_nonempty.store(false, Ordering::Release);
        }
        removed
    }

    /// Removes every hook.
    pub fn clear(&self) {
        *self.forward.write() = HookTable::new();
        *self.grad.write() = HookTable::new();
        self.forward_nonempty.store(false, Ordering::Release);
        self.grad_nonempty.store(false, Ordering::Release);
    }

    /// Number of registered hooks (forward + gradient).
    pub fn len(&self) -> usize {
        self.forward.read().count() + self.grad.read().count()
    }

    /// Whether no hooks are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether any forward hook would fire on layer `id` — an all-layer hook
    /// or one registered for that id. Compiled forward plans use this to
    /// decide fusion: a conv/activation group only fuses when no member is
    /// observed, so injection and profiling hooks automatically force the
    /// unfused (hook-visible) execution order. Fast path: one atomic load
    /// when nothing is registered.
    pub fn has_forward(&self, id: LayerId) -> bool {
        if !self.forward_nonempty.load(Ordering::Acquire) {
            return false;
        }
        let table = self.forward.read();
        !table.all.is_empty() || table.by_layer.get(&id).is_some_and(|v| !v.is_empty())
    }

    /// Fires forward hooks for a layer, returning how many ran. This is the
    /// per-layer fast path: a relaxed atomic load when nothing is registered.
    pub(crate) fn dispatch_forward(&self, ctx: &LayerCtx<'_>, out: &mut Tensor) -> usize {
        if !self.forward_nonempty.load(Ordering::Acquire) {
            return 0;
        }
        // Clone the Arc list out of the lock so hooks can re-enter the
        // registry (e.g. a hook that removes itself).
        let hooks: Vec<Arc<ForwardHookFn>> = {
            let table = self.forward.read();
            table
                .all
                .iter()
                .map(|(_, h)| Arc::clone(h))
                .chain(
                    table
                        .by_layer
                        .get(&ctx.id)
                        .into_iter()
                        .flatten()
                        .map(|(_, h)| Arc::clone(h)),
                )
                .collect()
        };
        let fired = hooks.len();
        for hook in hooks {
            hook(ctx, out);
        }
        fired
    }

    /// Fires gradient hooks for a layer.
    pub(crate) fn dispatch_grad(&self, ctx: &LayerCtx<'_>, grad_out: &Tensor) {
        if !self.grad_nonempty.load(Ordering::Acquire) {
            return;
        }
        let hooks: Vec<Arc<GradHookFn>> = {
            let table = self.grad.read();
            table
                .all
                .iter()
                .map(|(_, h)| Arc::clone(h))
                .chain(
                    table
                        .by_layer
                        .get(&ctx.id)
                        .into_iter()
                        .flatten()
                        .map(|(_, h)| Arc::clone(h)),
                )
                .collect()
        };
        for hook in hooks {
            hook(ctx, grad_out);
        }
    }
}

impl Default for HookRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for HookRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HookRegistry")
            .field("forward_hooks", &self.forward.read().count())
            .field("grad_hooks", &self.grad.read().count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn ctx(id: usize) -> (LayerId, LayerKind) {
        (LayerId::from_index(id), LayerKind::Conv2d)
    }

    fn fire_forward(reg: &HookRegistry, id: usize, out: &mut Tensor) {
        let (lid, kind) = ctx(id);
        reg.dispatch_forward(
            &LayerCtx {
                id: lid,
                name: "test",
                kind,
            },
            out,
        );
    }

    #[test]
    fn forward_hook_mutates_output() {
        let reg = HookRegistry::new();
        reg.register_forward(LayerId::from_index(3), |_, out| {
            out.data_mut()[0] = 42.0;
        });
        let mut t = Tensor::zeros(&[4]);
        fire_forward(&reg, 3, &mut t);
        assert_eq!(t.data()[0], 42.0);
    }

    #[test]
    fn hook_on_other_layer_does_not_fire() {
        let reg = HookRegistry::new();
        reg.register_forward(LayerId::from_index(3), |_, out| {
            out.data_mut()[0] = 42.0;
        });
        let mut t = Tensor::zeros(&[4]);
        fire_forward(&reg, 5, &mut t);
        assert_eq!(t.data()[0], 0.0);
    }

    #[test]
    fn all_hook_fires_everywhere() {
        let reg = HookRegistry::new();
        let count = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&count);
        reg.register_forward_all(move |_, _| {
            c.fetch_add(1, Ordering::Relaxed);
        });
        let mut t = Tensor::zeros(&[1]);
        for id in 0..7 {
            fire_forward(&reg, id, &mut t);
        }
        assert_eq!(count.load(Ordering::Relaxed), 7);
    }

    #[test]
    fn hooks_fire_in_registration_order() {
        let reg = HookRegistry::new();
        let id = LayerId::from_index(0);
        reg.register_forward(id, |_, out| out.data_mut()[0] += 1.0);
        reg.register_forward(id, |_, out| out.data_mut()[0] *= 10.0);
        let mut t = Tensor::zeros(&[1]);
        fire_forward(&reg, 0, &mut t);
        // (0 + 1) * 10, not 0 * 10 + 1.
        assert_eq!(t.data()[0], 10.0);
    }

    #[test]
    fn remove_unregisters() {
        let reg = HookRegistry::new();
        let h = reg.register_forward(LayerId::from_index(0), |_, out| out.data_mut()[0] = 1.0);
        assert_eq!(reg.len(), 1);
        assert!(reg.remove(h));
        assert!(reg.is_empty());
        assert!(!reg.remove(h), "double remove returns false");
        let mut t = Tensor::zeros(&[1]);
        fire_forward(&reg, 0, &mut t);
        assert_eq!(t.data()[0], 0.0);
    }

    #[test]
    fn clear_removes_everything() {
        let reg = HookRegistry::new();
        reg.register_forward(LayerId::from_index(0), |_, _| {});
        reg.register_forward_all(|_, _| {});
        reg.register_grad(LayerId::from_index(1), |_, _| {});
        assert_eq!(reg.len(), 3);
        reg.clear();
        assert!(reg.is_empty());
    }

    #[test]
    fn grad_hooks_observe_gradient() {
        let reg = HookRegistry::new();
        let seen = Arc::new(AtomicUsize::new(0));
        let s = Arc::clone(&seen);
        reg.register_grad(LayerId::from_index(2), move |ctx, g| {
            assert_eq!(ctx.id.index(), 2);
            s.fetch_add(g.len(), Ordering::Relaxed);
        });
        let (lid, kind) = ctx(2);
        reg.dispatch_grad(
            &LayerCtx {
                id: lid,
                name: "g",
                kind,
            },
            &Tensor::zeros(&[6]),
        );
        assert_eq!(seen.load(Ordering::Relaxed), 6);
    }

    #[test]
    fn hook_may_remove_itself_while_firing() {
        // Re-entrancy: the dispatch path must not hold the lock across calls.
        let reg = Arc::new(HookRegistry::new());
        let reg2 = Arc::clone(&reg);
        let handle_cell = Arc::new(RwLock::new(None::<HookHandle>));
        let hc = Arc::clone(&handle_cell);
        let h = reg.register_forward(LayerId::from_index(0), move |_, out| {
            out.data_mut()[0] += 1.0;
            if let Some(h) = *hc.read() {
                reg2.remove(h);
            }
        });
        *handle_cell.write() = Some(h);
        let mut t = Tensor::zeros(&[1]);
        fire_forward(&reg, 0, &mut t);
        fire_forward(&reg, 0, &mut t);
        assert_eq!(t.data()[0], 1.0, "hook removed itself after first fire");
    }

    #[test]
    fn has_forward_tracks_layer_and_all_hooks() {
        let reg = HookRegistry::new();
        let id = LayerId::from_index(3);
        let other = LayerId::from_index(4);
        assert!(!reg.has_forward(id), "empty registry");
        let h = reg.register_forward(id, |_, _| {});
        assert!(reg.has_forward(id));
        assert!(!reg.has_forward(other), "per-layer hook is scoped");
        reg.remove(h);
        assert!(!reg.has_forward(id), "removal restores the fast path");
        let h = reg.register_forward_all(|_, _| {});
        assert!(reg.has_forward(id) && reg.has_forward(other), "all-hook");
        reg.remove(h);
        // A grad hook never affects the forward check.
        reg.register_grad(id, |_, _| {});
        assert!(!reg.has_forward(id));
    }

    #[test]
    fn empty_registry_fast_path_leaves_tensor_untouched() {
        let reg = HookRegistry::new();
        let mut t = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        fire_forward(&reg, 0, &mut t);
        assert_eq!(t.data(), &[1.0, 2.0]);
    }
}
