//! The [`Module`] trait, layer identity, and the [`Network`] wrapper.

use crate::hook::{HookRegistry, LayerCtx};
use crate::quantized::Backend;
use rustfi_obs::{Recorder, SpanCtx};
use rustfi_tensor::{Act, BnFoldView, QTensor, SeededRng, Tensor};
use std::fmt;
use std::sync::Arc;

/// Stable identifier of a layer within a [`Network`].
///
/// Ids are assigned in deterministic pre-order when the network is built, so
/// the same architecture always yields the same ids — which is what lets a
/// fault-injection campaign describe sites as `(layer, channel, y, x)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LayerId(u32);

impl LayerId {
    /// Creates a layer id from a raw index.
    pub fn from_index(index: usize) -> Self {
        Self(index as u32)
    }

    /// The raw index of this id.
    pub fn index(&self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for LayerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// What kind of computation a layer performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayerKind {
    Conv2d,
    Linear,
    Relu,
    MaxPool2d,
    AvgPool2d,
    GlobalAvgPool,
    BatchNorm2d,
    Flatten,
    Dropout,
    Sequential,
    Residual,
    Branches,
    ChannelShuffle,
}

impl LayerKind {
    /// Whether the layer computes neurons that fault-injection targets
    /// (convolution and fully-connected outputs, as in the paper).
    pub fn is_injectable(&self) -> bool {
        matches!(self, LayerKind::Conv2d | LayerKind::Linear)
    }

    /// Lower-case short name used when auto-naming layers.
    pub fn short_name(&self) -> &'static str {
        match self {
            LayerKind::Conv2d => "conv",
            LayerKind::Linear => "fc",
            LayerKind::Relu => "relu",
            LayerKind::MaxPool2d => "maxpool",
            LayerKind::AvgPool2d => "avgpool",
            LayerKind::GlobalAvgPool => "gap",
            LayerKind::BatchNorm2d => "bn",
            LayerKind::Flatten => "flatten",
            LayerKind::Dropout => "dropout",
            LayerKind::Sequential => "seq",
            LayerKind::Residual => "residual",
            LayerKind::Branches => "branches",
            LayerKind::ChannelShuffle => "shuffle",
        }
    }
}

impl fmt::Display for LayerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.short_name())
    }
}

/// Identity data every module carries: its id and human-readable name.
#[derive(Debug, Clone, Default)]
pub struct LayerMeta {
    /// Assigned by [`Network::new`]; default placeholder until then.
    pub id: LayerId,
    /// Auto-generated (`conv3`, `fc17`, …) unless set explicitly.
    pub name: String,
}

/// A mutable view of one parameter tensor and its gradient accumulator.
#[derive(Debug)]
pub struct Param<'a> {
    /// The parameter values.
    pub value: &'a mut Tensor,
    /// The accumulated gradient (same shape as `value`).
    pub grad: &'a mut Tensor,
}

/// Activation tap installed via [`Network::forward_with_capture`]: receives
/// every module's id and *input* tensor just before the module runs.
pub type CaptureFn<'a> = &'a mut dyn FnMut(LayerId, &Tensor);

/// How a layer can be absorbed into the preceding conv/linear layer's fused
/// GEMM epilogue when a compiled forward plan is active.
///
/// Layers advertise themselves via [`Module::fuse_partner`]; [`Sequential`]
/// scans its children for `conv → [BatchNorm] → [activation]` (or
/// `linear → [activation]`) runs and folds the partners into the leader's
/// write-back loop. The epilogue replicates the partner kernels' per-element
/// operations exactly, so fused and unfused passes are bit-identical.
///
/// [`Sequential`]: crate::layer::container::Sequential
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FusePartner {
    /// `y = max(x, 0)` applied in the GEMM write-back.
    Relu,
    /// Leaky ReLU with the given negative-side slope.
    LeakyRelu(f32),
    /// Inference-mode batch norm folded to a per-channel scale/shift.
    BatchNorm,
}

/// Per-forward-pass context threaded through the module tree.
pub struct ForwardCtx<'a> {
    /// Whether the pass is a training pass (enables dropout, batch-stats BN).
    pub training: bool,
    hooks: &'a HookRegistry,
    rng: &'a mut SeededRng,
    /// Observability sink; `None` keeps the forward path entirely
    /// uninstrumented (one branch per child dispatch).
    recorder: Option<&'a dyn Recorder>,
    /// Activation tap: called with every module's id and *input* tensor just
    /// before the module runs. `None` (the default) keeps the dispatch path
    /// free of the extra call.
    capture: Option<CaptureFn<'a>>,
    /// Arithmetic backend for layers that have a quantized kernel.
    backend: &'a Backend,
    /// Whether the pass runs under a compiled forward plan (prepacked weight
    /// panels + fused GEMM epilogues). See [`Network::set_plan`].
    plan: bool,
}

impl<'a> ForwardCtx<'a> {
    pub(crate) fn new(
        training: bool,
        hooks: &'a HookRegistry,
        rng: &'a mut SeededRng,
        recorder: Option<&'a dyn Recorder>,
        backend: &'a Backend,
        plan: bool,
    ) -> Self {
        Self {
            training,
            hooks,
            rng,
            recorder,
            capture: None,
            backend,
            plan,
        }
    }

    /// Whether layers should take their planned (prepacked, fused-epilogue)
    /// forward paths. Plans are inference-only: training passes need cached
    /// activations and batch statistics, so they always run unplanned.
    pub fn plan_active(&self) -> bool {
        self.plan && !self.training
    }

    /// Whether any forward hook would fire on layer `id` (see
    /// [`HookRegistry::has_forward`]). Containers consult this before fusing
    /// a group: a hooked member forces the unfused execution order so the
    /// hook observes exactly the tensor it would in an unplanned pass.
    pub fn layer_has_hooks(&self, id: LayerId) -> bool {
        self.hooks.has_forward(id)
    }

    /// RNG stream for stochastic layers (dropout).
    pub fn rng(&mut self) -> &mut SeededRng {
        self.rng
    }

    /// The calibrated INT8 input scale for layer `id`, or `None` when the
    /// pass runs in f32 (default backend, or layer not calibrated). Layers
    /// with a quantized kernel branch on this per forward.
    pub fn input_scale(&self, id: LayerId) -> Option<f32> {
        self.backend.input_scale(id)
    }

    /// Forwards through `child`, wrapping the call in a per-layer span when a
    /// recorder is installed. Containers route every child through this so
    /// the trace shows the module tree as nested spans.
    pub fn forward_child(&mut self, child: &mut dyn Module, input: &Tensor) -> Tensor {
        if let Some(cap) = self.capture.as_mut() {
            cap(child.meta().id, input);
        }
        match self.recorder {
            None => child.forward(input, self),
            Some(rec) => {
                let token = rec.layer_enter();
                let out = child.forward(input, self);
                let meta = child.meta();
                rec.layer_exit(
                    &SpanCtx {
                        name: &meta.name,
                        kind: child.kind().short_name(),
                        layer: Some(meta.id.index()),
                    },
                    token,
                );
                out
            }
        }
    }

    /// Fused-group analogue of [`ForwardCtx::forward_child`]: runs `child`
    /// (a conv/linear group leader) with the partner batch-norm fold and
    /// activation applied inside its GEMM write-back, firing the capture tap
    /// and recorder span exactly as a normal child dispatch would. Returns
    /// `None` when the child has no fused forward (default [`Module`]
    /// implementation); the caller then falls back to normal dispatch and
    /// runs the partners individually.
    pub fn forward_child_fused(
        &mut self,
        child: &mut dyn Module,
        input: &Tensor,
        bn: Option<BnFoldView<'_>>,
        act: Act,
    ) -> Option<Tensor> {
        if let Some(cap) = self.capture.as_mut() {
            cap(child.meta().id, input);
        }
        match self.recorder {
            None => child.forward_fused(input, self, bn, act),
            Some(rec) => {
                let token = rec.layer_enter();
                let out = child.forward_fused(input, self, bn, act);
                let meta = child.meta();
                rec.layer_exit(
                    &SpanCtx {
                        name: &meta.name,
                        kind: child.kind().short_name(),
                        layer: Some(meta.id.index()),
                    },
                    token,
                );
                out
            }
        }
    }

    /// Partial-forward analogue of [`ForwardCtx::forward_child`]: resumes
    /// `child` at `target` (see [`Module::forward_from`]), wrapping the call
    /// in a span when a recorder is installed.
    pub fn forward_child_from(
        &mut self,
        child: &mut dyn Module,
        target: LayerId,
        input: &Tensor,
    ) -> Option<Tensor> {
        match self.recorder {
            None => child.forward_from(target, input, self),
            Some(rec) => {
                let token = rec.layer_enter();
                let out = child.forward_from(target, input, self);
                let meta = child.meta();
                rec.layer_exit(
                    &SpanCtx {
                        name: &meta.name,
                        kind: child.kind().short_name(),
                        layer: Some(meta.id.index()),
                    },
                    token,
                );
                out
            }
        }
    }

    /// Runs all forward hooks registered for `meta`'s layer, letting them
    /// mutate `out` in place. Leaf layers call this once per forward.
    pub fn run_forward_hooks(&mut self, meta: &LayerMeta, kind: LayerKind, out: &mut Tensor) {
        let fired = self.hooks.dispatch_forward(
            &LayerCtx {
                id: meta.id,
                name: &meta.name,
                kind,
            },
            out,
        );
        if fired > 0 {
            if let Some(rec) = self.recorder {
                rec.counter_add("nn.hook_dispatches", fired as u64);
            }
        }
    }
}

/// Per-backward-pass context threaded through the module tree.
pub struct BackwardCtx<'a> {
    hooks: &'a HookRegistry,
}

impl<'a> BackwardCtx<'a> {
    pub(crate) fn new(hooks: &'a HookRegistry) -> Self {
        Self { hooks }
    }

    /// Runs all gradient hooks registered for `meta`'s layer with the
    /// gradient flowing *into* the layer's output.
    pub fn run_grad_hooks(&mut self, meta: &LayerMeta, kind: LayerKind, grad_out: &Tensor) {
        self.hooks.dispatch_grad(
            &LayerCtx {
                id: meta.id,
                name: &meta.name,
                kind,
            },
            grad_out,
        );
    }
}

/// A differentiable computation node.
///
/// Implementations cache whatever they need during `forward` so that a
/// subsequent `backward` (with the gradient w.r.t. their output) can return
/// the gradient w.r.t. their input and accumulate parameter gradients.
pub trait Module: Send {
    /// The layer's kind.
    fn kind(&self) -> LayerKind;
    /// Identity data (id, name).
    fn meta(&self) -> &LayerMeta;
    /// Mutable identity data; used by [`Network::new`] to assign ids.
    fn meta_mut(&mut self) -> &mut LayerMeta;

    /// Computes the layer's output. Leaf layers must run forward hooks on
    /// their output before returning.
    fn forward(&mut self, input: &Tensor, ctx: &mut ForwardCtx<'_>) -> Tensor;

    /// Propagates the gradient, accumulating into parameter gradients.
    ///
    /// # Panics
    ///
    /// Implementations may panic if called without a preceding `forward`.
    fn backward(&mut self, grad_out: &Tensor, ctx: &mut BackwardCtx<'_>) -> Tensor;

    /// Whether this subtree (the module itself or any descendant) carries
    /// the given id.
    fn contains(&self, id: LayerId) -> bool {
        let mut found = false;
        self.visit(&mut |m| found |= m.meta().id == id);
        found
    }

    /// The module whose *input* must be cached so a later forward pass can
    /// be resumed just before `target` executes.
    ///
    /// Resumption is only sound on a chain of [`Sequential`] containers: a
    /// `Sequential` can skip the children before the one holding `target`,
    /// but any other topology (residual/branch blocks, leaves) needs its
    /// whole input, so the descent stops there. The default — correct for
    /// every leaf and non-sequential container — is therefore the module
    /// itself when it contains `target`, and `None` otherwise.
    /// [`Sequential`] overrides this to descend into the child holding
    /// `target`.
    ///
    /// [`Sequential`]: crate::layer::container::Sequential
    fn resume_point(&self, target: LayerId) -> Option<LayerId> {
        self.contains(target).then(|| self.meta().id)
    }

    /// Runs the tail of a forward pass: skips every part of this subtree
    /// that executes strictly before [`Module::resume_point`]`(target)`, and
    /// feeds `input` — which must be the activation that module originally
    /// received — to the rest. Returns `None` when `target` is not in this
    /// subtree.
    ///
    /// With a fault-free prefix this is exact: every skipped layer would
    /// have recomputed precisely the cached activation (f32 inference is
    /// deterministic). Skipped layers do not run their forward hooks and do
    /// not draw from the dropout RNG stream, so callers must only resume
    /// inference-mode passes whose prefix is unperturbed.
    fn forward_from(
        &mut self,
        target: LayerId,
        input: &Tensor,
        ctx: &mut ForwardCtx<'_>,
    ) -> Option<Tensor> {
        if self.contains(target) {
            Some(self.forward(input, ctx))
        } else {
            None
        }
    }

    /// Runs the layers that execute strictly *after* `target`, feeding them
    /// `input` — which must be `target`'s output with its forward hooks
    /// already applied. Returns `None` when `target` is not in this subtree
    /// or its successors cannot be run in isolation (anywhere inside a
    /// residual or branch block, whose sibling paths consumed the block's
    /// input).
    ///
    /// The default — correct for every leaf and for resuming after an
    /// entire container — is the identity when `target` is this module
    /// itself. [`Sequential`] overrides this to descend into the child
    /// holding `target` and then run the remaining children.
    ///
    /// [`Sequential`]: crate::layer::container::Sequential
    fn forward_after(
        &mut self,
        target: LayerId,
        input: &Tensor,
        _ctx: &mut ForwardCtx<'_>,
    ) -> Option<Tensor> {
        (self.meta().id == target).then(|| input.pooled_copy())
    }

    /// Propagates an input shape through this subtree without running it,
    /// returning the output shape or a typed [`ShapeError`] naming the first
    /// layer that cannot accept its input.
    ///
    /// The default — the identity — is correct for every element-wise layer
    /// (activations, dropout). Layers with geometry (conv, linear, pooling,
    /// norm) and all containers override it; in particular [`Residual`] and
    /// [`Branches`] report path-shape disagreements here as typed errors
    /// instead of panicking mid-forward, which is what lets the architecture
    /// fuzzer reject invalid random compositions at build time.
    ///
    /// [`ShapeError`]: crate::shape::ShapeError
    /// [`Residual`]: crate::layer::container::Residual
    /// [`Branches`]: crate::layer::container::Branches
    fn infer_dims(&self, input: &[usize]) -> Result<Vec<usize>, crate::shape::ShapeError> {
        Ok(input.to_vec())
    }

    /// Pre-order traversal over this module and all descendants.
    fn visit(&self, f: &mut dyn FnMut(&dyn Module));
    /// Mutable pre-order traversal.
    fn visit_mut(&mut self, f: &mut dyn FnMut(&mut dyn Module));
    /// Finds the module with the given id in this subtree.
    fn find_mut(&mut self, id: LayerId) -> Option<&mut dyn Module>;

    /// Calls `f` for each `(value, grad)` parameter pair, in a deterministic
    /// order. Leaves with no parameters do nothing.
    fn for_each_param(&mut self, _f: &mut dyn FnMut(Param<'_>)) {}

    /// Calls `f` for each persistent tensor (parameters *plus* buffers such
    /// as batch-norm running statistics), in a deterministic order. Used by
    /// checkpointing.
    fn for_each_state(&mut self, _f: &mut dyn FnMut(&mut Tensor)) {}

    /// The layer's weight tensor, if it has one (conv/linear/batch-norm).
    fn weight_mut(&mut self) -> Option<&mut Tensor> {
        None
    }

    /// The layer's bias tensor, if it has one.
    fn bias_mut(&mut self) -> Option<&mut Tensor> {
        None
    }

    /// The layer's cached per-channel quantized weights, if the layer has a
    /// quantized kernel. Builds the cache on first access; stored-INT8
    /// weight-fault campaigns flip bits directly in the returned words.
    /// Mutating the f32 weights (via [`Module::weight_mut`] or the parameter
    /// visitors) drops the cache, so flips do not survive a retrain.
    fn qweight_mut(&mut self) -> Option<&mut QTensor> {
        None
    }

    /// How this layer folds into the preceding conv/linear layer's fused
    /// GEMM epilogue under a compiled forward plan, or `None` (the default)
    /// when it cannot be absorbed.
    fn fuse_partner(&self) -> Option<FusePartner> {
        None
    }

    /// The inference-mode batch-norm fold (running mean, `1/sqrt(var+eps)`,
    /// gamma, beta) for layers that advertise
    /// [`FusePartner::BatchNorm`]. The default — for every other layer — is
    /// `None`.
    fn bn_fold(&mut self) -> Option<BnFoldView<'_>> {
        None
    }

    /// Planned fused forward: computes this layer with the partner batch
    /// norm and activation applied inside the GEMM write-back loop, using
    /// prepacked weight panels. Only called by containers under an active
    /// plan after verifying that no group member has forward hooks; the
    /// fused path therefore skips hook dispatch. Returns `None` (the
    /// default) when the layer has no fused implementation, in which case
    /// the caller falls back to unfused dispatch.
    fn forward_fused(
        &mut self,
        _input: &Tensor,
        _ctx: &mut ForwardCtx<'_>,
        _bn: Option<BnFoldView<'_>>,
        _act: Act,
    ) -> Option<Tensor> {
        None
    }
}

/// Shorthand implementations of the identity/traversal methods for layers
/// without children.
macro_rules! leaf_boilerplate {
    () => {
        fn meta(&self) -> &$crate::module::LayerMeta {
            &self.meta
        }
        fn meta_mut(&mut self) -> &mut $crate::module::LayerMeta {
            &mut self.meta
        }
        fn visit(&self, f: &mut dyn FnMut(&dyn $crate::module::Module)) {
            f(self)
        }
        fn visit_mut(&mut self, f: &mut dyn FnMut(&mut dyn $crate::module::Module)) {
            f(self)
        }
        fn find_mut(
            &mut self,
            id: $crate::module::LayerId,
        ) -> Option<&mut dyn $crate::module::Module> {
            if self.meta.id == id {
                Some(self)
            } else {
                None
            }
        }
    };
}
pub(crate) use leaf_boilerplate;

/// Summary of one layer of a built network.
#[derive(Debug, Clone)]
pub struct LayerInfo {
    /// Stable id.
    pub id: LayerId,
    /// Human-readable name.
    pub name: String,
    /// Layer kind.
    pub kind: LayerKind,
    /// Weight shape, if the layer has weights.
    pub weight_dims: Option<Vec<usize>>,
}

/// A module tree plus the shared hook registry — the unit the fault injector
/// wraps.
///
/// Building a `Network` assigns every module a [`LayerId`] in deterministic
/// pre-order and auto-names unnamed layers.
pub struct Network {
    root: Box<dyn Module>,
    hooks: Arc<HookRegistry>,
    layer_infos: Vec<LayerInfo>,
    rng: SeededRng,
    training: bool,
    recorder: Option<Arc<dyn Recorder>>,
    backend: Backend,
    plan: bool,
}

impl Network {
    /// Wraps a module tree, assigning ids and names.
    pub fn new(root: Box<dyn Module>) -> Self {
        let mut root = root;
        let mut counter = 0u32;
        root.visit_mut(&mut |m| {
            let kind = m.kind();
            let meta = m.meta_mut();
            meta.id = LayerId(counter);
            if meta.name.is_empty() {
                meta.name = format!("{}{}", kind.short_name(), counter);
            }
            counter += 1;
        });
        let mut layer_infos = Vec::with_capacity(counter as usize);
        root.visit_mut(&mut |m| {
            let id = m.meta().id;
            let name = m.meta().name.clone();
            let kind = m.kind();
            let weight_dims = m.weight_mut().map(|w| w.dims().to_vec());
            layer_infos.push(LayerInfo {
                id,
                name,
                kind,
                weight_dims,
            });
        });
        Self {
            root,
            hooks: Arc::new(HookRegistry::new()),
            layer_infos,
            rng: SeededRng::new(0xD0_07),
            training: false,
            recorder: None,
            backend: Backend::Fp32,
            plan: false,
        }
    }

    /// Enables (or disables) the compiled forward plan: per-layer weight
    /// panels are prepacked for the register-tiled GEMM kernels, and
    /// `conv → [bn] → [activation]` runs in [`Sequential`] containers fuse
    /// into a single GEMM with the partner ops applied in its write-back
    /// loop.
    ///
    /// Planned passes are **bit-identical** to unplanned ones (panels keep
    /// the kernels' k-accumulation order; epilogues replicate the partner
    /// kernels' per-element ops) and **inference-only**: training passes
    /// always run unplanned, and a planned forward does not cache the
    /// activations `backward` needs. Groups with forward hooks on any member
    /// automatically fall back to the unfused order, so injection hooks
    /// observe exactly the tensors they would without a plan.
    ///
    /// [`Sequential`]: crate::layer::container::Sequential
    pub fn set_plan(&mut self, plan: bool) {
        self.plan = plan;
    }

    /// Whether the compiled forward plan is enabled.
    pub fn plan(&self) -> bool {
        self.plan
    }

    /// Selects the arithmetic backend for layers with quantized kernels
    /// (conv/linear). [`Backend::Fp32`] is the default; see
    /// [`crate::quantized`] for the INT8 path.
    pub fn set_backend(&mut self, backend: Backend) {
        self.backend = backend;
    }

    /// The currently installed arithmetic backend.
    pub fn backend(&self) -> &Backend {
        &self.backend
    }

    /// Installs (or removes, with `None`) the observability recorder.
    ///
    /// With a recorder installed, every forward pass emits one span per
    /// module and counts hook dispatches; with `None` (the default) the
    /// forward path stays uninstrumented apart from one branch per child.
    pub fn set_recorder(&mut self, recorder: Option<Arc<dyn Recorder>>) {
        self.recorder = recorder;
    }

    /// The currently installed observability recorder, if any.
    pub fn recorder(&self) -> Option<Arc<dyn Recorder>> {
        self.recorder.clone()
    }

    /// The shared hook registry.
    pub fn hooks(&self) -> &Arc<HookRegistry> {
        &self.hooks
    }

    /// Per-layer summaries in id order.
    pub fn layer_infos(&self) -> &[LayerInfo] {
        &self.layer_infos
    }

    /// Ids of layers whose outputs are injectable neurons (conv + linear).
    pub fn injectable_layers(&self) -> Vec<LayerId> {
        self.layer_infos
            .iter()
            .filter(|l| l.kind.is_injectable())
            .map(|l| l.id)
            .collect()
    }

    /// Number of modules (containers included).
    pub fn module_count(&self) -> usize {
        self.layer_infos.len()
    }

    /// Switches between training mode (dropout active, BN batch statistics)
    /// and inference mode.
    pub fn set_training(&mut self, training: bool) {
        self.training = training;
    }

    /// Whether the network is in training mode.
    pub fn is_training(&self) -> bool {
        self.training
    }

    /// Reseeds the stream used by stochastic layers (dropout).
    pub fn reseed(&mut self, seed: u64) {
        self.rng = SeededRng::new(seed);
    }

    /// Runs a forward pass, dispatching forward hooks at every leaf layer.
    pub fn forward(&mut self, input: &Tensor) -> Tensor {
        let mut ctx = ForwardCtx::new(
            self.training,
            &self.hooks,
            &mut self.rng,
            self.recorder.as_deref(),
            &self.backend,
            self.plan,
        );
        ctx.forward_child(self.root.as_mut(), input)
    }

    /// Runs a forward pass like [`Network::forward`], additionally calling
    /// `capture` with every module's id and input activation just before
    /// that module executes. The tensors handed to `capture` are the live
    /// intermediates — clone what you keep.
    ///
    /// This is how a campaign snapshots golden prefix activations: capture
    /// at the [`Network::resume_point`] of each injection layer, then replay
    /// trials with [`Network::forward_from`].
    pub fn forward_with_capture(
        &mut self,
        input: &Tensor,
        capture: &mut dyn FnMut(LayerId, &Tensor),
    ) -> Tensor {
        let mut ctx = ForwardCtx::new(
            self.training,
            &self.hooks,
            &mut self.rng,
            self.recorder.as_deref(),
            &self.backend,
            self.plan,
        );
        ctx.capture = Some(capture);
        ctx.forward_child(self.root.as_mut(), input)
    }

    /// Resumes a forward pass at the resume point of `target`, feeding it
    /// `input` — the activation that module received in a full pass (see
    /// [`Network::forward_with_capture`]). Returns `None` if `target` is not
    /// a layer of this network.
    ///
    /// Exact only when the skipped prefix is fault-free and the pass is
    /// inference-mode (skipped layers neither run hooks nor draw RNG).
    pub fn forward_from(&mut self, target: LayerId, input: &Tensor) -> Option<Tensor> {
        let mut ctx = ForwardCtx::new(
            self.training,
            &self.hooks,
            &mut self.rng,
            self.recorder.as_deref(),
            &self.backend,
            self.plan,
        );
        ctx.forward_child_from(self.root.as_mut(), target, input)
    }

    /// The module whose input must be cached to later resume a forward pass
    /// just before `target` (see [`Module::resume_point`]).
    pub fn resume_point(&self, target: LayerId) -> Option<LayerId> {
        self.root.resume_point(target)
    }

    /// Runs only the module `id` on `input` with hook dispatch suppressed,
    /// returning its raw (pre-hook) output. Returns `None` if `id` is not a
    /// layer of this network.
    ///
    /// Together with [`Network::dispatch_forward_hooks`] and
    /// [`Network::forward_after`] this decomposes a resumed pass around one
    /// layer: compute the layer, run its hooks on a (possibly transformed)
    /// output, continue downstream. Fused campaigns use the decomposition to
    /// compute an injection layer once at batch 1 and broadcast its output
    /// before the per-slice fault hooks fire.
    pub fn forward_layer_raw(&mut self, id: LayerId, input: &Tensor) -> Option<Tensor> {
        let empty = HookRegistry::new();
        let mut ctx = ForwardCtx::new(
            self.training,
            &empty,
            &mut self.rng,
            self.recorder.as_deref(),
            &self.backend,
            self.plan,
        );
        let layer = self.root.find_mut(id)?;
        Some(ctx.forward_child(layer, input))
    }

    /// Dispatches layer `id`'s forward hooks on `out`, exactly as a forward
    /// pass does after computing that layer (all-layer hooks first, then the
    /// layer's own, in registration order). Returns `false` if `id` is not a
    /// layer of this network.
    pub fn dispatch_forward_hooks(&mut self, id: LayerId, out: &mut Tensor) -> bool {
        let Some(info) = self.layer_infos.iter().find(|l| l.id == id) else {
            return false;
        };
        let fired = self.hooks.dispatch_forward(
            &LayerCtx {
                id,
                name: &info.name,
                kind: info.kind,
            },
            out,
        );
        if fired > 0 {
            if let Some(rec) = &self.recorder {
                rec.counter_add("nn.hook_dispatches", fired as u64);
            }
        }
        true
    }

    /// Resumes a forward pass immediately *after* layer `target`, feeding
    /// the downstream layers `input` — `target`'s output with hooks already
    /// applied (see [`Module::forward_after`]). Returns `None` when the
    /// layers after `target` cannot be run in isolation.
    pub fn forward_after(&mut self, target: LayerId, input: &Tensor) -> Option<Tensor> {
        let mut ctx = ForwardCtx::new(
            self.training,
            &self.hooks,
            &mut self.rng,
            self.recorder.as_deref(),
            &self.backend,
            self.plan,
        );
        self.root.forward_after(target, input, &mut ctx)
    }

    /// Runs a backward pass from the gradient of the loss w.r.t. the output
    /// of the last forward pass; returns the gradient w.r.t. the input.
    ///
    /// Parameter gradients accumulate; call [`Network::zero_grad`] between
    /// optimization steps.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut ctx = BackwardCtx::new(&self.hooks);
        self.root.backward(grad_out, &mut ctx)
    }

    /// Zeroes all accumulated parameter gradients.
    pub fn zero_grad(&mut self) {
        self.root.for_each_param(&mut |p| {
            for g in p.grad.data_mut() {
                *g = 0.0;
            }
        });
    }

    /// Visits every `(value, grad)` parameter pair in deterministic order.
    pub fn for_each_param(&mut self, f: &mut dyn FnMut(Param<'_>)) {
        self.root.for_each_param(f);
    }

    /// Visits every persistent tensor (parameters + buffers).
    pub fn for_each_state(&mut self, f: &mut dyn FnMut(&mut Tensor)) {
        self.root.for_each_state(f);
    }

    /// Total number of scalar parameters.
    pub fn param_count(&mut self) -> usize {
        let mut n = 0;
        self.root.for_each_param(&mut |p| n += p.value.len());
        n
    }

    /// Mutable access to a layer's weight tensor by id.
    pub fn layer_weight_mut(&mut self, id: LayerId) -> Option<&mut Tensor> {
        self.root.find_mut(id).and_then(|m| m.weight_mut())
    }

    /// Mutable access to a layer's bias tensor by id.
    pub fn layer_bias_mut(&mut self, id: LayerId) -> Option<&mut Tensor> {
        self.root.find_mut(id).and_then(|m| m.bias_mut())
    }

    /// Mutable access to a layer's cached quantized weights by id, building
    /// the cache if needed (see [`Module::qweight_mut`]). `None` for layers
    /// without a quantized kernel.
    pub fn layer_qweight_mut(&mut self, id: LayerId) -> Option<&mut QTensor> {
        self.root.find_mut(id).and_then(|m| m.qweight_mut())
    }

    /// Propagates an input shape through the module tree without running it
    /// (see [`Module::infer_dims`]). A forward pass on a tensor of shape
    /// `input` returns exactly the inferred shape when this succeeds; when
    /// it fails, the typed error names the first layer whose geometry
    /// rejects its input.
    pub fn infer_dims(&self, input: &[usize]) -> Result<Vec<usize>, crate::shape::ShapeError> {
        self.root.infer_dims(input)
    }

    /// Immutable visit over the module tree.
    pub fn visit(&self, f: &mut dyn FnMut(&dyn Module)) {
        self.root.visit(f);
    }
}

impl fmt::Debug for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Network ({} modules):", self.layer_infos.len())?;
        for info in &self.layer_infos {
            write!(f, "  {} {} [{}]", info.id, info.name, info.kind)?;
            if let Some(w) = &info.weight_dims {
                write!(f, " weights {w:?}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::container::Sequential;
    use crate::layer::{Conv2d, Relu};

    fn tiny_net() -> Network {
        let mut rng = SeededRng::new(1);
        Network::new(Box::new(Sequential::new(vec![
            Box::new(Conv2d::new(
                3,
                4,
                3,
                rustfi_tensor::ConvSpec::new().padding(1),
                &mut rng,
            )),
            Box::new(Relu::new()),
            Box::new(Conv2d::new(
                4,
                2,
                3,
                rustfi_tensor::ConvSpec::new().padding(1),
                &mut rng,
            )),
        ])))
    }

    #[test]
    fn ids_are_assigned_in_preorder() {
        let net = tiny_net();
        let infos = net.layer_infos();
        // Pre-order: Sequential, conv, relu, conv.
        assert_eq!(infos.len(), 4);
        assert_eq!(infos[0].kind, LayerKind::Sequential);
        assert_eq!(infos[1].kind, LayerKind::Conv2d);
        assert_eq!(infos[2].kind, LayerKind::Relu);
        assert_eq!(infos[3].kind, LayerKind::Conv2d);
        for (i, info) in infos.iter().enumerate() {
            assert_eq!(info.id.index(), i);
        }
    }

    #[test]
    fn names_are_auto_generated() {
        let net = tiny_net();
        assert_eq!(net.layer_infos()[1].name, "conv1");
        assert_eq!(net.layer_infos()[2].name, "relu2");
    }

    #[test]
    fn injectable_layers_are_convs() {
        let net = tiny_net();
        let inj = net.injectable_layers();
        assert_eq!(inj.len(), 2);
        assert_eq!(inj[0].index(), 1);
        assert_eq!(inj[1].index(), 3);
    }

    #[test]
    fn identical_construction_gives_identical_ids_and_params() {
        let mut a = tiny_net();
        let mut b = tiny_net();
        assert_eq!(a.param_count(), b.param_count());
        let x = Tensor::ones(&[1, 3, 6, 6]);
        assert_eq!(a.forward(&x), b.forward(&x));
    }

    #[test]
    fn layer_weight_mut_finds_conv() {
        let mut net = tiny_net();
        let conv_id = net.injectable_layers()[0];
        let w = net.layer_weight_mut(conv_id).expect("conv has weights");
        assert_eq!(w.dims(), &[4, 3, 3, 3]);
        // Relu has no weights.
        let relu_id = net.layer_infos()[2].id;
        assert!(net.layer_weight_mut(relu_id).is_none());
    }

    #[test]
    fn weight_mutation_changes_output() {
        let mut net = tiny_net();
        let x = Tensor::ones(&[1, 3, 6, 6]);
        let before = net.forward(&x);
        let conv_id = net.injectable_layers()[0];
        net.layer_weight_mut(conv_id).unwrap().data_mut()[0] += 10.0;
        let after = net.forward(&x);
        assert_ne!(before, after);
    }

    #[test]
    fn param_count_matches_architecture() {
        let mut net = tiny_net();
        // conv1: 4*3*3*3 + 4 = 112; conv3: 2*4*3*3 + 2 = 74.
        assert_eq!(net.param_count(), 112 + 74);
    }

    #[test]
    fn zero_grad_clears_accumulated_gradients() {
        let mut net = tiny_net();
        let x = Tensor::ones(&[1, 3, 6, 6]);
        let y = net.forward(&x);
        net.backward(&Tensor::ones(y.dims()));
        let mut nonzero = 0;
        net.for_each_param(&mut |p| nonzero += p.grad.data().iter().filter(|&&g| g != 0.0).count());
        assert!(nonzero > 0, "backward should have produced gradients");
        net.zero_grad();
        let mut remaining = 0;
        net.for_each_param(&mut |p| {
            remaining += p.grad.data().iter().filter(|&&g| g != 0.0).count()
        });
        assert_eq!(remaining, 0);
    }

    #[test]
    fn debug_lists_layers() {
        let net = tiny_net();
        let s = format!("{net:?}");
        assert!(s.contains("conv1"));
        assert!(s.contains("weights [4, 3, 3, 3]"));
    }

    #[test]
    fn layer_id_display() {
        assert_eq!(LayerId::from_index(7).to_string(), "L7");
    }

    #[test]
    fn recorder_captures_layer_spans_without_changing_output() {
        let mut net = tiny_net();
        let x = Tensor::ones(&[1, 3, 6, 6]);
        let plain = net.forward(&x);

        let rec = Arc::new(rustfi_obs::TraceRecorder::new());
        net.set_recorder(Some(rec.clone()));
        assert!(net.recorder().is_some());
        let recorded = net.forward(&x);
        assert_eq!(plain, recorded, "recording must not perturb the forward");

        let snap = rec.snapshot();
        // One span per module: seq, conv, relu, conv.
        assert_eq!(snap.spans.len(), 4);
        let names: Vec<_> = snap.spans.iter().map(|s| s.name.as_str()).collect();
        assert!(names.contains(&"conv1") && names.contains(&"relu2"));
        let seq = snap.spans.iter().find(|s| s.kind == "seq").unwrap();
        assert_eq!(seq.layer, Some(0));
        for child in snap.spans.iter().filter(|s| s.layer != Some(0)) {
            assert!(
                child.start_ns >= seq.start_ns
                    && child.start_ns + child.dur_ns <= seq.start_ns + seq.dur_ns,
                "child spans nest inside the root span"
            );
        }

        net.set_recorder(None);
        assert_eq!(net.forward(&x), plain);
        assert_eq!(rec.snapshot().spans.len(), 4, "no spans after removal");
    }

    #[test]
    fn capture_taps_every_module_input_without_changing_output() {
        let mut net = tiny_net();
        let x = Tensor::ones(&[1, 3, 6, 6]);
        let plain = net.forward(&x);
        let mut taps: Vec<(usize, Vec<usize>)> = Vec::new();
        let out = net.forward_with_capture(&x, &mut |id, input| {
            taps.push((id.index(), input.dims().to_vec()));
        });
        assert_eq!(out, plain, "capturing must not perturb the forward");
        // Root (seq), conv, relu, conv — in dispatch order.
        assert_eq!(taps.len(), 4);
        assert_eq!(taps[0], (0, vec![1, 3, 6, 6]));
        assert_eq!(taps[1], (1, vec![1, 3, 6, 6]));
        assert_eq!(taps[2], (2, vec![1, 4, 6, 6]));
        assert_eq!(taps[3], (3, vec![1, 4, 6, 6]));
    }

    #[test]
    fn forward_from_cached_input_is_bit_identical() {
        let mut net = tiny_net();
        let x = Tensor::ones(&[1, 3, 6, 6]);
        // Capture the input of the second conv (id 3), then resume there.
        let target = net.injectable_layers()[1];
        assert_eq!(net.resume_point(target), Some(target), "spine layer");
        let mut cached: Option<Tensor> = None;
        let full = net.forward_with_capture(&x, &mut |id, input| {
            if id == target {
                cached = Some(input.clone());
            }
        });
        let resumed = net
            .forward_from(target, &cached.expect("captured"))
            .unwrap();
        assert_eq!(resumed, full);
    }

    #[test]
    fn forward_from_skips_hooks_before_the_resume_point() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let mut net = tiny_net();
        let x = Tensor::ones(&[1, 3, 6, 6]);
        let target = net.injectable_layers()[1];
        let mut cached: Option<Tensor> = None;
        net.forward_with_capture(&x, &mut |id, input| {
            if id == target {
                cached = Some(input.clone());
            }
        });
        let fired = Arc::new(AtomicUsize::new(0));
        let f = Arc::clone(&fired);
        net.hooks().register_forward_all(move |_, _| {
            f.fetch_add(1, Ordering::Relaxed);
        });
        net.forward(&x);
        assert_eq!(fired.swap(0, Ordering::Relaxed), 3, "all leaves hook");
        net.forward_from(target, &cached.unwrap()).unwrap();
        assert_eq!(
            fired.load(Ordering::Relaxed),
            1,
            "only the resumed conv dispatches hooks"
        );
    }

    #[test]
    fn forward_from_unknown_target_is_none() {
        let mut net = tiny_net();
        assert!(net
            .forward_from(LayerId::from_index(99), &Tensor::ones(&[1, 3, 6, 6]))
            .is_none());
        assert!(net.resume_point(LayerId::from_index(99)).is_none());
    }

    #[test]
    fn hook_dispatches_are_counted_when_recording() {
        let mut net = tiny_net();
        let rec = Arc::new(rustfi_obs::TraceRecorder::new());
        net.set_recorder(Some(rec.clone()));
        let x = Tensor::ones(&[1, 3, 6, 6]);
        net.forward(&x);
        assert_eq!(
            rec.snapshot().counters.get("nn.hook_dispatches"),
            None,
            "no hooks registered, nothing counted"
        );
        net.hooks().register_forward_all(|_, _| {});
        net.forward(&x);
        // Three leaf layers (conv, relu, conv) each dispatch the all-hook.
        assert_eq!(rec.snapshot().counters.get("nn.hook_dispatches"), Some(&3));
    }
}
