//! A batching fit/evaluate loop for classifiers.

use crate::loss::cross_entropy;
use crate::module::Network;
use crate::optim::Sgd;
use rustfi_tensor::{SeededRng, Tensor};
use std::time::{Duration, Instant};

/// Hyperparameters for [`fit`].
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Initial learning rate.
    pub lr: f32,
    /// Momentum coefficient.
    pub momentum: f32,
    /// L2 weight decay.
    pub weight_decay: f32,
    /// Multiplies the learning rate after each epoch.
    pub lr_decay: f32,
    /// Seed for epoch shuffling.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 10,
            batch_size: 32,
            lr: 0.05,
            momentum: 0.9,
            weight_decay: 1e-4,
            lr_decay: 0.95,
            seed: 0,
        }
    }
}

/// What [`fit`] observed while training.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Mean loss of each epoch.
    pub epoch_losses: Vec<f32>,
    /// Wall-clock time spent in the loop.
    pub wall_time: Duration,
    /// Number of optimizer steps taken.
    pub steps: usize,
}

impl TrainReport {
    /// The last epoch's mean loss.
    pub fn final_loss(&self) -> f32 {
        self.epoch_losses.last().copied().unwrap_or(f32::NAN)
    }
}

/// Called before every training forward pass with the epoch and step; used by
/// the FI-in-training use case to (re)plan injections per batch.
pub type BatchCallback<'a> = dyn FnMut(&mut Network, usize, usize) + 'a;

/// Trains `net` on `(images, labels)` with softmax cross-entropy and SGD.
///
/// `images` is `[n, c, h, w]`; `labels` has length `n`. Shuffles each epoch
/// with a seed derived from `cfg.seed`, so runs are reproducible.
///
/// # Panics
///
/// Panics if `images`/`labels` disagree in length, or the set is empty.
pub fn fit(net: &mut Network, images: &Tensor, labels: &[usize], cfg: &TrainConfig) -> TrainReport {
    fit_with_callback(net, images, labels, cfg, &mut |_, _, _| {})
}

/// Like [`fit`] but invokes `on_batch(net, epoch, step)` before every forward
/// pass — the hook point for injecting perturbations during training.
///
/// # Panics
///
/// Panics if `images`/`labels` disagree in length, or the set is empty.
pub fn fit_with_callback(
    net: &mut Network,
    images: &Tensor,
    labels: &[usize],
    cfg: &TrainConfig,
    on_batch: &mut BatchCallback<'_>,
) -> TrainReport {
    let n = images.dims()[0];
    assert_eq!(n, labels.len(), "{n} images but {} labels", labels.len());
    assert!(n > 0, "empty training set");
    assert!(cfg.batch_size > 0, "batch size must be positive");

    let start = Instant::now();
    let mut sgd = Sgd::new(cfg.lr)
        .momentum(cfg.momentum)
        .weight_decay(cfg.weight_decay);
    let mut rng = SeededRng::new(cfg.seed).fork(0x7_EA1);
    let mut order: Vec<usize> = (0..n).collect();
    let mut epoch_losses = Vec::with_capacity(cfg.epochs);
    let mut steps = 0;

    net.set_training(true);
    for epoch in 0..cfg.epochs {
        rng.shuffle(&mut order);
        let mut epoch_loss = 0.0;
        let mut batches = 0;
        for chunk in order.chunks(cfg.batch_size) {
            let batch_imgs: Vec<Tensor> = chunk.iter().map(|&i| images.select_batch(i)).collect();
            let x = Tensor::stack_batch(&batch_imgs);
            let y: Vec<usize> = chunk.iter().map(|&i| labels[i]).collect();

            on_batch(net, epoch, steps);
            net.zero_grad();
            let logits = net.forward(&x);
            let (loss, grad) = cross_entropy(&logits, &y);
            net.backward(&grad);
            sgd.step(net);

            epoch_loss += loss;
            batches += 1;
            steps += 1;
        }
        epoch_losses.push(epoch_loss / batches as f32);
        sgd.set_lr(sgd.lr() * cfg.lr_decay);
    }
    net.set_training(false);

    TrainReport {
        epoch_losses,
        wall_time: start.elapsed(),
        steps,
    }
}

/// Fraction of `(images, labels)` classified correctly (Top-1), evaluated in
/// inference mode with the given batch size.
///
/// # Panics
///
/// Panics if lengths disagree or the set is empty.
pub fn accuracy(net: &mut Network, images: &Tensor, labels: &[usize], batch_size: usize) -> f32 {
    let preds = predict(net, images, batch_size);
    assert_eq!(preds.len(), labels.len());
    let correct = preds.iter().zip(labels).filter(|(p, l)| p == l).count();
    correct as f32 / labels.len() as f32
}

/// Top-1 predictions for every image.
///
/// # Panics
///
/// Panics if `images` is empty.
pub fn predict(net: &mut Network, images: &Tensor, batch_size: usize) -> Vec<usize> {
    let n = images.dims()[0];
    assert!(n > 0 && batch_size > 0, "empty input or zero batch");
    let was_training = net.is_training();
    net.set_training(false);
    let mut preds = Vec::with_capacity(n);
    let mut i = 0;
    while i < n {
        let hi = (i + batch_size).min(n);
        let batch: Vec<Tensor> = (i..hi).map(|j| images.select_batch(j)).collect();
        let logits = net.forward(&Tensor::stack_batch(&batch));
        let (b, k) = logits.dims2();
        for bi in 0..b {
            let row = &logits.data()[bi * k..(bi + 1) * k];
            let mut best = 0;
            for (ci, &v) in row.iter().enumerate() {
                if v > row[best] {
                    best = ci;
                }
            }
            preds.push(best);
        }
        i = hi;
    }
    net.set_training(was_training);
    preds
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{Flatten, Linear, Relu, Sequential};

    /// A trivially separable 2-class problem on 1x4x4 "images":
    /// class 0 is all -1, class 1 is all +1 (plus a little noise).
    fn toy_data(n: usize, seed: u64) -> (Tensor, Vec<usize>) {
        let mut rng = SeededRng::new(seed);
        let mut images = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let class = i % 2;
            let base = if class == 0 { -1.0 } else { 1.0 };
            let img = Tensor::from_fn(&[1, 1, 4, 4], |_| base + rng.normal(0.0, 0.3));
            images.push(img);
            labels.push(class);
        }
        (Tensor::stack_batch(&images), labels)
    }

    fn toy_net(seed: u64) -> Network {
        let mut rng = SeededRng::new(seed);
        Network::new(Box::new(Sequential::new(vec![
            Box::new(Flatten::new()),
            Box::new(Linear::new(16, 8, &mut rng)),
            Box::new(Relu::new()),
            Box::new(Linear::new(8, 2, &mut rng)),
        ])))
    }

    #[test]
    fn fit_reaches_high_accuracy_on_separable_data() {
        let (images, labels) = toy_data(64, 1);
        let mut net = toy_net(2);
        let report = fit(
            &mut net,
            &images,
            &labels,
            &TrainConfig {
                epochs: 20,
                batch_size: 8,
                lr: 0.1,
                ..TrainConfig::default()
            },
        );
        assert!(
            report.final_loss() < 0.1,
            "final loss {}",
            report.final_loss()
        );
        let acc = accuracy(&mut net, &images, &labels, 16);
        assert!(acc > 0.95, "accuracy {acc}");
        assert_eq!(report.steps, 20 * 8);
    }

    #[test]
    fn fit_is_deterministic_given_seeds() {
        let (images, labels) = toy_data(32, 3);
        let cfg = TrainConfig {
            epochs: 3,
            batch_size: 8,
            ..TrainConfig::default()
        };
        let mut a = toy_net(5);
        let mut b = toy_net(5);
        let ra = fit(&mut a, &images, &labels, &cfg);
        let rb = fit(&mut b, &images, &labels, &cfg);
        assert_eq!(ra.epoch_losses, rb.epoch_losses);
        let x = images.select_batch(0);
        assert_eq!(a.forward(&x), b.forward(&x));
    }

    #[test]
    fn callback_fires_once_per_batch() {
        let (images, labels) = toy_data(32, 4);
        let mut net = toy_net(6);
        let mut calls = 0;
        fit_with_callback(
            &mut net,
            &images,
            &labels,
            &TrainConfig {
                epochs: 2,
                batch_size: 8,
                ..TrainConfig::default()
            },
            &mut |_, _, _| calls += 1,
        );
        assert_eq!(calls, 2 * 4);
    }

    #[test]
    fn predict_matches_accuracy() {
        let (images, labels) = toy_data(16, 7);
        let mut net = toy_net(8);
        fit(
            &mut net,
            &images,
            &labels,
            &TrainConfig {
                epochs: 15,
                batch_size: 4,
                lr: 0.1,
                ..TrainConfig::default()
            },
        );
        let preds = predict(&mut net, &images, 5);
        let manual =
            preds.iter().zip(&labels).filter(|(p, l)| p == l).count() as f32 / labels.len() as f32;
        assert_eq!(manual, accuracy(&mut net, &images, &labels, 3));
    }

    #[test]
    #[should_panic(expected = "labels")]
    fn fit_rejects_mismatched_labels() {
        let (images, _) = toy_data(8, 1);
        let mut net = toy_net(1);
        fit(&mut net, &images, &[0, 1], &TrainConfig::default());
    }
}
