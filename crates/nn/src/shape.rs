//! Build-time shape validation.
//!
//! [`Module::infer_dims`](crate::Module::infer_dims) propagates an input
//! shape through a module tree *without running it*, surfacing every
//! geometry mismatch — a residual body that disagrees with its shortcut, a
//! branch with the wrong spatial extent, a kernel larger than its input — as
//! a typed [`ShapeError`] instead of an `assert!` deep inside a forward
//! pass. The differential architecture fuzzer leans on this: randomly
//! composed networks are validated up front so invalid compositions are
//! rejected and resampled cleanly rather than aborting a campaign.

use std::fmt;

/// Why a module tree cannot accept a given input shape.
///
/// Every variant names the offending layer (its auto-assigned name when the
/// tree has been wrapped in a [`Network`](crate::Network), otherwise the
/// layer kind) so errors stay actionable on deeply nested topologies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShapeError {
    /// The layer needs a different tensor rank (e.g. conv wants NCHW).
    WrongRank {
        /// Offending layer (name or kind).
        layer: String,
        /// Rank the layer expects.
        expected: usize,
        /// Shape it was offered.
        got: Vec<usize>,
    },
    /// A channel-indexed layer (conv input, batch norm) saw the wrong
    /// channel count.
    ChannelMismatch {
        /// Offending layer (name or kind).
        layer: String,
        /// Channel count the layer was built for.
        expected: usize,
        /// Channel count of the offered input.
        got: usize,
    },
    /// Channels are not divisible by the group count (channel shuffle).
    GroupMismatch {
        /// Offending layer (name or kind).
        layer: String,
        /// Offered channel count.
        channels: usize,
        /// Group count that does not divide it.
        groups: usize,
    },
    /// A conv/pool window (with padding) does not fit in the input extent.
    KernelTooLarge {
        /// Offending layer (name or kind).
        layer: String,
        /// Window size.
        kernel: usize,
        /// Spatial extent it was offered.
        input: usize,
    },
    /// A linear layer saw the wrong feature width.
    FeatureMismatch {
        /// Offending layer (name or kind).
        layer: String,
        /// Feature count the layer was built for.
        expected: usize,
        /// Feature count of the offered input.
        got: usize,
    },
    /// A residual block whose body output shape disagrees with its shortcut
    /// (the identity input when no projection is installed).
    ResidualMismatch {
        /// Offending block (name or kind).
        layer: String,
        /// Shape produced by the body path.
        body: Vec<usize>,
        /// Shape produced by the shortcut path.
        shortcut: Vec<usize>,
    },
    /// Branch outputs cannot be concatenated along channels: batch or
    /// spatial extents disagree.
    BranchMismatch {
        /// Offending container (name or kind).
        layer: String,
        /// Shape of the first branch output.
        first: Vec<usize>,
        /// Conflicting shape of a later branch output.
        other: Vec<usize>,
    },
}

impl ShapeError {
    /// The offending layer's name (or kind when unnamed).
    pub fn layer(&self) -> &str {
        match self {
            ShapeError::WrongRank { layer, .. }
            | ShapeError::ChannelMismatch { layer, .. }
            | ShapeError::GroupMismatch { layer, .. }
            | ShapeError::KernelTooLarge { layer, .. }
            | ShapeError::FeatureMismatch { layer, .. }
            | ShapeError::ResidualMismatch { layer, .. }
            | ShapeError::BranchMismatch { layer, .. } => layer,
        }
    }
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShapeError::WrongRank {
                layer,
                expected,
                got,
            } => write!(f, "{layer}: expects rank {expected}, got shape {got:?}"),
            ShapeError::ChannelMismatch {
                layer,
                expected,
                got,
            } => write!(f, "{layer}: expects {expected} channels, got {got}"),
            ShapeError::GroupMismatch {
                layer,
                channels,
                groups,
            } => write!(
                f,
                "{layer}: {channels} channels not divisible by {groups} groups"
            ),
            ShapeError::KernelTooLarge {
                layer,
                kernel,
                input,
            } => write!(
                f,
                "{layer}: window {kernel} larger than input extent {input}"
            ),
            ShapeError::FeatureMismatch {
                layer,
                expected,
                got,
            } => write!(f, "{layer}: expects {expected} features, got {got}"),
            ShapeError::ResidualMismatch {
                layer,
                body,
                shortcut,
            } => write!(
                f,
                "{layer}: body output {body:?} does not match shortcut {shortcut:?}"
            ),
            ShapeError::BranchMismatch {
                layer,
                first,
                other,
            } => write!(
                f,
                "{layer}: branch output {other:?} cannot concat with {first:?}"
            ),
        }
    }
}

impl std::error::Error for ShapeError {}

/// The label validators attach to errors: the layer's assigned name, or its
/// kind when the tree has not been through [`Network::new`] yet.
///
/// [`Network::new`]: crate::Network::new
pub(crate) fn layer_label(meta: &crate::LayerMeta, kind: crate::LayerKind) -> String {
    if meta.name.is_empty() {
        kind.short_name().to_string()
    } else {
        meta.name.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::container::{Branches, Residual, Sequential};
    use crate::layer::{ChannelShuffle, Conv2d, Linear, MaxPool2d, Relu};
    use crate::module::{Module, Network};
    use crate::{zoo, ZooConfig};
    use rustfi_tensor::{ConvSpec, SeededRng, Tensor};

    #[test]
    fn every_zoo_model_validates_and_matches_forward() {
        let cfg = ZooConfig::tiny(4);
        for name in zoo::model_names() {
            let mut net = zoo::by_name(name, &cfg).unwrap();
            let dims = [2, cfg.in_channels, cfg.image_hw, cfg.image_hw];
            let inferred = net
                .infer_dims(&dims)
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            let y = net.forward(&Tensor::zeros(&dims));
            assert_eq!(inferred, y.dims(), "{name}: inferred shape matches forward");
        }
    }

    #[test]
    fn residual_mismatch_is_a_typed_error() {
        let mut rng = SeededRng::new(1);
        // Body widens 2 -> 4 channels with an identity shortcut: invalid.
        let body = Conv2d::new(2, 4, 3, ConvSpec::new().padding(1), &mut rng);
        let net = Network::new(Box::new(Residual::new(Box::new(body))));
        let err = net.infer_dims(&[1, 2, 8, 8]).unwrap_err();
        match &err {
            ShapeError::ResidualMismatch { body, shortcut, .. } => {
                assert_eq!(body, &[1, 4, 8, 8]);
                assert_eq!(shortcut, &[1, 2, 8, 8]);
            }
            other => panic!("expected ResidualMismatch, got {other}"),
        }
        assert!(err.to_string().contains("does not match shortcut"));
    }

    #[test]
    fn branch_mismatch_is_a_typed_error() {
        let mut rng = SeededRng::new(2);
        // Unpadded 3x3 branch shrinks spatially; 1x1 branch does not.
        let b1 = Conv2d::new(2, 3, 1, ConvSpec::new(), &mut rng);
        let b2 = Conv2d::new(2, 3, 3, ConvSpec::new(), &mut rng);
        let net = Network::new(Box::new(Branches::new(vec![Box::new(b1), Box::new(b2)])));
        assert!(matches!(
            net.infer_dims(&[1, 2, 8, 8]),
            Err(ShapeError::BranchMismatch { .. })
        ));
    }

    #[test]
    fn geometry_errors_name_the_offending_layer() {
        let mut rng = SeededRng::new(3);
        let net = Network::new(Box::new(Sequential::new(vec![
            Box::new(Conv2d::new(2, 4, 3, ConvSpec::new().padding(1), &mut rng)),
            Box::new(MaxPool2d::new(2, 2)),
            Box::new(Conv2d::new(8, 4, 1, ConvSpec::new(), &mut rng)),
        ])));
        // Second conv was built for 8 input channels but receives 4.
        let err = net.infer_dims(&[1, 2, 8, 8]).unwrap_err();
        assert!(
            matches!(
                err,
                ShapeError::ChannelMismatch {
                    expected: 8,
                    got: 4,
                    ..
                }
            ),
            "got {err}"
        );
        assert_eq!(err.layer(), "conv3");
    }

    #[test]
    fn kernel_and_rank_and_group_errors() {
        let mut rng = SeededRng::new(4);
        let conv = Conv2d::new(1, 1, 5, ConvSpec::new(), &mut rng);
        assert!(matches!(
            conv.infer_dims(&[1, 1, 3, 3]),
            Err(ShapeError::KernelTooLarge {
                kernel: 5,
                input: 3,
                ..
            })
        ));
        assert!(matches!(
            conv.infer_dims(&[1, 9]),
            Err(ShapeError::WrongRank { expected: 4, .. })
        ));
        let shuffle = ChannelShuffle::new(3);
        assert!(matches!(
            shuffle.infer_dims(&[1, 4, 2, 2]),
            Err(ShapeError::GroupMismatch {
                channels: 4,
                groups: 3,
                ..
            })
        ));
        let fc = Linear::new(6, 2, &mut rng);
        assert!(matches!(
            fc.infer_dims(&[1, 7]),
            Err(ShapeError::FeatureMismatch {
                expected: 6,
                got: 7,
                ..
            })
        ));
        // Element-wise layers default to the identity at any rank.
        assert_eq!(Relu::new().infer_dims(&[3, 5]).unwrap(), vec![3, 5]);
    }
}
