//! Loss functions returning `(loss, gradient w.r.t. the prediction)`.

use rustfi_tensor::Tensor;

/// Softmax cross-entropy over logits `[batch, classes]` with integer labels.
///
/// Returns the mean loss over the batch and the gradient w.r.t. the logits
/// (already divided by the batch size, so it feeds `Network::backward`
/// directly).
///
/// # Panics
///
/// Panics if `labels.len()` differs from the batch size or a label is out of
/// range.
///
/// # Example
///
/// ```
/// use rustfi_nn::loss::cross_entropy;
/// use rustfi_tensor::Tensor;
///
/// let logits = Tensor::from_vec(vec![5.0, 0.0, 0.0], &[1, 3]);
/// let (loss, grad) = cross_entropy(&logits, &[0]);
/// assert!(loss < 0.1, "confident correct prediction has low loss");
/// assert_eq!(grad.dims(), &[1, 3]);
/// ```
pub fn cross_entropy(logits: &Tensor, labels: &[usize]) -> (f32, Tensor) {
    let (batch, classes) = logits.dims2();
    assert_eq!(
        labels.len(),
        batch,
        "{} labels for a batch of {batch}",
        labels.len()
    );
    let probs = logits.softmax_rows();
    let mut loss = 0.0;
    let mut grad = probs.pooled_copy();
    let inv_b = 1.0 / batch as f32;
    for (b, &label) in labels.iter().enumerate() {
        assert!(
            label < classes,
            "label {label} out of range for {classes} classes"
        );
        let p = probs.at(&[b, label]).max(1e-12);
        loss -= p.ln();
        let off = b * classes + label;
        grad.data_mut()[off] -= 1.0;
    }
    grad.scale_inplace(inv_b);
    (loss * inv_b, grad)
}

/// Mean squared error between two same-shape tensors.
///
/// Returns the mean over all elements and the gradient w.r.t. `pred`.
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn mse(pred: &Tensor, target: &Tensor) -> (f32, Tensor) {
    assert_eq!(
        pred.dims(),
        target.dims(),
        "mse shape mismatch: {:?} vs {:?}",
        pred.dims(),
        target.dims()
    );
    let n = pred.len() as f32;
    let diff = pred.sub(target);
    let loss = diff.sq_norm() / n;
    let grad = diff.scale(2.0 / n);
    (loss, grad)
}

/// Weighted squared error: like [`mse`] but each element's squared error is
/// scaled by `weight` (used for YOLO-style losses where coordinate,
/// objectness, and class terms have different weights).
///
/// Returns the *sum* (not mean) so multiple terms compose additively, and the
/// gradient w.r.t. `pred`.
///
/// # Panics
///
/// Panics on shape mismatch between any pair of arguments.
pub fn weighted_sq_error(pred: &Tensor, target: &Tensor, weight: &Tensor) -> (f32, Tensor) {
    assert_eq!(
        pred.dims(),
        target.dims(),
        "weighted_sq_error shape mismatch"
    );
    assert_eq!(
        pred.dims(),
        weight.dims(),
        "weighted_sq_error weight mismatch"
    );
    let diff = pred.sub(target);
    let loss: f32 = diff
        .data()
        .iter()
        .zip(weight.data())
        .map(|(d, w)| w * d * d)
        .sum();
    let grad = Tensor::from_vec(
        diff.data()
            .iter()
            .zip(weight.data())
            .map(|(d, w)| 2.0 * w * d)
            .collect(),
        pred.dims(),
    );
    (loss, grad)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_entropy_of_uniform_logits_is_log_k() {
        let logits = Tensor::zeros(&[2, 4]);
        let (loss, _) = cross_entropy(&logits, &[0, 3]);
        assert!((loss - (4.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn cross_entropy_grad_is_probs_minus_onehot() {
        let logits = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]);
        let probs = logits.softmax_rows();
        let (_, grad) = cross_entropy(&logits, &[2]);
        assert!((grad.at(&[0, 0]) - probs.at(&[0, 0])).abs() < 1e-6);
        assert!((grad.at(&[0, 2]) - (probs.at(&[0, 2]) - 1.0)).abs() < 1e-6);
        // Gradient rows sum to zero.
        assert!(grad.sum().abs() < 1e-6);
    }

    #[test]
    fn cross_entropy_numeric_gradient() {
        let logits = Tensor::from_vec(vec![0.3, -1.2, 0.8, 2.0, 0.0, -0.5], &[2, 3]);
        let labels = [2usize, 0];
        let (_, grad) = cross_entropy(&logits, &labels);
        let eps = 1e-3f32;
        for i in 0..logits.len() {
            let mut lp = logits.clone();
            lp.data_mut()[i] += eps;
            let mut lm = logits.clone();
            lm.data_mut()[i] -= eps;
            let num = (cross_entropy(&lp, &labels).0 - cross_entropy(&lm, &labels).0) / (2.0 * eps);
            assert!((num - grad.data()[i]).abs() < 1e-3, "logit {i}");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn cross_entropy_rejects_bad_label() {
        cross_entropy(&Tensor::zeros(&[1, 3]), &[3]);
    }

    #[test]
    fn mse_basics() {
        let (loss, grad) = mse(
            &Tensor::from_vec(vec![1.0, 2.0], &[2]),
            &Tensor::from_vec(vec![0.0, 0.0], &[2]),
        );
        assert!((loss - 2.5).abs() < 1e-6);
        assert_eq!(grad.data(), &[1.0, 2.0]);
    }

    #[test]
    fn weighted_sq_error_zero_weight_ignores_term() {
        let pred = Tensor::from_vec(vec![10.0, 1.0], &[2]);
        let target = Tensor::zeros(&[2]);
        let weight = Tensor::from_vec(vec![0.0, 2.0], &[2]);
        let (loss, grad) = weighted_sq_error(&pred, &target, &weight);
        assert!((loss - 2.0).abs() < 1e-6);
        assert_eq!(grad.data(), &[0.0, 4.0]);
    }
}
