//! Optimizers.

use crate::module::Network;
use rustfi_tensor::Tensor;

/// Stochastic gradient descent with momentum and weight decay.
///
/// Velocities are allocated lazily on the first step; parameter order is the
/// network's deterministic traversal order, so one `Sgd` must stay paired
/// with one network.
///
/// # Example
///
/// ```
/// use rustfi_nn::{optim::Sgd, zoo, ZooConfig};
/// use rustfi_nn::loss::cross_entropy;
/// use rustfi_tensor::Tensor;
///
/// let mut net = zoo::lenet(&ZooConfig::tiny(4));
/// let mut sgd = Sgd::new(0.1).momentum(0.9);
/// net.set_training(true);
/// let x = Tensor::ones(&[2, 3, 16, 16]);
/// let logits = net.forward(&x);
/// let (_, grad) = cross_entropy(&logits, &[0, 1]);
/// net.backward(&grad);
/// sgd.step(&mut net);
/// ```
#[derive(Debug)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    velocities: Vec<Tensor>,
}

impl Sgd {
    /// Plain SGD with the given learning rate.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not positive and finite.
    pub fn new(lr: f32) -> Self {
        assert!(lr > 0.0 && lr.is_finite(), "invalid learning rate {lr}");
        Self {
            lr,
            momentum: 0.0,
            weight_decay: 0.0,
            velocities: Vec::new(),
        }
    }

    /// Sets the momentum coefficient.
    pub fn momentum(mut self, momentum: f32) -> Self {
        assert!(
            (0.0..1.0).contains(&momentum),
            "momentum {momentum} out of range"
        );
        self.momentum = momentum;
        self
    }

    /// Sets L2 weight decay.
    pub fn weight_decay(mut self, weight_decay: f32) -> Self {
        assert!(weight_decay >= 0.0, "negative weight decay");
        self.weight_decay = weight_decay;
        self
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Changes the learning rate (for schedules).
    pub fn set_lr(&mut self, lr: f32) {
        assert!(lr > 0.0 && lr.is_finite(), "invalid learning rate {lr}");
        self.lr = lr;
    }

    /// Applies one update step from the gradients accumulated in `net`.
    ///
    /// Does not zero gradients; call [`Network::zero_grad`] before the next
    /// backward pass.
    pub fn step(&mut self, net: &mut Network) {
        let momentum = self.momentum;
        let lr = self.lr;
        let wd = self.weight_decay;
        let velocities = &mut self.velocities;
        let mut index = 0;
        net.for_each_param(&mut |p| {
            if velocities.len() == index {
                velocities.push(Tensor::zeros(p.value.dims()));
            }
            let v = &mut velocities[index];
            assert_eq!(
                v.dims(),
                p.value.dims(),
                "optimizer state shape drifted at parameter {index}"
            );
            for ((vv, &g), w) in v
                .data_mut()
                .iter_mut()
                .zip(p.grad.data())
                .zip(p.value.data_mut())
            {
                let g = g + wd * *w;
                *vv = momentum * *vv - lr * g;
                *w += *vv;
            }
            index += 1;
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Linear;
    use crate::loss::mse;
    use rustfi_tensor::{SeededRng, Tensor};

    fn one_param_net() -> Network {
        let mut rng = SeededRng::new(1);
        Network::new(Box::new(Linear::new(1, 1, &mut rng)))
    }

    #[test]
    fn sgd_descends_a_quadratic() {
        // Fit y = 3x with a single linear unit.
        let mut net = one_param_net();
        let mut sgd = Sgd::new(0.1);
        let x = Tensor::from_vec(vec![1.0], &[1, 1]);
        let target = Tensor::from_vec(vec![3.0], &[1, 1]);
        let mut last = f32::INFINITY;
        for _ in 0..100 {
            net.zero_grad();
            let y = net.forward(&x);
            let (loss, grad) = mse(&y, &target);
            net.backward(&grad);
            sgd.step(&mut net);
            assert!(
                loss <= last + 1e-4,
                "loss must not increase: {loss} > {last}"
            );
            last = loss;
        }
        assert!(last < 1e-4, "converged, final loss {last}");
    }

    #[test]
    fn momentum_accelerates_convergence() {
        let runs = |momentum: f32| {
            let mut net = one_param_net();
            let mut sgd = Sgd::new(0.02);
            if momentum > 0.0 {
                sgd = sgd.momentum(momentum);
            }
            let x = Tensor::from_vec(vec![1.0], &[1, 1]);
            let target = Tensor::from_vec(vec![3.0], &[1, 1]);
            let mut loss = 0.0;
            for _ in 0..50 {
                net.zero_grad();
                let y = net.forward(&x);
                let (l, grad) = mse(&y, &target);
                loss = l;
                net.backward(&grad);
                sgd.step(&mut net);
            }
            loss
        };
        assert!(runs(0.9) < runs(0.0), "momentum converges faster here");
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let mut net = one_param_net();
        // No data gradient (zero grad), only decay.
        let mut sgd = Sgd::new(0.1).weight_decay(0.5);
        let mut before = 0.0;
        net.for_each_param(&mut |p| before += p.value.sq_norm());
        net.zero_grad();
        sgd.step(&mut net);
        let mut after = 0.0;
        net.for_each_param(&mut |p| after += p.value.sq_norm());
        assert!(after < before);
    }

    #[test]
    fn set_lr_updates() {
        let mut sgd = Sgd::new(0.1);
        sgd.set_lr(0.01);
        assert_eq!(sgd.lr(), 0.01);
    }

    #[test]
    #[should_panic(expected = "invalid learning rate")]
    fn rejects_zero_lr() {
        Sgd::new(0.0);
    }
}
