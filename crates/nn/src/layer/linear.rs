//! Fully-connected layer.

use crate::module::{
    leaf_boilerplate, BackwardCtx, ForwardCtx, LayerKind, LayerMeta, Module, Param,
};
use rustfi_tensor::linalg::{self, matmul};
use rustfi_tensor::{
    linear_q, linear_q_planned, matmul_packed_b, Act, BnFoldView, Epilogue, PackedB, PackedI16,
    QTensor, SeededRng, Tensor,
};

/// A fully-connected (dense) layer: `y = x W^T + b`.
///
/// Input is `[batch, in_features]`; output `[batch, out_features]`. Linear
/// outputs are neurons, so the layer runs forward hooks and is injectable.
pub struct Linear {
    pub(crate) meta: LayerMeta,
    /// `[out_features, in_features]`.
    weight: Tensor,
    bias: Tensor,
    grad_weight: Tensor,
    grad_bias: Tensor,
    cached_input: Option<Tensor>,
    /// Reused per-forward `W^T` scratch. Not a cache: weight-fault campaigns
    /// mutate `weight` between forwards, so the transpose is recomputed every
    /// pass — only the buffer survives.
    wt_scratch: Option<Tensor>,
    /// Per-channel quantized weight cache for the INT8 backend; dropped
    /// whenever the f32 weights are handed out mutably.
    qweight: Option<QTensor>,
    /// Compiled-plan `W^T` panels, pre-tiled for the register-tiled GEMM.
    /// Built straight from the `[out, in]` weight layout (no transpose
    /// scratch pass); marked stale and repacked in place, allocation-free,
    /// when the weights are handed out mutably.
    packed: Option<PackedB>,
    packed_stale: bool,
    /// Compiled-plan pre-widened `i16` panel derived from `qweight`.
    wide: Option<PackedI16>,
    wide_stale: bool,
}

impl Linear {
    /// Creates a dense layer with Kaiming-normal weights and zero bias.
    pub fn new(in_features: usize, out_features: usize, rng: &mut SeededRng) -> Self {
        let std = (2.0 / in_features as f32).sqrt();
        let weight = Tensor::rand_normal(&[out_features, in_features], 0.0, std, rng);
        Self {
            meta: LayerMeta::default(),
            grad_weight: Tensor::zeros(weight.dims()),
            grad_bias: Tensor::zeros(&[out_features]),
            bias: Tensor::zeros(&[out_features]),
            weight,
            cached_input: None,
            wt_scratch: None,
            qweight: None,
            packed: None,
            packed_stale: false,
            wide: None,
            wide_stale: false,
        }
    }

    /// The weight tensor (`[out_features, in_features]`).
    pub fn weight(&self) -> &Tensor {
        &self.weight
    }

    /// Builds or refreshes the `W^T` GEMM panels (in place when stale).
    fn ensure_packed(&mut self) {
        let (out_f, _in_f) = self.weight.dims2();
        match &mut self.packed {
            Some(p) if self.packed_stale => p.repack_transposed(self.weight.data()),
            Some(_) => {}
            None => {
                let (_, in_f) = self.weight.dims2();
                self.packed = Some(PackedB::pack_transposed(self.weight.data(), out_f, in_f));
            }
        }
        self.packed_stale = false;
    }

    /// Builds or refreshes the pre-widened INT8 panel from `qweight`.
    fn ensure_wide(&mut self) {
        let qw = self
            .qweight
            .get_or_insert_with(|| QTensor::quantize_per_channel(&self.weight));
        let (out_f, in_f) = (qw.dims()[0], qw.dims()[1]);
        match &mut self.wide {
            Some(p) if self.wide_stale => p.rewiden(qw.data()),
            Some(_) => {}
            None => self.wide = Some(PackedI16::widen(qw.data(), out_f, in_f)),
        }
        self.wide_stale = false;
    }

    /// Planned forward shared by the plain and fused paths: prepacked `W^T`
    /// panels, bias + activation in the GEMM write-back, no activation
    /// cache (plans are inference-only).
    fn forward_planned(&mut self, input: &Tensor, ctx: &mut ForwardCtx<'_>, act: Act) -> Tensor {
        let (batch, in_f) = input.dims2();
        let (out_f, w_in) = self.weight.dims2();
        assert_eq!(
            in_f, w_in,
            "linear layer {} expects {} features, got {}",
            self.meta.name, w_in, in_f
        );
        self.cached_input = None;
        match ctx.input_scale(self.meta.id) {
            Some(scale) => {
                self.ensure_wide();
                let qw = self.qweight.as_ref().expect("ensure_wide builds qweight");
                let panel = self.wide.as_ref().expect("ensure_wide builds the panel");
                linear_q_planned(input, qw, panel, &self.bias, scale, act)
            }
            None => {
                self.ensure_packed();
                let panel = self.packed.as_ref().expect("ensure_packed builds panels");
                // The epilogue writes every output element exactly once.
                let mut out = Tensor::from_pool(&[batch, out_f]);
                let ep = Epilogue::PerCol {
                    bias: self.bias.data(),
                    act,
                };
                matmul_packed_b(input.data(), panel, out.data_mut(), batch, &ep, true);
                out
            }
        }
    }
}

impl Module for Linear {
    leaf_boilerplate!();

    fn kind(&self) -> LayerKind {
        LayerKind::Linear
    }

    fn infer_dims(&self, input: &[usize]) -> Result<Vec<usize>, crate::shape::ShapeError> {
        let label = || crate::shape::layer_label(&self.meta, LayerKind::Linear);
        let &[n, f] = input else {
            return Err(crate::shape::ShapeError::WrongRank {
                layer: label(),
                expected: 2,
                got: input.to_vec(),
            });
        };
        let (out_f, in_f) = self.weight.dims2();
        if f != in_f {
            return Err(crate::shape::ShapeError::FeatureMismatch {
                layer: label(),
                expected: in_f,
                got: f,
            });
        }
        Ok(vec![n, out_f])
    }

    fn forward(&mut self, input: &Tensor, ctx: &mut ForwardCtx<'_>) -> Tensor {
        if ctx.plan_active() {
            let mut out = self.forward_planned(input, ctx, Act::None);
            ctx.run_forward_hooks(&self.meta, LayerKind::Linear, &mut out);
            return out;
        }
        let (batch, in_f) = input.dims2();
        let (out_f, w_in) = self.weight.dims2();
        assert_eq!(
            in_f, w_in,
            "linear layer {} expects {} features, got {}",
            self.meta.name, w_in, in_f
        );
        rustfi_tensor::tpool::reuse_slot(&mut self.cached_input, input.dims())
            .data_mut()
            .copy_from_slice(input.data());
        let mut out = match ctx.input_scale(self.meta.id) {
            Some(scale) => {
                // The quantized GEMM consumes `W` in its natural
                // `[out, in]` layout — no transpose scratch needed.
                let qw = self
                    .qweight
                    .get_or_insert_with(|| QTensor::quantize_per_channel(&self.weight));
                linear_q(input, qw, &self.bias, scale)
            }
            None => {
                let wt = rustfi_tensor::tpool::reuse_slot(&mut self.wt_scratch, &[in_f, out_f]);
                linalg::transpose_into(self.weight.data(), wt.data_mut(), out_f, in_f);
                let mut out = Tensor::from_pool(&[batch, out_f]);
                linalg::matmul_into(
                    input.data(),
                    wt.data(),
                    out.data_mut(),
                    batch,
                    in_f,
                    out_f,
                    true,
                );
                out.bias_add_rows(&self.bias);
                out
            }
        };
        ctx.run_forward_hooks(&self.meta, LayerKind::Linear, &mut out);
        out
    }

    fn forward_fused(
        &mut self,
        input: &Tensor,
        ctx: &mut ForwardCtx<'_>,
        bn: Option<BnFoldView<'_>>,
        act: Act,
    ) -> Option<Tensor> {
        // Linear outputs are 2-D; a BatchNorm2d partner cannot apply.
        if !ctx.plan_active() || bn.is_some() {
            return None;
        }
        Some(self.forward_planned(input, ctx, act))
    }

    fn backward(&mut self, grad_out: &Tensor, ctx: &mut BackwardCtx<'_>) -> Tensor {
        ctx.run_grad_hooks(&self.meta, LayerKind::Linear, grad_out);
        let input = self
            .cached_input
            .as_ref()
            .expect("Linear::backward called before forward");
        // dW = g^T x ; db = sum_b g ; dx = g W
        let gt = linalg::transpose(grad_out);
        let gw = matmul(&gt, input);
        self.grad_weight.add_assign(&gw);
        let (batch, out_f) = grad_out.dims2();
        for b in 0..batch {
            for o in 0..out_f {
                self.grad_bias.data_mut()[o] += grad_out.data()[b * out_f + o];
            }
        }
        matmul(grad_out, &self.weight)
    }

    fn for_each_param(&mut self, f: &mut dyn FnMut(Param<'_>)) {
        self.qweight = None;
        self.packed_stale = true;
        self.wide_stale = true;
        f(Param {
            value: &mut self.weight,
            grad: &mut self.grad_weight,
        });
        f(Param {
            value: &mut self.bias,
            grad: &mut self.grad_bias,
        });
    }

    fn for_each_state(&mut self, f: &mut dyn FnMut(&mut Tensor)) {
        self.qweight = None;
        self.packed_stale = true;
        self.wide_stale = true;
        f(&mut self.weight);
        f(&mut self.bias);
    }

    fn weight_mut(&mut self) -> Option<&mut Tensor> {
        self.qweight = None;
        self.packed_stale = true;
        self.wide_stale = true;
        Some(&mut self.weight)
    }

    fn bias_mut(&mut self) -> Option<&mut Tensor> {
        Some(&mut self.bias)
    }

    fn qweight_mut(&mut self) -> Option<&mut QTensor> {
        // The caller may flip stored-INT8 bits in the returned words; the
        // widened plan panel must be rebuilt from them.
        self.wide_stale = true;
        Some(
            self.qweight
                .get_or_insert_with(|| QTensor::quantize_per_channel(&self.weight)),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::Network;

    #[test]
    fn forward_computes_affine_map() {
        let mut rng = SeededRng::new(1);
        let mut lin = Linear::new(2, 2, &mut rng);
        // Overwrite with known values: W = [[1,2],[3,4]], b = [10, 20].
        *lin.weight_mut().unwrap() = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        *lin.bias_mut().unwrap() = Tensor::from_vec(vec![10.0, 20.0], &[2]);
        let mut net = Network::new(Box::new(lin));
        let y = net.forward(&Tensor::from_vec(vec![1.0, 1.0], &[1, 2]));
        assert_eq!(y.data(), &[13.0, 27.0]);
    }

    #[test]
    fn gradient_check() {
        let mut rng = SeededRng::new(2);
        let mut net = Network::new(Box::new(Linear::new(3, 2, &mut rng)));
        let x = Tensor::from_vec(vec![0.5, -1.0, 2.0, 1.0, 0.0, -0.5], &[2, 3]);
        let y = net.forward(&x);
        let gin = net.backward(&Tensor::ones(y.dims()));

        let eps = 1e-2f32;
        // Input gradient check.
        for i in 0..x.len() {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let fp = net.forward(&xp).sum();
            let fm = net.forward(&xm).sum();
            let num = (fp - fm) / (2.0 * eps);
            assert!((num - gin.data()[i]).abs() < 1e-2, "input grad {i}");
        }
        // Weight gradient check (grads were accumulated once above).
        let mut grads = Vec::new();
        net.for_each_param(&mut |p| grads.push(p.grad.clone()));
        let probe = |pi: usize, i: usize, expected: f32, net: &mut Network| {
            let mut idx = 0;
            net.for_each_param(&mut |p| {
                if idx == pi {
                    p.value.data_mut()[i] += eps;
                }
                idx += 1;
            });
            let fp = net.forward(&x).sum();
            let mut idx = 0;
            net.for_each_param(&mut |p| {
                if idx == pi {
                    p.value.data_mut()[i] -= 2.0 * eps;
                }
                idx += 1;
            });
            let fm = net.forward(&x).sum();
            let mut idx = 0;
            net.for_each_param(&mut |p| {
                if idx == pi {
                    p.value.data_mut()[i] += eps;
                }
                idx += 1;
            });
            let num = (fp - fm) / (2.0 * eps);
            assert!(
                (num - expected).abs() < 1e-2,
                "param {pi} elem {i}: {num} vs {expected}"
            );
        };
        for i in 0..grads[0].len() {
            probe(0, i, grads[0].data()[i], &mut net);
        }
        for i in 0..grads[1].len() {
            probe(1, i, grads[1].data()[i], &mut net);
        }
    }

    #[test]
    #[should_panic(expected = "expects 3 features")]
    fn rejects_feature_mismatch() {
        let mut rng = SeededRng::new(3);
        let mut net = Network::new(Box::new(Linear::new(3, 2, &mut rng)));
        net.forward(&Tensor::zeros(&[1, 4]));
    }

    #[test]
    fn linear_is_injectable() {
        let mut rng = SeededRng::new(4);
        let net = Network::new(Box::new(Linear::new(2, 2, &mut rng)));
        assert_eq!(net.injectable_layers().len(), 1);
    }
}
