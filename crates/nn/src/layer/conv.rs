//! 2-D convolution layer.

use crate::module::{
    leaf_boilerplate, BackwardCtx, ForwardCtx, LayerKind, LayerMeta, Module, Param,
};
use rustfi_tensor::{
    conv2d, conv2d_backward, conv2d_planned, conv2d_q, conv2d_q_planned, Act, BnFoldView, ConvSpec,
    Im2colPlan, Im2rowPlan, PackedA, PackedI16, QTensor, SeededRng, Tensor,
};

/// A 2-D convolution with learned weights and bias.
///
/// Weights are Kaiming-normal initialized (`std = sqrt(2 / fan_in)`), biases
/// start at zero. The layer runs forward hooks on its output — convolution
/// outputs are the "neurons" that fault injection targets.
pub struct Conv2d {
    pub(crate) meta: LayerMeta,
    weight: Tensor,
    bias: Tensor,
    grad_weight: Tensor,
    grad_bias: Tensor,
    spec: ConvSpec,
    cached_input: Option<Tensor>,
    /// Per-channel quantized weight cache for the INT8 backend; dropped
    /// whenever the f32 weights are handed out mutably.
    qweight: Option<QTensor>,
    /// Compiled-plan f32 weight panels, one per group, pre-tiled for the
    /// register-tiled GEMM. Pure functions of `weight`: when the weights are
    /// handed out mutably the panels are marked stale and repacked *in
    /// place* on the next planned forward — a weight-fault trial repacks
    /// only this layer and its undo restores the blessed panel bytes
    /// exactly, with no allocation.
    packed: Vec<PackedA>,
    packed_stale: bool,
    /// Compiled-plan pre-widened `i16` panels derived from `qweight`, one
    /// per group, for the INT8 GEMM. Stale whenever `qweight` is rebuilt or
    /// handed out mutably.
    wide: Vec<PackedI16>,
    wide_stale: bool,
    /// Compiled-plan im2col gather map, built lazily for the input spatial
    /// shape the planned forward actually sees and rebuilt only when that
    /// shape changes. Pure geometry — weight faults never touch it.
    gather: Option<Im2colPlan>,
    /// INT8 twin of `gather` (transposed im2row destination layout).
    gather_q: Option<Im2rowPlan>,
}

impl Conv2d {
    /// Creates a convolution: `in_ch -> out_ch` with a square `kernel`.
    ///
    /// # Panics
    ///
    /// Panics if `in_ch` or `out_ch` is not divisible by `spec.groups`.
    pub fn new(
        in_ch: usize,
        out_ch: usize,
        kernel: usize,
        spec: ConvSpec,
        rng: &mut SeededRng,
    ) -> Self {
        assert!(
            spec.groups > 0
                && in_ch.is_multiple_of(spec.groups)
                && out_ch.is_multiple_of(spec.groups),
            "conv channels ({in_ch} -> {out_ch}) must be divisible by groups {}",
            spec.groups
        );
        let cg = in_ch / spec.groups;
        let fan_in = (cg * kernel * kernel) as f32;
        let std = (2.0 / fan_in).sqrt();
        let weight = Tensor::rand_normal(&[out_ch, cg, kernel, kernel], 0.0, std, rng);
        let bias = Tensor::zeros(&[out_ch]);
        Self {
            meta: LayerMeta::default(),
            grad_weight: Tensor::zeros(weight.dims()),
            grad_bias: Tensor::zeros(bias.dims()),
            weight,
            bias,
            spec,
            cached_input: None,
            qweight: None,
            packed: Vec::new(),
            packed_stale: false,
            wide: Vec::new(),
            wide_stale: false,
            gather: None,
            gather_q: None,
        }
    }

    /// The convolution geometry.
    pub fn spec(&self) -> &ConvSpec {
        &self.spec
    }

    /// The weight tensor (`[out_ch, in_ch/groups, k, k]`).
    pub fn weight(&self) -> &Tensor {
        &self.weight
    }

    /// Builds or refreshes the f32 GEMM panels. First build allocates
    /// (campaign setup); stale refreshes repack in place.
    fn ensure_packed(&mut self) {
        let &[oc, cg, kh, kw] = self.weight.dims() else {
            unreachable!("conv weights are rank 4");
        };
        let groups = self.spec.groups;
        let (og, kcols) = (oc / groups, cg * kh * kw);
        if self.packed.len() != groups {
            self.packed.clear();
            for g in 0..groups {
                let slab = &self.weight.data()[g * og * kcols..][..og * kcols];
                self.packed.push(PackedA::pack(slab, og, kcols));
            }
        } else if self.packed_stale {
            for (g, pack) in self.packed.iter_mut().enumerate() {
                pack.repack(&self.weight.data()[g * og * kcols..][..og * kcols]);
            }
        }
        self.packed_stale = false;
    }

    /// Builds or refreshes the pre-widened INT8 panels from `qweight`
    /// (quantizing the weights first if needed).
    fn ensure_wide(&mut self) {
        let qw = self
            .qweight
            .get_or_insert_with(|| QTensor::quantize_per_channel(&self.weight));
        let &[oc, cg, kh, kw] = qw.dims() else {
            unreachable!("conv qweights are rank 4");
        };
        let groups = self.spec.groups;
        let (og, kcols) = (oc / groups, cg * kh * kw);
        if self.wide.len() != groups {
            self.wide.clear();
            for g in 0..groups {
                let slab = &qw.data()[g * og * kcols..][..og * kcols];
                self.wide.push(PackedI16::widen(slab, og, kcols));
            }
        } else if self.wide_stale {
            for (g, panel) in self.wide.iter_mut().enumerate() {
                panel.rewiden(&qw.data()[g * og * kcols..][..og * kcols]);
            }
        }
        self.wide_stale = false;
    }

    /// Planned forward shared by the plain and fused paths: prepacked
    /// panels, partner epilogue in the GEMM write-back, no activation cache
    /// (plans are inference-only; `backward` after a planned forward
    /// panics).
    fn forward_planned(
        &mut self,
        input: &Tensor,
        ctx: &mut ForwardCtx<'_>,
        bn: Option<BnFoldView<'_>>,
        act: Act,
    ) -> Tensor {
        self.cached_input = None;
        let &[_, _, h, w] = input.dims() else {
            panic!("conv input must be rank 4");
        };
        let cg = self.weight.dims()[1];
        let (kh, kw) = (self.weight.dims()[2], self.weight.dims()[3]);
        match ctx.input_scale(self.meta.id) {
            Some(scale) => {
                self.ensure_wide();
                if !self.gather_q.as_ref().is_some_and(|p| p.matches(cg, h, w)) {
                    self.gather_q = Some(Im2rowPlan::build(cg, h, w, (kh, kw), &self.spec));
                }
                let plan = self.gather_q.as_ref().expect("plan built above");
                let qw = self.qweight.as_ref().expect("ensure_wide builds qweight");
                conv2d_q_planned(
                    input, qw, &self.wide, plan, &self.bias, &self.spec, scale, bn, act,
                )
            }
            None => {
                self.ensure_packed();
                if !self.gather.as_ref().is_some_and(|p| p.matches(cg, h, w)) {
                    self.gather = Some(Im2colPlan::build(cg, h, w, (kh, kw), &self.spec));
                }
                let plan = self.gather.as_ref().expect("plan built above");
                conv2d_planned(
                    input,
                    &self.packed,
                    (kh, kw),
                    plan,
                    &self.bias,
                    &self.spec,
                    bn,
                    act,
                )
            }
        }
    }
}

impl Module for Conv2d {
    leaf_boilerplate!();

    fn kind(&self) -> LayerKind {
        LayerKind::Conv2d
    }

    fn infer_dims(&self, input: &[usize]) -> Result<Vec<usize>, crate::shape::ShapeError> {
        let label = || crate::shape::layer_label(&self.meta, LayerKind::Conv2d);
        let &[n, c, h, w] = input else {
            return Err(crate::shape::ShapeError::WrongRank {
                layer: label(),
                expected: 4,
                got: input.to_vec(),
            });
        };
        let &[out_ch, cg, kh, _kw] = self.weight.dims() else {
            unreachable!("conv weights are rank 4");
        };
        let in_ch = cg * self.spec.groups;
        if c != in_ch {
            return Err(crate::shape::ShapeError::ChannelMismatch {
                layer: label(),
                expected: in_ch,
                got: c,
            });
        }
        let oh = self.spec.checked_out_size(h, kh).ok_or_else(|| {
            crate::shape::ShapeError::KernelTooLarge {
                layer: label(),
                kernel: kh,
                input: h,
            }
        })?;
        let ow = self.spec.checked_out_size(w, kh).ok_or_else(|| {
            crate::shape::ShapeError::KernelTooLarge {
                layer: label(),
                kernel: kh,
                input: w,
            }
        })?;
        Ok(vec![n, out_ch, oh, ow])
    }

    fn forward(&mut self, input: &Tensor, ctx: &mut ForwardCtx<'_>) -> Tensor {
        if ctx.plan_active() {
            let mut out = self.forward_planned(input, ctx, None, Act::None);
            ctx.run_forward_hooks(&self.meta, LayerKind::Conv2d, &mut out);
            return out;
        }
        rustfi_tensor::tpool::reuse_slot(&mut self.cached_input, input.dims())
            .data_mut()
            .copy_from_slice(input.data());
        let mut out = match ctx.input_scale(self.meta.id) {
            Some(scale) => {
                let qw = self
                    .qweight
                    .get_or_insert_with(|| QTensor::quantize_per_channel(&self.weight));
                conv2d_q(input, qw, &self.bias, &self.spec, scale)
            }
            None => conv2d(input, &self.weight, &self.bias, &self.spec),
        };
        ctx.run_forward_hooks(&self.meta, LayerKind::Conv2d, &mut out);
        out
    }

    fn forward_fused(
        &mut self,
        input: &Tensor,
        ctx: &mut ForwardCtx<'_>,
        bn: Option<BnFoldView<'_>>,
        act: Act,
    ) -> Option<Tensor> {
        if !ctx.plan_active() {
            return None;
        }
        Some(self.forward_planned(input, ctx, bn, act))
    }

    fn backward(&mut self, grad_out: &Tensor, ctx: &mut BackwardCtx<'_>) -> Tensor {
        ctx.run_grad_hooks(&self.meta, LayerKind::Conv2d, grad_out);
        let input = self
            .cached_input
            .as_ref()
            .expect("Conv2d::backward called before forward");
        let grads = conv2d_backward(input, &self.weight, grad_out, &self.spec);
        self.grad_weight.add_assign(&grads.weight);
        self.grad_bias.add_assign(&grads.bias);
        grads.input
    }

    fn for_each_param(&mut self, f: &mut dyn FnMut(Param<'_>)) {
        self.qweight = None;
        self.packed_stale = true;
        self.wide_stale = true;
        f(Param {
            value: &mut self.weight,
            grad: &mut self.grad_weight,
        });
        f(Param {
            value: &mut self.bias,
            grad: &mut self.grad_bias,
        });
    }

    fn for_each_state(&mut self, f: &mut dyn FnMut(&mut Tensor)) {
        self.qweight = None;
        self.packed_stale = true;
        self.wide_stale = true;
        f(&mut self.weight);
        f(&mut self.bias);
    }

    fn weight_mut(&mut self) -> Option<&mut Tensor> {
        self.qweight = None;
        self.packed_stale = true;
        self.wide_stale = true;
        Some(&mut self.weight)
    }

    fn bias_mut(&mut self) -> Option<&mut Tensor> {
        Some(&mut self.bias)
    }

    fn qweight_mut(&mut self) -> Option<&mut QTensor> {
        // The caller may flip stored-INT8 bits in the returned words; the
        // widened plan panels must be rebuilt from them.
        self.wide_stale = true;
        Some(
            self.qweight
                .get_or_insert_with(|| QTensor::quantize_per_channel(&self.weight)),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hook::HookRegistry;
    use crate::module::Network;

    #[test]
    fn forward_shape_and_determinism() {
        let mut rng = SeededRng::new(2);
        let conv = Conv2d::new(3, 8, 3, ConvSpec::new().padding(1).stride(2), &mut rng);
        let mut net = Network::new(Box::new(conv));
        let x = Tensor::ones(&[2, 3, 8, 8]);
        let y = net.forward(&x);
        assert_eq!(y.dims(), &[2, 8, 4, 4]);
        assert_eq!(net.forward(&x), y, "inference is deterministic");
    }

    #[test]
    fn kaiming_init_scale() {
        let mut rng = SeededRng::new(3);
        let conv = Conv2d::new(16, 16, 3, ConvSpec::new(), &mut rng);
        let std_expect = (2.0f32 / (16.0 * 9.0)).sqrt();
        let w = conv.weight();
        let mean = w.mean();
        let var = w.data().iter().map(|x| (x - mean).powi(2)).sum::<f32>() / w.len() as f32;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var.sqrt() - std_expect).abs() < 0.02 * std_expect + 0.01);
    }

    #[test]
    fn hooks_see_conv_output() {
        let mut rng = SeededRng::new(4);
        let mut net = Network::new(Box::new(Conv2d::new(1, 1, 1, ConvSpec::new(), &mut rng)));
        let id = net.layer_infos()[0].id;
        net.hooks().register_forward(id, |ctx, out| {
            assert_eq!(ctx.kind, LayerKind::Conv2d);
            out.map_inplace(|_| 7.0);
        });
        let y = net.forward(&Tensor::ones(&[1, 1, 2, 2]));
        assert!(y.data().iter().all(|&v| v == 7.0));
    }

    #[test]
    fn backward_accumulates_until_zeroed() {
        let mut rng = SeededRng::new(5);
        let mut net = Network::new(Box::new(Conv2d::new(1, 1, 3, ConvSpec::new(), &mut rng)));
        let x = Tensor::ones(&[1, 1, 3, 3]);
        let y = net.forward(&x);
        net.backward(&Tensor::ones(y.dims()));
        let mut g1 = Vec::new();
        net.for_each_param(&mut |p| g1.extend_from_slice(p.grad.data()));
        net.forward(&x);
        net.backward(&Tensor::ones(y.dims()));
        let mut g2 = Vec::new();
        net.for_each_param(&mut |p| g2.extend_from_slice(p.grad.data()));
        for (a, b) in g1.iter().zip(&g2) {
            assert!((b - 2.0 * a).abs() < 1e-5, "second backward doubles grads");
        }
    }

    #[test]
    #[should_panic(expected = "called before forward")]
    fn backward_without_forward_panics() {
        let mut rng = SeededRng::new(6);
        let mut conv = Conv2d::new(1, 1, 1, ConvSpec::new(), &mut rng);
        let reg = HookRegistry::new();
        let mut ctx = BackwardCtx::new(&reg);
        conv.backward(&Tensor::ones(&[1, 1, 1, 1]), &mut ctx);
    }
}
