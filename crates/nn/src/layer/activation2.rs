//! Additional activation functions: [`Sigmoid`], [`Tanh`], [`LeakyRelu`].
//!
//! ReLU (in [`super::activation`]) is what the zoo uses; these variants
//! round out the layer library for custom architectures — notably, sigmoid
//! and leaky-ReLU change the *error-masking* behaviour that fault-injection
//! campaigns measure (a sigmoid squashes egregious corruptions into
//! `[0, 1]`; a leaky ReLU lets negative corruptions through scaled).

use crate::module::{
    leaf_boilerplate, BackwardCtx, ForwardCtx, FusePartner, LayerKind, LayerMeta, Module,
};
use rustfi_tensor::Tensor;

fn stable_sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Logistic sigmoid: `y = 1 / (1 + e^-x)`.
pub struct Sigmoid {
    pub(crate) meta: LayerMeta,
    /// Cached outputs (`y(1-y)` is the local gradient).
    output: Option<Tensor>,
}

impl Sigmoid {
    /// Creates a sigmoid activation.
    pub fn new() -> Self {
        Self {
            meta: LayerMeta::default(),
            output: None,
        }
    }
}

impl Default for Sigmoid {
    fn default() -> Self {
        Self::new()
    }
}

impl Module for Sigmoid {
    leaf_boilerplate!();

    fn kind(&self) -> LayerKind {
        LayerKind::Relu // grouped with activations; not injectable
    }

    fn forward(&mut self, input: &Tensor, ctx: &mut ForwardCtx<'_>) -> Tensor {
        let mut out = input.map(stable_sigmoid);
        rustfi_tensor::tpool::reuse_slot(&mut self.output, out.dims())
            .data_mut()
            .copy_from_slice(out.data());
        ctx.run_forward_hooks(&self.meta, LayerKind::Relu, &mut out);
        out
    }

    fn backward(&mut self, grad_out: &Tensor, ctx: &mut BackwardCtx<'_>) -> Tensor {
        ctx.run_grad_hooks(&self.meta, LayerKind::Relu, grad_out);
        let y = self
            .output
            .as_ref()
            .expect("Sigmoid::backward called before forward");
        grad_out.zip_map(y, |g, y| g * y * (1.0 - y))
    }
}

/// Hyperbolic tangent activation.
pub struct Tanh {
    pub(crate) meta: LayerMeta,
    output: Option<Tensor>,
}

impl Tanh {
    /// Creates a tanh activation.
    pub fn new() -> Self {
        Self {
            meta: LayerMeta::default(),
            output: None,
        }
    }
}

impl Default for Tanh {
    fn default() -> Self {
        Self::new()
    }
}

impl Module for Tanh {
    leaf_boilerplate!();

    fn kind(&self) -> LayerKind {
        LayerKind::Relu
    }

    fn forward(&mut self, input: &Tensor, ctx: &mut ForwardCtx<'_>) -> Tensor {
        let mut out = input.map(f32::tanh);
        rustfi_tensor::tpool::reuse_slot(&mut self.output, out.dims())
            .data_mut()
            .copy_from_slice(out.data());
        ctx.run_forward_hooks(&self.meta, LayerKind::Relu, &mut out);
        out
    }

    fn backward(&mut self, grad_out: &Tensor, ctx: &mut BackwardCtx<'_>) -> Tensor {
        ctx.run_grad_hooks(&self.meta, LayerKind::Relu, grad_out);
        let y = self
            .output
            .as_ref()
            .expect("Tanh::backward called before forward");
        grad_out.zip_map(y, |g, y| g * (1.0 - y * y))
    }
}

/// Leaky ReLU: `y = x` for `x > 0`, `y = slope * x` otherwise.
pub struct LeakyRelu {
    pub(crate) meta: LayerMeta,
    slope: f32,
    mask: Option<Tensor>,
}

impl LeakyRelu {
    /// Creates a leaky ReLU with the given negative-side slope.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= slope < 1`.
    pub fn new(slope: f32) -> Self {
        assert!(
            (0.0..1.0).contains(&slope),
            "leaky slope {slope} out of range"
        );
        Self {
            meta: LayerMeta::default(),
            slope,
            mask: None,
        }
    }
}

impl Module for LeakyRelu {
    leaf_boilerplate!();

    fn kind(&self) -> LayerKind {
        LayerKind::Relu
    }

    fn forward(&mut self, input: &Tensor, ctx: &mut ForwardCtx<'_>) -> Tensor {
        let mut out = Tensor::from_pool(input.dims());
        let mask = rustfi_tensor::tpool::reuse_slot(&mut self.mask, input.dims());
        input.leaky_relu_mask_into(self.slope, &mut out, mask);
        ctx.run_forward_hooks(&self.meta, LayerKind::Relu, &mut out);
        out
    }

    fn backward(&mut self, grad_out: &Tensor, ctx: &mut BackwardCtx<'_>) -> Tensor {
        ctx.run_grad_hooks(&self.meta, LayerKind::Relu, grad_out);
        let mask = self
            .mask
            .as_ref()
            .expect("LeakyRelu::backward called before forward");
        grad_out.mul(mask)
    }

    fn fuse_partner(&self) -> Option<FusePartner> {
        Some(FusePartner::LeakyRelu(self.slope))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::Network;

    #[test]
    fn sigmoid_forward_and_gradient() {
        let mut net = Network::new(Box::new(Sigmoid::new()));
        let y = net.forward(&Tensor::from_vec(vec![0.0, 100.0, -100.0], &[3]));
        assert!((y.data()[0] - 0.5).abs() < 1e-6);
        assert!(y.data()[1] > 0.999 && y.data()[2] < 0.001);
        let g = net.backward(&Tensor::ones(&[3]));
        assert!((g.data()[0] - 0.25).abs() < 1e-6, "sigmoid'(0) = 0.25");
        assert!(g.data()[1] < 1e-3, "saturated gradient vanishes");
    }

    #[test]
    fn sigmoid_squashes_egregious_injections() {
        // The masking property relevant to fault injection: a 1e30
        // corruption upstream of a sigmoid exits as 1.0.
        let mut net = Network::new(Box::new(Sigmoid::new()));
        let y = net.forward(&Tensor::from_vec(vec![1e30], &[1]));
        assert_eq!(y.data()[0], 1.0);
    }

    #[test]
    fn tanh_forward_and_gradient() {
        let mut net = Network::new(Box::new(Tanh::new()));
        let y = net.forward(&Tensor::from_vec(vec![0.0, 2.0], &[2]));
        assert_eq!(y.data()[0], 0.0);
        assert!((y.data()[1] - 2.0f32.tanh()).abs() < 1e-6);
        let g = net.backward(&Tensor::ones(&[2]));
        assert!((g.data()[0] - 1.0).abs() < 1e-6, "tanh'(0) = 1");
        let expect = 1.0 - 2.0f32.tanh().powi(2);
        assert!((g.data()[1] - expect).abs() < 1e-6);
    }

    #[test]
    fn leaky_relu_lets_scaled_negatives_through() {
        let mut net = Network::new(Box::new(LeakyRelu::new(0.1)));
        let y = net.forward(&Tensor::from_vec(vec![-10.0, 5.0], &[2]));
        assert_eq!(y.data(), &[-1.0, 5.0]);
        let g = net.backward(&Tensor::ones(&[2]));
        assert_eq!(g.data(), &[0.1, 1.0]);
    }

    #[test]
    fn leaky_relu_numeric_gradient() {
        let mut net = Network::new(Box::new(LeakyRelu::new(0.2)));
        let x = Tensor::from_vec(vec![-1.5, 0.5, 2.0, -0.1], &[4]);
        net.forward(&x);
        let g = net.backward(&Tensor::ones(&[4]));
        let eps = 1e-3;
        for i in 0..4 {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let num = (net.forward(&xp).sum() - net.forward(&xm).sum()) / (2.0 * eps);
            assert!((num - g.data()[i]).abs() < 1e-2, "elem {i}");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn leaky_relu_rejects_slope_one() {
        LeakyRelu::new(1.0);
    }
}
