//! Container modules that compose layers into topologies: [`Sequential`],
//! [`Residual`] (skip connections), [`Branches`] (parallel paths concatenated
//! along channels, as in Inception/SqueezeNet), and [`ChannelShuffle`]
//! (ShuffleNet's group-mixing permutation).

use crate::module::{
    BackwardCtx, ForwardCtx, FusePartner, LayerId, LayerKind, LayerMeta, Module, Param,
};
use rustfi_tensor::{Act, Tensor};

/// Runs children in order, feeding each output to the next child.
pub struct Sequential {
    pub(crate) meta: LayerMeta,
    children: Vec<Box<dyn Module>>,
}

impl Sequential {
    /// Creates a sequential container.
    pub fn new(children: Vec<Box<dyn Module>>) -> Self {
        Self {
            meta: LayerMeta::default(),
            children,
        }
    }

    /// Appends a child.
    pub fn push(&mut self, child: Box<dyn Module>) {
        self.children.push(child);
    }

    /// Number of direct children.
    pub fn len(&self) -> usize {
        self.children.len()
    }

    /// Whether the container has no children.
    pub fn is_empty(&self) -> bool {
        self.children.is_empty()
    }

    /// Runs children `start..` on `input`, fusing `conv → [bn] → [act]`
    /// groups when a compiled plan is active. Returns the final output
    /// (a pooled copy of `input` when no children remain).
    fn run_tail(&mut self, start: usize, input: &Tensor, ctx: &mut ForwardCtx<'_>) -> Tensor {
        let mut i = start;
        // `None` means `input` is still the current activation.
        let mut x: Option<Tensor> = None;
        while i < self.children.len() {
            let cur = x.as_ref().unwrap_or(input);
            let (next, consumed) = if ctx.plan_active() {
                match self.try_forward_fused(i, cur, ctx) {
                    Some(fused) => fused,
                    None => (ctx.forward_child(self.children[i].as_mut(), cur), 1),
                }
            } else {
                (ctx.forward_child(self.children[i].as_mut(), cur), 1)
            };
            // Each intermediate is dead once the next child has consumed it;
            // retire it so the following forward of this shape recycles it.
            if let Some(old) = x.replace(next) {
                old.into_pool();
            }
            i += consumed;
        }
        x.unwrap_or_else(|| input.pooled_copy())
    }

    /// Attempts to run the fusion group led by child `i`: a conv followed by
    /// an optional batch norm and an optional activation (or a linear
    /// followed by an optional activation). Fuses only when no group member
    /// has forward hooks — an injection or profiling hook on any member
    /// forces the unfused, hook-visible order. Returns the group output and
    /// how many children it consumed, or `None` to fall back to plain
    /// child-at-a-time dispatch.
    fn try_forward_fused(
        &mut self,
        i: usize,
        input: &Tensor,
        ctx: &mut ForwardCtx<'_>,
    ) -> Option<(Tensor, usize)> {
        let leader_kind = self.children[i].kind();
        if !leader_kind.is_injectable() || ctx.layer_has_hooks(self.children[i].meta().id) {
            return None;
        }
        let mut j = i + 1;
        let mut bn_child = None;
        // Conv output is 4-D NCHW, so a BatchNorm2d partner can fold; linear
        // output is 2-D and cannot carry one.
        if leader_kind == LayerKind::Conv2d
            && self
                .children
                .get(j)
                .is_some_and(|c| c.fuse_partner() == Some(FusePartner::BatchNorm))
            && !ctx.layer_has_hooks(self.children[j].meta().id)
        {
            bn_child = Some(j);
            j += 1;
        }
        let mut act = Act::None;
        if let Some(partner) = self.children.get(j).and_then(|c| c.fuse_partner()) {
            let absorbed = match partner {
                FusePartner::Relu => {
                    act = Act::Relu;
                    true
                }
                FusePartner::LeakyRelu(slope) => {
                    act = Act::LeakyRelu(slope);
                    true
                }
                FusePartner::BatchNorm => false,
            };
            if absorbed {
                if ctx.layer_has_hooks(self.children[j].meta().id) {
                    act = Act::None;
                } else {
                    j += 1;
                }
            }
        }
        if bn_child.is_none() && act == Act::None {
            return None;
        }
        let consumed = j - i;
        // Borrow the leader and the batch-norm partner simultaneously: they
        // are disjoint children.
        let (head, tail) = self.children.split_at_mut(i + 1);
        let leader = head[i].as_mut();
        let bn = bn_child.map(|b| {
            tail[b - (i + 1)]
                .bn_fold()
                .expect("BatchNorm partner provides a fold")
        });
        let out = ctx.forward_child_fused(leader, input, bn, act)?;
        Some((out, consumed))
    }
}

impl Module for Sequential {
    fn kind(&self) -> LayerKind {
        LayerKind::Sequential
    }

    fn meta(&self) -> &LayerMeta {
        &self.meta
    }

    fn meta_mut(&mut self) -> &mut LayerMeta {
        &mut self.meta
    }

    fn infer_dims(&self, input: &[usize]) -> Result<Vec<usize>, crate::shape::ShapeError> {
        let mut dims = input.to_vec();
        for child in &self.children {
            dims = child.infer_dims(&dims)?;
        }
        Ok(dims)
    }

    fn forward(&mut self, input: &Tensor, ctx: &mut ForwardCtx<'_>) -> Tensor {
        self.run_tail(0, input, ctx)
    }

    fn backward(&mut self, grad_out: &Tensor, ctx: &mut BackwardCtx<'_>) -> Tensor {
        let mut children = self.children.iter_mut().rev();
        let Some(first) = children.next() else {
            return grad_out.pooled_copy();
        };
        let mut g = first.backward(grad_out, ctx);
        for child in children {
            let next = child.backward(&g, ctx);
            std::mem::replace(&mut g, next).into_pool();
        }
        g
    }

    /// Descends toward `target`: the resume point sits inside (or is) the
    /// child that holds it, because the preceding siblings can be skipped.
    fn resume_point(&self, target: LayerId) -> Option<LayerId> {
        if self.meta.id == target {
            return Some(target);
        }
        self.children.iter().find_map(|c| c.resume_point(target))
    }

    fn forward_from(
        &mut self,
        target: LayerId,
        input: &Tensor,
        ctx: &mut ForwardCtx<'_>,
    ) -> Option<Tensor> {
        if self.meta.id == target {
            return Some(self.forward(input, ctx));
        }
        // Skip every child before the one holding `target`; resume inside
        // it, then run the remaining children normally.
        let idx = self.children.iter().position(|c| c.contains(target))?;
        let x = ctx.forward_child_from(self.children[idx].as_mut(), target, input)?;
        if idx + 1 >= self.children.len() {
            return Some(x);
        }
        let out = self.run_tail(idx + 1, &x, ctx);
        x.into_pool();
        Some(out)
    }

    /// Descends into the child holding `target`, resumes after it, then
    /// runs the remaining children normally. Fails (`None`) only if the
    /// child itself cannot resume after `target` — e.g. `target` is buried
    /// inside a residual block.
    fn forward_after(
        &mut self,
        target: LayerId,
        input: &Tensor,
        ctx: &mut ForwardCtx<'_>,
    ) -> Option<Tensor> {
        if self.meta.id == target {
            return Some(input.pooled_copy());
        }
        let idx = self.children.iter().position(|c| c.contains(target))?;
        let x = self.children[idx].forward_after(target, input, ctx)?;
        if idx + 1 >= self.children.len() {
            return Some(x);
        }
        let out = self.run_tail(idx + 1, &x, ctx);
        x.into_pool();
        Some(out)
    }

    fn visit(&self, f: &mut dyn FnMut(&dyn Module)) {
        f(self);
        for child in &self.children {
            child.visit(f);
        }
    }

    fn visit_mut(&mut self, f: &mut dyn FnMut(&mut dyn Module)) {
        f(self);
        for child in &mut self.children {
            child.visit_mut(f);
        }
    }

    fn find_mut(&mut self, id: LayerId) -> Option<&mut dyn Module> {
        if self.meta.id == id {
            return Some(self);
        }
        self.children.iter_mut().find_map(|c| c.find_mut(id))
    }

    fn for_each_param(&mut self, f: &mut dyn FnMut(Param<'_>)) {
        for child in &mut self.children {
            child.for_each_param(f);
        }
    }

    fn for_each_state(&mut self, f: &mut dyn FnMut(&mut Tensor)) {
        for child in &mut self.children {
            child.for_each_state(f);
        }
    }
}

/// `y = body(x) + shortcut(x)`; the shortcut defaults to identity.
///
/// This is the residual connection of ResNet-style networks. The shortcut,
/// when present, is typically a 1×1 strided convolution matching shapes.
pub struct Residual {
    pub(crate) meta: LayerMeta,
    body: Box<dyn Module>,
    shortcut: Option<Box<dyn Module>>,
}

impl Residual {
    /// A residual block with identity shortcut.
    pub fn new(body: Box<dyn Module>) -> Self {
        Self {
            meta: LayerMeta::default(),
            body,
            shortcut: None,
        }
    }

    /// A residual block with a projection shortcut.
    pub fn with_shortcut(body: Box<dyn Module>, shortcut: Box<dyn Module>) -> Self {
        Self {
            meta: LayerMeta::default(),
            body,
            shortcut: Some(shortcut),
        }
    }
}

impl Module for Residual {
    fn kind(&self) -> LayerKind {
        LayerKind::Residual
    }

    fn meta(&self) -> &LayerMeta {
        &self.meta
    }

    fn meta_mut(&mut self) -> &mut LayerMeta {
        &mut self.meta
    }

    fn infer_dims(&self, input: &[usize]) -> Result<Vec<usize>, crate::shape::ShapeError> {
        let body = self.body.infer_dims(input)?;
        let skip = match &self.shortcut {
            Some(s) => s.infer_dims(input)?,
            None => input.to_vec(),
        };
        if body != skip {
            return Err(crate::shape::ShapeError::ResidualMismatch {
                layer: crate::shape::layer_label(&self.meta, LayerKind::Residual),
                body,
                shortcut: skip,
            });
        }
        Ok(body)
    }

    fn forward(&mut self, input: &Tensor, ctx: &mut ForwardCtx<'_>) -> Tensor {
        let mut main = ctx.forward_child(self.body.as_mut(), input);
        // Sum in place into the body output; the projection output (when
        // any) is dead afterwards, so it goes back to the pool.
        match &mut self.shortcut {
            Some(s) => {
                let skip = ctx.forward_child(s.as_mut(), input);
                assert_eq!(
                    main.dims(),
                    skip.dims(),
                    "residual block {}: body output {:?} does not match shortcut {:?}",
                    self.meta.name,
                    main.dims(),
                    skip.dims()
                );
                main.add_assign(&skip);
                skip.into_pool();
            }
            None => {
                assert_eq!(
                    main.dims(),
                    input.dims(),
                    "residual block {}: body output {:?} does not match shortcut {:?}",
                    self.meta.name,
                    main.dims(),
                    input.dims()
                );
                main.add_assign(input);
            }
        }
        main
    }

    fn backward(&mut self, grad_out: &Tensor, ctx: &mut BackwardCtx<'_>) -> Tensor {
        let mut g_body = self.body.backward(grad_out, ctx);
        match &mut self.shortcut {
            Some(s) => {
                let g_skip = s.backward(grad_out, ctx);
                g_body.add_assign(&g_skip);
                g_skip.into_pool();
            }
            None => g_body.add_assign(grad_out),
        }
        g_body
    }

    fn visit(&self, f: &mut dyn FnMut(&dyn Module)) {
        f(self);
        self.body.visit(f);
        if let Some(s) = &self.shortcut {
            s.visit(f);
        }
    }

    fn visit_mut(&mut self, f: &mut dyn FnMut(&mut dyn Module)) {
        f(self);
        self.body.visit_mut(f);
        if let Some(s) = &mut self.shortcut {
            s.visit_mut(f);
        }
    }

    fn find_mut(&mut self, id: LayerId) -> Option<&mut dyn Module> {
        if self.meta.id == id {
            return Some(self);
        }
        if let Some(m) = self.body.find_mut(id) {
            return Some(m);
        }
        self.shortcut.as_mut().and_then(|s| s.find_mut(id))
    }

    fn for_each_param(&mut self, f: &mut dyn FnMut(Param<'_>)) {
        self.body.for_each_param(f);
        if let Some(s) = &mut self.shortcut {
            s.for_each_param(f);
        }
    }

    fn for_each_state(&mut self, f: &mut dyn FnMut(&mut Tensor)) {
        self.body.for_each_state(f);
        if let Some(s) = &mut self.shortcut {
            s.for_each_state(f);
        }
    }
}

/// Runs branches on the same input and concatenates their outputs along the
/// channel axis (Inception modules, SqueezeNet expand paths, DenseNet-style
/// feature reuse).
pub struct Branches {
    pub(crate) meta: LayerMeta,
    branches: Vec<Box<dyn Module>>,
    /// Channel widths of each branch output, cached for backward splitting.
    split_sizes: Vec<usize>,
    /// When true, the input itself is prepended as branch 0's output
    /// (DenseNet concatenation).
    include_input: bool,
}

impl Branches {
    /// Creates a parallel-branch container.
    ///
    /// # Panics
    ///
    /// Panics if `branches` is empty.
    pub fn new(branches: Vec<Box<dyn Module>>) -> Self {
        assert!(!branches.is_empty(), "Branches needs at least one branch");
        Self {
            meta: LayerMeta::default(),
            branches,
            split_sizes: Vec::new(),
            include_input: false,
        }
    }

    /// Creates a container that concatenates `[input, branch outputs...]` —
    /// the DenseNet pattern `y = concat(x, f(x))`.
    pub fn with_input_passthrough(branches: Vec<Box<dyn Module>>) -> Self {
        let mut b = Self::new(branches);
        b.include_input = true;
        b
    }
}

impl Module for Branches {
    fn kind(&self) -> LayerKind {
        LayerKind::Branches
    }

    fn meta(&self) -> &LayerMeta {
        &self.meta
    }

    fn meta_mut(&mut self) -> &mut LayerMeta {
        &mut self.meta
    }

    fn infer_dims(&self, input: &[usize]) -> Result<Vec<usize>, crate::shape::ShapeError> {
        let label = || crate::shape::layer_label(&self.meta, LayerKind::Branches);
        let mut shapes = Vec::with_capacity(self.branches.len() + 1);
        if self.include_input {
            shapes.push(input.to_vec());
        }
        for b in &self.branches {
            shapes.push(b.infer_dims(input)?);
        }
        let first = shapes.first().expect("at least one branch").clone();
        if first.len() != 4 {
            return Err(crate::shape::ShapeError::WrongRank {
                layer: label(),
                expected: 4,
                got: first,
            });
        }
        let mut channels = 0;
        for s in &shapes {
            // Concatenation needs identical batch and spatial extents.
            if s.len() != 4 || s[0] != first[0] || s[2] != first[2] || s[3] != first[3] {
                return Err(crate::shape::ShapeError::BranchMismatch {
                    layer: label(),
                    first,
                    other: s.clone(),
                });
            }
            channels += s[1];
        }
        Ok(vec![first[0], channels, first[2], first[3]])
    }

    fn forward(&mut self, input: &Tensor, ctx: &mut ForwardCtx<'_>) -> Tensor {
        let mut outputs = Vec::with_capacity(self.branches.len() + 1);
        if self.include_input {
            outputs.push(input.pooled_copy());
        }
        for b in &mut self.branches {
            outputs.push(ctx.forward_child(b.as_mut(), input));
        }
        self.split_sizes.clear();
        self.split_sizes.extend(outputs.iter().map(|o| o.dims4().1));
        let out = Tensor::concat_channels(&outputs);
        for o in outputs {
            o.into_pool();
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor, ctx: &mut BackwardCtx<'_>) -> Tensor {
        assert!(
            !self.split_sizes.is_empty(),
            "Branches::backward called before forward"
        );
        let parts = grad_out.split_channels(&self.split_sizes);
        let mut parts = parts.into_iter();
        let mut grad_in = if self.include_input {
            Some(parts.next().expect("passthrough gradient"))
        } else {
            None
        };
        for b in &mut self.branches {
            let part = parts.next().expect("one gradient per branch");
            let g = b.backward(&part, ctx);
            part.into_pool();
            match &mut grad_in {
                Some(acc) => {
                    acc.add_assign(&g);
                    g.into_pool();
                }
                None => grad_in = Some(g),
            }
        }
        grad_in.expect("at least one branch")
    }

    fn visit(&self, f: &mut dyn FnMut(&dyn Module)) {
        f(self);
        for b in &self.branches {
            b.visit(f);
        }
    }

    fn visit_mut(&mut self, f: &mut dyn FnMut(&mut dyn Module)) {
        f(self);
        for b in &mut self.branches {
            b.visit_mut(f);
        }
    }

    fn find_mut(&mut self, id: LayerId) -> Option<&mut dyn Module> {
        if self.meta.id == id {
            return Some(self);
        }
        self.branches.iter_mut().find_map(|b| b.find_mut(id))
    }

    fn for_each_param(&mut self, f: &mut dyn FnMut(Param<'_>)) {
        for b in &mut self.branches {
            b.for_each_param(f);
        }
    }

    fn for_each_state(&mut self, f: &mut dyn FnMut(&mut Tensor)) {
        for b in &mut self.branches {
            b.for_each_state(f);
        }
    }
}

/// ShuffleNet channel shuffle: reshapes `[g, c/g]` channel groups to
/// `[c/g, g]`, mixing information across grouped convolutions.
pub struct ChannelShuffle {
    pub(crate) meta: LayerMeta,
    groups: usize,
}

impl ChannelShuffle {
    /// Creates a channel shuffle over `groups` groups.
    ///
    /// # Panics
    ///
    /// Panics if `groups == 0`.
    pub fn new(groups: usize) -> Self {
        assert!(groups > 0, "groups must be positive");
        Self {
            meta: LayerMeta::default(),
            groups,
        }
    }

    fn permute(&self, input: &Tensor, inverse: bool) -> Tensor {
        let (n, c, _h, _w) = input.dims4();
        assert_eq!(
            c % self.groups,
            0,
            "channel shuffle: {c} channels not divisible by {} groups",
            self.groups
        );
        let per = c / self.groups;
        // The permutation is a bijection over channels, so every element of
        // the output is written: stale pool contents are fine.
        let mut out = Tensor::from_pool(input.dims());
        for bn in 0..n {
            for ch in 0..c {
                // forward: out[j * g + i] = in[i * per + j] for group i, member j
                let (src, dst) = if !inverse {
                    let i = ch / per;
                    let j = ch % per;
                    (ch, j * self.groups + i)
                } else {
                    let j = ch / self.groups;
                    let i = ch % self.groups;
                    (ch, i * per + j)
                };
                out.fmap_mut(bn, dst).copy_from_slice(input.fmap(bn, src));
            }
        }
        out
    }
}

impl Module for ChannelShuffle {
    fn kind(&self) -> LayerKind {
        LayerKind::ChannelShuffle
    }

    fn infer_dims(&self, input: &[usize]) -> Result<Vec<usize>, crate::shape::ShapeError> {
        let label = || crate::shape::layer_label(&self.meta, LayerKind::ChannelShuffle);
        let &[_n, c, _h, _w] = input else {
            return Err(crate::shape::ShapeError::WrongRank {
                layer: label(),
                expected: 4,
                got: input.to_vec(),
            });
        };
        if c % self.groups != 0 {
            return Err(crate::shape::ShapeError::GroupMismatch {
                layer: label(),
                channels: c,
                groups: self.groups,
            });
        }
        Ok(input.to_vec())
    }

    fn meta(&self) -> &LayerMeta {
        &self.meta
    }

    fn meta_mut(&mut self) -> &mut LayerMeta {
        &mut self.meta
    }

    fn forward(&mut self, input: &Tensor, ctx: &mut ForwardCtx<'_>) -> Tensor {
        let mut out = self.permute(input, false);
        ctx.run_forward_hooks(&self.meta, LayerKind::ChannelShuffle, &mut out);
        out
    }

    fn backward(&mut self, grad_out: &Tensor, ctx: &mut BackwardCtx<'_>) -> Tensor {
        ctx.run_grad_hooks(&self.meta, LayerKind::ChannelShuffle, grad_out);
        self.permute(grad_out, true)
    }

    fn visit(&self, f: &mut dyn FnMut(&dyn Module)) {
        f(self);
    }

    fn visit_mut(&mut self, f: &mut dyn FnMut(&mut dyn Module)) {
        f(self);
    }

    fn find_mut(&mut self, id: LayerId) -> Option<&mut dyn Module> {
        if self.meta.id == id {
            Some(self)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{Conv2d, Relu};
    use crate::module::Network;
    use rustfi_tensor::{ConvSpec, SeededRng, Tensor};

    #[test]
    fn sequential_composes_in_order() {
        let mut net = Network::new(Box::new(Sequential::new(vec![
            Box::new(Relu::new()),
            Box::new(Relu::new()),
        ])));
        let y = net.forward(&Tensor::from_vec(vec![-1.0, 2.0], &[2]));
        assert_eq!(y.data(), &[0.0, 2.0]);
    }

    #[test]
    fn residual_identity_adds_input() {
        // Body is ReLU; input is positive so y = x + x.
        let mut net = Network::new(Box::new(Residual::new(Box::new(Relu::new()))));
        let x = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        assert_eq!(net.forward(&x).data(), &[2.0, 4.0]);
    }

    #[test]
    fn residual_backward_sums_paths() {
        let mut net = Network::new(Box::new(Residual::new(Box::new(Relu::new()))));
        net.forward(&Tensor::from_vec(vec![1.0, -1.0], &[2]));
        let g = net.backward(&Tensor::from_vec(vec![1.0, 1.0], &[2]));
        // Positive input: grad via relu (1) + skip (1) = 2; negative: 0 + 1.
        assert_eq!(g.data(), &[2.0, 1.0]);
    }

    #[test]
    fn residual_with_projection_shortcut() {
        let mut rng = SeededRng::new(1);
        let body = Sequential::new(vec![Box::new(Conv2d::new(
            2,
            4,
            3,
            ConvSpec::new().padding(1).stride(2),
            &mut rng,
        ))]);
        let shortcut = Conv2d::new(2, 4, 1, ConvSpec::new().stride(2), &mut rng);
        let mut net = Network::new(Box::new(Residual::with_shortcut(
            Box::new(body),
            Box::new(shortcut),
        )));
        let y = net.forward(&Tensor::ones(&[1, 2, 8, 8]));
        assert_eq!(y.dims(), &[1, 4, 4, 4]);
        // Backward runs without shape errors and produces input-shaped grads.
        let g = net.backward(&Tensor::ones(y.dims()));
        assert_eq!(g.dims(), &[1, 2, 8, 8]);
    }

    #[test]
    fn branches_concat_channels() {
        let mut rng = SeededRng::new(2);
        let b1 = Conv2d::new(2, 3, 1, ConvSpec::new(), &mut rng);
        let b2 = Conv2d::new(2, 5, 1, ConvSpec::new(), &mut rng);
        let mut net = Network::new(Box::new(Branches::new(vec![Box::new(b1), Box::new(b2)])));
        let y = net.forward(&Tensor::ones(&[1, 2, 4, 4]));
        assert_eq!(y.dims(), &[1, 8, 4, 4]);
        let g = net.backward(&Tensor::ones(y.dims()));
        assert_eq!(g.dims(), &[1, 2, 4, 4]);
    }

    #[test]
    fn branches_passthrough_densenet_pattern() {
        let mut rng = SeededRng::new(3);
        let grow = Conv2d::new(2, 4, 3, ConvSpec::new().padding(1), &mut rng);
        let mut net = Network::new(Box::new(Branches::with_input_passthrough(vec![Box::new(
            grow,
        )])));
        let x = Tensor::ones(&[1, 2, 4, 4]);
        let y = net.forward(&x);
        assert_eq!(y.dims(), &[1, 6, 4, 4]);
        // First two channels are the input itself.
        assert_eq!(y.fmap(0, 0), x.fmap(0, 0));
        assert_eq!(y.fmap(0, 1), x.fmap(0, 1));
        let g = net.backward(&Tensor::ones(y.dims()));
        assert_eq!(g.dims(), x.dims());
    }

    #[test]
    fn channel_shuffle_permutes_and_inverts() {
        let shuffle = ChannelShuffle::new(2);
        let x = Tensor::from_fn(&[1, 4, 1, 1], |i| i as f32);
        let y = shuffle.permute(&x, false);
        // Groups [0,1] and [2,3] interleave to [0,2,1,3].
        assert_eq!(y.data(), &[0.0, 2.0, 1.0, 3.0]);
        let back = shuffle.permute(&y, true);
        assert_eq!(back, x);
    }

    #[test]
    fn channel_shuffle_backward_is_inverse_permutation() {
        let mut net = Network::new(Box::new(ChannelShuffle::new(3)));
        let x = Tensor::from_fn(&[2, 6, 2, 2], |i| i as f32);
        let y = net.forward(&x);
        let g = net.backward(&y);
        assert_eq!(g, x, "shuffling then unshuffling is the identity");
    }

    #[test]
    fn resume_point_stops_at_non_sequential_containers() {
        let mut rng = SeededRng::new(5);
        // seq [ conv, residual { seq [ conv ] }, seq [ conv ] ]
        let body = Sequential::new(vec![Box::new(Conv2d::new(
            2,
            2,
            3,
            ConvSpec::new().padding(1),
            &mut rng,
        ))]);
        let inner = Sequential::new(vec![Box::new(Conv2d::new(
            2,
            2,
            1,
            ConvSpec::new(),
            &mut rng,
        ))]);
        let net = Network::new(Box::new(Sequential::new(vec![
            Box::new(Conv2d::new(2, 2, 1, ConvSpec::new(), &mut rng)),
            Box::new(Residual::new(Box::new(body))),
            Box::new(inner),
        ])));
        let inj = net.injectable_layers();
        assert_eq!(inj.len(), 3);
        // First conv is on the spine: its own input can be cached.
        assert_eq!(net.resume_point(inj[0]), Some(inj[0]));
        // Conv inside the residual: resumption needs the residual's input
        // (the skip path consumes it too), so the block is the resume point.
        let residual_id = net
            .layer_infos()
            .iter()
            .find(|l| l.kind == LayerKind::Residual)
            .unwrap()
            .id;
        assert_eq!(net.resume_point(inj[1]), Some(residual_id));
        // Conv inside a nested sequential: the descent continues through it.
        assert_eq!(net.resume_point(inj[2]), Some(inj[2]));
    }

    #[test]
    fn forward_from_matches_full_forward_through_nested_topologies() {
        let build = || {
            let mut rng = SeededRng::new(6);
            let body = Sequential::new(vec![
                Box::new(Conv2d::new(2, 2, 3, ConvSpec::new().padding(1), &mut rng))
                    as Box<dyn Module>,
                Box::new(Relu::new()),
            ]);
            let tail =
                Sequential::new(vec![
                    Box::new(Conv2d::new(2, 3, 1, ConvSpec::new(), &mut rng)) as Box<dyn Module>,
                ]);
            Network::new(Box::new(Sequential::new(vec![
                Box::new(Conv2d::new(2, 2, 1, ConvSpec::new(), &mut rng)),
                Box::new(Residual::new(Box::new(body))),
                Box::new(tail),
            ])))
        };
        let mut net = build();
        let x = rustfi_tensor::Tensor::from_fn(&[1, 2, 5, 5], |i| (i as f32 * 0.37).sin());
        for target in net.injectable_layers() {
            let resume = net.resume_point(target).unwrap();
            let mut cached = None;
            let full = net.forward_with_capture(&x, &mut |id, input| {
                if id == resume {
                    cached = Some(input.clone());
                }
            });
            let resumed = net.forward_from(target, &cached.unwrap()).unwrap();
            assert_eq!(resumed, full, "resume at {resume} for target {target}");
        }
    }

    #[test]
    fn forward_after_continues_downstream_of_a_leaf() {
        let mut rng = SeededRng::new(7);
        // seq [ conv1, relu2, conv3 ] — ids assigned in pre-order from 0.
        let mut net = Network::new(Box::new(Sequential::new(vec![
            Box::new(Conv2d::new(2, 2, 3, ConvSpec::new().padding(1), &mut rng)),
            Box::new(Relu::new()),
            Box::new(Conv2d::new(2, 3, 1, ConvSpec::new(), &mut rng)),
        ])));
        let conv1 = net.injectable_layers()[0];
        // A hook so the captured intermediate is the *post-hook* output.
        net.hooks().register_forward(conv1, |_, out| {
            for v in out.data_mut() {
                *v += 1.0;
            }
        });
        let x = Tensor::from_fn(&[1, 2, 5, 5], |i| (i as f32 * 0.13).sin());
        let mut after_conv1 = None;
        let full = net.forward_with_capture(&x, &mut |id, input| {
            if id.index() == conv1.index() + 1 {
                after_conv1 = Some(input.clone());
            }
        });
        let resumed = net.forward_after(conv1, &after_conv1.unwrap()).unwrap();
        assert_eq!(resumed, full, "downstream layers reproduce the full pass");
        // Resuming after the final leaf is the identity.
        let last = net.injectable_layers()[1];
        assert_eq!(net.forward_after(last, &full).unwrap(), full);
    }

    #[test]
    fn forward_after_declines_residual_interior() {
        let mut rng = SeededRng::new(8);
        let body = Sequential::new(vec![Box::new(Conv2d::new(
            2,
            2,
            3,
            ConvSpec::new().padding(1),
            &mut rng,
        ))]);
        let mut net = Network::new(Box::new(Sequential::new(vec![Box::new(Residual::new(
            Box::new(body),
        ))])));
        let inner_conv = net.injectable_layers()[0];
        // The skip path consumed the block's input, so the layers after the
        // inner conv cannot run from its output alone.
        assert!(net
            .forward_after(inner_conv, &Tensor::ones(&[1, 2, 5, 5]))
            .is_none());
    }

    /// A spine exercising every fusion shape: conv+bn+relu, conv+leaky,
    /// bare conv, and linear+relu — with non-trivial BN running stats.
    fn plan_test_net() -> crate::module::Network {
        use crate::layer::{BatchNorm2d, Flatten, LeakyRelu, Linear};
        let mut rng = SeededRng::new(11);
        let mut net = crate::module::Network::new(Box::new(Sequential::new(vec![
            Box::new(Conv2d::new(3, 8, 3, ConvSpec::new().padding(1), &mut rng)),
            Box::new(BatchNorm2d::new(8)),
            Box::new(Relu::new()),
            Box::new(Conv2d::new(
                8,
                8,
                3,
                ConvSpec::new().padding(1).stride(2),
                &mut rng,
            )),
            Box::new(LeakyRelu::new(0.1)),
            Box::new(Conv2d::new(8, 4, 1, ConvSpec::new(), &mut rng)),
            Box::new(Flatten::new()),
            Box::new(Linear::new(4 * 3 * 3, 5, &mut rng)),
            Box::new(Relu::new()),
        ])));
        // Give the batch norm non-trivial running statistics.
        net.set_training(true);
        let warm = Tensor::from_fn(&[4, 3, 6, 6], |i| (i as f32 * 0.29).sin() * 2.0);
        net.forward(&warm);
        net.set_training(false);
        net
    }

    fn plan_test_input() -> Tensor {
        Tensor::from_fn(&[2, 3, 6, 6], |i| (i as f32 * 0.41).cos())
    }

    #[test]
    fn planned_forward_is_bit_identical_f32() {
        let mut net = plan_test_net();
        let x = plan_test_input();
        let unplanned = net.forward(&x);
        net.set_plan(true);
        assert!(net.plan());
        let cold = net.forward(&x);
        let warm = net.forward(&x);
        assert_eq!(cold, unplanned, "first planned pass (packs panels)");
        assert_eq!(warm, unplanned, "warm planned pass");
    }

    #[test]
    fn planned_forward_is_bit_identical_int8() {
        use crate::quantized::{Backend, CalibrationTable};
        use std::sync::Arc;
        let mut net = plan_test_net();
        let x = plan_test_input();
        let table = CalibrationTable::calibrate(&mut net, std::slice::from_ref(&x));
        net.set_backend(Backend::Int8(Arc::new(table)));
        let unplanned = net.forward(&x);
        net.set_plan(true);
        assert_eq!(net.forward(&x), unplanned, "planned int8 pass");
        assert_eq!(net.forward(&x), unplanned, "warm planned int8 pass");
    }

    #[test]
    fn hooked_group_member_forces_unfused_order() {
        use crate::module::LayerKind;
        let mut net = plan_test_net();
        let x = plan_test_input();
        // Hook on the first Relu (a fusion partner): mutates the
        // activation, so fused and unfused passes only agree if the plan
        // stands down for that group and the hook actually fires.
        let relu_id = net
            .layer_infos()
            .iter()
            .find(|l| l.kind == LayerKind::Relu)
            .unwrap()
            .id;
        let handle = net.hooks().register_forward(relu_id, |_, out| {
            for v in out.data_mut() {
                *v += 0.25;
            }
        });
        let hooked_unplanned = net.forward(&x);
        net.set_plan(true);
        assert_eq!(
            net.forward(&x),
            hooked_unplanned,
            "hooked partner runs unfused and the hook fires"
        );
        // Removing the hook re-enables fusion, and the result matches the
        // plain (un-hooked) unplanned pass again.
        net.hooks().remove(handle);
        net.set_plan(false);
        let plain = net.forward(&x);
        net.set_plan(true);
        assert_eq!(net.forward(&x), plain);
    }

    #[test]
    fn planned_weight_fault_repacks_and_undo_restores() {
        let mut net = plan_test_net();
        let x = plan_test_input();
        net.set_plan(true);
        let blessed = net.forward(&x);
        let conv = net.injectable_layers()[1];
        let original = {
            let w = net.layer_weight_mut(conv).unwrap();
            let v = w.data()[7];
            w.data_mut()[7] = v * -3.5;
            v
        };
        let faulty = net.forward(&x);
        assert_ne!(faulty, blessed, "stale panels would mask the fault");
        // Exact undo: the repacked panels must reproduce the blessed pass
        // bit for bit.
        net.layer_weight_mut(conv).unwrap().data_mut()[7] = original;
        assert_eq!(net.forward(&x), blessed, "undo restores blessed output");
    }

    #[test]
    fn planned_forward_from_and_after_match_full_pass() {
        let mut net = plan_test_net();
        let x = plan_test_input();
        net.set_plan(true);
        for target in net.injectable_layers() {
            let resume = net.resume_point(target).unwrap();
            let mut at_resume = None;
            let mut after_target = None;
            let full = net.forward_with_capture(&x, &mut |id, input| {
                if id == resume {
                    at_resume = Some(input.clone());
                }
                if id.index() == target.index() + 1 {
                    after_target = Some(input.clone());
                }
            });
            let resumed = net.forward_from(target, &at_resume.unwrap()).unwrap();
            assert_eq!(resumed, full, "forward_from at {target}");
            if let Some(after) = after_target {
                // `after` is the next module's input == target's hooked
                // output only when the group was not fused past target; a
                // fused partner's capture is skipped, so this only fires
                // for the bare conv and final linear. For targets whose
                // successor capture exists, the tail must reproduce the
                // full pass.
                if let Some(tail) = net.forward_after(target, &after) {
                    assert_eq!(tail, full, "forward_after at {target}");
                }
            }
        }
    }

    #[test]
    fn plan_stands_down_for_training_passes() {
        let mut net = plan_test_net();
        let x = plan_test_input();
        net.set_plan(true);
        net.set_training(true);
        // Training forward must run unplanned (batch stats, caches) so a
        // backward pass still works end to end.
        let y = net.forward(&x);
        let g = net.backward(&Tensor::ones(y.dims()));
        assert_eq!(g.dims(), x.dims());
    }

    #[test]
    fn nested_find_mut_reaches_deep_layers() {
        let mut rng = SeededRng::new(4);
        let inner = Sequential::new(vec![Box::new(Conv2d::new(
            1,
            1,
            1,
            ConvSpec::new(),
            &mut rng,
        ))]);
        let outer = Sequential::new(vec![Box::new(Relu::new()), Box::new(inner)]);
        let mut net = Network::new(Box::new(outer));
        let conv_id = net.injectable_layers()[0];
        assert!(net.layer_weight_mut(conv_id).is_some());
    }
}
