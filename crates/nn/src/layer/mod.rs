//! Layer implementations.

pub mod activation;
pub mod activation2;
pub mod container;
pub mod conv;
pub mod linear;
pub mod norm;
pub mod pool;
pub mod simple;

pub use activation::Relu;
pub use activation2::{LeakyRelu, Sigmoid, Tanh};
pub use container::{Branches, ChannelShuffle, Residual, Sequential};
pub use conv::Conv2d;
pub use linear::Linear;
pub use norm::BatchNorm2d;
pub use pool::{AvgPool2d, GlobalAvgPool, MaxPool2d};
pub use simple::{Dropout, Flatten};
