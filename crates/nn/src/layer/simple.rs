//! Shape and regularization layers: [`Flatten`] and [`Dropout`].

use crate::module::{leaf_boilerplate, BackwardCtx, ForwardCtx, LayerKind, LayerMeta, Module};
use rustfi_tensor::Tensor;

/// Flattens `[n, c, h, w]` (or any rank ≥ 2) into `[n, rest]`.
pub struct Flatten {
    pub(crate) meta: LayerMeta,
    input_dims: Option<Vec<usize>>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Self {
            meta: LayerMeta::default(),
            input_dims: None,
        }
    }
}

impl Default for Flatten {
    fn default() -> Self {
        Self::new()
    }
}

impl Module for Flatten {
    leaf_boilerplate!();

    fn kind(&self) -> LayerKind {
        LayerKind::Flatten
    }

    fn infer_dims(&self, input: &[usize]) -> Result<Vec<usize>, crate::shape::ShapeError> {
        if input.len() < 2 {
            return Err(crate::shape::ShapeError::WrongRank {
                layer: crate::shape::layer_label(&self.meta, LayerKind::Flatten),
                expected: 2,
                got: input.to_vec(),
            });
        }
        Ok(vec![input[0], input[1..].iter().product()])
    }

    fn forward(&mut self, input: &Tensor, ctx: &mut ForwardCtx<'_>) -> Tensor {
        assert!(input.ndim() >= 2, "flatten expects rank >= 2");
        let dims_buf = self.input_dims.get_or_insert_with(Vec::new);
        dims_buf.clear();
        dims_buf.extend_from_slice(input.dims());
        let n = input.dims()[0];
        let rest = input.len() / n;
        let mut out = Tensor::from_pool(&[n, rest]);
        out.data_mut().copy_from_slice(input.data());
        ctx.run_forward_hooks(&self.meta, LayerKind::Flatten, &mut out);
        out
    }

    fn backward(&mut self, grad_out: &Tensor, ctx: &mut BackwardCtx<'_>) -> Tensor {
        ctx.run_grad_hooks(&self.meta, LayerKind::Flatten, grad_out);
        let dims = self
            .input_dims
            .as_ref()
            .expect("Flatten::backward called before forward");
        assert_eq!(
            grad_out.len(),
            dims.iter().product::<usize>(),
            "same element count"
        );
        let mut g = Tensor::from_pool(dims);
        g.data_mut().copy_from_slice(grad_out.data());
        g
    }
}

/// Inverted dropout: during training each element is zeroed with probability
/// `p` and survivors are scaled by `1/(1-p)`; inference is the identity.
pub struct Dropout {
    pub(crate) meta: LayerMeta,
    p: f32,
    mask: Option<Tensor>,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= p < 1`.
    pub fn new(p: f32) -> Self {
        assert!(
            (0.0..1.0).contains(&p),
            "dropout probability {p} out of range"
        );
        Self {
            meta: LayerMeta::default(),
            p,
            mask: None,
        }
    }
}

impl Module for Dropout {
    leaf_boilerplate!();

    fn kind(&self) -> LayerKind {
        LayerKind::Dropout
    }

    fn forward(&mut self, input: &Tensor, ctx: &mut ForwardCtx<'_>) -> Tensor {
        let mask = rustfi_tensor::tpool::reuse_slot(&mut self.mask, input.dims());
        let mut out = if ctx.training && self.p > 0.0 {
            let keep = 1.0 - self.p;
            let scale = 1.0 / keep;
            let p = self.p as f64;
            let rng = ctx.rng();
            for m in mask.data_mut() {
                *m = if rng.chance(p) { 0.0 } else { scale };
            }
            input.mul(mask)
        } else {
            mask.data_mut().fill(1.0);
            input.pooled_copy()
        };
        ctx.run_forward_hooks(&self.meta, LayerKind::Dropout, &mut out);
        out
    }

    fn backward(&mut self, grad_out: &Tensor, ctx: &mut BackwardCtx<'_>) -> Tensor {
        ctx.run_grad_hooks(&self.meta, LayerKind::Dropout, grad_out);
        let mask = self
            .mask
            .as_ref()
            .expect("Dropout::backward called before forward");
        grad_out.mul(mask)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::Network;

    #[test]
    fn flatten_roundtrip() {
        let mut net = Network::new(Box::new(Flatten::new()));
        let x = Tensor::from_fn(&[2, 3, 2, 2], |i| i as f32);
        let y = net.forward(&x);
        assert_eq!(y.dims(), &[2, 12]);
        let g = net.backward(&y);
        assert_eq!(g.dims(), x.dims());
        assert_eq!(g, x);
    }

    #[test]
    fn dropout_is_identity_in_eval() {
        let mut net = Network::new(Box::new(Dropout::new(0.5)));
        let x = Tensor::from_fn(&[1, 100], |i| i as f32);
        assert_eq!(net.forward(&x), x);
    }

    #[test]
    fn dropout_zeroes_and_rescales_in_training() {
        let mut net = Network::new(Box::new(Dropout::new(0.5)));
        net.set_training(true);
        let x = Tensor::ones(&[1, 10_000]);
        let y = net.forward(&x);
        let zeros = y.data().iter().filter(|&&v| v == 0.0).count();
        assert!(
            (zeros as f32 / 10_000.0 - 0.5).abs() < 0.05,
            "~half dropped, got {zeros}"
        );
        // Survivors are scaled to preserve expectation.
        assert!(y.data().iter().all(|&v| v == 0.0 || (v - 2.0).abs() < 1e-6));
        assert!((y.mean() - 1.0).abs() < 0.05);
    }

    #[test]
    fn dropout_backward_uses_same_mask() {
        let mut net = Network::new(Box::new(Dropout::new(0.3)));
        net.set_training(true);
        let x = Tensor::ones(&[1, 1000]);
        let y = net.forward(&x);
        let g = net.backward(&Tensor::ones(&[1, 1000]));
        assert_eq!(g, y, "gradient mask equals forward mask");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn dropout_rejects_p_one() {
        Dropout::new(1.0);
    }
}
