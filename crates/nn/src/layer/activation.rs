//! Activation functions.

use crate::module::{
    leaf_boilerplate, BackwardCtx, ForwardCtx, FusePartner, LayerKind, LayerMeta, Module,
};
use rustfi_tensor::Tensor;

/// Rectified linear unit: `y = max(x, 0)`.
///
/// ReLU is the main *masking* mechanism for hardware errors in DNNs (negative
/// corruptions are squashed to zero), which is why fault-injection outcome
/// distributions depend so strongly on where in the network an error lands.
pub struct Relu {
    pub(crate) meta: LayerMeta,
    /// 1.0 where the input was positive; cached for backward.
    mask: Option<Tensor>,
}

impl Relu {
    /// Creates a ReLU activation.
    pub fn new() -> Self {
        Self {
            meta: LayerMeta::default(),
            mask: None,
        }
    }
}

impl Default for Relu {
    fn default() -> Self {
        Self::new()
    }
}

impl Module for Relu {
    leaf_boilerplate!();

    fn kind(&self) -> LayerKind {
        LayerKind::Relu
    }

    fn forward(&mut self, input: &Tensor, ctx: &mut ForwardCtx<'_>) -> Tensor {
        // One fused pass fills both the activation and the backward mask,
        // rewriting the cached mask buffer in place at steady state.
        let mut out = Tensor::from_pool(input.dims());
        let mask = rustfi_tensor::tpool::reuse_slot(&mut self.mask, input.dims());
        input.relu_mask_into(&mut out, mask);
        ctx.run_forward_hooks(&self.meta, LayerKind::Relu, &mut out);
        out
    }

    fn backward(&mut self, grad_out: &Tensor, ctx: &mut BackwardCtx<'_>) -> Tensor {
        ctx.run_grad_hooks(&self.meta, LayerKind::Relu, grad_out);
        let mask = self
            .mask
            .as_ref()
            .expect("Relu::backward called before forward");
        grad_out.mul(mask)
    }

    fn fuse_partner(&self) -> Option<FusePartner> {
        Some(FusePartner::Relu)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::Network;

    #[test]
    fn forward_clamps_negatives() {
        let mut net = Network::new(Box::new(Relu::new()));
        let y = net.forward(&Tensor::from_vec(vec![-2.0, 0.0, 3.0], &[3]));
        assert_eq!(y.data(), &[0.0, 0.0, 3.0]);
    }

    #[test]
    fn backward_masks_gradient() {
        let mut net = Network::new(Box::new(Relu::new()));
        net.forward(&Tensor::from_vec(vec![-2.0, 0.0, 3.0], &[3]));
        let g = net.backward(&Tensor::from_vec(vec![1.0, 1.0, 1.0], &[3]));
        assert_eq!(g.data(), &[0.0, 0.0, 1.0]);
    }

    #[test]
    fn relu_masks_negative_injections() {
        // The canonical error-masking effect: a negative corruption before a
        // ReLU disappears entirely.
        let mut net = Network::new(Box::new(Relu::new()));
        let clean = net.forward(&Tensor::from_vec(vec![-1e30, 0.5], &[2]));
        assert_eq!(clean.data(), &[0.0, 0.5]);
    }
}
