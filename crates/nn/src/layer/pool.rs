//! Pooling layers.

use crate::module::{leaf_boilerplate, BackwardCtx, ForwardCtx, LayerKind, LayerMeta, Module};
use rustfi_tensor::{
    avg_pool2d, avg_pool2d_backward, max_pool2d_backward, max_pool2d_into, PoolSpec, Tensor,
};

/// Max pooling over square windows.
pub struct MaxPool2d {
    pub(crate) meta: LayerMeta,
    spec: PoolSpec,
    cached: Option<(Vec<usize>, Vec<usize>)>, // (argmax, input_dims)
}

/// Rewrites a cached dims vec in place instead of reallocating each forward.
fn store_dims(slot: &mut Option<Vec<usize>>, dims: &[usize]) {
    let buf = slot.get_or_insert_with(Vec::new);
    buf.clear();
    buf.extend_from_slice(dims);
}

/// Shared shape inference for windowed pools.
fn pool_infer_dims(
    meta: &LayerMeta,
    kind: LayerKind,
    spec: &PoolSpec,
    input: &[usize],
) -> Result<Vec<usize>, crate::shape::ShapeError> {
    let label = || crate::shape::layer_label(meta, kind);
    let &[n, c, h, w] = input else {
        return Err(crate::shape::ShapeError::WrongRank {
            layer: label(),
            expected: 4,
            got: input.to_vec(),
        });
    };
    let too_large = |input| crate::shape::ShapeError::KernelTooLarge {
        layer: label(),
        kernel: spec.kernel,
        input,
    };
    let oh = spec.checked_out_size(h).ok_or_else(|| too_large(h))?;
    let ow = spec.checked_out_size(w).ok_or_else(|| too_large(w))?;
    Ok(vec![n, c, oh, ow])
}

impl MaxPool2d {
    /// A `kernel`-sized max pool moving by `stride`.
    pub fn new(kernel: usize, stride: usize) -> Self {
        Self {
            meta: LayerMeta::default(),
            spec: PoolSpec::new(kernel, stride),
            cached: None,
        }
    }
}

impl Module for MaxPool2d {
    leaf_boilerplate!();

    fn kind(&self) -> LayerKind {
        LayerKind::MaxPool2d
    }

    fn infer_dims(&self, input: &[usize]) -> Result<Vec<usize>, crate::shape::ShapeError> {
        pool_infer_dims(&self.meta, LayerKind::MaxPool2d, &self.spec, input)
    }

    fn forward(&mut self, input: &Tensor, ctx: &mut ForwardCtx<'_>) -> Tensor {
        // Recycle the argmax and dims vecs across forwards of the same shape.
        let (mut argmax, mut dims) = self.cached.take().unwrap_or_default();
        dims.clear();
        dims.extend_from_slice(input.dims());
        // Pre-sized from the pool (fully overwritten below) so the `_into`
        // call never has to churn a placeholder tensor.
        let (n, c, h, w) = input.dims4();
        let mut out = Tensor::from_pool(&[n, c, self.spec.out_size(h), self.spec.out_size(w)]);
        max_pool2d_into(input, &self.spec, &mut out, &mut argmax);
        self.cached = Some((argmax, dims));
        ctx.run_forward_hooks(&self.meta, LayerKind::MaxPool2d, &mut out);
        out
    }

    fn backward(&mut self, grad_out: &Tensor, ctx: &mut BackwardCtx<'_>) -> Tensor {
        ctx.run_grad_hooks(&self.meta, LayerKind::MaxPool2d, grad_out);
        let (argmax, dims) = self
            .cached
            .as_ref()
            .expect("MaxPool2d::backward called before forward");
        max_pool2d_backward(grad_out, argmax, dims)
    }
}

/// Average pooling over square windows.
pub struct AvgPool2d {
    pub(crate) meta: LayerMeta,
    spec: PoolSpec,
    input_dims: Option<Vec<usize>>,
}

impl AvgPool2d {
    /// A `kernel`-sized average pool moving by `stride`.
    pub fn new(kernel: usize, stride: usize) -> Self {
        Self {
            meta: LayerMeta::default(),
            spec: PoolSpec::new(kernel, stride),
            input_dims: None,
        }
    }
}

impl Module for AvgPool2d {
    leaf_boilerplate!();

    fn kind(&self) -> LayerKind {
        LayerKind::AvgPool2d
    }

    fn infer_dims(&self, input: &[usize]) -> Result<Vec<usize>, crate::shape::ShapeError> {
        pool_infer_dims(&self.meta, LayerKind::AvgPool2d, &self.spec, input)
    }

    fn forward(&mut self, input: &Tensor, ctx: &mut ForwardCtx<'_>) -> Tensor {
        store_dims(&mut self.input_dims, input.dims());
        let mut out = avg_pool2d(input, &self.spec);
        ctx.run_forward_hooks(&self.meta, LayerKind::AvgPool2d, &mut out);
        out
    }

    fn backward(&mut self, grad_out: &Tensor, ctx: &mut BackwardCtx<'_>) -> Tensor {
        ctx.run_grad_hooks(&self.meta, LayerKind::AvgPool2d, grad_out);
        let dims = self
            .input_dims
            .as_ref()
            .expect("AvgPool2d::backward called before forward");
        avg_pool2d_backward(grad_out, &self.spec, dims)
    }
}

/// Global average pooling: `[n, c, h, w] -> [n, c, 1, 1]`.
pub struct GlobalAvgPool {
    pub(crate) meta: LayerMeta,
    input_dims: Option<Vec<usize>>,
}

impl GlobalAvgPool {
    /// Creates a global average pool.
    pub fn new() -> Self {
        Self {
            meta: LayerMeta::default(),
            input_dims: None,
        }
    }
}

impl Default for GlobalAvgPool {
    fn default() -> Self {
        Self::new()
    }
}

impl Module for GlobalAvgPool {
    leaf_boilerplate!();

    fn kind(&self) -> LayerKind {
        LayerKind::GlobalAvgPool
    }

    fn infer_dims(&self, input: &[usize]) -> Result<Vec<usize>, crate::shape::ShapeError> {
        let &[n, c, _h, _w] = input else {
            return Err(crate::shape::ShapeError::WrongRank {
                layer: crate::shape::layer_label(&self.meta, LayerKind::GlobalAvgPool),
                expected: 4,
                got: input.to_vec(),
            });
        };
        Ok(vec![n, c, 1, 1])
    }

    fn forward(&mut self, input: &Tensor, ctx: &mut ForwardCtx<'_>) -> Tensor {
        let (n, c, h, w) = input.dims4();
        store_dims(&mut self.input_dims, input.dims());
        let norm = 1.0 / (h * w) as f32;
        // Every element is assigned below, so stale pool contents are fine.
        let mut out = Tensor::from_pool(&[n, c, 1, 1]);
        for bn in 0..n {
            for ch in 0..c {
                let s: f32 = input.fmap(bn, ch).iter().sum();
                out.fmap_mut(bn, ch)[0] = s * norm;
            }
        }
        ctx.run_forward_hooks(&self.meta, LayerKind::GlobalAvgPool, &mut out);
        out
    }

    fn backward(&mut self, grad_out: &Tensor, ctx: &mut BackwardCtx<'_>) -> Tensor {
        ctx.run_grad_hooks(&self.meta, LayerKind::GlobalAvgPool, grad_out);
        let dims = self
            .input_dims
            .as_ref()
            .expect("GlobalAvgPool::backward called before forward");
        let (n, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
        let norm = 1.0 / (h * w) as f32;
        // Every element is assigned below, so stale pool contents are fine.
        let mut gin = Tensor::from_pool(dims);
        for bn in 0..n {
            for ch in 0..c {
                let g = grad_out.fmap(bn, ch)[0] * norm;
                for v in gin.fmap_mut(bn, ch) {
                    *v = g;
                }
            }
        }
        gin
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::Network;

    #[test]
    fn max_pool_layer_forward_backward() {
        let mut net = Network::new(Box::new(MaxPool2d::new(2, 2)));
        let x = Tensor::from_vec(vec![1.0, 9.0, 3.0, 4.0], &[1, 1, 2, 2]);
        let y = net.forward(&x);
        assert_eq!(y.data(), &[9.0]);
        let g = net.backward(&Tensor::from_vec(vec![1.0], &[1, 1, 1, 1]));
        assert_eq!(g.data(), &[0.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn avg_pool_layer_forward_backward() {
        let mut net = Network::new(Box::new(AvgPool2d::new(2, 2)));
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]);
        assert_eq!(net.forward(&x).data(), &[2.5]);
        let g = net.backward(&Tensor::from_vec(vec![4.0], &[1, 1, 1, 1]));
        assert_eq!(g.data(), &[1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn global_avg_pool_shapes_and_values() {
        let mut net = Network::new(Box::new(GlobalAvgPool::new()));
        let x = Tensor::from_fn(&[2, 3, 4, 4], |i| (i % 16) as f32);
        let y = net.forward(&x);
        assert_eq!(y.dims(), &[2, 3, 1, 1]);
        assert!((y.at(&[0, 0, 0, 0]) - 7.5).abs() < 1e-6);
        let g = net.backward(&Tensor::ones(&[2, 3, 1, 1]));
        assert_eq!(g.dims(), x.dims());
        assert!((g.data()[0] - 1.0 / 16.0).abs() < 1e-7);
        assert!((g.sum() - 6.0).abs() < 1e-4, "gradient mass is conserved");
    }
}
