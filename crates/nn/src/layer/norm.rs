//! Batch normalization.

use crate::module::{
    leaf_boilerplate, BackwardCtx, ForwardCtx, FusePartner, LayerKind, LayerMeta, Module, Param,
};
use rustfi_tensor::{BnFoldView, Tensor};

/// 2-D batch normalization over the channel axis of an `NCHW` tensor.
///
/// In training mode it normalizes with batch statistics and updates running
/// estimates with exponential averaging; in inference mode it uses the
/// running estimates. `weight`/`bias` are the affine `gamma`/`beta`.
pub struct BatchNorm2d {
    pub(crate) meta: LayerMeta,
    gamma: Tensor,
    beta: Tensor,
    grad_gamma: Tensor,
    grad_beta: Tensor,
    running_mean: Tensor,
    running_var: Tensor,
    momentum: f32,
    eps: f32,
    /// Cached for backward: (normalized input, 1/std per channel, input, batch mean).
    cache: Option<BnCache>,
    /// Per-channel mean scratch, reused across forwards to stay allocation-free.
    mean_scratch: Vec<f32>,
    /// Compiled-plan fold cache: `1/sqrt(running_var + eps)` per channel,
    /// computed with the exact expression the inference forward uses so the
    /// fused epilogue is bit-identical. Stale whenever the running stats may
    /// have changed.
    fold_inv_std: Vec<f32>,
    fold_stale: bool,
}

struct BnCache {
    x_hat: Tensor,
    inv_std: Vec<f32>,
    training: bool,
}

impl BatchNorm2d {
    /// Creates a batch norm over `channels` with default momentum 0.1 and
    /// epsilon 1e-5.
    pub fn new(channels: usize) -> Self {
        Self {
            meta: LayerMeta::default(),
            gamma: Tensor::ones(&[channels]),
            beta: Tensor::zeros(&[channels]),
            grad_gamma: Tensor::zeros(&[channels]),
            grad_beta: Tensor::zeros(&[channels]),
            running_mean: Tensor::zeros(&[channels]),
            running_var: Tensor::ones(&[channels]),
            momentum: 0.1,
            eps: 1e-5,
            cache: None,
            mean_scratch: Vec::new(),
            fold_inv_std: Vec::new(),
            fold_stale: true,
        }
    }

    fn channels(&self) -> usize {
        self.gamma.len()
    }
}

impl Module for BatchNorm2d {
    leaf_boilerplate!();

    fn kind(&self) -> LayerKind {
        LayerKind::BatchNorm2d
    }

    fn infer_dims(&self, input: &[usize]) -> Result<Vec<usize>, crate::shape::ShapeError> {
        let label = || crate::shape::layer_label(&self.meta, LayerKind::BatchNorm2d);
        let &[_n, c, _h, _w] = input else {
            return Err(crate::shape::ShapeError::WrongRank {
                layer: label(),
                expected: 4,
                got: input.to_vec(),
            });
        };
        if c != self.channels() {
            return Err(crate::shape::ShapeError::ChannelMismatch {
                layer: label(),
                expected: self.channels(),
                got: c,
            });
        }
        Ok(input.to_vec())
    }

    #[allow(clippy::needless_range_loop)]
    fn forward(&mut self, input: &Tensor, ctx: &mut ForwardCtx<'_>) -> Tensor {
        let (n, c, h, w) = input.dims4();
        assert_eq!(
            c,
            self.channels(),
            "batch norm {} expects {} channels, got {c}",
            self.meta.name,
            self.channels()
        );
        let count = (n * h * w) as f32;
        if ctx.training {
            // Running statistics are about to change; the plan fold cache
            // must recompute on next use.
            self.fold_stale = true;
        }
        // Recycle the previous forward's cache buffers: at steady state the
        // x_hat tensor, the inv_std vector, and the mean scratch are all
        // rewritten in place.
        let (mut x_hat_slot, mut inv_stds) = match self.cache.take() {
            Some(cache) => (Some(cache.x_hat), cache.inv_std),
            None => (None, Vec::new()),
        };
        inv_stds.clear();
        inv_stds.resize(c, 0.0);
        self.mean_scratch.clear();
        self.mean_scratch.resize(c, 0.0);

        for ch in 0..c {
            let (mean, var) = if ctx.training {
                let mut mean = 0.0;
                for bn in 0..n {
                    mean += input.fmap(bn, ch).iter().sum::<f32>();
                }
                mean /= count;
                let mut var = 0.0;
                for bn in 0..n {
                    var += input
                        .fmap(bn, ch)
                        .iter()
                        .map(|x| (x - mean).powi(2))
                        .sum::<f32>();
                }
                var /= count;
                // Update running statistics.
                let m = self.momentum;
                self.running_mean.data_mut()[ch] =
                    (1.0 - m) * self.running_mean.data()[ch] + m * mean;
                self.running_var.data_mut()[ch] = (1.0 - m) * self.running_var.data()[ch] + m * var;
                (mean, var)
            } else {
                (self.running_mean.data()[ch], self.running_var.data()[ch])
            };
            self.mean_scratch[ch] = mean;
            inv_stds[ch] = 1.0 / (var + self.eps).sqrt();
        }

        let mut out = Tensor::from_pool(input.dims());
        let x_hat = rustfi_tensor::tpool::reuse_slot(&mut x_hat_slot, input.dims());
        input.batchnorm2d_into(
            &self.mean_scratch,
            &inv_stds,
            self.gamma.data(),
            self.beta.data(),
            x_hat,
            &mut out,
        );
        self.cache = Some(BnCache {
            x_hat: x_hat_slot.expect("x_hat slot was just filled"),
            inv_std: inv_stds,
            training: ctx.training,
        });
        ctx.run_forward_hooks(&self.meta, LayerKind::BatchNorm2d, &mut out);
        out
    }

    fn backward(&mut self, grad_out: &Tensor, ctx: &mut BackwardCtx<'_>) -> Tensor {
        ctx.run_grad_hooks(&self.meta, LayerKind::BatchNorm2d, grad_out);
        let cache = self
            .cache
            .as_ref()
            .expect("BatchNorm2d::backward called before forward");
        let (n, c, h, w) = grad_out.dims4();
        let hw = h * w;
        let count = (n * hw) as f32;
        // Every element is assigned below, so stale pool contents are fine.
        let mut gin = Tensor::from_pool(grad_out.dims());

        for ch in 0..c {
            let g = self.gamma.data()[ch];
            let inv_std = cache.inv_std[ch];
            // Accumulate dgamma/dbeta and intermediate sums.
            let mut sum_dy = 0.0;
            let mut sum_dy_xhat = 0.0;
            for bn in 0..n {
                let dy = grad_out.fmap(bn, ch);
                let xh = cache.x_hat.fmap(bn, ch);
                for (dyv, xhv) in dy.iter().zip(xh) {
                    sum_dy += dyv;
                    sum_dy_xhat += dyv * xhv;
                }
            }
            self.grad_gamma.data_mut()[ch] += sum_dy_xhat;
            self.grad_beta.data_mut()[ch] += sum_dy;

            if cache.training {
                // Full batch-stats backward.
                for bn in 0..n {
                    let dy = grad_out.fmap(bn, ch);
                    let xh = cache.x_hat.fmap(bn, ch);
                    let dst = gin.fmap_mut(bn, ch);
                    for i in 0..h * w {
                        dst[i] =
                            g * inv_std * (dy[i] - sum_dy / count - xh[i] * sum_dy_xhat / count);
                    }
                }
            } else {
                // Running-stats mode: mean/var are constants.
                for bn in 0..n {
                    let dy = grad_out.fmap(bn, ch);
                    let dst = gin.fmap_mut(bn, ch);
                    for i in 0..h * w {
                        dst[i] = g * inv_std * dy[i];
                    }
                }
            }
        }
        gin
    }

    fn for_each_param(&mut self, f: &mut dyn FnMut(Param<'_>)) {
        f(Param {
            value: &mut self.gamma,
            grad: &mut self.grad_gamma,
        });
        f(Param {
            value: &mut self.beta,
            grad: &mut self.grad_beta,
        });
    }

    fn for_each_state(&mut self, f: &mut dyn FnMut(&mut Tensor)) {
        self.fold_stale = true;
        f(&mut self.gamma);
        f(&mut self.beta);
        f(&mut self.running_mean);
        f(&mut self.running_var);
    }

    fn weight_mut(&mut self) -> Option<&mut Tensor> {
        Some(&mut self.gamma)
    }

    fn bias_mut(&mut self) -> Option<&mut Tensor> {
        Some(&mut self.beta)
    }

    fn fuse_partner(&self) -> Option<FusePartner> {
        Some(FusePartner::BatchNorm)
    }

    fn bn_fold(&mut self) -> Option<BnFoldView<'_>> {
        let c = self.channels();
        if self.fold_stale || self.fold_inv_std.len() != c {
            self.fold_inv_std.clear();
            self.fold_inv_std.resize(c, 0.0);
            for ch in 0..c {
                // Exact same expression as the inference forward.
                self.fold_inv_std[ch] = 1.0 / (self.running_var.data()[ch] + self.eps).sqrt();
            }
            self.fold_stale = false;
        }
        Some(BnFoldView {
            mean: self.running_mean.data(),
            inv_std: &self.fold_inv_std,
            gamma: self.gamma.data(),
            beta: self.beta.data(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::Network;
    use rustfi_tensor::SeededRng;

    #[test]
    fn training_pass_normalizes_batch() {
        let mut net = Network::new(Box::new(BatchNorm2d::new(2)));
        net.set_training(true);
        let mut rng = SeededRng::new(1);
        let x = Tensor::rand_normal(&[4, 2, 3, 3], 5.0, 2.0, &mut rng);
        let y = net.forward(&x);
        // Per-channel output should be ~N(0, 1) since gamma=1, beta=0.
        for ch in 0..2 {
            let mut vals = Vec::new();
            for bn in 0..4 {
                vals.extend_from_slice(y.fmap(bn, ch));
            }
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            let var: f32 = vals.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-4, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "var {var}");
        }
    }

    #[test]
    fn eval_uses_running_stats() {
        let mut net = Network::new(Box::new(BatchNorm2d::new(1)));
        // With fresh running stats (mean 0, var 1), eval is identity.
        let x = Tensor::from_vec(vec![1.0, -2.0, 0.5, 3.0], &[1, 1, 2, 2]);
        let y = net.forward(&x);
        for (a, b) in x.data().iter().zip(y.data()) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn running_stats_track_batches() {
        let mut net = Network::new(Box::new(BatchNorm2d::new(1)));
        net.set_training(true);
        let x = Tensor::full(&[8, 1, 2, 2], 10.0);
        for _ in 0..200 {
            net.forward(&x);
        }
        net.set_training(false);
        // After many constant batches the running mean approaches 10.
        let y = net.forward(&x);
        assert!(
            y.data().iter().all(|v| v.abs() < 0.5),
            "output ~0, got {:?}",
            &y.data()[..2]
        );
    }

    #[test]
    fn numeric_gradient_training_mode() {
        let mut net = Network::new(Box::new(BatchNorm2d::new(2)));
        net.set_training(true);
        let mut rng = SeededRng::new(3);
        let x = Tensor::rand_normal(&[2, 2, 2, 2], 1.0, 1.5, &mut rng);
        // Loss = weighted sum to break symmetry.
        let w = Tensor::from_fn(&[2, 2, 2, 2], |i| (i as f32 * 0.37).sin());
        let y = net.forward(&x);
        let _ = y;
        let gin = net.backward(&w);
        let loss = |net: &mut Network, x: &Tensor| net.forward(x).mul(&w).sum();
        let eps = 1e-2f32;
        for &i in &[0usize, 3, 7, 12, 15] {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let num = (loss(&mut net, &xp) - loss(&mut net, &xm)) / (2.0 * eps);
            assert!(
                (num - gin.data()[i]).abs() < 2e-2,
                "bn input grad {i}: {num} vs {}",
                gin.data()[i]
            );
        }
    }

    #[test]
    fn state_includes_running_buffers() {
        let mut net = Network::new(Box::new(BatchNorm2d::new(3)));
        let mut count = 0;
        net.for_each_state(&mut |_| count += 1);
        assert_eq!(count, 4, "gamma, beta, running_mean, running_var");
        let mut params = 0;
        net.for_each_param(&mut |_| params += 1);
        assert_eq!(params, 2, "only gamma/beta are trainable");
    }
}
