//! Random architecture generator: the model half of the differential fuzzer.
//!
//! [`ArchSpec::sample`] composes a network from the same building blocks the
//! hand-written zoo uses — plain/grouped/strided convolutions, batch norm,
//! four activations, pooling, [`Residual`] and [`Branches`] containers,
//! channel shuffles — under a deterministic [`SeededRng`] stream, so one
//! `u64` seed reproduces the exact architecture anywhere. Proposals are
//! validated up front with [`Module::infer_dims`]; invalid compositions
//! (including deliberately corrupted residual blocks the sampler emits to
//! keep that path honest) are rejected and resampled, never panicking.
//!
//! [`Residual`]: crate::layer::container::Residual
//! [`Branches`]: crate::layer::container::Branches
//! [`Module::infer_dims`]: crate::Module::infer_dims

use crate::layer::{
    AvgPool2d, BatchNorm2d, Branches, ChannelShuffle, Conv2d, Flatten, GlobalAvgPool, LeakyRelu,
    Linear, MaxPool2d, Relu, Residual, Sequential, Sigmoid, Tanh,
};
use crate::module::{Module, Network};
use rustfi_tensor::{ConvSpec, SeededRng};
use std::fmt;

/// One operation of a randomly composed architecture.
///
/// The four container-free activations are collapsed into [`OpSpec::Act`] so
/// the sampler can pick among them with one draw.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpSpec {
    /// A square convolution `in_ch -> out_ch`.
    Conv {
        /// Input channels.
        in_ch: usize,
        /// Output channels.
        out_ch: usize,
        /// Square kernel size.
        kernel: usize,
        /// Stride in both spatial dims.
        stride: usize,
        /// Symmetric zero padding.
        padding: usize,
        /// Filter groups (1 = dense).
        groups: usize,
    },
    /// Batch normalization over `channels`.
    BatchNorm {
        /// Channel count the norm is built for.
        channels: usize,
    },
    /// An element-wise activation.
    Act(ActKind),
    /// Max pooling with a square window.
    MaxPool {
        /// Window size.
        kernel: usize,
        /// Step between windows.
        stride: usize,
    },
    /// Average pooling with a square window.
    AvgPool {
        /// Window size.
        kernel: usize,
        /// Step between windows.
        stride: usize,
    },
    /// ShuffleNet channel shuffle over `groups`.
    Shuffle {
        /// Group count.
        groups: usize,
    },
    /// `y = body(x) + shortcut(x)`; identity shortcut when `shortcut` is
    /// `None`.
    Residual {
        /// Main path.
        body: Vec<OpSpec>,
        /// Projection path; `None` = identity.
        shortcut: Option<Vec<OpSpec>>,
    },
    /// Parallel paths concatenated along channels; `passthrough` prepends
    /// the input itself (DenseNet pattern).
    Branches {
        /// The parallel paths.
        branches: Vec<Vec<OpSpec>>,
        /// Whether the input is concatenated as branch 0.
        passthrough: bool,
    },
}

/// Which element-wise activation an [`OpSpec::Act`] builds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActKind {
    /// `max(0, x)`.
    Relu,
    /// `max(0.1 x, x)`.
    LeakyRelu,
    /// Logistic sigmoid.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
}

impl ActKind {
    const ALL: [ActKind; 4] = [
        ActKind::Relu,
        ActKind::LeakyRelu,
        ActKind::Sigmoid,
        ActKind::Tanh,
    ];
}

impl OpSpec {
    /// Materializes this op, drawing any weights from `rng`.
    fn build(&self, rng: &mut SeededRng) -> Box<dyn Module> {
        match self {
            OpSpec::Conv {
                in_ch,
                out_ch,
                kernel,
                stride,
                padding,
                groups,
            } => Box::new(Conv2d::new(
                *in_ch,
                *out_ch,
                *kernel,
                ConvSpec::new()
                    .stride(*stride)
                    .padding(*padding)
                    .groups(*groups),
                rng,
            )),
            OpSpec::BatchNorm { channels } => Box::new(BatchNorm2d::new(*channels)),
            OpSpec::Act(ActKind::Relu) => Box::new(Relu::new()),
            OpSpec::Act(ActKind::LeakyRelu) => Box::new(LeakyRelu::new(0.1)),
            OpSpec::Act(ActKind::Sigmoid) => Box::new(Sigmoid::new()),
            OpSpec::Act(ActKind::Tanh) => Box::new(Tanh::new()),
            OpSpec::MaxPool { kernel, stride } => Box::new(MaxPool2d::new(*kernel, *stride)),
            OpSpec::AvgPool { kernel, stride } => Box::new(AvgPool2d::new(*kernel, *stride)),
            OpSpec::Shuffle { groups } => Box::new(ChannelShuffle::new(*groups)),
            OpSpec::Residual { body, shortcut } => {
                let body = Box::new(Sequential::new(build_ops(body, rng)));
                match shortcut {
                    None => Box::new(Residual::new(body)),
                    Some(s) => Box::new(Residual::with_shortcut(
                        body,
                        Box::new(Sequential::new(build_ops(s, rng))),
                    )),
                }
            }
            OpSpec::Branches {
                branches,
                passthrough,
            } => {
                let paths = branches
                    .iter()
                    .map(|b| Box::new(Sequential::new(build_ops(b, rng))) as Box<dyn Module>)
                    .collect();
                Box::new(if *passthrough {
                    Branches::with_input_passthrough(paths)
                } else {
                    Branches::new(paths)
                })
            }
        }
    }

    /// Channel count this op hands downstream when fed `in_ch` channels.
    /// Purely nominal — shape *validity* is established by
    /// [`Module::infer_dims`](crate::Module::infer_dims) on the built tree.
    fn out_channels(&self, in_ch: usize) -> usize {
        match self {
            OpSpec::Conv { out_ch, .. } => *out_ch,
            OpSpec::Residual { body, .. } => out_channels(body, in_ch),
            OpSpec::Branches {
                branches,
                passthrough,
            } => {
                let mut c = if *passthrough { in_ch } else { 0 };
                for b in branches {
                    c += out_channels(b, in_ch);
                }
                c
            }
            _ => in_ch,
        }
    }

    /// Number of leaf layers (modules without children) this op expands to.
    fn leaf_count(&self) -> usize {
        match self {
            OpSpec::Residual { body, shortcut } => {
                body.iter().map(OpSpec::leaf_count).sum::<usize>()
                    + shortcut
                        .as_ref()
                        .map_or(0, |s| s.iter().map(OpSpec::leaf_count).sum())
            }
            OpSpec::Branches { branches, .. } => branches
                .iter()
                .flat_map(|b| b.iter().map(OpSpec::leaf_count))
                .sum(),
            _ => 1,
        }
    }
}

fn build_ops(ops: &[OpSpec], rng: &mut SeededRng) -> Vec<Box<dyn Module>> {
    ops.iter().map(|op| op.build(rng)).collect()
}

fn out_channels(ops: &[OpSpec], mut ch: usize) -> usize {
    for op in ops {
        ch = op.out_channels(ch);
    }
    ch
}

/// Containers the sampler can be forced to include (see
/// [`ArchSpec::sample_with`]); used to pin coverage, e.g. INT8 campaigns on
/// residual + branch topologies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ForcedTopology {
    /// Guarantee at least one [`OpSpec::Residual`] block.
    pub residual: bool,
    /// Guarantee at least one [`OpSpec::Branches`] block.
    pub branches: bool,
}

/// A fully specified random architecture: rebuildable, displayable, and
/// validated at composition time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArchSpec {
    /// Input channels (1–3).
    pub in_channels: usize,
    /// Square input extent.
    pub image_hw: usize,
    /// Classifier width.
    pub num_classes: usize,
    /// Seed for weight initialization.
    pub weight_seed: u64,
    /// The sampled body; a GAP → flatten → linear head is appended on build.
    pub trunk: Vec<OpSpec>,
    /// How many invalid block proposals were rejected (via typed
    /// [`ShapeError`](crate::ShapeError)s) while sampling this spec.
    pub rejected: usize,
}

impl ArchSpec {
    /// Samples an architecture from the rng stream. The first block is
    /// always a plain convolution (so every sample has injectable neurons
    /// beyond the classifier); 1–3 further blocks draw from the full
    /// repertoire.
    pub fn sample(rng: &mut SeededRng) -> Self {
        Self::sample_with(rng, ForcedTopology::default())
    }

    /// [`ArchSpec::sample`] with guaranteed container coverage: forced
    /// blocks are inserted right after the stem conv.
    pub fn sample_with(rng: &mut SeededRng, forced: ForcedTopology) -> Self {
        let in_channels = rng.range(1, 4);
        let image_hw = if rng.chance(0.5) { 8 } else { 16 };
        let num_classes = rng.range(2, 6);
        let weight_seed = ((rng.below(1 << 32) as u64) << 32) | rng.below(1 << 32) as u64;

        let mut spec = ArchSpec {
            in_channels,
            image_hw,
            num_classes,
            weight_seed,
            trunk: Vec::new(),
            rejected: 0,
        };
        let mut ch = in_channels;
        let mut hw = image_hw;

        // Stem, forced containers, then free blocks.
        let mut plan: Vec<Option<BlockKind>> = vec![Some(BlockKind::Conv)];
        if forced.residual {
            plan.push(Some(BlockKind::Residual));
        }
        if forced.branches {
            plan.push(Some(BlockKind::Branches));
        }
        for _ in 0..rng.range(1, 4) {
            plan.push(None);
        }

        for slot in plan {
            // Reject-and-resample: a proposal may be geometrically invalid
            // (the sampler deliberately corrupts some residual bodies), in
            // which case the built tree reports a typed ShapeError and a
            // fresh block is drawn. Bounded: a plain conv block is always
            // valid, so the loop terminates.
            loop {
                let kind = slot.unwrap_or_else(|| BlockKind::pick(rng, hw));
                let block = propose_block(rng, kind, ch, hw);
                let mut candidate = spec.clone();
                candidate.trunk.extend(block.iter().cloned());
                if candidate.build_checked().is_ok() {
                    let dims = infer_trunk(&block, ch, hw);
                    spec.trunk.extend(block);
                    (ch, hw) = dims;
                    break;
                }
                spec.rejected += 1;
            }
        }
        spec
    }

    /// Channel count entering the classifier head.
    pub fn head_channels(&self) -> usize {
        out_channels(&self.trunk, self.in_channels)
    }

    /// Number of leaf layers including the three head layers.
    pub fn leaf_count(&self) -> usize {
        self.trunk.iter().map(OpSpec::leaf_count).sum::<usize>() + 3
    }

    /// Whether the trunk contains a residual block.
    pub fn has_residual(&self) -> bool {
        self.trunk
            .iter()
            .any(|op| matches!(op, OpSpec::Residual { .. }))
    }

    /// Whether the trunk contains a branch container.
    pub fn has_branches(&self) -> bool {
        self.trunk
            .iter()
            .any(|op| matches!(op, OpSpec::Branches { .. }))
    }

    /// Builds the network, validating shapes first; composition errors come
    /// back as typed [`ShapeError`](crate::ShapeError)s instead of panics.
    pub fn build_checked(&self) -> Result<Network, crate::shape::ShapeError> {
        let mut rng = SeededRng::new(self.weight_seed);
        let mut layers = build_ops(&self.trunk, &mut rng);
        layers.push(Box::new(GlobalAvgPool::new()));
        layers.push(Box::new(Flatten::new()));
        layers.push(Box::new(Linear::new(
            self.head_channels(),
            self.num_classes,
            &mut rng,
        )));
        let net = Network::new(Box::new(Sequential::new(layers)));
        net.infer_dims(&[1, self.in_channels, self.image_hw, self.image_hw])?;
        Ok(net)
    }

    /// Builds the network.
    ///
    /// # Panics
    ///
    /// Panics if the composition is geometrically invalid; specs produced by
    /// [`ArchSpec::sample`] never are.
    pub fn build(&self) -> Network {
        self.build_checked()
            .unwrap_or_else(|e| panic!("invalid arch spec ({self}): {e}"))
    }
}

/// Nominal `(channels, hw)` a valid block hands downstream; mirrors the
/// geometry the sampler proposes (stride-2 ops halve, pools use k=2/s=2).
fn infer_trunk(block: &[OpSpec], mut ch: usize, mut hw: usize) -> (usize, usize) {
    for op in block {
        ch = op.out_channels(ch);
        hw = match op {
            OpSpec::Conv { stride, .. } if *stride == 2 => hw / 2,
            OpSpec::MaxPool { .. } | OpSpec::AvgPool { .. } => hw / 2,
            OpSpec::Residual { body, .. } => {
                // A residual block's body sets the spatial extent.
                infer_trunk(body, 0, hw).1
            }
            _ => hw,
        };
    }
    (ch, hw)
}

/// The block repertoire the sampler draws from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BlockKind {
    Conv,
    GroupedConv,
    Pool,
    Residual,
    Branches,
}

impl BlockKind {
    fn pick(rng: &mut SeededRng, hw: usize) -> Self {
        match rng.below(5) {
            0 => BlockKind::Conv,
            1 => BlockKind::GroupedConv,
            2 if hw >= 4 => BlockKind::Pool,
            3 => BlockKind::Residual,
            4 => BlockKind::Branches,
            _ => BlockKind::Conv,
        }
    }
}

/// An even channel width in `{2, 4, 6, 8}` (even keeps grouped convs legal).
fn even_width(rng: &mut SeededRng) -> usize {
    2 * rng.range(1, 5)
}

fn act(rng: &mut SeededRng) -> OpSpec {
    OpSpec::Act(ActKind::ALL[rng.below(ActKind::ALL.len())])
}

/// `conv(in->out)` preserving hw at stride 1 and halving it at stride 2.
fn conv_op(in_ch: usize, out_ch: usize, kernel: usize, stride: usize, groups: usize) -> OpSpec {
    OpSpec::Conv {
        in_ch,
        out_ch,
        kernel,
        stride,
        padding: kernel / 2,
        groups,
    }
}

fn propose_block(rng: &mut SeededRng, kind: BlockKind, ch: usize, hw: usize) -> Vec<OpSpec> {
    match kind {
        BlockKind::Conv => {
            let out = even_width(rng);
            let k = if rng.chance(0.5) { 1 } else { 3 };
            let stride = if hw >= 8 && rng.chance(0.25) { 2 } else { 1 };
            let mut ops = vec![conv_op(ch, out, k, stride, 1)];
            if rng.chance(0.4) {
                ops.push(OpSpec::BatchNorm { channels: out });
            }
            if rng.chance(0.8) {
                ops.push(act(rng));
            }
            ops
        }
        BlockKind::GroupedConv if ch.is_multiple_of(2) => {
            let out = even_width(rng);
            let mut ops = vec![conv_op(ch, out, 3, 1, 2)];
            if rng.chance(0.5) {
                ops.push(OpSpec::Shuffle { groups: 2 });
            }
            if rng.chance(0.6) {
                ops.push(act(rng));
            }
            ops
        }
        // Odd input width: grouped conv is illegal, fall back to a 1x1 that
        // evens the width out first.
        BlockKind::GroupedConv => {
            let out = even_width(rng);
            vec![conv_op(ch, out, 1, 1, 1), conv_op(out, out, 3, 1, 2)]
        }
        BlockKind::Pool => {
            if rng.chance(0.5) {
                vec![OpSpec::MaxPool {
                    kernel: 2,
                    stride: 2,
                }]
            } else {
                vec![OpSpec::AvgPool {
                    kernel: 2,
                    stride: 2,
                }]
            }
        }
        BlockKind::Residual => {
            // One in ten proposals deliberately mismatches the body width
            // against an identity shortcut, exercising the typed-rejection
            // path end to end.
            if rng.chance(0.1) {
                return vec![OpSpec::Residual {
                    body: vec![conv_op(ch, ch + 1, 3, 1, 1)],
                    shortcut: None,
                }];
            }
            if rng.chance(0.5) || hw < 8 {
                // Identity shortcut: body preserves channels and extent.
                let mut body = vec![conv_op(ch, ch, 3, 1, 1), act(rng)];
                if rng.chance(0.4) {
                    body.push(conv_op(ch, ch, 3, 1, 1));
                }
                vec![OpSpec::Residual {
                    body,
                    shortcut: None,
                }]
            } else {
                // Projection shortcut: both paths stride 2 to a new width.
                let out = even_width(rng);
                let stride = if rng.chance(0.5) { 2 } else { 1 };
                vec![OpSpec::Residual {
                    body: vec![conv_op(ch, out, 3, stride, 1), act(rng)],
                    shortcut: Some(vec![conv_op(ch, out, 1, stride, 1)]),
                }]
            }
        }
        BlockKind::Branches => {
            let n = rng.range(2, 4);
            let branches = (0..n)
                .map(|_| {
                    let out = even_width(rng);
                    let k = if rng.chance(0.5) { 1 } else { 3 };
                    let mut b = vec![conv_op(ch, out, k, 1, 1)];
                    if rng.chance(0.5) {
                        b.push(act(rng));
                    }
                    b
                })
                .collect();
            vec![OpSpec::Branches {
                branches,
                passthrough: rng.chance(0.4),
            }]
        }
    }
}

// ---- display ----------------------------------------------------------------

impl fmt::Display for ActKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ActKind::Relu => "relu",
            ActKind::LeakyRelu => "lrelu",
            ActKind::Sigmoid => "sigmoid",
            ActKind::Tanh => "tanh",
        })
    }
}

fn write_ops(f: &mut fmt::Formatter<'_>, ops: &[OpSpec]) -> fmt::Result {
    for (i, op) in ops.iter().enumerate() {
        if i > 0 {
            f.write_str(" ")?;
        }
        write!(f, "{op}")?;
    }
    Ok(())
}

impl fmt::Display for OpSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpSpec::Conv {
                in_ch,
                out_ch,
                kernel,
                stride,
                groups,
                ..
            } => {
                write!(f, "c{in_ch}>{out_ch}k{kernel}")?;
                if *stride != 1 {
                    write!(f, "s{stride}")?;
                }
                if *groups != 1 {
                    write!(f, "g{groups}")?;
                }
                Ok(())
            }
            OpSpec::BatchNorm { .. } => f.write_str("bn"),
            OpSpec::Act(a) => write!(f, "{a}"),
            OpSpec::MaxPool { .. } => f.write_str("max2"),
            OpSpec::AvgPool { .. } => f.write_str("avg2"),
            OpSpec::Shuffle { groups } => write!(f, "shuf{groups}"),
            OpSpec::Residual { body, shortcut } => {
                f.write_str("res(")?;
                write_ops(f, body)?;
                if let Some(s) = shortcut {
                    f.write_str(" | ")?;
                    write_ops(f, s)?;
                }
                f.write_str(")")
            }
            OpSpec::Branches {
                branches,
                passthrough,
            } => {
                f.write_str("br[")?;
                for (i, b) in branches.iter().enumerate() {
                    if i > 0 {
                        f.write_str("; ")?;
                    }
                    write_ops(f, b)?;
                }
                f.write_str("]")?;
                if *passthrough {
                    f.write_str("+in")?;
                }
                Ok(())
            }
        }
    }
}

impl fmt::Display for ArchSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}x{}x{} ->",
            self.in_channels, self.image_hw, self.image_hw
        )?;
        for op in &self.trunk {
            write!(f, " {op}")?;
        }
        write!(
            f,
            " -> gap fc>{} (w{:#x})",
            self.num_classes, self.weight_seed
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rustfi_tensor::Tensor;

    #[test]
    fn sampling_is_deterministic() {
        let a = ArchSpec::sample(&mut SeededRng::new(42));
        let b = ArchSpec::sample(&mut SeededRng::new(42));
        assert_eq!(a.trunk, b.trunk);
        assert_eq!(a.weight_seed, b.weight_seed);
        assert_eq!(a.to_string(), b.to_string());
    }

    #[test]
    fn samples_build_and_forward_at_the_inferred_shape() {
        for seed in 0..40u64 {
            let spec = ArchSpec::sample(&mut SeededRng::new(seed));
            let mut net = spec.build();
            let dims = [2, spec.in_channels, spec.image_hw, spec.image_hw];
            let inferred = net.infer_dims(&dims).expect("sampled specs are valid");
            assert_eq!(inferred, vec![2, spec.num_classes], "{spec}");
            let y = net.forward(&Tensor::from_fn(&dims, |i| (i as f32 * 0.03).sin()));
            assert_eq!(y.dims(), &inferred[..], "{spec}");
            assert!(
                net.injectable_layers().len() >= 2,
                "{spec} should have a stem conv plus the classifier"
            );
        }
    }

    #[test]
    fn identical_seeds_give_identical_networks() {
        let spec = ArchSpec::sample(&mut SeededRng::new(7));
        let mut a = spec.build();
        let mut b = spec.build();
        let x = Tensor::from_fn(&[1, spec.in_channels, spec.image_hw, spec.image_hw], |i| {
            (i as f32 * 0.11).cos()
        });
        assert_eq!(a.forward(&x), b.forward(&x));
    }

    #[test]
    fn forced_topology_guarantees_containers() {
        for seed in 0..10u64 {
            let spec = ArchSpec::sample_with(
                &mut SeededRng::new(seed),
                ForcedTopology {
                    residual: true,
                    branches: true,
                },
            );
            assert!(spec.has_residual(), "{spec}");
            assert!(spec.has_branches(), "{spec}");
            spec.build();
        }
    }

    #[test]
    fn sampler_exercises_the_rejection_path() {
        // Across enough seeds the deliberate residual corruption must fire
        // at least once — proving invalid proposals are rejected via the
        // typed validator rather than by panicking.
        let rejected: usize = (0..60u64)
            .map(|s| ArchSpec::sample(&mut SeededRng::new(s)).rejected)
            .sum();
        assert!(rejected > 0, "corrupted proposals should have been drawn");
    }
}
