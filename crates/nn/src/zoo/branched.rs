//! Branch-topology architectures: DenseNet (dense connectivity) and
//! GoogLeNet (inception modules).

use super::{conv, conv_bn_relu, gap_head, ZooConfig};
use crate::layer::{AvgPool2d, BatchNorm2d, Branches, MaxPool2d, Relu, Sequential};
use crate::module::{Module, Network};
use rustfi_tensor::SeededRng;

/// One dense layer: `y = concat(x, bn-relu-conv3x3(x))`, growing the channel
/// count by `growth`.
fn dense_layer(in_ch: usize, growth: usize, rng: &mut SeededRng) -> Box<dyn Module> {
    let f = Sequential::new(vec![
        Box::new(BatchNorm2d::new(in_ch)),
        Box::new(Relu::new()),
        conv(in_ch, growth, 3, 1, 1, rng),
    ]);
    Box::new(Branches::with_input_passthrough(vec![Box::new(f)]))
}

/// Transition: bn-relu-1×1 conv halving channels, then 2× average pooling.
fn transition(in_ch: usize, out_ch: usize, rng: &mut SeededRng) -> Vec<Box<dyn Module>> {
    vec![
        Box::new(BatchNorm2d::new(in_ch)),
        Box::new(Relu::new()),
        conv(in_ch, out_ch, 1, 1, 0, rng),
        Box::new(AvgPool2d::new(2, 2)),
    ]
}

/// DenseNet-style network: two dense blocks of three layers (growth 4) with
/// a compressing transition between them.
pub fn densenet(cfg: &ZooConfig) -> Network {
    cfg.validate();
    let mut rng = cfg.rng();
    let growth = cfg.ch(4);
    let mut layers: Vec<Box<dyn Module>> = Vec::new();
    let stem = cfg.ch(8);
    layers.push(conv(cfg.in_channels, stem, 3, 1, 1, &mut rng));
    let mut ch = stem;
    for block in 0..2 {
        for _ in 0..3 {
            layers.push(dense_layer(ch, growth, &mut rng));
            ch += growth;
        }
        if block == 0 {
            let out = ch / 2;
            layers.extend(transition(ch, out, &mut rng));
            ch = out;
        }
    }
    layers.push(Box::new(BatchNorm2d::new(ch)));
    layers.push(Box::new(Relu::new()));
    layers.extend(gap_head(ch, cfg.num_classes, &mut rng));
    Network::new(Box::new(Sequential::new(layers)))
}

/// One inception module with four parallel paths: 1×1; 1×1→3×3; 1×1→3×3→3×3
/// (the 5×5 path factored as two 3×3s, as in Inception-v2); and a 1×1
/// projection path standing in for the pooled path (our pooling layers do
/// not pad, so the pool-project branch is simplified to projection only —
/// documented in DESIGN.md).
fn inception(
    in_ch: usize,
    c1: usize,
    c3: usize,
    c5: usize,
    cp: usize,
    rng: &mut SeededRng,
) -> Box<dyn Module> {
    let path1 = Sequential::new(vec![conv(in_ch, c1, 1, 1, 0, rng), Box::new(Relu::new())]);
    let path2 = Sequential::new(vec![
        conv(in_ch, c3 / 2, 1, 1, 0, rng),
        Box::new(Relu::new()),
        conv(c3 / 2, c3, 3, 1, 1, rng),
        Box::new(Relu::new()),
    ]);
    let path3 = Sequential::new(vec![
        conv(in_ch, c5 / 2, 1, 1, 0, rng),
        Box::new(Relu::new()),
        conv(c5 / 2, c5, 3, 1, 1, rng),
        Box::new(Relu::new()),
        conv(c5, c5, 3, 1, 1, rng),
        Box::new(Relu::new()),
    ]);
    let path4 = Sequential::new(vec![conv(in_ch, cp, 1, 1, 0, rng), Box::new(Relu::new())]);
    Box::new(Branches::new(vec![
        Box::new(path1),
        Box::new(path2),
        Box::new(path3),
        Box::new(path4),
    ]))
}

/// GoogLeNet-style network: conv stem plus three inception modules with
/// pooling between them.
pub fn googlenet(cfg: &ZooConfig) -> Network {
    cfg.validate();
    let mut rng = cfg.rng();
    let stem = cfg.ch(8);
    let mut layers: Vec<Box<dyn Module>> = Vec::new();
    layers.extend(conv_bn_relu(cfg.in_channels, stem, 3, 1, 1, &mut rng));
    layers.push(Box::new(MaxPool2d::new(2, 2)));
    let (c1, c3, c5, cp) = (cfg.ch(4), cfg.ch(8), cfg.ch(4), cfg.ch(4));
    let out1 = c1 + c3 + c5 + cp;
    layers.push(inception(stem, c1, c3, c5, cp, &mut rng));
    layers.push(Box::new(MaxPool2d::new(2, 2)));
    let out2 = c1 + c3 + c5 + cp;
    layers.push(inception(out1, c1, c3, c5, cp, &mut rng));
    layers.push(inception(out2, c1, c3, c5, cp, &mut rng));
    layers.extend(gap_head(out2, cfg.num_classes, &mut rng));
    Network::new(Box::new(Sequential::new(layers)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::LayerKind;
    use rustfi_tensor::Tensor;

    #[test]
    fn densenet_channel_growth() {
        let mut net = densenet(&ZooConfig::tiny(10));
        let y = net.forward(&Tensor::ones(&[1, 3, 16, 16]));
        assert_eq!(y.dims(), &[1, 10]);
        // Dense connectivity means Branches containers with passthrough.
        let branches = net
            .layer_infos()
            .iter()
            .filter(|l| l.kind == LayerKind::Branches)
            .count();
        assert_eq!(branches, 6, "3 dense layers x 2 blocks");
    }

    #[test]
    fn googlenet_has_three_inceptions() {
        let net = googlenet(&ZooConfig::tiny(10));
        let branches = net
            .layer_infos()
            .iter()
            .filter(|l| l.kind == LayerKind::Branches)
            .count();
        assert_eq!(branches, 3);
    }

    #[test]
    fn branched_models_backprop_cleanly() {
        for build in [densenet, googlenet] {
            let mut net = build(&ZooConfig::tiny(4));
            net.set_training(true);
            let x = Tensor::ones(&[2, 3, 16, 16]);
            let y = net.forward(&x);
            let (_, g) = crate::loss::cross_entropy(&y, &[0, 3]);
            let gin = net.backward(&g);
            assert_eq!(gin.dims(), x.dims());
            assert!(!gin.has_non_finite());
        }
    }
}
