//! A model zoo of scaled-down but topologically faithful versions of the
//! networks evaluated in the PyTorchFI paper (Fig. 3/4: AlexNet, VGG-19,
//! ResNet-18/50/110, PreResNet-110, ResNeXt, DenseNet, GoogLeNet, MobileNet,
//! ShuffleNet, SqueezeNet).
//!
//! Each architecture keeps the topological feature that defines it (residual
//! paths, dense connectivity, fire modules, inception branches, grouped
//! convolutions, channel shuffling, depthwise separability, pre-activation
//! ordering) at a parameter count small enough that the full experiment suite
//! trains on a laptop CPU in minutes. See `DESIGN.md` §1 for why this
//! substitution preserves the paper's resiliency phenomenology.

#![allow(clippy::vec_init_then_push)]

mod branched;
mod compact;
pub mod random;
mod resnets;

pub use branched::{densenet, googlenet};
pub use compact::{mobilenet, shufflenet, squeezenet};
pub use random::{ArchSpec, ForcedTopology, OpSpec};
pub use resnets::{preresnet110, resnet110, resnet18, resnet50, resnext};

use crate::layer::{
    BatchNorm2d, Conv2d, Dropout, Flatten, GlobalAvgPool, Linear, MaxPool2d, Relu, Sequential,
};
use crate::module::{Module, Network};
use rustfi_tensor::{ConvSpec, SeededRng};

/// Shared constructor parameters for zoo models.
#[derive(Debug, Clone)]
pub struct ZooConfig {
    /// Number of output classes.
    pub num_classes: usize,
    /// Input channels (3 for RGB-like synthetic images).
    pub in_channels: usize,
    /// Square input size; must be divisible by 8 (three 2× downsamplings).
    pub image_hw: usize,
    /// Channel width multiplier (1.0 = default tiny widths).
    pub width: f32,
    /// Seed for weight initialization.
    pub seed: u64,
}

impl ZooConfig {
    /// The default tiny configuration: 3×16×16 inputs, width 1.0.
    pub fn tiny(num_classes: usize) -> Self {
        Self {
            num_classes,
            in_channels: 3,
            image_hw: 16,
            width: 1.0,
            seed: 0x5EED,
        }
    }

    /// Config matching the synthetic CIFAR-10-like dataset.
    pub fn cifar10_like() -> Self {
        Self::tiny(10)
    }

    /// Config matching the synthetic CIFAR-100-like dataset.
    pub fn cifar100_like() -> Self {
        Self::tiny(100)
    }

    /// Config matching the synthetic ImageNet-like dataset (more classes,
    /// slightly wider models).
    pub fn imagenet_like() -> Self {
        Self {
            num_classes: 20,
            width: 1.5,
            ..Self::tiny(20)
        }
    }

    /// Replaces the init seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the width multiplier.
    pub fn with_width(mut self, width: f32) -> Self {
        self.width = width;
        self
    }

    pub(crate) fn rng(&self) -> SeededRng {
        SeededRng::new(self.seed)
    }

    /// Scales a base channel count by the width multiplier (at least 1, and
    /// even so grouped convolutions stay legal).
    pub(crate) fn ch(&self, base: usize) -> usize {
        let scaled = ((base as f32 * self.width).round() as usize).max(1);
        if scaled > 1 && scaled % 2 == 1 {
            scaled + 1
        } else {
            scaled
        }
    }

    pub(crate) fn validate(&self) {
        assert!(self.num_classes >= 2, "need at least two classes");
        assert!(self.in_channels > 0, "need at least one input channel");
        assert!(
            self.image_hw >= 8 && self.image_hw.is_multiple_of(8),
            "image size {} must be a positive multiple of 8",
            self.image_hw
        );
        assert!(self.width > 0.0, "width multiplier must be positive");
    }
}

// ---- shared building blocks -------------------------------------------------

pub(crate) fn conv(
    in_ch: usize,
    out_ch: usize,
    k: usize,
    stride: usize,
    pad: usize,
    rng: &mut SeededRng,
) -> Box<dyn Module> {
    Box::new(Conv2d::new(
        in_ch,
        out_ch,
        k,
        ConvSpec::new().stride(stride).padding(pad),
        rng,
    ))
}

pub(crate) fn gconv(
    in_ch: usize,
    out_ch: usize,
    k: usize,
    stride: usize,
    pad: usize,
    groups: usize,
    rng: &mut SeededRng,
) -> Box<dyn Module> {
    Box::new(Conv2d::new(
        in_ch,
        out_ch,
        k,
        ConvSpec::new().stride(stride).padding(pad).groups(groups),
        rng,
    ))
}

pub(crate) fn conv_bn_relu(
    in_ch: usize,
    out_ch: usize,
    k: usize,
    stride: usize,
    pad: usize,
    rng: &mut SeededRng,
) -> Vec<Box<dyn Module>> {
    vec![
        conv(in_ch, out_ch, k, stride, pad, rng),
        Box::new(BatchNorm2d::new(out_ch)),
        Box::new(Relu::new()),
    ]
}

/// GAP → flatten → linear classifier head.
pub(crate) fn gap_head(
    channels: usize,
    num_classes: usize,
    rng: &mut SeededRng,
) -> Vec<Box<dyn Module>> {
    vec![
        Box::new(GlobalAvgPool::new()),
        Box::new(Flatten::new()),
        Box::new(Linear::new(channels, num_classes, rng)),
    ]
}

// ---- simple models ----------------------------------------------------------

/// A LeNet-style two-conv network; the quickstart model.
pub fn lenet(cfg: &ZooConfig) -> Network {
    cfg.validate();
    let mut rng = cfg.rng();
    let c1 = cfg.ch(6);
    let c2 = cfg.ch(12);
    let feat = cfg.image_hw / 4;
    let mut layers: Vec<Box<dyn Module>> = Vec::new();
    layers.push(conv(cfg.in_channels, c1, 5, 1, 2, &mut rng));
    layers.push(Box::new(Relu::new()));
    layers.push(Box::new(MaxPool2d::new(2, 2)));
    layers.push(conv(c1, c2, 5, 1, 2, &mut rng));
    layers.push(Box::new(Relu::new()));
    layers.push(Box::new(MaxPool2d::new(2, 2)));
    layers.push(Box::new(Flatten::new()));
    layers.push(Box::new(Linear::new(
        c2 * feat * feat,
        cfg.ch(32),
        &mut rng,
    )));
    layers.push(Box::new(Relu::new()));
    layers.push(Box::new(Linear::new(cfg.ch(32), cfg.num_classes, &mut rng)));
    Network::new(Box::new(Sequential::new(layers)))
}

/// AlexNet (five conv layers, three pools, two-layer FC head with dropout).
pub fn alexnet(cfg: &ZooConfig) -> Network {
    cfg.validate();
    let mut rng = cfg.rng();
    let (c1, c2, c3, c4, c5) = (cfg.ch(8), cfg.ch(16), cfg.ch(24), cfg.ch(16), cfg.ch(16));
    let feat = cfg.image_hw / 8;
    let mut layers: Vec<Box<dyn Module>> = Vec::new();
    layers.push(conv(cfg.in_channels, c1, 3, 1, 1, &mut rng));
    layers.push(Box::new(Relu::new()));
    layers.push(Box::new(MaxPool2d::new(2, 2)));
    layers.push(conv(c1, c2, 3, 1, 1, &mut rng));
    layers.push(Box::new(Relu::new()));
    layers.push(Box::new(MaxPool2d::new(2, 2)));
    layers.push(conv(c2, c3, 3, 1, 1, &mut rng));
    layers.push(Box::new(Relu::new()));
    layers.push(conv(c3, c4, 3, 1, 1, &mut rng));
    layers.push(Box::new(Relu::new()));
    layers.push(conv(c4, c5, 3, 1, 1, &mut rng));
    layers.push(Box::new(Relu::new()));
    layers.push(Box::new(MaxPool2d::new(2, 2)));
    layers.push(Box::new(Flatten::new()));
    layers.push(Box::new(Linear::new(
        c5 * feat * feat,
        cfg.ch(64),
        &mut rng,
    )));
    layers.push(Box::new(Relu::new()));
    layers.push(Box::new(Dropout::new(0.25)));
    layers.push(Box::new(Linear::new(cfg.ch(64), cfg.num_classes, &mut rng)));
    Network::new(Box::new(Sequential::new(layers)))
}

/// VGG-19-style plain conv stack: `[2, 2, 4]` convs per stage with pooling
/// between stages and a linear head.
pub fn vgg19(cfg: &ZooConfig) -> Network {
    cfg.validate();
    let mut rng = cfg.rng();
    let stages: [(usize, usize); 3] = [(cfg.ch(8), 2), (cfg.ch(16), 2), (cfg.ch(32), 4)];
    let mut layers: Vec<Box<dyn Module>> = Vec::new();
    let mut in_ch = cfg.in_channels;
    for (out_ch, n) in stages {
        for _ in 0..n {
            layers.push(conv(in_ch, out_ch, 3, 1, 1, &mut rng));
            layers.push(Box::new(Relu::new()));
            in_ch = out_ch;
        }
        layers.push(Box::new(MaxPool2d::new(2, 2)));
    }
    layers.extend(gap_head(in_ch, cfg.num_classes, &mut rng));
    Network::new(Box::new(Sequential::new(layers)))
}

// ---- registry ----------------------------------------------------------------

/// Names accepted by [`by_name`], in a stable order.
pub fn model_names() -> &'static [&'static str] {
    &[
        "lenet",
        "alexnet",
        "vgg19",
        "resnet18",
        "resnet50",
        "resnet110",
        "preresnet110",
        "resnext",
        "densenet",
        "googlenet",
        "mobilenet",
        "shufflenet",
        "squeezenet",
    ]
}

/// Constructs a zoo model by name. Returns `None` for unknown names.
pub fn by_name(name: &str, cfg: &ZooConfig) -> Option<Network> {
    Some(match name {
        "lenet" => lenet(cfg),
        "alexnet" => alexnet(cfg),
        "vgg19" => vgg19(cfg),
        "resnet18" => resnet18(cfg),
        "resnet50" => resnet50(cfg),
        "resnet110" => resnet110(cfg),
        "preresnet110" => preresnet110(cfg),
        "resnext" => resnext(cfg),
        "densenet" => densenet(cfg),
        "googlenet" => googlenet(cfg),
        "mobilenet" => mobilenet(cfg),
        "shufflenet" => shufflenet(cfg),
        "squeezenet" => squeezenet(cfg),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rustfi_tensor::Tensor;

    #[test]
    fn every_model_builds_and_infers() {
        let cfg = ZooConfig::tiny(10);
        let x = Tensor::ones(&[2, 3, 16, 16]);
        for name in model_names() {
            let mut net = by_name(name, &cfg).expect("registered model");
            let y = net.forward(&x);
            assert_eq!(y.dims(), &[2, 10], "{name} output shape");
            assert!(!y.has_non_finite(), "{name} produced non-finite logits");
        }
    }

    #[test]
    fn every_model_backprops() {
        let cfg = ZooConfig::tiny(4);
        let x = Tensor::ones(&[2, 3, 16, 16]);
        for name in model_names() {
            let mut net = by_name(name, &cfg).expect("registered model");
            net.set_training(true);
            let y = net.forward(&x);
            let (_, grad) = crate::loss::cross_entropy(&y, &[0, 1]);
            let gin = net.backward(&grad);
            assert_eq!(gin.dims(), x.dims(), "{name} input gradient shape");
            let mut total = 0.0;
            net.for_each_param(&mut |p| total += p.grad.sq_norm());
            assert!(total > 0.0, "{name} has zero gradients");
        }
    }

    #[test]
    fn by_name_rejects_unknown() {
        assert!(by_name("transformer", &ZooConfig::tiny(2)).is_none());
    }

    #[test]
    fn models_have_injectable_conv_layers() {
        let cfg = ZooConfig::tiny(10);
        for name in model_names() {
            let net = by_name(name, &cfg).unwrap();
            assert!(
                net.injectable_layers().len() >= 2,
                "{name} should expose conv/linear layers"
            );
        }
    }

    #[test]
    fn width_multiplier_scales_parameters() {
        let cfg1 = ZooConfig::tiny(10);
        let cfg2 = ZooConfig::tiny(10).with_width(2.0);
        let mut a = vgg19(&cfg1);
        let mut b = vgg19(&cfg2);
        assert!(b.param_count() > 2 * a.param_count());
    }

    #[test]
    fn seeds_change_weights_not_shapes() {
        let a = alexnet(&ZooConfig::tiny(10));
        let b = alexnet(&ZooConfig::tiny(10).with_seed(99));
        let dims_a: Vec<_> = a
            .layer_infos()
            .iter()
            .map(|l| l.weight_dims.clone())
            .collect();
        let dims_b: Vec<_> = b
            .layer_infos()
            .iter()
            .map(|l| l.weight_dims.clone())
            .collect();
        assert_eq!(dims_a, dims_b);
        let mut a = a;
        let mut b = b;
        let x = Tensor::ones(&[1, 3, 16, 16]);
        assert_ne!(a.forward(&x), b.forward(&x));
    }

    #[test]
    fn imagenet_like_config_is_wider() {
        let mut tiny = resnet50(&ZooConfig::tiny(20));
        let mut wide = resnet50(&ZooConfig::imagenet_like());
        assert!(wide.param_count() > tiny.param_count());
    }

    #[test]
    #[should_panic(expected = "multiple of 8")]
    fn config_rejects_bad_image_size() {
        let mut cfg = ZooConfig::tiny(10);
        cfg.image_hw = 12;
        lenet(&cfg);
    }

    #[test]
    fn larger_input_sizes_work() {
        let mut cfg = ZooConfig::tiny(10);
        cfg.image_hw = 32;
        let mut net = alexnet(&cfg);
        let y = net.forward(&Tensor::ones(&[1, 3, 32, 32]));
        assert_eq!(y.dims(), &[1, 10]);
    }
}
