//! Residual-family architectures: ResNet (basic and bottleneck),
//! pre-activation ResNet, and ResNeXt (grouped bottleneck).

use super::{conv, conv_bn_relu, gap_head, gconv, ZooConfig};
use crate::layer::{BatchNorm2d, Relu, Residual, Sequential};
use crate::module::{Module, Network};
use rustfi_tensor::SeededRng;

/// Basic residual block: conv-bn-relu-conv-bn plus skip, ReLU after the add.
fn basic_block(
    in_ch: usize,
    out_ch: usize,
    stride: usize,
    rng: &mut SeededRng,
) -> Vec<Box<dyn Module>> {
    let mut body: Vec<Box<dyn Module>> = Vec::new();
    body.extend(conv_bn_relu(in_ch, out_ch, 3, stride, 1, rng));
    body.push(conv(out_ch, out_ch, 3, 1, 1, rng));
    body.push(Box::new(BatchNorm2d::new(out_ch)));
    let body = Box::new(Sequential::new(body));
    let block: Box<dyn Module> = if stride != 1 || in_ch != out_ch {
        let shortcut = Sequential::new(vec![
            conv(in_ch, out_ch, 1, stride, 0, rng),
            Box::new(BatchNorm2d::new(out_ch)),
        ]);
        Box::new(Residual::with_shortcut(body, Box::new(shortcut)))
    } else {
        Box::new(Residual::new(body))
    };
    vec![block, Box::new(Relu::new())]
}

/// Bottleneck block: 1×1 reduce, 3×3 (optionally grouped), 1×1 expand.
fn bottleneck_block(
    in_ch: usize,
    mid_ch: usize,
    out_ch: usize,
    stride: usize,
    groups: usize,
    rng: &mut SeededRng,
) -> Vec<Box<dyn Module>> {
    let mut body: Vec<Box<dyn Module>> = Vec::new();
    body.extend(conv_bn_relu(in_ch, mid_ch, 1, 1, 0, rng));
    body.push(gconv(mid_ch, mid_ch, 3, stride, 1, groups, rng));
    body.push(Box::new(BatchNorm2d::new(mid_ch)));
    body.push(Box::new(Relu::new()));
    body.push(conv(mid_ch, out_ch, 1, 1, 0, rng));
    body.push(Box::new(BatchNorm2d::new(out_ch)));
    let body = Box::new(Sequential::new(body));
    let block: Box<dyn Module> = if stride != 1 || in_ch != out_ch {
        let shortcut = Sequential::new(vec![
            conv(in_ch, out_ch, 1, stride, 0, rng),
            Box::new(BatchNorm2d::new(out_ch)),
        ]);
        Box::new(Residual::with_shortcut(body, Box::new(shortcut)))
    } else {
        Box::new(Residual::new(body))
    };
    vec![block, Box::new(Relu::new())]
}

/// Pre-activation basic block (He et al. 2016): bn-relu-conv, bn-relu-conv
/// plus skip, *no* post-addition ReLU.
fn preact_block(
    in_ch: usize,
    out_ch: usize,
    stride: usize,
    rng: &mut SeededRng,
) -> Box<dyn Module> {
    let body = Sequential::new(vec![
        Box::new(BatchNorm2d::new(in_ch)),
        Box::new(Relu::new()),
        conv(in_ch, out_ch, 3, stride, 1, rng),
        Box::new(BatchNorm2d::new(out_ch)),
        Box::new(Relu::new()),
        conv(out_ch, out_ch, 3, 1, 1, rng),
    ]);
    if stride != 1 || in_ch != out_ch {
        Box::new(Residual::with_shortcut(
            Box::new(body),
            conv(in_ch, out_ch, 1, stride, 0, rng),
        ))
    } else {
        Box::new(Residual::new(Box::new(body)))
    }
}

fn resnet_basic(cfg: &ZooConfig, blocks_per_stage: usize) -> Network {
    cfg.validate();
    let mut rng = cfg.rng();
    let widths = [cfg.ch(8), cfg.ch(16), cfg.ch(32)];
    let mut layers: Vec<Box<dyn Module>> = Vec::new();
    layers.extend(conv_bn_relu(cfg.in_channels, widths[0], 3, 1, 1, &mut rng));
    let mut in_ch = widths[0];
    for (stage, &w) in widths.iter().enumerate() {
        for b in 0..blocks_per_stage {
            let stride = if stage > 0 && b == 0 { 2 } else { 1 };
            layers.extend(basic_block(in_ch, w, stride, &mut rng));
            in_ch = w;
        }
    }
    layers.extend(gap_head(in_ch, cfg.num_classes, &mut rng));
    Network::new(Box::new(Sequential::new(layers)))
}

/// ResNet-18-style network: basic blocks, 2 per stage.
pub fn resnet18(cfg: &ZooConfig) -> Network {
    resnet_basic(cfg, 2)
}

/// ResNet-110-style (CIFAR) network: basic blocks, 3 per stage (scaled from
/// the paper's 18-per-stage).
pub fn resnet110(cfg: &ZooConfig) -> Network {
    resnet_basic(cfg, 3)
}

/// ResNet-50-style network: bottleneck blocks with 4× expansion, 2 per stage.
pub fn resnet50(cfg: &ZooConfig) -> Network {
    cfg.validate();
    let mut rng = cfg.rng();
    let mids = [cfg.ch(4), cfg.ch(8), cfg.ch(16)];
    let mut layers: Vec<Box<dyn Module>> = Vec::new();
    let stem = cfg.ch(8);
    layers.extend(conv_bn_relu(cfg.in_channels, stem, 3, 1, 1, &mut rng));
    let mut in_ch = stem;
    for (stage, &mid) in mids.iter().enumerate() {
        let out = mid * 4;
        for b in 0..2 {
            let stride = if stage > 0 && b == 0 { 2 } else { 1 };
            layers.extend(bottleneck_block(in_ch, mid, out, stride, 1, &mut rng));
            in_ch = out;
        }
    }
    layers.extend(gap_head(in_ch, cfg.num_classes, &mut rng));
    Network::new(Box::new(Sequential::new(layers)))
}

/// Pre-activation ResNet-110-style network.
pub fn preresnet110(cfg: &ZooConfig) -> Network {
    cfg.validate();
    let mut rng = cfg.rng();
    let widths = [cfg.ch(8), cfg.ch(16), cfg.ch(32)];
    let mut layers: Vec<Box<dyn Module>> = Vec::new();
    layers.push(conv(cfg.in_channels, widths[0], 3, 1, 1, &mut rng));
    let mut in_ch = widths[0];
    for (stage, &w) in widths.iter().enumerate() {
        for b in 0..3 {
            let stride = if stage > 0 && b == 0 { 2 } else { 1 };
            layers.push(preact_block(in_ch, w, stride, &mut rng));
            in_ch = w;
        }
    }
    // Final BN-ReLU before the head, as in the pre-activation paper.
    layers.push(Box::new(BatchNorm2d::new(in_ch)));
    layers.push(Box::new(Relu::new()));
    layers.extend(gap_head(in_ch, cfg.num_classes, &mut rng));
    Network::new(Box::new(Sequential::new(layers)))
}

/// ResNeXt-style network: bottleneck blocks whose 3×3 convolution is grouped
/// (cardinality 4).
pub fn resnext(cfg: &ZooConfig) -> Network {
    cfg.validate();
    let mut rng = cfg.rng();
    let cardinality = 4;
    let mids = [cfg.ch(8), cfg.ch(16), cfg.ch(32)];
    let mut layers: Vec<Box<dyn Module>> = Vec::new();
    let stem = cfg.ch(8);
    layers.extend(conv_bn_relu(cfg.in_channels, stem, 3, 1, 1, &mut rng));
    let mut in_ch = stem;
    for (stage, &mid) in mids.iter().enumerate() {
        // Keep mid divisible by the cardinality.
        let mid = mid.div_ceil(cardinality) * cardinality;
        let out = mid * 2;
        for b in 0..2 {
            let stride = if stage > 0 && b == 0 { 2 } else { 1 };
            layers.extend(bottleneck_block(
                in_ch,
                mid,
                out,
                stride,
                cardinality,
                &mut rng,
            ));
            in_ch = out;
        }
    }
    layers.extend(gap_head(in_ch, cfg.num_classes, &mut rng));
    Network::new(Box::new(Sequential::new(layers)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::LayerKind;
    use rustfi_tensor::Tensor;

    #[test]
    fn resnet18_has_residual_blocks() {
        let net = resnet18(&ZooConfig::tiny(10));
        let residuals = net
            .layer_infos()
            .iter()
            .filter(|l| l.kind == LayerKind::Residual)
            .count();
        assert_eq!(residuals, 6, "2 blocks x 3 stages");
    }

    #[test]
    fn resnet110_is_deeper_than_resnet18() {
        let a = resnet18(&ZooConfig::tiny(10));
        let b = resnet110(&ZooConfig::tiny(10));
        assert!(b.module_count() > a.module_count());
    }

    #[test]
    fn resnet50_uses_bottlenecks() {
        let mut net = resnet50(&ZooConfig::tiny(10));
        // Bottleneck blocks contain 1x1 convolutions.
        let has_1x1 = net
            .layer_infos()
            .iter()
            .any(|l| matches!(&l.weight_dims, Some(d) if d.len() == 4 && d[2] == 1 && d[3] == 1));
        assert!(has_1x1);
        let y = net.forward(&Tensor::ones(&[1, 3, 16, 16]));
        assert_eq!(y.dims(), &[1, 10]);
    }

    #[test]
    fn preresnet_starts_blocks_with_bn() {
        // Pre-activation: first op inside a residual body is BatchNorm.
        let net = preresnet110(&ZooConfig::tiny(10));
        let infos = net.layer_infos();
        let first_res = infos
            .iter()
            .position(|l| l.kind == LayerKind::Residual)
            .unwrap();
        // Pre-order: Residual, Sequential (body), BatchNorm...
        assert_eq!(infos[first_res + 1].kind, LayerKind::Sequential);
        assert_eq!(infos[first_res + 2].kind, LayerKind::BatchNorm2d);
    }

    #[test]
    fn resnext_uses_grouped_convs() {
        let net = resnext(&ZooConfig::tiny(10));
        // Grouped 3x3 conv: weight in-channels (dim 1) < its layer's input
        // channels; detectable as mid/groups < mid. With cardinality 4 and
        // mid >= 8, some conv has dims[1] * 4 == preceding channel width.
        let has_grouped = net.layer_infos().iter().any(
            |l| matches!(&l.weight_dims, Some(d) if d.len() == 4 && d[2] == 3 && d[0] == d[1] * 4),
        );
        assert!(has_grouped, "expected a cardinality-4 grouped conv");
    }

    #[test]
    fn residual_models_train_one_step_without_nan() {
        for build in [resnet18, resnet50, preresnet110, resnext] {
            let mut net = build(&ZooConfig::tiny(4));
            net.set_training(true);
            let x = Tensor::ones(&[4, 3, 16, 16]);
            let y = net.forward(&x);
            let (_, g) = crate::loss::cross_entropy(&y, &[0, 1, 2, 3]);
            net.backward(&g);
            let mut sgd = crate::optim::Sgd::new(0.01);
            sgd.step(&mut net);
            let y2 = net.forward(&x);
            assert!(!y2.has_non_finite());
        }
    }
}
