//! Mobile/compact architectures: MobileNet (depthwise-separable convs),
//! ShuffleNet (grouped 1×1 convs + channel shuffle), and SqueezeNet (fire
//! modules).

#![allow(clippy::vec_init_then_push)]

use super::{conv, conv_bn_relu, gconv, ZooConfig};
use crate::layer::{
    BatchNorm2d, Branches, ChannelShuffle, Flatten, GlobalAvgPool, MaxPool2d, Relu, Residual,
    Sequential,
};
use crate::module::{Module, Network};
use rustfi_tensor::SeededRng;

/// Depthwise-separable block: depthwise 3×3 (groups = channels) then
/// pointwise 1×1, each followed by bn-relu.
fn dw_separable(
    in_ch: usize,
    out_ch: usize,
    stride: usize,
    rng: &mut SeededRng,
) -> Vec<Box<dyn Module>> {
    let mut layers: Vec<Box<dyn Module>> = Vec::new();
    layers.push(gconv(in_ch, in_ch, 3, stride, 1, in_ch, rng)); // depthwise
    layers.push(Box::new(BatchNorm2d::new(in_ch)));
    layers.push(Box::new(Relu::new()));
    layers.push(conv(in_ch, out_ch, 1, 1, 0, rng)); // pointwise
    layers.push(Box::new(BatchNorm2d::new(out_ch)));
    layers.push(Box::new(Relu::new()));
    layers
}

/// MobileNet-style network: conv stem plus a stack of depthwise-separable
/// blocks, two of them strided.
pub fn mobilenet(cfg: &ZooConfig) -> Network {
    cfg.validate();
    let mut rng = cfg.rng();
    let mut layers: Vec<Box<dyn Module>> = Vec::new();
    let c = [cfg.ch(8), cfg.ch(16), cfg.ch(16), cfg.ch(32), cfg.ch(32)];
    layers.extend(conv_bn_relu(cfg.in_channels, c[0], 3, 1, 1, &mut rng));
    layers.extend(dw_separable(c[0], c[1], 2, &mut rng));
    layers.extend(dw_separable(c[1], c[2], 1, &mut rng));
    layers.extend(dw_separable(c[2], c[3], 2, &mut rng));
    layers.extend(dw_separable(c[3], c[4], 1, &mut rng));
    layers.extend(super::gap_head(c[4], cfg.num_classes, &mut rng));
    Network::new(Box::new(Sequential::new(layers)))
}

/// ShuffleNet unit: grouped 1×1 conv, channel shuffle, depthwise 3×3,
/// grouped 1×1 conv, with a residual add (stride-1, equal channels).
fn shuffle_unit(ch: usize, groups: usize, rng: &mut SeededRng) -> Box<dyn Module> {
    let mid = ch / 2;
    let body = Sequential::new(vec![
        gconv(ch, mid, 1, 1, 0, groups, rng),
        Box::new(BatchNorm2d::new(mid)),
        Box::new(Relu::new()),
        Box::new(ChannelShuffle::new(groups)),
        gconv(mid, mid, 3, 1, 1, mid, rng), // depthwise
        Box::new(BatchNorm2d::new(mid)),
        gconv(mid, ch, 1, 1, 0, groups, rng),
        Box::new(BatchNorm2d::new(ch)),
    ]);
    Box::new(Residual::new(Box::new(body)))
}

/// ShuffleNet-style network: conv stem, stages of shuffle units separated by
/// strided downsampling convolutions.
///
/// The paper's stride-2 unit (concatenated average-pool shortcut) is
/// simplified to a strided grouped conv between stages; the defining grouped
/// 1×1 + channel-shuffle structure is kept (see DESIGN.md).
pub fn shufflenet(cfg: &ZooConfig) -> Network {
    cfg.validate();
    let mut rng = cfg.rng();
    let groups = 2;
    // Widths must be divisible by 2*groups for the grouped mid channels.
    let w1 = cfg.ch(8).div_ceil(4) * 4;
    let w2 = (cfg.ch(16)).div_ceil(4) * 4;
    let mut layers: Vec<Box<dyn Module>> = Vec::new();
    layers.extend(conv_bn_relu(cfg.in_channels, w1, 3, 1, 1, &mut rng));
    layers.push(shuffle_unit(w1, groups, &mut rng));
    layers.push(Box::new(Relu::new()));
    layers.push(gconv(w1, w2, 3, 2, 1, groups, &mut rng));
    layers.push(Box::new(BatchNorm2d::new(w2)));
    layers.push(Box::new(Relu::new()));
    layers.push(shuffle_unit(w2, groups, &mut rng));
    layers.push(Box::new(Relu::new()));
    layers.push(shuffle_unit(w2, groups, &mut rng));
    layers.push(Box::new(Relu::new()));
    layers.push(Box::new(MaxPool2d::new(2, 2)));
    layers.extend(super::gap_head(w2, cfg.num_classes, &mut rng));
    Network::new(Box::new(Sequential::new(layers)))
}

/// SqueezeNet fire module: a 1×1 "squeeze" conv followed by parallel 1×1 and
/// 3×3 "expand" convs whose outputs concatenate.
fn fire(in_ch: usize, squeeze: usize, expand: usize, rng: &mut SeededRng) -> Vec<Box<dyn Module>> {
    let expand1 = Sequential::new(vec![
        conv(squeeze, expand, 1, 1, 0, rng),
        Box::new(Relu::new()),
    ]);
    let expand3 = Sequential::new(vec![
        conv(squeeze, expand, 3, 1, 1, rng),
        Box::new(Relu::new()),
    ]);
    vec![
        conv(in_ch, squeeze, 1, 1, 0, rng),
        Box::new(Relu::new()),
        Box::new(Branches::new(vec![Box::new(expand1), Box::new(expand3)])),
    ]
}

/// SqueezeNet-style network: conv stem, three fire modules with pooling, and
/// the SqueezeNet signature classifier (1×1 conv to classes + global average
/// pooling, no fully-connected layer).
pub fn squeezenet(cfg: &ZooConfig) -> Network {
    cfg.validate();
    let mut rng = cfg.rng();
    let stem = cfg.ch(8);
    let (s, e) = (cfg.ch(4), cfg.ch(8));
    let mut layers: Vec<Box<dyn Module>> = Vec::new();
    layers.push(conv(cfg.in_channels, stem, 3, 1, 1, &mut rng));
    layers.push(Box::new(Relu::new()));
    layers.push(Box::new(MaxPool2d::new(2, 2)));
    layers.extend(fire(stem, s, e, &mut rng));
    layers.extend(fire(2 * e, s, e, &mut rng));
    layers.push(Box::new(MaxPool2d::new(2, 2)));
    layers.extend(fire(2 * e, s, e, &mut rng));
    // Classifier: 1x1 conv to class maps, then GAP. Unlike the original
    // SqueezeNet we omit the ReLU after the class conv: with scaled-down
    // widths it pins logits non-negative and lets dying ReLUs silence whole
    // classes permanently.
    layers.push(conv(2 * e, cfg.num_classes, 1, 1, 0, &mut rng));
    layers.push(Box::new(GlobalAvgPool::new()));
    layers.push(Box::new(Flatten::new()));
    Network::new(Box::new(Sequential::new(layers)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::LayerKind;
    use rustfi_tensor::Tensor;

    #[test]
    fn mobilenet_has_depthwise_convs() {
        let net = mobilenet(&ZooConfig::tiny(10));
        // Depthwise conv weights have shape [c, 1, 3, 3].
        let depthwise = net
            .layer_infos()
            .iter()
            .filter(|l| matches!(&l.weight_dims, Some(d) if d.len() == 4 && d[1] == 1 && d[2] == 3))
            .count();
        assert_eq!(depthwise, 4, "one per separable block");
    }

    #[test]
    fn shufflenet_contains_shuffles_and_groups() {
        let net = shufflenet(&ZooConfig::tiny(10));
        let shuffles = net
            .layer_infos()
            .iter()
            .filter(|l| l.kind == LayerKind::ChannelShuffle)
            .count();
        assert_eq!(shuffles, 3, "one per shuffle unit");
    }

    #[test]
    fn squeezenet_has_no_linear_layer() {
        let net = squeezenet(&ZooConfig::tiny(10));
        let linears = net
            .layer_infos()
            .iter()
            .filter(|l| l.kind == LayerKind::Linear)
            .count();
        assert_eq!(linears, 0, "SqueezeNet classifies with a 1x1 conv + GAP");
    }

    #[test]
    fn compact_models_forward_and_backward() {
        for build in [mobilenet, shufflenet, squeezenet] {
            let mut net = build(&ZooConfig::tiny(5));
            net.set_training(true);
            let x = Tensor::ones(&[2, 3, 16, 16]);
            let y = net.forward(&x);
            assert_eq!(y.dims(), &[2, 5]);
            let (_, g) = crate::loss::cross_entropy(&y, &[0, 4]);
            let gin = net.backward(&g);
            assert_eq!(gin.dims(), x.dims());
        }
    }
}
