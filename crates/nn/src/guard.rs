//! Activation guard hooks: NaN/Inf detection and step-budget watchdogs.
//!
//! A fault-injection trial can drive a network into states where the final
//! logits are non-finite (a DUE in the paper's taxonomy). By the time the
//! output is inspected, *which layer* first produced the non-finite value is
//! lost — and every layer after it computed garbage for nothing. A
//! [`GuardHook`] attaches to the network's forward-hook registry and:
//!
//! - records the first layer whose output contains NaN/Inf (DUE provenance);
//! - optionally *short-circuits* the rest of the forward pass the moment a
//!   non-finite activation appears, by raising a [`NonFiniteInterrupt`];
//! - optionally enforces a step budget: a forward pass that dispatches more
//!   than `max_steps` leaf layers raises a [`DeadlineInterrupt`] (the
//!   cooperative watchdog campaigns use to classify hangs).
//!
//! Interrupts are delivered with [`std::panic::resume_unwind`], which unwinds
//! *without* invoking the panic hook — no backtrace spew — and is caught by
//! the same `catch_unwind` isolation campaigns already wrap around trials.
//! Callers downcast the payload to tell an interrupt from a genuine panic.
//!
//! Dispatch-order note: hooks registered for *all* layers fire before a
//! layer's own injection hooks, so a guard sees the injected value at the
//! **next** leaf layer it propagates to, not at the injection site itself.

use crate::hook::HookHandle;
use crate::module::{LayerId, Network};
use parking_lot::Mutex;
use rustfi_obs::{Event as ObsEvent, GuardEvent as ObsGuardEvent};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// What a [`GuardHook`] watches for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GuardConfig {
    /// Scan every leaf layer's output for NaN/Inf.
    pub detect_non_finite: bool,
    /// Abort the forward pass on the first non-finite activation (implies
    /// `detect_non_finite`). The aborted inference has no output; the caller
    /// classifies it from the interrupt payload instead.
    pub short_circuit: bool,
    /// Maximum leaf-layer dispatches per [`GuardHook::reset`] window before a
    /// [`DeadlineInterrupt`] fires. `None` disables the watchdog.
    pub max_steps: Option<usize>,
    /// Scan each leading-axis (batch) sample independently and record
    /// per-sample non-finite provenance (see
    /// [`GuardHook::first_non_finite_for`]). Fused campaigns use this so a
    /// NaN in one trial's batch slice never condemns its siblings. A
    /// per-sample guard **never short-circuits** — aborting the pass would
    /// discard the still-healthy samples sharing the batch — but the global
    /// first-non-finite record (and its event) is maintained identically.
    pub per_sample: bool,
}

impl Default for GuardConfig {
    fn default() -> Self {
        Self {
            detect_non_finite: true,
            short_circuit: false,
            max_steps: None,
            per_sample: false,
        }
    }
}

/// Interrupt payload: a non-finite activation was detected and the guard was
/// configured to short-circuit.
#[derive(Debug, Clone)]
pub struct NonFiniteInterrupt {
    /// The first layer whose output contained NaN/Inf.
    pub layer: LayerId,
    /// That layer's name.
    pub layer_name: String,
}

/// Interrupt payload: the forward pass exceeded the guard's step budget.
#[derive(Debug, Clone, Copy)]
pub struct DeadlineInterrupt {
    /// Leaf-layer dispatches counted when the budget tripped.
    pub steps: usize,
}

#[derive(Default)]
struct GuardState {
    steps: AtomicUsize,
    first_non_finite: Mutex<Option<(LayerId, String)>>,
    /// Per-sample provenance table (only populated when
    /// [`GuardConfig::per_sample`] is set): slot `b` holds the first layer
    /// whose batch element `b` went non-finite. Grown on demand, sized by
    /// [`GuardHook::reset_samples`].
    sample_non_finite: Mutex<Vec<Option<(LayerId, String)>>>,
}

/// An installed guard. Dropping it does *not* unregister the hook; call
/// [`GuardHook::uninstall`] (or clear the registry) for that.
pub struct GuardHook {
    handle: HookHandle,
    state: Arc<GuardState>,
}

impl GuardHook {
    /// Installs a guard on the network's forward-hook registry.
    ///
    /// If the network has an observability recorder installed at this
    /// moment, the guard emits [`rustfi_obs::GuardEvent`]s through it (the
    /// first non-finite layer, deadline trips) and counts scans under
    /// `nn.guard_checks`.
    pub fn install(net: &Network, cfg: GuardConfig) -> Self {
        let state = Arc::new(GuardState::default());
        let hook_state = Arc::clone(&state);
        let recorder = net.recorder();
        let scan = cfg.detect_non_finite || cfg.short_circuit;
        let handle = net.hooks().register_forward_all(move |ctx, out| {
            let steps = hook_state.steps.fetch_add(1, Ordering::Relaxed) + 1;
            if let Some(rec) = &recorder {
                rec.counter_add("nn.guard_checks", 1);
            }
            if let Some(budget) = cfg.max_steps {
                if steps > budget {
                    if let Some(rec) = &recorder {
                        rec.event(ObsEvent::Guard(ObsGuardEvent::Deadline { steps }));
                    }
                    std::panic::resume_unwind(Box::new(DeadlineInterrupt { steps }));
                }
            }
            if scan && out.data().iter().any(|v| !v.is_finite()) {
                if cfg.per_sample {
                    // Attribute the corruption to the batch slices that carry
                    // it: slot `b` keeps the *first* layer where sample `b`
                    // went bad, exactly as the global record would at batch 1.
                    let mut table = hook_state.sample_non_finite.lock();
                    for (b, slice) in out.sample_slices().enumerate() {
                        if slice.iter().any(|v| !v.is_finite()) {
                            if table.len() <= b {
                                table.resize(b + 1, None);
                            }
                            if table[b].is_none() {
                                table[b] = Some((ctx.id, ctx.name.to_string()));
                            }
                        }
                    }
                    drop(table);
                }
                let mut first = hook_state.first_non_finite.lock();
                let fresh = first.is_none();
                if fresh {
                    *first = Some((ctx.id, ctx.name.to_string()));
                }
                drop(first);
                if fresh {
                    if let Some(rec) = &recorder {
                        rec.event(ObsEvent::Guard(ObsGuardEvent::NonFinite {
                            layer: ctx.id.index(),
                            layer_name: ctx.name.to_string(),
                        }));
                    }
                }
                if cfg.short_circuit && fresh && !cfg.per_sample {
                    std::panic::resume_unwind(Box::new(NonFiniteInterrupt {
                        layer: ctx.id,
                        layer_name: ctx.name.to_string(),
                    }));
                }
            }
        });
        Self { handle, state }
    }

    /// Clears the step counter and non-finite provenance. Call between
    /// inferences that should be judged independently.
    pub fn reset(&self) {
        self.state.steps.store(0, Ordering::Relaxed);
        *self.state.first_non_finite.lock() = None;
        self.state.sample_non_finite.lock().clear();
    }

    /// [`GuardHook::reset`], then sizes the per-sample provenance table for a
    /// fused batch of `n` trials.
    pub fn reset_samples(&self, n: usize) {
        self.reset();
        *self.state.sample_non_finite.lock() = vec![None; n];
    }

    /// The first layer observed with a non-finite output *in batch sample
    /// `b`*, if any. Only populated under [`GuardConfig::per_sample`].
    pub fn first_non_finite_for(&self, b: usize) -> Option<(LayerId, String)> {
        self.state
            .sample_non_finite
            .lock()
            .get(b)
            .cloned()
            .flatten()
    }

    /// Leaf-layer dispatches seen since the last [`GuardHook::reset`].
    pub fn steps(&self) -> usize {
        self.state.steps.load(Ordering::Relaxed)
    }

    /// The first layer observed with a non-finite output, if any.
    pub fn first_non_finite(&self) -> Option<(LayerId, String)> {
        self.state.first_non_finite.lock().clone()
    }

    /// The registry handle (for manual removal).
    pub fn handle(&self) -> HookHandle {
        self.handle
    }

    /// Unregisters the guard from the network it was installed on.
    pub fn uninstall(&self, net: &Network) {
        net.hooks().remove(self.handle);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo::{self, ZooConfig};
    use rustfi_tensor::Tensor;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    fn net_and_input() -> (Network, Tensor) {
        let net = zoo::lenet(&ZooConfig::tiny(4));
        let x = Tensor::from_fn(&[1, 3, 16, 16], |i| ((i as f32) * 0.017).cos());
        (net, x)
    }

    /// Id of the first injectable (conv) layer.
    fn first_conv(net: &Network) -> LayerId {
        net.injectable_layers()[0]
    }

    #[test]
    fn guard_counts_steps_and_resets() {
        let (mut net, x) = net_and_input();
        let guard = GuardHook::install(&net, GuardConfig::default());
        net.forward(&x);
        let steps = guard.steps();
        assert!(steps > 0, "leaf layers dispatched");
        net.forward(&x);
        assert_eq!(guard.steps(), 2 * steps, "steps accumulate until reset");
        guard.reset();
        assert_eq!(guard.steps(), 0);
        assert!(guard.first_non_finite().is_none());
    }

    #[test]
    fn deadline_interrupt_fires_over_budget() {
        let (mut net, x) = net_and_input();
        let guard = GuardHook::install(
            &net,
            GuardConfig {
                max_steps: Some(2),
                ..GuardConfig::default()
            },
        );
        let err = catch_unwind(AssertUnwindSafe(|| net.forward(&x)))
            .expect_err("budget of 2 must interrupt");
        let interrupt = err
            .downcast_ref::<DeadlineInterrupt>()
            .expect("payload is a DeadlineInterrupt");
        assert_eq!(interrupt.steps, 3, "tripped on the step after the budget");
        assert_eq!(guard.steps(), 3);
    }

    /// Floods a layer's output with `+Inf` when the hook fires.
    fn flood_inf(net: &Network, layer: LayerId) {
        net.hooks().register_forward(layer, |_, out| {
            for v in out.data_mut() {
                *v = f32::INFINITY;
            }
        });
    }

    #[test]
    fn records_first_non_finite_layer_without_aborting() {
        let (mut net, x) = net_and_input();
        let conv = first_conv(&net);
        flood_inf(&net, conv);
        let guard = GuardHook::install(&net, GuardConfig::default());
        net.forward(&x);
        // The guard must catch the corruption even though downstream
        // ReLU/pooling (`x.max(0.0)` absorbs NaN) can launder it back into
        // finite logits — the case output-only DUE detection misses.
        let (layer, name) = guard.first_non_finite().expect("guard saw the corruption");
        // All-layer hooks fire before the injection hook on the same layer,
        // so detection lands on a layer *after* the injection site.
        assert!(
            layer.index() > conv.index(),
            "{name} is downstream of the injection"
        );
    }

    #[test]
    fn short_circuit_aborts_with_provenance() {
        let (mut net, x) = net_and_input();
        let conv = first_conv(&net);
        flood_inf(&net, conv);
        let guard = GuardHook::install(
            &net,
            GuardConfig {
                short_circuit: true,
                ..GuardConfig::default()
            },
        );
        let full_steps = {
            let clean = zoo::lenet(&ZooConfig::tiny(4));
            let probe = GuardHook::install(&clean, GuardConfig::default());
            let mut clean = clean;
            clean.forward(&x);
            probe.steps()
        };
        let err = catch_unwind(AssertUnwindSafe(|| net.forward(&x)))
            .expect_err("short-circuit must interrupt");
        let interrupt = err
            .downcast_ref::<NonFiniteInterrupt>()
            .expect("payload is a NonFiniteInterrupt");
        assert_eq!(
            Some((interrupt.layer, interrupt.layer_name.clone())),
            guard.first_non_finite()
        );
        assert!(
            guard.steps() < full_steps,
            "aborted early: {} of {} steps",
            guard.steps(),
            full_steps
        );
    }

    #[test]
    fn per_sample_guard_blames_only_the_corrupt_slice() {
        let (mut net, x1) = net_and_input();
        let conv = first_conv(&net);
        // Flood +Inf into batch sample 1 only.
        net.hooks().register_forward(conv, |_, out| {
            let n = out.dims()[0];
            assert!(n >= 3);
            let stride = out.len() / n;
            for v in &mut out.data_mut()[stride..2 * stride] {
                *v = f32::INFINITY;
            }
        });
        let guard = GuardHook::install(
            &net,
            GuardConfig {
                per_sample: true,
                // Per-sample mode must refuse to short-circuit even when asked.
                short_circuit: true,
                ..GuardConfig::default()
            },
        );
        guard.reset_samples(3);
        let x = x1.repeat_batch(3);
        net.forward(&x); // must complete despite short_circuit
        assert!(guard.first_non_finite_for(0).is_none(), "sample 0 clean");
        let (layer, _) = guard.first_non_finite_for(1).expect("sample 1 corrupt");
        assert!(layer.index() > conv.index());
        assert!(guard.first_non_finite_for(2).is_none(), "sample 2 clean");
        // The global record still reflects the first corrupt dispatch.
        assert_eq!(guard.first_non_finite().map(|(l, _)| l), Some(layer));
        guard.reset();
        assert!(
            guard.first_non_finite_for(1).is_none(),
            "reset clears table"
        );
    }

    #[test]
    fn per_sample_guard_at_batch_one_matches_global_record() {
        let (mut net, x) = net_and_input();
        let conv = first_conv(&net);
        flood_inf(&net, conv);
        let guard = GuardHook::install(
            &net,
            GuardConfig {
                per_sample: true,
                ..GuardConfig::default()
            },
        );
        guard.reset_samples(1);
        net.forward(&x);
        assert_eq!(guard.first_non_finite_for(0), guard.first_non_finite());
    }

    #[test]
    fn uninstall_removes_the_hook() {
        let (mut net, x) = net_and_input();
        let guard = GuardHook::install(&net, GuardConfig::default());
        net.forward(&x);
        assert!(guard.steps() > 0);
        guard.uninstall(&net);
        guard.reset();
        net.forward(&x);
        assert_eq!(guard.steps(), 0, "uninstalled guard no longer counts");
    }
}
