//! INT8 inference backend: calibration and backend selection.
//!
//! The quantized path mirrors how deployed INT8 inference engines work:
//! weights are quantized per output channel once (and cached on the layer),
//! while activations are quantized against a **static** per-layer input scale
//! measured by a one-pass dynamic-range calibration over representative
//! inputs. The static scale is what makes quantized forwards batch-composable
//! — a sample's quantized words do not depend on which batch it rides in —
//! which is the invariant fused fault-injection campaigns rely on.
//!
//! Usage:
//!
//! ```
//! use rustfi_nn::{zoo, Backend, CalibrationTable, ZooConfig};
//! use rustfi_tensor::Tensor;
//! use std::sync::Arc;
//!
//! let mut net = zoo::lenet(&ZooConfig::tiny(4));
//! let images = [Tensor::from_fn(&[2, 3, 16, 16], |i| (i as f32 * 0.021).sin())];
//! let table = CalibrationTable::calibrate(&mut net, &images);
//! net.set_backend(Backend::Int8(Arc::new(table)));
//! let y = net.forward(&images[0]);
//! assert_eq!(y.dims(), &[2, 4]);
//! ```

use crate::module::{LayerId, Network};
use rustfi_tensor::qkernels;
use rustfi_tensor::Tensor;
use std::sync::Arc;

/// Which arithmetic the network's injectable layers (conv/linear) use.
///
/// Installed on a [`Network`] via [`Network::set_backend`]; layers that have
/// no quantized kernel, and injectable layers absent from the calibration
/// table, always run the f32 path.
#[derive(Clone, Debug, Default)]
pub enum Backend {
    /// Plain f32 inference (the default).
    #[default]
    Fp32,
    /// Real INT8 inference: per-channel quantized weights, activations
    /// quantized against the table's static per-layer input scales, integer
    /// GEMM accumulation.
    Int8(Arc<CalibrationTable>),
}

impl Backend {
    /// The calibrated input scale for layer `id`, if this backend quantizes
    /// that layer.
    pub fn input_scale(&self, id: LayerId) -> Option<f32> {
        match self {
            Backend::Fp32 => None,
            Backend::Int8(table) => table.input_scale(id),
        }
    }

    /// Whether this is the INT8 backend.
    pub fn is_int8(&self) -> bool {
        matches!(self, Backend::Int8(_))
    }
}

/// Static per-layer input scales from a dynamic-range profiling pass.
///
/// Indexed by [`LayerId`]; only injectable layers (conv/linear) carry a
/// scale. Built once per model+dataset by [`CalibrationTable::calibrate`] and
/// shared across campaign workers behind an [`Arc`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CalibrationTable {
    /// Per-layer input scale by `LayerId::index()`; `0.0` = uncalibrated.
    scales: Vec<f32>,
}

impl CalibrationTable {
    /// Builds a table from raw per-layer scales (`0.0` marks an uncalibrated
    /// layer). Index = `LayerId::index()`.
    pub fn from_scales(scales: Vec<f32>) -> Self {
        Self { scales }
    }

    /// One profiling pass: runs every image through `net` in f32 (the
    /// network's current backend is saved and restored), records the max
    /// finite absolute value ever seen at each injectable layer's *input*,
    /// and converts each range to a symmetric INT8 scale.
    ///
    /// Calibrate with the network in inference mode on the same inputs the
    /// campaign will use — the scales are static afterwards, so out-of-range
    /// activations at run time saturate exactly like hardware would.
    ///
    /// # Panics
    ///
    /// Panics if `images` is empty.
    pub fn calibrate(net: &mut Network, images: &[Tensor]) -> Self {
        assert!(!images.is_empty(), "calibration needs at least one image");
        let prev = net.backend().clone();
        net.set_backend(Backend::Fp32);
        let injectable: Vec<bool> = {
            let mut v = vec![false; net.module_count()];
            for info in net.layer_infos() {
                v[info.id.index()] = info.kind.is_injectable();
            }
            v
        };
        let mut max_abs = vec![0.0f32; injectable.len()];
        for image in images {
            net.forward_with_capture(image, &mut |id, input| {
                let i = id.index();
                if injectable.get(i).copied().unwrap_or(false) {
                    let m = qkernels::slice_max_abs_finite(input.data());
                    if m > max_abs[i] {
                        max_abs[i] = m;
                    }
                }
            });
        }
        net.set_backend(prev);
        let scales = injectable
            .iter()
            .zip(&max_abs)
            .map(|(&inj, &m)| {
                if inj {
                    qkernels::scale_for_max_abs(m)
                } else {
                    0.0
                }
            })
            .collect();
        Self { scales }
    }

    /// The calibrated input scale for layer `id`, or `None` if the layer was
    /// not calibrated (not injectable, or out of range).
    pub fn input_scale(&self, id: LayerId) -> Option<f32> {
        let s = *self.scales.get(id.index())?;
        (s > 0.0).then_some(s)
    }

    /// Number of layers carrying a calibrated scale.
    pub fn calibrated_layers(&self) -> usize {
        self.scales.iter().filter(|&&s| s > 0.0).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::LayerKind;
    use crate::zoo::{self, ZooConfig};
    use rustfi_tensor::Tensor;

    fn test_net() -> Network {
        zoo::lenet(&ZooConfig::tiny(4))
    }

    fn test_images() -> Vec<Tensor> {
        vec![
            Tensor::from_fn(&[2, 3, 16, 16], |i| (i as f32 * 0.023).cos()),
            Tensor::from_fn(&[1, 3, 16, 16], |i| (i as f32 * 0.017).sin() * 1.5),
        ]
    }

    #[test]
    fn calibrate_covers_exactly_the_injectable_layers() {
        let mut net = test_net();
        let table = CalibrationTable::calibrate(&mut net, &test_images());
        let inj = net.injectable_layers();
        assert_eq!(table.calibrated_layers(), inj.len());
        for info in net.layer_infos() {
            let has = table.input_scale(info.id).is_some();
            assert_eq!(
                has,
                info.kind.is_injectable(),
                "layer {} ({})",
                info.id,
                info.kind
            );
            if let Some(s) = table.input_scale(info.id) {
                assert!(s.is_finite() && s > 0.0);
            }
        }
        assert_eq!(table.input_scale(LayerId::from_index(999)), None);
    }

    #[test]
    fn int8_backend_approximates_f32_and_is_deterministic() {
        let mut net = test_net();
        let images = test_images();
        let f32_out = net.forward(&images[0]);
        let table = CalibrationTable::calibrate(&mut net, &images);
        net.set_backend(Backend::Int8(Arc::new(table)));
        assert!(net.backend().is_int8());
        let q_out = net.forward(&images[0]);
        assert_eq!(q_out.dims(), f32_out.dims());
        assert_eq!(net.forward(&images[0]), q_out, "int8 inference determinism");
        assert_ne!(q_out, f32_out, "quantization must actually engage");
        let num: f32 = q_out
            .data()
            .iter()
            .zip(f32_out.data())
            .map(|(a, b)| (a - b) * (a - b))
            .sum();
        let den: f32 = f32_out.data().iter().map(|x| x * x).sum();
        let rel = (num / den.max(1e-12)).sqrt();
        assert!(rel < 0.15, "relative L2 error {rel} too large");
    }

    #[test]
    fn calibrate_restores_the_installed_backend() {
        let mut net = test_net();
        let images = test_images();
        let table = CalibrationTable::calibrate(&mut net, &images);
        net.set_backend(Backend::Int8(Arc::new(table)));
        let _again = CalibrationTable::calibrate(&mut net, &images);
        assert!(
            net.backend().is_int8(),
            "calibrate must restore the backend"
        );
    }

    #[test]
    fn weight_mutation_invalidates_the_qweight_cache() {
        let mut net = test_net();
        let images = test_images();
        let table = CalibrationTable::calibrate(&mut net, &images);
        net.set_backend(Backend::Int8(Arc::new(table)));
        let conv = net.injectable_layers()[0];
        let before = net.forward(&images[0]);
        net.layer_weight_mut(conv).unwrap().data_mut()[0] += 10.0;
        let after = net.forward(&images[0]);
        assert_ne!(before, after, "stale qweight cache served after mutation");
    }

    #[test]
    fn stored_weight_word_flip_perturbs_int8_but_not_f32() {
        let mut net = test_net();
        let images = test_images();
        let f32_out = net.forward(&images[0]);
        let table = CalibrationTable::calibrate(&mut net, &images);
        net.set_backend(Backend::Int8(Arc::new(table)));
        let conv = net.injectable_layers()[0];
        let clean = net.forward(&images[0]);

        // Flip a high bit of one stored weight word.
        let original = {
            let qw = net.layer_qweight_mut(conv).expect("conv has qweight");
            let word = qw.data()[0];
            qw.data_mut()[0] = (word as u8 ^ (1u8 << 6)) as i8;
            word
        };
        let faulty = net.forward(&images[0]);
        assert_ne!(faulty, clean, "stored-word flip must perturb int8 output");

        // The f32 weights are untouched: switching back reproduces f32 exactly.
        net.set_backend(Backend::Fp32);
        assert_eq!(net.forward(&images[0]), f32_out);

        // Restoring the word restores the int8 output bit-exactly.
        let table2 = CalibrationTable::calibrate(&mut net, &images);
        net.set_backend(Backend::Int8(Arc::new(table2)));
        net.layer_qweight_mut(conv).unwrap().data_mut()[0] = original;
        assert_eq!(net.forward(&images[0]), clean);
    }

    #[test]
    fn hooks_fire_on_the_quantized_forward() {
        let mut net = test_net();
        let images = test_images();
        let table = CalibrationTable::calibrate(&mut net, &images);
        net.set_backend(Backend::Int8(Arc::new(table)));
        let conv = net.injectable_layers()[0];
        net.hooks().register_forward(conv, |ctx, out| {
            assert_eq!(ctx.kind, LayerKind::Conv2d);
            out.data_mut()[0] = 1234.5;
        });
        let before = net.forward(&images[0]);
        assert_eq!(before.dims()[0], 2, "forward still runs");
    }

    #[test]
    fn uncalibrated_layers_fall_back_to_f32() {
        let mut net = test_net();
        let images = test_images();
        let f32_out = net.forward(&images[0]);
        // An empty table quantizes nothing: int8 backend == f32 output.
        net.set_backend(Backend::Int8(Arc::new(CalibrationTable::default())));
        assert_eq!(net.forward(&images[0]), f32_out);
    }
}
