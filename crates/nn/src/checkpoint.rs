//! Binary checkpointing of network state (parameters + buffers).
//!
//! Format: the magic `RFIC`, a format version, the tensor count, then for
//! each tensor its rank, shape, and little-endian `f32` data. Loading
//! restores tensors in the same deterministic traversal order they were
//! saved in, and validates shapes against the receiving network.

use crate::module::Network;
use rustfi_tensor::Tensor;
use std::error::Error;
use std::fmt;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"RFIC";
const VERSION: u32 = 1;

/// Error produced by checkpoint save/load.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file is not a checkpoint or uses an unknown version.
    BadFormat(String),
    /// The checkpoint does not match the receiving network.
    Mismatch(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint i/o error: {e}"),
            CheckpointError::BadFormat(m) => write!(f, "bad checkpoint format: {m}"),
            CheckpointError::Mismatch(m) => write!(f, "checkpoint mismatch: {m}"),
        }
    }
}

impl Error for CheckpointError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// Serializes all persistent tensors of `net` to `path`.
///
/// # Errors
///
/// Returns [`CheckpointError::Io`] on filesystem failure.
pub fn save(net: &mut Network, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
    let mut tensors: Vec<Tensor> = Vec::new();
    net.for_each_state(&mut |t| tensors.push(t.clone()));

    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&(tensors.len() as u64).to_le_bytes())?;
    for t in &tensors {
        w.write_all(&(t.ndim() as u32).to_le_bytes())?;
        for &d in t.dims() {
            w.write_all(&(d as u64).to_le_bytes())?;
        }
        for &v in t.data() {
            w.write_all(&v.to_le_bytes())?;
        }
    }
    w.flush()?;
    Ok(())
}

/// Restores all persistent tensors of `net` from `path`.
///
/// # Errors
///
/// Returns [`CheckpointError::BadFormat`] if the file is not a checkpoint,
/// and [`CheckpointError::Mismatch`] if tensor count or shapes disagree with
/// the receiving network.
pub fn load(net: &mut Network, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
    let mut r = BufReader::new(File::open(path)?);
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(CheckpointError::BadFormat("wrong magic bytes".into()));
    }
    let version = read_u32(&mut r)?;
    if version != VERSION {
        return Err(CheckpointError::BadFormat(format!(
            "unsupported version {version}"
        )));
    }
    let count = read_u64(&mut r)? as usize;
    let mut tensors = Vec::with_capacity(count);
    for _ in 0..count {
        let rank = read_u32(&mut r)? as usize;
        if rank > 8 {
            return Err(CheckpointError::BadFormat(format!("absurd rank {rank}")));
        }
        let mut dims = Vec::with_capacity(rank);
        for _ in 0..rank {
            dims.push(read_u64(&mut r)? as usize);
        }
        let n: usize = dims.iter().product();
        let mut data = vec![0.0f32; n];
        for v in &mut data {
            let mut b = [0u8; 4];
            r.read_exact(&mut b)?;
            *v = f32::from_le_bytes(b);
        }
        tensors.push(Tensor::from_vec(data, &dims));
    }

    // Validate against the receiving network before mutating anything.
    let mut shapes = Vec::new();
    net.for_each_state(&mut |t| shapes.push(t.dims().to_vec()));
    if shapes.len() != tensors.len() {
        return Err(CheckpointError::Mismatch(format!(
            "checkpoint has {} tensors, network has {}",
            tensors.len(),
            shapes.len()
        )));
    }
    for (i, (shape, t)) in shapes.iter().zip(&tensors).enumerate() {
        if shape.as_slice() != t.dims() {
            return Err(CheckpointError::Mismatch(format!(
                "tensor {i}: checkpoint shape {:?}, network shape {:?}",
                t.dims(),
                shape
            )));
        }
    }

    let mut iter = tensors.into_iter();
    net.for_each_state(&mut |t| {
        *t = iter.next().expect("validated count");
    });
    Ok(())
}

fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{BatchNorm2d, Conv2d, Sequential};
    use rustfi_tensor::{ConvSpec, SeededRng};

    fn net(seed: u64) -> Network {
        let mut rng = SeededRng::new(seed);
        Network::new(Box::new(Sequential::new(vec![
            Box::new(Conv2d::new(2, 3, 3, ConvSpec::new().padding(1), &mut rng)),
            Box::new(BatchNorm2d::new(3)),
        ])))
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("rustfi-ckpt-{}-{name}", std::process::id()))
    }

    #[test]
    fn save_load_roundtrip() {
        let path = tmp("roundtrip");
        let mut a = net(1);
        // Touch running stats so buffers are non-default.
        a.set_training(true);
        a.forward(&Tensor::full(&[4, 2, 4, 4], 3.0));
        a.set_training(false);
        save(&mut a, &path).unwrap();

        let mut b = net(2); // different init
        let x = Tensor::ones(&[1, 2, 4, 4]);
        assert_ne!(a.forward(&x), b.forward(&x), "different before load");
        load(&mut b, &path).unwrap();
        assert_eq!(a.forward(&x), b.forward(&x), "identical after load");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_rejects_wrong_architecture() {
        let path = tmp("wrongarch");
        let mut a = net(1);
        save(&mut a, &path).unwrap();
        let mut rng = SeededRng::new(9);
        let mut other = Network::new(Box::new(Conv2d::new(2, 3, 3, ConvSpec::new(), &mut rng)));
        let err = load(&mut other, &path).unwrap_err();
        assert!(matches!(err, CheckpointError::Mismatch(_)), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_rejects_garbage() {
        let path = tmp("garbage");
        std::fs::write(&path, b"not a checkpoint at all").unwrap();
        let mut a = net(1);
        let err = load(&mut a, &path).unwrap_err();
        assert!(matches!(err, CheckpointError::BadFormat(_)), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn error_display_is_informative() {
        let e = CheckpointError::Mismatch("demo".into());
        assert!(e.to_string().contains("demo"));
    }
}
