//! Crash-safe campaign journals: append-only JSONL with resume support.
//!
//! A long campaign that dies (power loss, OOM kill, preemption) should not
//! have to rerun completed trials. [`JournalWriter`] appends one JSON object
//! per finished [`TrialRecord`] — written and flushed line-atomically, so a
//! kill can at worst lose the line being written — and [`read_journal`]
//! replays a journal, tolerating a truncated final line.
//!
//! Because every trial's randomness derives only from `(campaign seed, trial
//! index)`, a resumed campaign that runs just the missing trials produces
//! records bit-identical to an uninterrupted run.
//!
//! The format is deliberately dependency-free: a fixed header line
//! `{"rustfi_journal":2,"seed":S,"trials":N,"config":H,"shard":I,"shards":K}`
//! followed by flat record objects. Numbers are kept as raw text during
//! parsing (no `u64` → `f64` detour), and `f32` fields round-trip exactly
//! through Rust's shortest-representation `Display`.
//!
//! The header binds the journal to its campaign three ways: the root seed
//! and trial count, a fingerprint of every record-affecting configuration
//! knob ([`JournalHeader::config_hash`]) so a resume can refuse a journal
//! written under a different guard mode / fault mode / quantization setting
//! instead of silently producing a mixed report, and — for distributed
//! campaigns ([`crate::shard`]) — which shard of how many this journal
//! belongs to.
//!
//! Journals may also contain `{"heartbeat":<unix_ms>}` lines, appended by
//! fleet workers so an orchestrator can tell a slow shard from a dead one.
//! Readers skip them; they carry no trial state.

use crate::campaign::TrialRecord;
use crate::error::FiError;
use crate::location::NeuronSite;
use crate::metrics::OutcomeKind;
use std::fmt::Write as _;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read as _, Write as _};
use std::path::Path;

/// Journal format version this build writes and accepts.
///
/// Version 2 added the campaign-config fingerprint and the shard fields;
/// version-1 journals (which carried neither) are refused rather than
/// guessed at.
pub const JOURNAL_VERSION: u64 = 2;

/// Identity of the campaign (and, for distributed runs, the shard) a
/// journal belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JournalHeader {
    /// The campaign's root seed.
    pub seed: u64,
    /// The campaign's total trial count (the *whole* campaign's, not the
    /// shard's — shards share one trial space).
    pub trials: usize,
    /// Fingerprint of every record-affecting campaign knob
    /// ([`crate::shard::config_fingerprint`]). Resume refuses a journal
    /// whose fingerprint doesn't match the resuming campaign.
    pub config_hash: u64,
    /// Which shard this journal belongs to (`0` for single-process runs).
    pub shard_index: usize,
    /// Total shard count of the run that wrote this journal (`1` for
    /// single-process runs).
    pub shard_count: usize,
}

impl JournalHeader {
    /// Header for an unsharded (single-process) campaign.
    pub fn solo(seed: u64, trials: usize, config_hash: u64) -> Self {
        Self {
            seed,
            trials,
            config_hash,
            shard_index: 0,
            shard_count: 1,
        }
    }
}

/// Append-only journal writer. Each [`JournalWriter::append`] writes one
/// line and flushes it before returning.
pub struct JournalWriter {
    out: BufWriter<File>,
}

impl JournalWriter {
    /// Creates a fresh journal at `path` (truncating any existing file) and
    /// writes the header line.
    pub fn create(path: &Path, header: JournalHeader) -> Result<Self, FiError> {
        let file = File::create(path)
            .map_err(|e| FiError::io(format!("creating journal {}", path.display()), e))?;
        let mut writer = Self {
            out: BufWriter::new(file),
        };
        let line = format!(
            "{{\"rustfi_journal\":{JOURNAL_VERSION},\"seed\":{},\"trials\":{},\
             \"config\":{},\"shard\":{},\"shards\":{}}}",
            header.seed, header.trials, header.config_hash, header.shard_index, header.shard_count
        );
        writer.write_line(&line, path)?;
        Ok(writer)
    }

    /// Reopens an existing journal at `path` for appending.
    pub fn open_append(path: &Path) -> Result<Self, FiError> {
        let file = OpenOptions::new()
            .append(true)
            .open(path)
            .map_err(|e| FiError::io(format!("reopening journal {}", path.display()), e))?;
        Ok(Self {
            out: BufWriter::new(file),
        })
    }

    /// Appends one record and flushes it to the OS.
    pub fn append(&mut self, record: &TrialRecord, path: &Path) -> Result<(), FiError> {
        let line = record_to_json(record);
        self.write_line(&line, path)
    }

    fn write_line(&mut self, line: &str, path: &Path) -> Result<(), FiError> {
        let ctx = || format!("appending to journal {}", path.display());
        self.out
            .write_all(line.as_bytes())
            .and_then(|()| self.out.write_all(b"\n"))
            .and_then(|()| self.out.flush())
            .map_err(|e| FiError::io(ctx(), e))
    }
}

/// Appends one `{"heartbeat":<unix_ms>}` line to an existing journal, so an
/// orchestrator watching the file can tell a slow shard from a dead one.
///
/// Opens the file `O_APPEND` per call — line writes this small are atomic on
/// every platform we target, so a heartbeat thread can share the file with
/// the campaign's own [`JournalWriter`] without interleaving. Returns
/// `Ok(false)` (not an error) when the journal doesn't exist yet: the
/// campaign creates it, and a heartbeat must never create a file that
/// [`crate::campaign::Campaign::run_journaled`] would then try to resume.
pub fn append_heartbeat(path: &Path) -> Result<bool, FiError> {
    let file = match OpenOptions::new().append(true).open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(false),
        Err(e) => {
            return Err(FiError::io(
                format!("opening journal {} for heartbeat", path.display()),
                e,
            ))
        }
    };
    let ms = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_millis());
    let mut out = BufWriter::new(file);
    out.write_all(format!("{{\"heartbeat\":{ms}}}\n").as_bytes())
        .and_then(|()| out.flush())
        .map_err(|e| {
            FiError::io(
                format!("appending heartbeat to journal {}", path.display()),
                e,
            )
        })?;
    Ok(true)
}

/// Reads a journal: header plus every complete, valid record line.
///
/// A torn *final* line — truncated mid-write, or missing its newline: the
/// signatures of a kill — is ignored; corruption anywhere earlier is an
/// error, as is a header that doesn't parse.
pub fn read_journal(path: &Path) -> Result<(JournalHeader, Vec<TrialRecord>), FiError> {
    let (header, records, _) = read_journal_inner(path)?;
    Ok((header, records))
}

/// Like [`read_journal`], but also truncates a torn trailing line off the
/// file, so that it is safe to append to. Campaign resume uses this; the
/// trial the torn line belonged to simply reruns (deterministically, so the
/// rewritten record is identical).
pub fn read_journal_repairing(path: &Path) -> Result<(JournalHeader, Vec<TrialRecord>), FiError> {
    let (header, records, valid_len) = read_journal_inner(path)?;
    let file = OpenOptions::new()
        .write(true)
        .open(path)
        .map_err(|e| FiError::io(format!("repairing journal {}", path.display()), e))?;
    let actual = file
        .metadata()
        .map_err(|e| FiError::io(format!("repairing journal {}", path.display()), e))?
        .len();
    if actual > valid_len {
        file.set_len(valid_len).map_err(|e| {
            FiError::io(
                format!("truncating torn journal tail in {}", path.display()),
                e,
            )
        })?;
    }
    Ok((header, records))
}

/// Shared reader: returns the header, the valid records, and the byte length
/// of the valid prefix (everything up to and including the last good line).
fn read_journal_inner(path: &Path) -> Result<(JournalHeader, Vec<TrialRecord>, u64), FiError> {
    let mut text = String::new();
    File::open(path)
        .and_then(|mut f| f.read_to_string(&mut text))
        .map_err(|e| FiError::io(format!("reading journal {}", path.display()), e))?;
    let segments: Vec<&str> = text.split_inclusive('\n').collect();

    let header_seg = *segments.first().ok_or(FiError::Journal {
        line: 1,
        detail: String::from("empty journal (missing header)"),
    })?;
    if !header_seg.ends_with('\n') {
        return Err(FiError::Journal {
            line: 1,
            detail: String::from("header line was interrupted mid-write"),
        });
    }
    let header = parse_header(header_seg.trim_end_matches('\n'))?;
    let mut valid_len = header_seg.len() as u64;

    let mut records = Vec::new();
    for (i, seg) in segments.iter().enumerate().skip(1) {
        let is_last = i + 1 == segments.len();
        // A line without its newline was interrupted mid-write; only the
        // final line may be in that state, and it doesn't count as written
        // even if the JSON happens to parse.
        let complete = seg.ends_with('\n');
        match parse_journal_line(seg.trim_end_matches('\n')) {
            Ok(JournalLine::Record(r)) if complete => {
                records.push(r);
                valid_len += seg.len() as u64;
            }
            // Heartbeats carry no trial state; they only extend the valid
            // prefix so a repair doesn't truncate good record lines after
            // them (there are none — heartbeats are appended, not
            // interleaved — but the reader shouldn't depend on that).
            Ok(JournalLine::Heartbeat) if complete => {
                valid_len += seg.len() as u64;
            }
            Ok(_) | Err(_) if is_last => break,
            Ok(_) => unreachable!("only the final segment can lack a newline"),
            Err(detail) => {
                return Err(FiError::Journal {
                    line: i + 1,
                    detail,
                })
            }
        }
    }
    Ok((header, records, valid_len))
}

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

fn record_to_json(r: &TrialRecord) -> String {
    let mut s = String::with_capacity(128);
    let _ = write!(
        s,
        "{{\"trial\":{},\"image_index\":{},\"layer\":{},\"site\":",
        r.trial, r.image_index, r.layer
    );
    match &r.site {
        Some(site) => {
            let _ = write!(s, "{{\"layer\":{},\"batch\":", site.layer);
            match site.batch {
                Some(b) => {
                    let _ = write!(s, "{b}");
                }
                None => s.push_str("null"),
            }
            let _ = write!(
                s,
                ",\"channel\":{},\"y\":{},\"x\":{}}}",
                site.channel, site.y, site.x
            );
        }
        None => s.push_str("null"),
    }
    let _ = write!(s, ",\"outcome\":\"{}\"", r.outcome.label());
    if let OutcomeKind::Crash { detail } = &r.outcome {
        s.push_str(",\"detail\":\"");
        escape_json_into(detail, &mut s);
        s.push('"');
    }
    s.push_str(",\"due_layer\":");
    match r.due_layer {
        Some(l) => {
            let _ = write!(s, "{l}");
        }
        None => s.push_str("null"),
    }
    // `{}` on a finite f32 is the shortest string that parses back to the
    // same bits, so confidence deltas survive the round trip exactly.
    let delta = if r.confidence_delta.is_finite() {
        r.confidence_delta
    } else {
        0.0
    };
    let _ = write!(
        s,
        ",\"top5_miss\":{},\"confidence_delta\":{delta}}}",
        r.top5_miss
    );
    s
}

fn escape_json_into(raw: &str, out: &mut String) {
    for c in raw.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

// ---------------------------------------------------------------------------
// Parsing — a minimal recursive-descent JSON reader. Numbers stay raw text.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(String),
    Str(String),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get<'a>(&'a self, key: &str) -> Option<&'a Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Self {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'"') => Ok(Json::Str(self.parse_string()?)),
            Some(b't') if self.eat_literal("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Json::Bool(false)),
            Some(b'n') if self.eat_literal("null") => Ok(Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => Ok(Json::Num(self.parse_number())),
            other => Err(format!("unexpected token {other:?} at byte {}", self.pos)),
        }
    }

    fn parse_object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                other => return Err(format!("expected ',' or '}}', found {other:?}")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(String::from("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or("invalid \\u escape")?;
                            s.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte safe).
                    let rest = &self.bytes[self.pos..];
                    let text = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let c = text.chars().next().unwrap();
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> String {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned()
    }

    fn at_end(&mut self) -> bool {
        self.skip_ws();
        self.pos == self.bytes.len()
    }
}

fn parse_line(line: &str) -> Result<Json, String> {
    let mut p = Parser::new(line);
    let v = p.parse_value()?;
    if !p.at_end() {
        return Err(String::from("trailing garbage after JSON value"));
    }
    Ok(v)
}

fn num_as<T: std::str::FromStr>(v: &Json, what: &str) -> Result<T, String> {
    match v {
        Json::Num(raw) => raw.parse().map_err(|_| format!("bad {what}: {raw:?}")),
        other => Err(format!("{what} is not a number: {other:?}")),
    }
}

fn field<'a>(obj: &'a Json, key: &str) -> Result<&'a Json, String> {
    obj.get(key).ok_or_else(|| format!("missing field {key:?}"))
}

fn parse_header(line: &str) -> Result<JournalHeader, FiError> {
    let as_err = |detail: String| FiError::Journal { line: 1, detail };
    let obj = parse_line(line).map_err(as_err)?;
    let version: u64 =
        num_as(field(&obj, "rustfi_journal").map_err(as_err)?, "version").map_err(as_err)?;
    if version != JOURNAL_VERSION {
        return Err(as_err(format!(
            "journal version {version} (this build reads {JOURNAL_VERSION})"
        )));
    }
    let seed = num_as(field(&obj, "seed").map_err(as_err)?, "seed").map_err(as_err)?;
    let trials = num_as(field(&obj, "trials").map_err(as_err)?, "trials").map_err(as_err)?;
    let config_hash = num_as(field(&obj, "config").map_err(as_err)?, "config").map_err(as_err)?;
    let shard_index = num_as(field(&obj, "shard").map_err(as_err)?, "shard").map_err(as_err)?;
    let shard_count = num_as(field(&obj, "shards").map_err(as_err)?, "shards").map_err(as_err)?;
    if shard_count == 0 || shard_index >= shard_count {
        return Err(as_err(format!(
            "shard {shard_index} of {shard_count} is not a valid shard identity"
        )));
    }
    Ok(JournalHeader {
        seed,
        trials,
        config_hash,
        shard_index,
        shard_count,
    })
}

/// One parsed journal body line: a trial record, or a liveness heartbeat.
enum JournalLine {
    Record(TrialRecord),
    Heartbeat,
}

fn parse_journal_line(line: &str) -> Result<JournalLine, String> {
    let obj = parse_line(line)?;
    if obj.get("heartbeat").is_some() {
        return Ok(JournalLine::Heartbeat);
    }
    record_from_json(&obj).map(JournalLine::Record)
}

#[cfg(test)]
fn parse_record(line: &str) -> Result<TrialRecord, String> {
    record_from_json(&parse_line(line)?)
}

fn record_from_json(obj: &Json) -> Result<TrialRecord, String> {
    let trial = num_as(field(obj, "trial")?, "trial")?;
    let image_index = num_as(field(obj, "image_index")?, "image_index")?;
    let layer = num_as(field(obj, "layer")?, "layer")?;
    let site = match field(obj, "site")? {
        Json::Null => None,
        site @ Json::Obj(_) => Some(NeuronSite {
            layer: num_as(field(site, "layer")?, "site.layer")?,
            batch: match field(site, "batch")? {
                Json::Null => None,
                b => Some(num_as(b, "site.batch")?),
            },
            channel: num_as(field(site, "channel")?, "site.channel")?,
            y: num_as(field(site, "y")?, "site.y")?,
            x: num_as(field(site, "x")?, "site.x")?,
        }),
        other => return Err(format!("site is neither object nor null: {other:?}")),
    };
    let outcome = match field(obj, "outcome")? {
        Json::Str(label) => match label.as_str() {
            "masked" => OutcomeKind::Masked,
            "sdc" => OutcomeKind::Sdc,
            "due" => OutcomeKind::Due,
            "hang" => OutcomeKind::Hang,
            "crash" => OutcomeKind::Crash {
                detail: match obj.get("detail") {
                    Some(Json::Str(d)) => d.clone(),
                    _ => String::new(),
                },
            },
            other => return Err(format!("unknown outcome label {other:?}")),
        },
        other => return Err(format!("outcome is not a string: {other:?}")),
    };
    let due_layer = match field(obj, "due_layer")? {
        Json::Null => None,
        v => Some(num_as(v, "due_layer")?),
    };
    let top5_miss = match field(obj, "top5_miss")? {
        Json::Bool(b) => *b,
        other => return Err(format!("top5_miss is not a bool: {other:?}")),
    };
    let confidence_delta = num_as(field(obj, "confidence_delta")?, "confidence_delta")?;
    Ok(TrialRecord {
        trial,
        image_index,
        layer,
        site,
        outcome,
        due_layer,
        top5_miss,
        confidence_delta,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<TrialRecord> {
        vec![
            TrialRecord {
                trial: 0,
                image_index: 3,
                layer: 1,
                site: Some(NeuronSite {
                    layer: 1,
                    batch: None,
                    channel: 2,
                    y: 4,
                    x: 5,
                }),
                outcome: OutcomeKind::Masked,
                due_layer: None,
                top5_miss: false,
                confidence_delta: -0.012345678,
            },
            TrialRecord {
                trial: 1,
                image_index: 0,
                layer: 2,
                site: Some(NeuronSite {
                    layer: 2,
                    batch: Some(7),
                    channel: 0,
                    y: 0,
                    x: 1,
                }),
                outcome: OutcomeKind::Due,
                due_layer: Some(9),
                top5_miss: true,
                confidence_delta: -0.75,
            },
            TrialRecord {
                trial: 2,
                image_index: 5,
                layer: usize::MAX,
                site: None,
                outcome: OutcomeKind::Crash {
                    detail: "index 99 out of bounds: \"quoted\"\nsecond line \\ tab\t".into(),
                },
                due_layer: None,
                top5_miss: true,
                confidence_delta: 0.0,
            },
            TrialRecord {
                trial: 3,
                image_index: 2,
                layer: 0,
                site: None,
                outcome: OutcomeKind::Hang,
                due_layer: None,
                top5_miss: true,
                confidence_delta: 0.0,
            },
        ]
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("rustfi-journal-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn records_roundtrip_bit_exactly() {
        let path = tmp("roundtrip.jsonl");
        let header = JournalHeader {
            seed: u64::MAX - 3,
            trials: 4,
            config_hash: u64::MAX - 7,
            shard_index: 2,
            shard_count: 5,
        };
        let mut w = JournalWriter::create(&path, header).unwrap();
        for r in &sample_records() {
            w.append(r, &path).unwrap();
        }
        drop(w);
        let (h, rs) = read_journal(&path).unwrap();
        assert_eq!(h, header, "u64 seed survives without f64 precision loss");
        assert_eq!(rs, sample_records());
    }

    #[test]
    fn append_after_reopen_continues_the_file() {
        let path = tmp("reopen.jsonl");
        let header = JournalHeader::solo(1, 4, 99);
        let records = sample_records();
        let mut w = JournalWriter::create(&path, header).unwrap();
        w.append(&records[0], &path).unwrap();
        drop(w);
        let mut w = JournalWriter::open_append(&path).unwrap();
        w.append(&records[1], &path).unwrap();
        drop(w);
        let (_, rs) = read_journal(&path).unwrap();
        assert_eq!(rs, records[..2]);
    }

    #[test]
    fn torn_final_line_is_ignored() {
        let path = tmp("torn.jsonl");
        let mut w = JournalWriter::create(&path, JournalHeader::solo(2, 4, 0)).unwrap();
        w.append(&sample_records()[0], &path).unwrap();
        drop(w);
        // Simulate a kill mid-write: half a record at the end.
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("{\"trial\":1,\"image_index\":0,\"lay");
        std::fs::write(&path, text).unwrap();
        let (_, rs) = read_journal(&path).unwrap();
        assert_eq!(rs.len(), 1, "torn line dropped, valid prefix kept");
    }

    #[test]
    fn repairing_truncates_the_torn_tail_for_safe_appends() {
        let path = tmp("repair.jsonl");
        let records = sample_records();
        let mut w = JournalWriter::create(&path, JournalHeader::solo(3, 4, 0)).unwrap();
        w.append(&records[0], &path).unwrap();
        drop(w);
        let clean_len = std::fs::metadata(&path).unwrap().len();
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("{\"trial\":1,\"ima");
        std::fs::write(&path, &text).unwrap();

        let (_, rs) = read_journal_repairing(&path).unwrap();
        assert_eq!(rs.len(), 1);
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            clean_len,
            "torn tail removed"
        );
        // The file is now safe to append to: no line merging.
        let mut w = JournalWriter::open_append(&path).unwrap();
        w.append(&records[1], &path).unwrap();
        drop(w);
        let (_, rs) = read_journal(&path).unwrap();
        assert_eq!(rs, records[..2]);
    }

    #[test]
    fn corruption_before_the_end_is_an_error() {
        let path = tmp("corrupt.jsonl");
        let records = sample_records();
        let mut w = JournalWriter::create(&path, JournalHeader::solo(2, 4, 0)).unwrap();
        w.append(&records[0], &path).unwrap();
        drop(w);
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("not json at all\n");
        text.push_str(&record_to_json(&records[1]));
        text.push('\n');
        std::fs::write(&path, text).unwrap();
        let err = read_journal(&path).unwrap_err();
        assert!(
            matches!(err, FiError::Journal { line: 3, .. }),
            "corruption at line 3 reported: {err}"
        );
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = read_journal(Path::new("/nonexistent/rustfi.jsonl")).unwrap_err();
        assert!(matches!(err, FiError::Io { .. }), "{err}");
    }

    #[test]
    fn bad_header_is_rejected() {
        let path = tmp("bad-header.jsonl");
        std::fs::write(&path, "{\"seed\":1}\n").unwrap();
        let err = read_journal(&path).unwrap_err();
        assert!(matches!(err, FiError::Journal { line: 1, .. }), "{err}");

        std::fs::write(&path, "{\"rustfi_journal\":99,\"seed\":1,\"trials\":2}\n").unwrap();
        let err = read_journal(&path).unwrap_err();
        assert!(err.to_string().contains("version 99"), "{err}");

        // A v1 journal (no config fingerprint, no shard identity) is
        // refused by the version gate, never half-interpreted.
        std::fs::write(&path, "{\"rustfi_journal\":1,\"seed\":1,\"trials\":2}\n").unwrap();
        let err = read_journal(&path).unwrap_err();
        assert!(err.to_string().contains("version 1"), "{err}");

        // A self-contradictory shard identity is rejected.
        std::fs::write(
            &path,
            "{\"rustfi_journal\":2,\"seed\":1,\"trials\":2,\"config\":0,\"shard\":3,\"shards\":2}\n",
        )
        .unwrap();
        let err = read_journal(&path).unwrap_err();
        assert!(err.to_string().contains("shard 3 of 2"), "{err}");
    }

    #[test]
    fn heartbeats_are_skipped_and_survive_repair() {
        let path = tmp("heartbeat.jsonl");
        let _ = std::fs::remove_file(&path);
        let records = sample_records();
        assert!(
            !append_heartbeat(&path).unwrap(),
            "no file yet: heartbeat declines to create one"
        );
        assert!(!path.exists());

        let mut w = JournalWriter::create(&path, JournalHeader::solo(4, 4, 7)).unwrap();
        w.append(&records[0], &path).unwrap();
        assert!(append_heartbeat(&path).unwrap());
        w.append(&records[1], &path).unwrap();
        assert!(append_heartbeat(&path).unwrap());
        drop(w);

        let (h, rs) = read_journal(&path).unwrap();
        assert_eq!(h.config_hash, 7);
        assert_eq!(rs, records[..2], "heartbeats carry no trial state");

        // A torn *heartbeat* tail repairs exactly like a torn record tail.
        let mut text = std::fs::read_to_string(&path).unwrap();
        let clean_len = text.len() as u64;
        text.push_str("{\"heartbe");
        std::fs::write(&path, &text).unwrap();
        let (_, rs) = read_journal_repairing(&path).unwrap();
        assert_eq!(rs, records[..2]);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), clean_len);
    }

    #[test]
    fn f32_extremes_roundtrip() {
        for delta in [
            f32::MIN_POSITIVE,
            -f32::MIN_POSITIVE,
            1e-38,
            0.1 + 0.2,
            -0.999_999_94,
            f32::MAX,
        ] {
            let r = TrialRecord {
                trial: 0,
                image_index: 0,
                layer: 0,
                site: None,
                outcome: OutcomeKind::Sdc,
                due_layer: None,
                top5_miss: false,
                confidence_delta: delta,
            };
            let parsed = parse_record(&record_to_json(&r)).unwrap();
            assert_eq!(parsed.confidence_delta.to_bits(), delta.to_bits());
        }
    }
}
