//! Error type for fault-injection requests.

use std::error::Error;
use std::fmt;

/// Why a fault-injection request was rejected.
///
/// These errors carry the model geometry learned during profiling, matching
/// the paper's goal of "detailed debugging messages to the end user".
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FiError {
    /// The model exposes no convolution/linear layers to inject into.
    NoInjectableLayers,
    /// An injectable-layer index was out of range.
    LayerOutOfRange {
        /// The requested injectable-layer index.
        requested: usize,
        /// How many injectable layers the profile found.
        available: usize,
    },
    /// A neuron coordinate fell outside the layer's output feature map.
    NeuronOutOfRange {
        /// Injectable-layer index.
        layer: usize,
        /// Human-readable detail including the legal ranges.
        detail: String,
    },
    /// A weight coordinate fell outside the layer's weight tensor.
    WeightOutOfRange {
        /// Injectable-layer index.
        layer: usize,
        /// Human-readable detail including the legal ranges.
        detail: String,
    },
    /// A batch element index was not covered by the profiled batch size.
    BatchOutOfRange {
        /// The requested batch element.
        requested: usize,
        /// The profiled batch size.
        batch_size: usize,
    },
    /// The input handed to profiling had the wrong shape.
    BadInputShape {
        /// What the configuration declared.
        expected: Vec<usize>,
        /// Explanation of the problem.
        detail: String,
    },
}

impl fmt::Display for FiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FiError::NoInjectableLayers => {
                write!(f, "model has no injectable (conv/linear) layers")
            }
            FiError::LayerOutOfRange {
                requested,
                available,
            } => write!(
                f,
                "injectable layer index {requested} out of range: model has {available} injectable layers"
            ),
            FiError::NeuronOutOfRange { layer, detail } => {
                write!(f, "neuron location invalid for injectable layer {layer}: {detail}")
            }
            FiError::WeightOutOfRange { layer, detail } => {
                write!(f, "weight location invalid for injectable layer {layer}: {detail}")
            }
            FiError::BatchOutOfRange {
                requested,
                batch_size,
            } => write!(
                f,
                "batch element {requested} out of range for profiled batch size {batch_size}"
            ),
            FiError::BadInputShape { expected, detail } => {
                write!(f, "bad input shape (expected {expected:?}): {detail}")
            }
        }
    }
}

impl Error for FiError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let cases: Vec<(FiError, &str)> = vec![
            (FiError::NoInjectableLayers, "no injectable"),
            (
                FiError::LayerOutOfRange {
                    requested: 9,
                    available: 3,
                },
                "index 9",
            ),
            (
                FiError::NeuronOutOfRange {
                    layer: 1,
                    detail: "channel 8 >= 4".into(),
                },
                "channel 8 >= 4",
            ),
            (
                FiError::BatchOutOfRange {
                    requested: 5,
                    batch_size: 2,
                },
                "batch element 5",
            ),
        ];
        for (err, needle) in cases {
            assert!(err.to_string().contains(needle), "{err}");
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Send + Sync + std::error::Error>() {}
        check::<FiError>();
    }
}
