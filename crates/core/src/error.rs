//! Error type for fault-injection requests.

use std::error::Error;
use std::fmt;
use std::sync::Arc;

/// Why a fault-injection request was rejected.
///
/// These errors carry the model geometry learned during profiling, matching
/// the paper's goal of "detailed debugging messages to the end user".
#[derive(Debug, Clone)]
pub enum FiError {
    /// The model exposes no convolution/linear layers to inject into.
    NoInjectableLayers,
    /// An injectable-layer index was out of range.
    LayerOutOfRange {
        /// The requested injectable-layer index.
        requested: usize,
        /// How many injectable layers the profile found.
        available: usize,
    },
    /// A neuron coordinate fell outside the layer's output feature map.
    NeuronOutOfRange {
        /// Injectable-layer index.
        layer: usize,
        /// Human-readable detail including the legal ranges.
        detail: String,
    },
    /// A weight coordinate fell outside the layer's weight tensor.
    WeightOutOfRange {
        /// Injectable-layer index.
        layer: usize,
        /// Human-readable detail including the legal ranges.
        detail: String,
    },
    /// A batch element index was not covered by the profiled batch size.
    BatchOutOfRange {
        /// The requested batch element.
        requested: usize,
        /// The profiled batch size.
        batch_size: usize,
    },
    /// The input handed to profiling had the wrong shape.
    BadInputShape {
        /// What the configuration declared.
        expected: Vec<usize>,
        /// Explanation of the problem.
        detail: String,
    },
    /// An I/O operation (journal read/write) failed.
    Io {
        /// What the campaign was doing when the operation failed.
        context: String,
        /// The underlying I/O error (shared so `FiError` stays `Clone`).
        source: Arc<std::io::Error>,
    },
    /// A journal file existed but could not be interpreted.
    Journal {
        /// 1-based line number of the offending journal line.
        line: usize,
        /// What was wrong with it.
        detail: String,
    },
    /// A campaign trial failed while planning its fault.
    Trial {
        /// The trial index that failed.
        trial: usize,
        /// The underlying injection error.
        source: Box<FiError>,
    },
}

impl FiError {
    /// Wraps an I/O error with campaign context.
    pub fn io(context: impl Into<String>, source: std::io::Error) -> Self {
        FiError::Io {
            context: context.into(),
            source: Arc::new(source),
        }
    }
}

// Manual impl: `io::Error` is not `PartialEq`; compare by kind + context,
// which is what tests and retry logic actually distinguish on.
impl PartialEq for FiError {
    fn eq(&self, other: &Self) -> bool {
        use FiError::*;
        match (self, other) {
            (NoInjectableLayers, NoInjectableLayers) => true,
            (
                LayerOutOfRange {
                    requested: a,
                    available: b,
                },
                LayerOutOfRange {
                    requested: c,
                    available: d,
                },
            ) => a == c && b == d,
            (
                NeuronOutOfRange {
                    layer: a,
                    detail: b,
                },
                NeuronOutOfRange {
                    layer: c,
                    detail: d,
                },
            ) => a == c && b == d,
            (
                WeightOutOfRange {
                    layer: a,
                    detail: b,
                },
                WeightOutOfRange {
                    layer: c,
                    detail: d,
                },
            ) => a == c && b == d,
            (
                BatchOutOfRange {
                    requested: a,
                    batch_size: b,
                },
                BatchOutOfRange {
                    requested: c,
                    batch_size: d,
                },
            ) => a == c && b == d,
            (
                BadInputShape {
                    expected: a,
                    detail: b,
                },
                BadInputShape {
                    expected: c,
                    detail: d,
                },
            ) => a == c && b == d,
            (
                Io {
                    context: a,
                    source: b,
                },
                Io {
                    context: c,
                    source: d,
                },
            ) => a == c && b.kind() == d.kind(),
            (Journal { line: a, detail: b }, Journal { line: c, detail: d }) => a == c && b == d,
            (
                Trial {
                    trial: a,
                    source: b,
                },
                Trial {
                    trial: c,
                    source: d,
                },
            ) => a == c && b == d,
            _ => false,
        }
    }
}

impl Eq for FiError {}

impl fmt::Display for FiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FiError::NoInjectableLayers => {
                write!(f, "model has no injectable (conv/linear) layers")
            }
            FiError::LayerOutOfRange {
                requested,
                available,
            } => write!(
                f,
                "injectable layer index {requested} out of range: model has {available} injectable layers"
            ),
            FiError::NeuronOutOfRange { layer, detail } => {
                write!(f, "neuron location invalid for injectable layer {layer}: {detail}")
            }
            FiError::WeightOutOfRange { layer, detail } => {
                write!(f, "weight location invalid for injectable layer {layer}: {detail}")
            }
            FiError::BatchOutOfRange {
                requested,
                batch_size,
            } => write!(
                f,
                "batch element {requested} out of range for profiled batch size {batch_size}"
            ),
            FiError::BadInputShape { expected, detail } => {
                write!(f, "bad input shape (expected {expected:?}): {detail}")
            }
            FiError::Io { context, source } => {
                write!(f, "campaign I/O failed while {context}: {source}")
            }
            FiError::Journal { line, detail } => {
                write!(f, "journal line {line} is invalid: {detail}")
            }
            FiError::Trial { trial, source } => {
                write!(f, "trial {trial} failed to plan its fault: {source}")
            }
        }
    }
}

impl Error for FiError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FiError::Io { source, .. } => Some(source.as_ref()),
            FiError::Trial { source, .. } => Some(source.as_ref()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let cases: Vec<(FiError, &str)> = vec![
            (FiError::NoInjectableLayers, "no injectable"),
            (
                FiError::LayerOutOfRange {
                    requested: 9,
                    available: 3,
                },
                "index 9",
            ),
            (
                FiError::NeuronOutOfRange {
                    layer: 1,
                    detail: "channel 8 >= 4".into(),
                },
                "channel 8 >= 4",
            ),
            (
                FiError::BatchOutOfRange {
                    requested: 5,
                    batch_size: 2,
                },
                "batch element 5",
            ),
        ];
        for (err, needle) in cases {
            assert!(err.to_string().contains(needle), "{err}");
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Send + Sync + std::error::Error>() {}
        check::<FiError>();
    }

    #[test]
    fn io_and_trial_expose_source_chains() {
        let io = FiError::io(
            "appending a trial record",
            std::io::Error::new(std::io::ErrorKind::PermissionDenied, "read-only fs"),
        );
        assert!(io.to_string().contains("appending a trial record"));
        let src = io.source().expect("io error has a source");
        assert!(src.to_string().contains("read-only fs"));

        let trial = FiError::Trial {
            trial: 17,
            source: Box::new(FiError::NoInjectableLayers),
        };
        assert!(trial.to_string().contains("trial 17"));
        assert_eq!(
            trial.source().unwrap().to_string(),
            FiError::NoInjectableLayers.to_string()
        );
        assert!(FiError::NoInjectableLayers.source().is_none());
    }

    #[test]
    fn io_errors_compare_by_kind_and_context() {
        let kind = std::io::ErrorKind::NotFound;
        let a = FiError::io("resuming", std::io::Error::new(kind, "gone"));
        let b = FiError::io("resuming", std::io::Error::new(kind, "also gone"));
        let c = FiError::io("writing", std::io::Error::new(kind, "gone"));
        assert_eq!(a, b, "same kind + context compare equal");
        assert_ne!(a, c, "different context differs");
        assert_ne!(
            a,
            FiError::Journal {
                line: 1,
                detail: "x".into()
            }
        );
    }
}
