//! The [`FaultInjector`]: wraps a network, profiles it, and instruments
//! perturbations through forward hooks (neurons) or offline weight mutation.

use crate::config::FiConfig;
use crate::error::FiError;
use crate::location::{BatchSelect, NeuronSelect, NeuronSite, WeightSelect, WeightSite};
use crate::perturbation::{PerturbCtx, PerturbationModel};
use crate::profile::ModelProfile;
use parking_lot::Mutex;
use rustfi_nn::{Backend, CalibrationTable, HookHandle, LayerId, Network};
use rustfi_obs::{Event as ObsEvent, InjectionEvent, InjectionSite, Recorder};
use rustfi_quant::int8;
use rustfi_tensor::{SeededRng, Tensor};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Sentinel stored in the shared trial cell when no campaign trial is
/// active (provenance events then carry `trial: None`).
const NO_TRIAL: usize = usize::MAX;

/// Which quantization regime an injector (and by extension a campaign) runs
/// its forwards under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QuantMode {
    /// Plain FP32 inference — the default.
    #[default]
    Off,
    /// FP32 kernels with every injectable layer's output snapped to the
    /// INT8 grid (the paper's §IV-A emulation); see
    /// [`FaultInjector::enable_int8_activations`].
    Simulated,
    /// Real INT8 inference: integer conv/linear kernels over stored `i8`
    /// weight words with statically calibrated input scales, and faults
    /// that flip bits directly in the stored words; see
    /// [`FaultInjector::enable_int8_backend`].
    Int8,
}

/// Applies `model` to one activation value, routing through the stored-word
/// form ([`PerturbationModel::perturb_i8`]) when the injector runs real INT8
/// inference. The value is quantized against the slice's dynamic scale
/// (`max|slice| / 127` — the grid a quantized consumer would store it on),
/// the model flips bits in that word, and the word is read back. Models
/// without an integer form fall back to their f32 `perturb` (which then sees
/// the scale via [`PerturbCtx::quant_scale`]). Returns the new value plus
/// the before/after words when the fault landed in a stored word.
fn perturb_activation(
    model: &dyn PerturbationModel,
    old: f32,
    int8_words: bool,
    ctx: &mut PerturbCtx<'_>,
) -> (f32, Option<(i8, i8)>) {
    if int8_words {
        let scale = int8::scale_for_max_abs(ctx.tensor_max_abs);
        ctx.quant_scale = Some(scale);
        let word = int8::quantize(old, scale);
        if let Some(new_word) = model.perturb_i8(word, ctx) {
            return (int8::dequantize(new_word, scale), Some((word, new_word)));
        }
    }
    (model.perturb(old, ctx), None)
}

/// The single flipped bit of a stored-word perturbation, when the two words
/// differ in exactly one bit.
fn word_bit(old_w: i8, new_w: i8) -> Option<u32> {
    let diff = (old_w as u8) ^ (new_w as u8);
    (diff.count_ones() == 1).then(|| diff.trailing_zeros())
}

/// Event `bit` field for one perturbation: the stored-word bit on the INT8
/// path, else the FP32 bit derived from the value pair.
fn event_bit(old: f32, new: f32, words: Option<(i8, i8)>) -> Option<u32> {
    match words {
        Some((ow, nw)) => word_bit(ow, nw),
        None => InjectionEvent::flipped_bit(old, new),
    }
}

/// One declared neuron fault: where ([`NeuronSelect`] × [`BatchSelect`]) and
/// what ([`PerturbationModel`]).
#[derive(Clone)]
pub struct NeuronFault {
    /// Site selection.
    pub select: NeuronSelect,
    /// Batch semantics.
    pub batch: BatchSelect,
    /// The perturbation to apply.
    pub model: Arc<dyn PerturbationModel>,
}

impl std::fmt::Debug for NeuronFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NeuronFault")
            .field("select", &self.select)
            .field("batch", &self.batch)
            .field("model", &self.model.name())
            .finish()
    }
}

/// One trial's slice of a fused campaign batch: pre-resolved sites (all in
/// one injectable layer), the perturbation model, and the trial's seed for
/// exec-time randomness. See [`FaultInjector::declare_fused_neuron_fi`].
#[derive(Clone)]
pub struct FusedTrialFault {
    /// Campaign trial index (event provenance).
    pub trial: usize,
    /// The trial's derived seed; the slice perturbs with
    /// `SeededRng::new(seed).fork(2)`, the serial exec stream.
    pub seed: u64,
    /// Resolved sites, all targeting the same layer.
    pub sites: Vec<NeuronSite>,
    /// The perturbation to apply.
    pub model: Arc<dyn PerturbationModel>,
}

impl std::fmt::Debug for FusedTrialFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FusedTrialFault")
            .field("trial", &self.trial)
            .field("sites", &self.sites)
            .field("model", &self.model.name())
            .finish()
    }
}

/// One declared weight fault.
#[derive(Clone)]
pub struct WeightFault {
    /// Site selection.
    pub select: WeightSelect,
    /// The perturbation to apply.
    pub model: Arc<dyn PerturbationModel>,
}

impl std::fmt::Debug for WeightFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WeightFault")
            .field("select", &self.select)
            .field("model", &self.model.name())
            .finish()
    }
}

/// Runtime perturbation instrument for one network.
///
/// Construction runs a single dummy inference to profile the model (layer
/// count, feature-map geometry), used for legality checks and debugging
/// messages. Neuron faults are installed as forward hooks; weight faults
/// mutate weight tensors offline with undo records. [`restore`] returns the
/// network to its clean state.
///
/// [`restore`]: FaultInjector::restore
pub struct FaultInjector {
    net: Network,
    profile: ModelProfile,
    config: FiConfig,
    handles: Vec<HookHandle>,
    quant_handle: Option<HookHandle>,
    /// Calibration table of the real INT8 backend, when installed. Its
    /// presence is what routes declared faults through stored-word flips.
    int8_table: Option<Arc<CalibrationTable>>,
    weight_undo: Vec<(usize, usize, f32)>,
    /// Undo log for stored-word weight flips: (layer, word index, old word).
    qweight_undo: Vec<(usize, usize, i8)>,
    plan_rng: SeededRng,
    exec_rng: Arc<Mutex<SeededRng>>,
    applied: Arc<AtomicUsize>,
    /// Shared with already-installed hook closures, so `set_recorder` takes
    /// effect regardless of declare/install order.
    recorder: Arc<Mutex<Option<Arc<dyn Recorder>>>>,
    /// Current campaign trial ([`NO_TRIAL`] outside campaigns); shared with
    /// hook closures for event provenance.
    trial: Arc<AtomicUsize>,
}

impl FaultInjector {
    /// Wraps `net`, running the profiling inference described by `config`.
    ///
    /// # Errors
    ///
    /// Returns [`FiError::NoInjectableLayers`] if the model has no conv or
    /// linear layers.
    pub fn new(mut net: Network, config: FiConfig) -> Result<Self, FiError> {
        let profile = ModelProfile::discover(&mut net, config.input_dims());
        if profile.is_empty() {
            return Err(FiError::NoInjectableLayers);
        }
        let root = SeededRng::new(config.seed);
        Ok(Self {
            net,
            profile,
            config,
            handles: Vec::new(),
            quant_handle: None,
            int8_table: None,
            weight_undo: Vec::new(),
            qweight_undo: Vec::new(),
            plan_rng: root.fork(1),
            exec_rng: Arc::new(Mutex::new(root.fork(2))),
            applied: Arc::new(AtomicUsize::new(0)),
            recorder: Arc::new(Mutex::new(None)),
            trial: Arc::new(AtomicUsize::new(NO_TRIAL)),
        })
    }

    /// Installs (or removes, with `None`) an observability recorder on both
    /// the injector and the wrapped network.
    ///
    /// With a recorder installed, every applied perturbation emits an
    /// [`InjectionEvent`] (layer, site, flipped bit when derivable, value
    /// before/after) and counts under `fi.injections`; the network emits
    /// per-layer forward spans. Takes effect for faults already declared.
    pub fn set_recorder(&mut self, recorder: Option<Arc<dyn Recorder>>) {
        *self.recorder.lock() = recorder.clone();
        self.net.set_recorder(recorder);
    }

    /// Tags subsequently emitted injection events with a campaign trial
    /// index. Pass `None` outside campaigns.
    pub fn set_trial(&mut self, trial: Option<usize>) {
        self.trial
            .store(trial.unwrap_or(NO_TRIAL), Ordering::Relaxed);
    }

    /// The model profile from the dummy inference.
    pub fn profile(&self) -> &ModelProfile {
        &self.profile
    }

    /// The wrapped network.
    pub fn net(&self) -> &Network {
        &self.net
    }

    /// Mutable access to the wrapped network.
    pub fn net_mut(&mut self) -> &mut Network {
        &mut self.net
    }

    /// Unwraps the injector, returning the network (with any still-declared
    /// faults removed and weights restored).
    pub fn into_inner(mut self) -> Network {
        self.restore();
        self.net
    }

    /// Re-seeds fault planning and perturbation randomness; used by
    /// campaigns to give every trial an independent, reproducible stream.
    pub fn reseed(&mut self, seed: u64) {
        let root = SeededRng::new(seed);
        self.plan_rng = root.fork(1);
        *self.exec_rng.lock() = root.fork(2);
    }

    /// Number of individual value perturbations applied since construction.
    pub fn injections_applied(&self) -> usize {
        self.applied.load(Ordering::Relaxed)
    }

    /// Declares neuron faults, installing one forward hook per affected
    /// layer. Returns the concrete resolved sites.
    ///
    /// Random selections are resolved *now* (against the profile, with the
    /// injector's planning RNG); perturbation-value randomness happens at
    /// hook time.
    ///
    /// # Errors
    ///
    /// Returns [`FiError`] if any selection is illegal for the profiled
    /// model; in that case no hooks are installed.
    pub fn declare_neuron_fi(
        &mut self,
        faults: &[NeuronFault],
    ) -> Result<Vec<NeuronSite>, FiError> {
        // Resolve everything first so failures leave the injector unchanged.
        let mut resolved: Vec<(NeuronSite, Arc<dyn PerturbationModel>)> = Vec::new();
        for fault in faults {
            for site in fault
                .select
                .resolve(&self.profile, fault.batch, &mut self.plan_rng)?
            {
                resolved.push((site, Arc::clone(&fault.model)));
            }
        }
        let sites: Vec<NeuronSite> = resolved.iter().map(|(s, _)| *s).collect();

        // Group per layer and install one hook per layer.
        let mut by_layer: Vec<Vec<(NeuronSite, Arc<dyn PerturbationModel>)>> =
            (0..self.profile.len()).map(|_| Vec::new()).collect();
        for (site, model) in resolved {
            by_layer[site.layer].push((site, model));
        }
        // Captured at declare time: campaigns install the quant regime
        // before declaring faults, so hook closures see the right routing.
        let int8_words = self.int8_table.is_some();
        for (layer, group) in by_layer.into_iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let layer_id = self.profile.layers()[layer].id;
            let exec_rng = Arc::clone(&self.exec_rng);
            let applied = Arc::clone(&self.applied);
            let recorder = Arc::clone(&self.recorder);
            let trial = Arc::clone(&self.trial);
            let handle = self
                .net
                .hooks()
                .register_forward(layer_id, move |_ctx, out| {
                    // Normalize geometry: linear outputs are [n, f] ~ [n, f, 1, 1].
                    let (n, c, h, w) = match out.ndim() {
                        4 => out.dims4(),
                        2 => {
                            let (n, f) = out.dims2();
                            (n, f, 1, 1)
                        }
                        other => panic!("injectable output of rank {other}"),
                    };
                    let mut max_abs_cache: Option<f32> = None;
                    let mut rng = exec_rng.lock();
                    for (site, model) in &group {
                        let batches: Vec<usize> = match site.batch {
                            Some(b) if b < n => vec![b],
                            Some(_) => continue, // declared for a bigger batch
                            None => (0..n).collect(),
                        };
                        if site.channel >= c || site.y >= h || site.x >= w {
                            // The live tensor is smaller than the profiled one;
                            // skip rather than corrupt the wrong neuron.
                            continue;
                        }
                        let max_abs = *max_abs_cache.get_or_insert_with(|| out.max_abs());
                        for b in batches {
                            let off = ((b * c + site.channel) * h + site.y) * w + site.x;
                            let old = out.data()[off];
                            let mut pctx = PerturbCtx {
                                layer: site.layer,
                                batch: b,
                                channel: site.channel,
                                tensor_max_abs: max_abs,
                                quant_scale: None,
                                rng: &mut rng,
                            };
                            let (new, words) =
                                perturb_activation(&**model, old, int8_words, &mut pctx);
                            out.data_mut()[off] = new;
                            applied.fetch_add(1, Ordering::Relaxed);
                            if let Some(rec) = recorder.lock().as_ref() {
                                let t = trial.load(Ordering::Relaxed);
                                rec.event(ObsEvent::Injection(InjectionEvent {
                                    trial: (t != NO_TRIAL).then_some(t),
                                    layer: site.layer,
                                    site: InjectionSite::Neuron {
                                        batch: b,
                                        channel: site.channel,
                                        y: site.y,
                                        x: site.x,
                                    },
                                    bit: event_bit(old, new, words),
                                    before: old,
                                    after: new,
                                }));
                                rec.counter_add("fi.injections", 1);
                                if words.is_some() {
                                    rec.counter_add("fi.int8_word_flips", 1);
                                }
                            }
                        }
                    }
                });
            self.handles.push(handle);
        }
        Ok(sites)
    }

    /// Declares a *fused* batch of neuron-fault trials on one injectable
    /// layer: batch slice `i` of the layer's output receives `trials[i]`'s
    /// perturbation, and nothing else.
    ///
    /// This is the execution half of campaign trial fusion. Sites must
    /// already be resolved (the campaign planner replays each trial's
    /// planning RNG); every site must target `layer`. Each slice perturbs
    /// with its own RNG stream — `SeededRng::new(seed).fork(2)`, exactly the
    /// exec stream a serial trial gets from [`FaultInjector::reseed`] — and
    /// sees [`PerturbCtx::batch`]` = 0` and the *slice's own* max-abs (the
    /// clean whole-tensor value a batch-1 forward would report), so the
    /// perturbed values are bit-identical to a serial run of each trial.
    ///
    /// # Errors
    ///
    /// Returns [`FiError::LayerOutOfRange`] if `layer` is not an injectable
    /// layer of the profiled model.
    pub fn declare_fused_neuron_fi(
        &mut self,
        layer: usize,
        trials: Vec<FusedTrialFault>,
    ) -> Result<(), FiError> {
        if layer >= self.profile.len() {
            return Err(FiError::LayerOutOfRange {
                requested: layer,
                available: self.profile.len(),
            });
        }
        let layer_id = self.profile.layers()[layer].id;
        let rngs: Mutex<Vec<SeededRng>> = Mutex::new(
            trials
                .iter()
                .map(|t| SeededRng::new(t.seed).fork(2))
                .collect(),
        );
        let applied = Arc::clone(&self.applied);
        let recorder = Arc::clone(&self.recorder);
        let int8_words = self.int8_table.is_some();
        let handle = self
            .net
            .hooks()
            .register_forward(layer_id, move |_ctx, out| {
                let (n, c, h, w) = match out.ndim() {
                    4 => out.dims4(),
                    2 => {
                        let (n, f) = out.dims2();
                        (n, f, 1, 1)
                    }
                    other => panic!("injectable output of rank {other}"),
                };
                let sample = c * h * w;
                let mut rngs = rngs.lock();
                for (b, fused) in trials.iter().enumerate() {
                    if b >= n {
                        break; // tensor carries fewer slices than trials
                    }
                    let slice_off = b * sample;
                    let mut max_abs_cache: Option<f32> = None;
                    let rng = &mut rngs[b];
                    for site in &fused.sites {
                        if site.channel >= c || site.y >= h || site.x >= w {
                            // The live tensor is smaller than the profiled
                            // one; skip rather than corrupt the wrong neuron.
                            continue;
                        }
                        let max_abs = *max_abs_cache.get_or_insert_with(|| {
                            out.data()[slice_off..slice_off + sample]
                                .iter()
                                .fold(0.0f32, |m, &x| m.max(x.abs()))
                        });
                        let off = slice_off + (site.channel * h + site.y) * w + site.x;
                        let old = out.data()[off];
                        let mut pctx = PerturbCtx {
                            layer: site.layer,
                            batch: 0,
                            channel: site.channel,
                            tensor_max_abs: max_abs,
                            quant_scale: None,
                            rng: &mut *rng,
                        };
                        let (new, words) =
                            perturb_activation(&*fused.model, old, int8_words, &mut pctx);
                        out.data_mut()[off] = new;
                        applied.fetch_add(1, Ordering::Relaxed);
                        if let Some(rec) = recorder.lock().as_ref() {
                            rec.event(ObsEvent::Injection(InjectionEvent {
                                trial: Some(fused.trial),
                                layer: site.layer,
                                site: InjectionSite::Neuron {
                                    batch: 0,
                                    channel: site.channel,
                                    y: site.y,
                                    x: site.x,
                                },
                                bit: event_bit(old, new, words),
                                before: old,
                                after: new,
                            }));
                            rec.counter_add("fi.injections", 1);
                            if words.is_some() {
                                rec.counter_add("fi.int8_word_flips", 1);
                            }
                        }
                    }
                }
            });
        self.handles.push(handle);
        Ok(())
    }

    /// Declares weight faults, applying them immediately (offline, before
    /// any inference — zero runtime overhead). Returns the resolved sites.
    ///
    /// # Errors
    ///
    /// Returns [`FiError`] if any selection is illegal; in that case no
    /// weights are modified.
    pub fn declare_weight_fi(
        &mut self,
        faults: &[WeightFault],
    ) -> Result<Vec<WeightSite>, FiError> {
        let mut resolved: Vec<(WeightSite, Arc<dyn PerturbationModel>)> = Vec::new();
        for fault in faults {
            let site = fault.select.resolve(&self.profile, &mut self.plan_rng)?;
            resolved.push((site, Arc::clone(&fault.model)));
        }
        let sites: Vec<WeightSite> = resolved.iter().map(|(s, _)| *s).collect();

        let int8_words = self.int8_table.is_some();
        for (site, model) in resolved {
            let layer = &self.profile.layers()[site.layer];
            let (layer_idx, layer_id, channel_guess) = (
                site.layer,
                layer.id,
                if layer.weight_dims.is_empty() {
                    0
                } else {
                    site.index / layer.weight_dims.iter().skip(1).product::<usize>().max(1)
                },
            );
            if int8_words && self.flip_stored_weight(site, layer_id, channel_guess, &*model) {
                continue;
            }
            let weights = self
                .net
                .layer_weight_mut(layer_id)
                .expect("profiled injectable layer has weights");
            let max_abs = weights.max_abs();
            let old = weights.data()[site.index];
            let mut rng = self.exec_rng.lock();
            let mut pctx = PerturbCtx {
                layer: layer_idx,
                batch: 0,
                channel: channel_guess,
                tensor_max_abs: max_abs,
                quant_scale: None,
                rng: &mut rng,
            };
            let new = model.perturb(old, &mut pctx);
            drop(rng);
            self.net
                .layer_weight_mut(layer_id)
                .expect("still present")
                .data_mut()[site.index] = new;
            self.weight_undo.push((site.layer, site.index, old));
            self.applied.fetch_add(1, Ordering::Relaxed);
            if let Some(rec) = self.recorder.lock().as_ref() {
                let t = self.trial.load(Ordering::Relaxed);
                rec.event(ObsEvent::Injection(InjectionEvent {
                    trial: (t != NO_TRIAL).then_some(t),
                    layer: site.layer,
                    site: InjectionSite::Weight { index: site.index },
                    bit: InjectionEvent::flipped_bit(old, new),
                    before: old,
                    after: new,
                }));
                rec.counter_add("fi.injections", 1);
            }
        }
        Ok(sites)
    }

    /// Flips a declared weight fault directly in the layer's stored INT8
    /// words (real-INT8 backend path). Returns `false` — having drawn no
    /// perturbation randomness — when the model has no integer form; the
    /// caller then falls back to the f32 weight path (whose mutation drops
    /// the layer's quantized-weight cache, so the fault still propagates
    /// through the integer kernels via requantization).
    fn flip_stored_weight(
        &mut self,
        site: WeightSite,
        layer_id: LayerId,
        channel_guess: usize,
        model: &dyn PerturbationModel,
    ) -> bool {
        let qw = self
            .net
            .layer_qweight_mut(layer_id)
            .expect("profiled injectable layer has a quantized kernel");
        let scale = qw.scale_for_index(site.index);
        let old_w = qw.data()[site.index];
        let mut rng = self.exec_rng.lock();
        let mut pctx = PerturbCtx {
            layer: site.layer,
            batch: 0,
            channel: channel_guess,
            // The channel's representable range — what max|tensor| is to a
            // dynamically scaled tensor. Derived from the stored scale so
            // this path never touches (and never invalidates) f32 weights.
            tensor_max_abs: scale * 127.0,
            quant_scale: Some(scale),
            rng: &mut rng,
        };
        let Some(new_w) = model.perturb_i8(old_w, &mut pctx) else {
            return false;
        };
        drop(rng);
        self.net
            .layer_qweight_mut(layer_id)
            .expect("still present")
            .data_mut()[site.index] = new_w;
        self.qweight_undo.push((site.layer, site.index, old_w));
        self.applied.fetch_add(1, Ordering::Relaxed);
        if let Some(rec) = self.recorder.lock().as_ref() {
            let t = self.trial.load(Ordering::Relaxed);
            let (before, after) = (
                int8::dequantize(old_w, scale),
                int8::dequantize(new_w, scale),
            );
            rec.event(ObsEvent::Injection(InjectionEvent {
                trial: (t != NO_TRIAL).then_some(t),
                layer: site.layer,
                site: InjectionSite::Weight { index: site.index },
                bit: word_bit(old_w, new_w),
                before,
                after,
            }));
            rec.counter_add("fi.injections", 1);
            rec.counter_add("fi.int8_word_flips", 1);
        }
        true
    }

    /// Removes all declared faults: unregisters this injector's hooks and
    /// restores every perturbed weight — f32 values and stored INT8 words —
    /// in reverse order.
    ///
    /// User hooks registered directly on the network, the INT8 activation
    /// mode, and the INT8 backend are left untouched.
    pub fn restore(&mut self) {
        for handle in self.handles.drain(..) {
            self.net.hooks().remove(handle);
        }
        for (layer, index, old) in self.weight_undo.drain(..).rev() {
            let id = self.profile.layers()[layer].id;
            self.net
                .layer_weight_mut(id)
                .expect("profiled layer has weights")
                .data_mut()[index] = old;
        }
        for (layer, index, old) in self.qweight_undo.drain(..).rev() {
            let id = self.profile.layers()[layer].id;
            self.net
                .layer_qweight_mut(id)
                .expect("profiled layer has a quantized kernel")
                .data_mut()[index] = old;
        }
    }

    /// Emulates INT8 neuron quantization (paper §IV-A): every injectable
    /// layer's output is snapped to the INT8 grid before fault hooks run.
    ///
    /// The dynamic scale is computed *per batch sample* (identical to the
    /// per-tensor scale at batch 1), so in a fused campaign batch one
    /// trial's fault cannot rescale the quantization grid of its siblings.
    pub fn enable_int8_activations(&mut self) {
        if self.quant_handle.is_some() {
            return;
        }
        let handle = self.net.hooks().register_forward_all(|ctx, out| {
            if ctx.kind.is_injectable() {
                let n = if out.ndim() >= 2 { out.dims()[0] } else { 1 };
                if n == 0 {
                    return;
                }
                let stride = out.len() / n;
                for slice in out.data_mut().chunks_mut(stride.max(1)) {
                    let scale = int8::slice_scale(slice);
                    for v in slice.iter_mut() {
                        *v = int8::fake_quantize(*v, scale);
                    }
                }
            }
        });
        self.quant_handle = Some(handle);
    }

    /// Turns INT8 activation emulation back off.
    pub fn disable_int8_activations(&mut self) {
        if let Some(h) = self.quant_handle.take() {
            self.net.hooks().remove(h);
        }
    }

    /// Switches the wrapped network to the real INT8 inference backend:
    /// integer conv/linear kernels consuming stored `i8` weight words and
    /// `table`'s statically calibrated input scales.
    ///
    /// Faults declared *after* this call perturb stored INT8 words directly
    /// (through [`PerturbationModel::perturb_i8`]): neuron faults quantize
    /// the targeted activation against its slice's dynamic scale, flip the
    /// word, and write the dequantized value back; weight faults flip bits
    /// in the layer's cached [`rustfi_tensor::QTensor`] words in place.
    /// Models without an integer form keep their f32 behavior.
    pub fn enable_int8_backend(&mut self, table: Arc<CalibrationTable>) {
        self.net.set_backend(Backend::Int8(Arc::clone(&table)));
        self.int8_table = Some(table);
    }

    /// Returns the network to the FP32 backend.
    pub fn disable_int8_backend(&mut self) {
        self.net.set_backend(Backend::Fp32);
        self.int8_table = None;
    }

    /// The quantization regime currently active on this injector.
    pub fn quant_mode(&self) -> QuantMode {
        if self.int8_table.is_some() {
            QuantMode::Int8
        } else if self.quant_handle.is_some() {
            QuantMode::Simulated
        } else {
            QuantMode::Off
        }
    }

    /// Runs an inference through the (possibly perturbed) network.
    pub fn forward(&mut self, input: &Tensor) -> Tensor {
        self.net.forward(input)
    }

    /// Runs an inference, additionally handing every module's input
    /// activation to `capture` (see
    /// [`rustfi_nn::Network::forward_with_capture`]).
    pub fn forward_with_capture(
        &mut self,
        input: &Tensor,
        capture: &mut dyn FnMut(LayerId, &Tensor),
    ) -> Tensor {
        self.net.forward_with_capture(input, capture)
    }

    /// Resumes an inference at `target` from a cached activation (see
    /// [`rustfi_nn::Network::forward_from`]). Returns `None` when `target`
    /// is not in the network.
    pub fn forward_from(&mut self, target: LayerId, input: &Tensor) -> Option<Tensor> {
        self.net.forward_from(target, input)
    }

    /// Resumes an inference *at* injectable leaf `target` from a cached
    /// batch-1 activation carried by `n` identical batch slices — without
    /// computing `target` `n` times. Because every slice enters the layer
    /// with the same input, its raw output is computed once at batch 1 and
    /// broadcast; only then do the layer's forward hooks — guards, INT8
    /// emulation, per-slice fault injection — and the downstream layers run
    /// at batch `n`. Hooks observe exactly the tensor a full
    /// `forward_from(target, &input.repeat_batch(n))` would hand them (the
    /// raw output of a pointwise-in-batch layer on `n` identical slices *is*
    /// the broadcast), so the result is bit-identical to that call.
    ///
    /// Returns `None` — before any hook side effect — when the
    /// decomposition is unavailable: `target` is not an injectable leaf, or
    /// it is not its own resume point (buried in a residual/branch block).
    /// Callers then fall back to the plain resumed pass.
    pub fn forward_from_broadcast(
        &mut self,
        target: LayerId,
        input: &Tensor,
        n: usize,
    ) -> Option<Tensor> {
        let injectable_leaf = self
            .net
            .layer_infos()
            .iter()
            .any(|l| l.id == target && l.kind.is_injectable());
        if !injectable_leaf || self.net.resume_point(target) != Some(target) {
            return None;
        }
        let golden = self.net.forward_layer_raw(target, input)?;
        let mut out = golden.repeat_batch(n);
        golden.into_pool();
        self.net.dispatch_forward_hooks(target, &mut out);
        self.net.forward_after(target, &out)
    }

    /// The configuration this injector was built with.
    pub fn config(&self) -> &FiConfig {
        &self.config
    }
}

impl std::fmt::Debug for FaultInjector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultInjector")
            .field("injectable_layers", &self.profile.len())
            .field("active_hooks", &self.handles.len())
            .field("perturbed_weights", &self.weight_undo.len())
            .field("perturbed_qweights", &self.qweight_undo.len())
            .field("quant_mode", &self.quant_mode())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{BitFlipInt8, BitSelect, Custom, RandomUniform, StuckAt, Zero};
    use rustfi_nn::{zoo, ZooConfig};

    fn injector() -> FaultInjector {
        let net = zoo::lenet(&ZooConfig::tiny(10));
        FaultInjector::new(net, FiConfig::for_input(&[1, 3, 16, 16])).unwrap()
    }

    fn x() -> Tensor {
        Tensor::from_fn(&[1, 3, 16, 16], |i| ((i as f32) * 0.01).sin())
    }

    #[test]
    fn clean_forward_matches_unwrapped_network() {
        let mut net = zoo::lenet(&ZooConfig::tiny(10));
        let clean = net.forward(&x());
        let mut fi = FaultInjector::new(net, FiConfig::for_input(&[1, 3, 16, 16])).unwrap();
        assert_eq!(fi.forward(&x()), clean, "wrapping is transparent");
    }

    #[test]
    fn exact_neuron_fault_changes_exactly_one_value() {
        let mut fi = injector();
        let clean = fi.forward(&x());
        // Stuck a neuron in the last layer (logits) so we can observe it.
        fi.declare_neuron_fi(&[NeuronFault {
            select: NeuronSelect::Exact {
                layer: 3,
                channel: 4,
                y: 0,
                x: 0,
            },
            batch: BatchSelect::All,
            model: Arc::new(StuckAt::new(77.0)),
        }])
        .unwrap();
        let faulty = fi.forward(&x());
        assert_eq!(faulty.at(&[0, 4]), 77.0);
        let mut diffs = 0;
        for i in 0..clean.len() {
            if clean.data()[i] != faulty.data()[i] {
                diffs += 1;
            }
        }
        assert_eq!(diffs, 1, "only the stuck logit differs");
        assert_eq!(fi.injections_applied(), 1);
    }

    #[test]
    fn restore_removes_neuron_faults() {
        let mut fi = injector();
        let clean = fi.forward(&x());
        fi.declare_neuron_fi(&[NeuronFault {
            select: NeuronSelect::Random,
            batch: BatchSelect::All,
            model: Arc::new(StuckAt::new(1e6)),
        }])
        .unwrap();
        let faulty = fi.forward(&x());
        assert_ne!(clean, faulty);
        fi.restore();
        assert_eq!(fi.forward(&x()), clean);
    }

    #[test]
    fn weight_fault_applies_offline_and_restores() {
        let mut fi = injector();
        let clean = fi.forward(&x());
        let sites = fi
            .declare_weight_fi(&[WeightFault {
                select: WeightSelect::Exact { layer: 0, index: 0 },
                model: Arc::new(StuckAt::new(50.0)),
            }])
            .unwrap();
        assert_eq!(sites[0], WeightSite { layer: 0, index: 0 });
        // No hooks involved for weights.
        assert!(fi.net().hooks().is_empty());
        let faulty = fi.forward(&x());
        assert_ne!(clean, faulty);
        fi.restore();
        assert_eq!(fi.forward(&x()), clean);
    }

    #[test]
    fn multiple_faults_one_per_layer() {
        // The Fig. 5 pattern: one random neuron per conv layer.
        let mut fi = injector();
        let faults: Vec<NeuronFault> = (0..fi.profile().len())
            .map(|layer| NeuronFault {
                select: NeuronSelect::RandomInLayer { layer },
                batch: BatchSelect::All,
                model: Arc::new(StuckAt::new(1000.0)),
            })
            .collect();
        let sites = fi.declare_neuron_fi(&faults).unwrap();
        assert_eq!(sites.len(), 4);
        fi.forward(&x());
        assert_eq!(fi.injections_applied(), 4);
    }

    #[test]
    fn illegal_fault_leaves_injector_unchanged() {
        let mut fi = injector();
        let err = fi.declare_neuron_fi(&[
            NeuronFault {
                select: NeuronSelect::Random,
                batch: BatchSelect::All,
                model: Arc::new(Zero),
            },
            NeuronFault {
                select: NeuronSelect::Exact {
                    layer: 99,
                    channel: 0,
                    y: 0,
                    x: 0,
                },
                batch: BatchSelect::All,
                model: Arc::new(Zero),
            },
        ]);
        assert!(err.is_err());
        assert!(fi.net().hooks().is_empty(), "no partial installation");
    }

    #[test]
    fn batch_each_perturbs_every_element_differently() {
        let net = zoo::lenet(&ZooConfig::tiny(10));
        let mut fi = FaultInjector::new(net, FiConfig::for_input(&[3, 3, 16, 16])).unwrap();
        fi.declare_neuron_fi(&[NeuronFault {
            select: NeuronSelect::RandomInLayer { layer: 0 },
            batch: BatchSelect::Each,
            model: Arc::new(StuckAt::new(500.0)),
        }])
        .unwrap();
        let xb = Tensor::from_fn(&[3, 3, 16, 16], |i| ((i as f32) * 0.01).sin());
        fi.forward(&xb);
        assert_eq!(fi.injections_applied(), 3);
    }

    #[test]
    fn batch_element_targets_only_that_element() {
        let net = zoo::lenet(&ZooConfig::tiny(10));
        let mut fi = FaultInjector::new(net, FiConfig::for_input(&[2, 3, 16, 16])).unwrap();
        let xb = Tensor::from_fn(&[2, 3, 16, 16], |i| ((i as f32) * 0.01).sin());
        let clean = fi.forward(&xb);
        fi.declare_neuron_fi(&[NeuronFault {
            select: NeuronSelect::RandomInLayer { layer: 0 },
            batch: BatchSelect::Element(1),
            model: Arc::new(StuckAt::new(1e5)),
        }])
        .unwrap();
        let faulty = fi.forward(&xb);
        let (_, k) = clean.dims2();
        // Element 0 is untouched; element 1 changed.
        assert_eq!(&clean.data()[..k], &faulty.data()[..k]);
        assert_ne!(&clean.data()[k..], &faulty.data()[k..]);
    }

    #[test]
    fn reseed_reproduces_random_faults() {
        let run = |seed: u64| {
            let mut fi = injector();
            fi.reseed(seed);
            let sites = fi
                .declare_neuron_fi(&[NeuronFault {
                    select: NeuronSelect::Random,
                    batch: BatchSelect::All,
                    model: Arc::new(RandomUniform::default()),
                }])
                .unwrap();
            (sites, fi.forward(&x()))
        };
        let (s1, o1) = run(42);
        let (s2, o2) = run(42);
        assert_eq!(s1, s2);
        assert_eq!(o1, o2);
        let (s3, _) = run(43);
        assert_ne!(s1, s3);
    }

    #[test]
    fn int8_activation_mode_quantizes_outputs() {
        let mut fi = injector();
        let clean = fi.forward(&x());
        fi.enable_int8_activations();
        let quant = fi.forward(&x());
        assert_ne!(clean, quant, "quantization perturbs activations slightly");
        // Predictions should almost always survive 8-bit quantization.
        let same_top1 = clean.data()[..10]
            .iter()
            .cloned()
            .fold((0usize, f32::MIN, 0usize), |(i, m, best), v| {
                if v > m {
                    (i + 1, v, i)
                } else {
                    (i + 1, m, best)
                }
            })
            .2
            == quant.data()[..10]
                .iter()
                .cloned()
                .fold((0usize, f32::MIN, 0usize), |(i, m, best), v| {
                    if v > m {
                        (i + 1, v, i)
                    } else {
                        (i + 1, m, best)
                    }
                })
                .2;
        assert!(same_top1, "top-1 should survive INT8 quantization here");
        fi.disable_int8_activations();
        assert_eq!(fi.forward(&x()), clean);
    }

    #[test]
    fn int8_bitflip_model_composes_with_quantized_activations() {
        let mut fi = injector();
        fi.enable_int8_activations();
        fi.declare_neuron_fi(&[NeuronFault {
            select: NeuronSelect::Random,
            batch: BatchSelect::All,
            model: Arc::new(BitFlipInt8::new(BitSelect::Random)),
        }])
        .unwrap();
        let out = fi.forward(&x());
        assert!(!out.has_non_finite());
        assert_eq!(fi.injections_applied(), 1);
    }

    fn calibrated(fi: &mut FaultInjector) -> Arc<CalibrationTable> {
        Arc::new(CalibrationTable::calibrate(fi.net_mut(), &[x()]))
    }

    #[test]
    fn int8_backend_toggles_and_tracks_mode() {
        let mut fi = injector();
        let clean = fi.forward(&x());
        assert_eq!(fi.quant_mode(), QuantMode::Off);
        let table = calibrated(&mut fi);
        fi.enable_int8_backend(table);
        assert_eq!(fi.quant_mode(), QuantMode::Int8);
        let quant = fi.forward(&x());
        assert_ne!(clean, quant, "integer kernels round differently");
        assert_eq!(fi.forward(&x()), quant, "INT8 inference is deterministic");
        fi.disable_int8_backend();
        assert_eq!(fi.quant_mode(), QuantMode::Off);
        assert_eq!(fi.forward(&x()), clean);
    }

    #[test]
    fn int8_backend_weight_flip_lands_in_stored_word() {
        let mut fi = injector();
        let clean = fi.forward(&x());
        let table = calibrated(&mut fi);
        fi.enable_int8_backend(table);
        let golden_q = fi.forward(&x());
        let id = fi.profile().layers()[0].id;
        let word_before = fi.net_mut().layer_qweight_mut(id).unwrap().data()[3];
        fi.declare_weight_fi(&[WeightFault {
            select: WeightSelect::Exact { layer: 0, index: 3 },
            model: Arc::new(BitFlipInt8::new(BitSelect::Fixed(6))),
        }])
        .unwrap();
        let word_after = fi.net_mut().layer_qweight_mut(id).unwrap().data()[3];
        assert_eq!(
            (word_before as u8) ^ (word_after as u8),
            1 << 6,
            "exactly bit 6 of the stored word flipped"
        );
        let faulty = fi.forward(&x());
        assert_ne!(golden_q, faulty);
        fi.restore();
        assert_eq!(fi.forward(&x()), golden_q, "word restored in place");
        fi.disable_int8_backend();
        assert_eq!(fi.forward(&x()), clean, "f32 weights were never touched");
    }

    #[test]
    fn int8_backend_weight_fault_falls_back_for_f32_models() {
        let mut fi = injector();
        let clean = fi.forward(&x());
        let table = calibrated(&mut fi);
        fi.enable_int8_backend(table);
        let golden_q = fi.forward(&x());
        // StuckAt has no integer form: the fault goes through the f32
        // weights, and the dropped qweight cache requantizes it in.
        fi.declare_weight_fi(&[WeightFault {
            select: WeightSelect::Exact { layer: 0, index: 0 },
            model: Arc::new(StuckAt::new(50.0)),
        }])
        .unwrap();
        assert_ne!(fi.forward(&x()), golden_q);
        fi.restore();
        assert_eq!(fi.forward(&x()), golden_q);
        fi.disable_int8_backend();
        assert_eq!(fi.forward(&x()), clean);
    }

    #[test]
    fn int8_backend_neuron_flip_applies_and_restores() {
        let mut fi = injector();
        let table = calibrated(&mut fi);
        fi.enable_int8_backend(table);
        let golden_q = fi.forward(&x());
        fi.declare_neuron_fi(&[NeuronFault {
            select: NeuronSelect::Exact {
                layer: 1,
                channel: 0,
                y: 1,
                x: 1,
            },
            batch: BatchSelect::All,
            model: Arc::new(BitFlipInt8::new(BitSelect::Fixed(7))),
        }])
        .unwrap();
        let faulty = fi.forward(&x());
        assert_ne!(golden_q, faulty, "sign-bit flip propagates");
        assert!(!faulty.has_non_finite());
        assert_eq!(fi.injections_applied(), 1);
        fi.restore();
        assert_eq!(fi.forward(&x()), golden_q);
    }

    #[test]
    fn fused_slices_match_serial_batch1_runs() {
        let seeds = [101u64, 202, 303];
        // Serial reference: one batch-1 run per seed, random value at a
        // fixed site.
        let serial: Vec<Tensor> = seeds
            .iter()
            .map(|&s| {
                let mut fi = injector();
                fi.reseed(s);
                fi.declare_neuron_fi(&[NeuronFault {
                    select: NeuronSelect::Exact {
                        layer: 0,
                        channel: 1,
                        y: 2,
                        x: 3,
                    },
                    batch: BatchSelect::All,
                    model: Arc::new(RandomUniform::default()),
                }])
                .unwrap();
                fi.forward(&x())
            })
            .collect();
        // Fused: all three trials in one batch-3 forward.
        let mut fi = injector();
        fi.declare_fused_neuron_fi(
            0,
            seeds
                .iter()
                .enumerate()
                .map(|(t, &s)| FusedTrialFault {
                    trial: t,
                    seed: s,
                    sites: vec![NeuronSite {
                        layer: 0,
                        batch: None,
                        channel: 1,
                        y: 2,
                        x: 3,
                    }],
                    model: Arc::new(RandomUniform::default()),
                })
                .collect(),
        )
        .unwrap();
        let fused = fi.forward(&x().repeat_batch(3));
        let k = fused.len() / 3;
        for (b, reference) in serial.iter().enumerate() {
            assert_eq!(
                &fused.data()[b * k..(b + 1) * k],
                reference.data(),
                "fused slice {b} is bit-identical to its serial run"
            );
        }
        assert_eq!(fi.injections_applied(), 3);
    }

    #[test]
    fn broadcast_resume_matches_plain_resumed_batch_pass() {
        let seeds = [11u64, 22, 33];
        let layer = 1; // mid conv on lenet's flat spine
        let declare = |fi: &mut FaultInjector| {
            let sites = vec![NeuronSite {
                layer,
                batch: None,
                channel: 0,
                y: 1,
                x: 1,
            }];
            fi.declare_fused_neuron_fi(
                layer,
                seeds
                    .iter()
                    .enumerate()
                    .map(|(t, &s)| FusedTrialFault {
                        trial: t,
                        seed: s,
                        sites: sites.clone(),
                        model: Arc::new(RandomUniform::default()),
                    })
                    .collect(),
            )
            .unwrap();
        };
        let mut fi = injector();
        let layer_id = fi.profile().layers()[layer].id;
        let rid = fi.net().resume_point(layer_id).unwrap();
        assert_eq!(rid, layer_id, "flat spine resumes at the layer itself");
        let mut act = None;
        fi.forward_with_capture(&x(), &mut |id, input| {
            if id == rid {
                act = Some(input.clone());
            }
        });
        let act = act.unwrap();
        declare(&mut fi);
        let reference = fi.forward_from(rid, &act.repeat_batch(3)).unwrap();
        let mut fi2 = injector();
        declare(&mut fi2);
        let fast = fi2.forward_from_broadcast(rid, &act, 3).unwrap();
        assert_eq!(fast, reference, "broadcast decomposition is bit-identical");
        assert_eq!(fi2.injections_applied(), 3);
    }

    #[test]
    fn broadcast_resume_declines_unknown_layer() {
        let mut fi = injector();
        assert!(fi
            .forward_from_broadcast(LayerId::from_index(999), &x(), 2)
            .is_none());
        assert_eq!(fi.injections_applied(), 0);
    }

    #[test]
    fn fused_declare_rejects_bad_layer() {
        let mut fi = injector();
        assert!(fi.declare_fused_neuron_fi(99, Vec::new()).is_err());
        assert!(fi.net().hooks().is_empty());
    }

    #[test]
    fn custom_model_sees_context() {
        let mut fi = injector();
        fi.declare_neuron_fi(&[NeuronFault {
            select: NeuronSelect::Exact {
                layer: 1,
                channel: 2,
                y: 3,
                x: 4,
            },
            batch: BatchSelect::All,
            model: Arc::new(Custom::new("ctx-probe", |old, ctx| {
                assert_eq!(ctx.layer, 1);
                assert_eq!(ctx.channel, 2);
                assert!(ctx.tensor_max_abs > 0.0);
                old + 1000.0
            })),
        }])
        .unwrap();
        fi.forward(&x());
        assert_eq!(fi.injections_applied(), 1);
    }

    #[test]
    fn into_inner_returns_clean_network() {
        let mut fi = injector();
        let clean = fi.forward(&x());
        fi.declare_weight_fi(&[WeightFault {
            select: WeightSelect::Random,
            model: Arc::new(StuckAt::new(9.0)),
        }])
        .unwrap();
        let mut net = fi.into_inner();
        assert!(net.hooks().is_empty());
        assert_eq!(net.forward(&x()), clean);
    }

    #[test]
    fn recorder_sees_injection_provenance() {
        use rustfi_obs::TraceRecorder;

        let mut fi = injector();
        let rec = Arc::new(TraceRecorder::new());
        // Declare first, install the recorder second: order must not matter.
        fi.declare_neuron_fi(&[NeuronFault {
            select: NeuronSelect::Exact {
                layer: 3,
                channel: 4,
                y: 0,
                x: 0,
            },
            batch: BatchSelect::All,
            model: Arc::new(StuckAt::new(77.0)),
        }])
        .unwrap();
        fi.set_recorder(Some(rec.clone()));
        fi.set_trial(Some(9));
        fi.forward(&x());

        let snap = rec.snapshot();
        assert_eq!(snap.counters.get("fi.injections"), Some(&1));
        let inj = snap
            .events
            .iter()
            .find_map(|e| match e {
                ObsEvent::Injection(i) => Some(*i),
                _ => None,
            })
            .expect("injection event emitted");
        assert_eq!(inj.trial, Some(9));
        assert_eq!(inj.layer, 3);
        assert_eq!(
            inj.site,
            InjectionSite::Neuron {
                batch: 0,
                channel: 4,
                y: 0,
                x: 0
            }
        );
        assert_eq!(inj.after, 77.0);
        assert!(
            !snap.spans.is_empty(),
            "network forward emitted layer spans"
        );

        // Weight provenance, outside a trial.
        fi.set_trial(None);
        fi.declare_weight_fi(&[WeightFault {
            select: WeightSelect::Exact { layer: 0, index: 5 },
            model: Arc::new(StuckAt::new(3.0)),
        }])
        .unwrap();
        let snap = rec.snapshot();
        let weight_inj = snap
            .events
            .iter()
            .rev()
            .find_map(|e| match e {
                ObsEvent::Injection(i) => Some(*i),
                _ => None,
            })
            .unwrap();
        assert_eq!(weight_inj.trial, None);
        assert_eq!(weight_inj.site, InjectionSite::Weight { index: 5 });
        assert_eq!(weight_inj.after, 3.0);
    }

    #[test]
    fn debug_shows_state() {
        let mut fi = injector();
        fi.declare_neuron_fi(&[NeuronFault {
            select: NeuronSelect::Random,
            batch: BatchSelect::All,
            model: Arc::new(Zero),
        }])
        .unwrap();
        let s = format!("{fi:?}");
        assert!(s.contains("active_hooks: 1"), "{s}");
    }
}
