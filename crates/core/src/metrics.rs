//! Outcome classification for injection experiments.

use rustfi_tensor::Tensor;

/// What a single injection did to the inference result.
///
/// The first three kinds are the paper's classification of an inference that
/// *completed*; `Crash` and `Hang` extend the taxonomy to trials that did not
/// (a perturbation or model panicked, or the trial exceeded its step budget),
/// so a resilience campaign can always account for every trial.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum OutcomeKind {
    /// The Top-1 prediction was unchanged — the error was masked.
    Masked,
    /// Silent data corruption: a different Top-1 prediction, the paper's
    /// "output corruption" criterion.
    Sdc,
    /// Detected unrecoverable error: the output (or, with guard hooks, an
    /// intermediate activation) contained NaN/Inf.
    Due,
    /// The trial panicked; the inference produced no output.
    Crash {
        /// The panic message, for debugging the perturbation or model.
        detail: String,
    },
    /// The trial exceeded its step budget and was cut short by the watchdog.
    Hang,
}

impl OutcomeKind {
    /// Stable lowercase label used in CSV exports and journals.
    pub fn label(&self) -> &'static str {
        match self {
            OutcomeKind::Masked => "masked",
            OutcomeKind::Sdc => "sdc",
            OutcomeKind::Due => "due",
            OutcomeKind::Crash { .. } => "crash",
            OutcomeKind::Hang => "hang",
        }
    }

    /// Whether the trial corrupted or aborted the inference (anything but
    /// masked).
    pub fn is_corruption(&self) -> bool {
        !matches!(self, OutcomeKind::Masked)
    }
}

/// Index of the largest value in a logits row.
///
/// # Panics
///
/// Panics on an empty row.
pub fn top1(row: &[f32]) -> usize {
    assert!(!row.is_empty(), "empty logits row");
    let mut best = 0;
    for (i, &v) in row.iter().enumerate() {
        if v > row[best] {
            best = i;
        }
    }
    best
}

/// Whether `label` is among the `k` largest entries of the row.
pub fn in_top_k(row: &[f32], label: usize, k: usize) -> bool {
    if label >= row.len() {
        return false;
    }
    let mut higher = 0;
    for (i, &v) in row.iter().enumerate() {
        if v > row[label] || (v == row[label] && i < label) {
            higher += 1;
        }
    }
    higher < k
}

/// Softmax probability of `label` within the row.
///
/// # Panics
///
/// Panics if `label` is out of range.
pub fn confidence(row: &[f32], label: usize) -> f32 {
    assert!(label < row.len(), "label {label} out of range");
    let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let denom: f32 = row.iter().map(|&v| (v - m).exp()).sum();
    (row[label] - m).exp() / denom
}

/// Classifies a perturbed logits row against the clean Top-1 prediction.
pub fn classify_outcome(golden_top1: usize, perturbed_row: &[f32]) -> OutcomeKind {
    if perturbed_row.iter().any(|v| !v.is_finite()) {
        return OutcomeKind::Due;
    }
    if top1(perturbed_row) == golden_top1 {
        OutcomeKind::Masked
    } else {
        OutcomeKind::Sdc
    }
}

/// Classifies every row of a perturbed logits batch.
///
/// # Panics
///
/// Panics if `golden.len()` differs from the batch size.
pub fn classify_batch(golden: &[usize], perturbed: &Tensor) -> Vec<OutcomeKind> {
    let (n, k) = perturbed.dims2();
    assert_eq!(
        golden.len(),
        n,
        "{} golden labels for batch {n}",
        golden.len()
    );
    (0..n)
        .map(|b| classify_outcome(golden[b], &perturbed.data()[b * k..(b + 1) * k]))
        .collect()
}

/// Running totals of outcome kinds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OutcomeCounts {
    /// Masked trials.
    pub masked: usize,
    /// SDC trials.
    pub sdc: usize,
    /// DUE trials.
    pub due: usize,
    /// Crashed trials (the perturbation or model panicked).
    pub crash: usize,
    /// Hung trials (cut short by the watchdog).
    pub hang: usize,
}

impl OutcomeCounts {
    /// Adds one outcome.
    pub fn record(&mut self, outcome: &OutcomeKind) {
        match outcome {
            OutcomeKind::Masked => self.masked += 1,
            OutcomeKind::Sdc => self.sdc += 1,
            OutcomeKind::Due => self.due += 1,
            OutcomeKind::Crash { .. } => self.crash += 1,
            OutcomeKind::Hang => self.hang += 1,
        }
    }

    /// Total trials recorded.
    pub fn total(&self) -> usize {
        self.masked + self.sdc + self.due + self.crash + self.hang
    }

    /// Fraction of trials that were SDCs (0 if none recorded).
    pub fn sdc_rate(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.sdc as f64 / self.total() as f64
        }
    }

    /// Half-width of the 99% normal-approximation confidence interval on the
    /// SDC rate (the paper reports error bars this way).
    pub fn sdc_rate_ci99(&self) -> f64 {
        let n = self.total();
        if n == 0 {
            return 0.0;
        }
        let p = self.sdc_rate();
        2.576 * (p * (1.0 - p) / n as f64).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top1_and_ties() {
        assert_eq!(top1(&[0.1, 0.9, 0.3]), 1);
        assert_eq!(top1(&[0.5, 0.5]), 0, "first wins ties");
    }

    #[test]
    fn in_top_k_basics() {
        let row = [0.1, 0.9, 0.5, 0.7];
        assert!(in_top_k(&row, 1, 1));
        assert!(!in_top_k(&row, 2, 2));
        assert!(in_top_k(&row, 2, 3));
        assert!(
            !in_top_k(&row, 9, 4),
            "out-of-range label is never in top-k"
        );
    }

    #[test]
    fn confidence_is_softmax() {
        let row = [0.0, 0.0];
        assert!((confidence(&row, 0) - 0.5).abs() < 1e-6);
        let row = [10.0, 0.0];
        assert!(confidence(&row, 0) > 0.99);
    }

    #[test]
    fn classify_masked_sdc_due() {
        assert_eq!(classify_outcome(0, &[1.0, 0.5]), OutcomeKind::Masked);
        assert_eq!(classify_outcome(0, &[0.5, 1.0]), OutcomeKind::Sdc);
        assert_eq!(classify_outcome(0, &[f32::NAN, 1.0]), OutcomeKind::Due);
        assert_eq!(classify_outcome(0, &[f32::INFINITY, 1.0]), OutcomeKind::Due);
    }

    #[test]
    fn classify_batch_maps_rows() {
        let logits = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2]);
        let outcomes = classify_batch(&[0, 0], &logits);
        assert_eq!(outcomes, vec![OutcomeKind::Masked, OutcomeKind::Sdc]);
    }

    #[test]
    fn counts_accumulate_and_rate() {
        let mut c = OutcomeCounts::default();
        for _ in 0..95 {
            c.record(&OutcomeKind::Masked);
        }
        for _ in 0..2 {
            c.record(&OutcomeKind::Sdc);
        }
        c.record(&OutcomeKind::Due);
        c.record(&OutcomeKind::Crash {
            detail: "index out of bounds".into(),
        });
        c.record(&OutcomeKind::Hang);
        assert_eq!(c.total(), 100);
        assert_eq!((c.crash, c.hang), (1, 1));
        assert!((c.sdc_rate() - 0.02).abs() < 1e-9);
        assert!(c.sdc_rate_ci99() > 0.0 && c.sdc_rate_ci99() < 0.1);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(OutcomeKind::Masked.label(), "masked");
        assert_eq!(OutcomeKind::Sdc.label(), "sdc");
        assert_eq!(OutcomeKind::Due.label(), "due");
        assert_eq!(
            OutcomeKind::Crash {
                detail: String::new()
            }
            .label(),
            "crash"
        );
        assert_eq!(OutcomeKind::Hang.label(), "hang");
        assert!(!OutcomeKind::Masked.is_corruption());
        assert!(OutcomeKind::Hang.is_corruption());
    }

    #[test]
    fn empty_counts_are_safe() {
        let c = OutcomeCounts::default();
        assert_eq!(c.sdc_rate(), 0.0);
        assert_eq!(c.sdc_rate_ci99(), 0.0);
    }
}
