//! Fault-site selection: where in the network a perturbation lands.

use crate::error::FiError;
use crate::profile::ModelProfile;
use rustfi_tensor::SeededRng;

/// Which neuron(s) to perturb, before resolution against a profile.
///
/// Layer indices refer to the *injectable-layer* order reported by
/// [`ModelProfile::layers`] (conv/linear layers in execution order), matching
/// PyTorchFI's layer numbering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NeuronSelect {
    /// An exact site: layer, feature map (channel), and coordinates.
    Exact {
        /// Injectable-layer index.
        layer: usize,
        /// Feature map (channel) index.
        channel: usize,
        /// Row within the feature map (0 for linear layers).
        y: usize,
        /// Column within the feature map (0 for linear layers).
        x: usize,
    },
    /// A uniformly random neuron within one layer.
    RandomInLayer {
        /// Injectable-layer index.
        layer: usize,
    },
    /// A uniformly random neuron within one feature map.
    RandomInChannel {
        /// Injectable-layer index.
        layer: usize,
        /// Feature map (channel) index.
        channel: usize,
    },
    /// A uniformly random neuron anywhere in the network, weighted by layer
    /// size (every neuron equally likely).
    Random,
    /// A contiguous spatial patch of neurons within one random feature map —
    /// the "multiple bit flips in multiple neurons" mapping of lower-level
    /// faults described in the paper's §III-D (e.g. a datapath burst error
    /// corrupting adjacent outputs). The patch is clamped to the feature
    /// map, so up to `height × width` sites resolve.
    RandomPatch {
        /// Injectable-layer index.
        layer: usize,
        /// Patch height.
        height: usize,
        /// Patch width.
        width: usize,
    },
}

/// Which batch elements a fault applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSelect {
    /// The same perturbation site in every batch element.
    All,
    /// Only one batch element.
    Element(usize),
    /// An independently sampled site per batch element.
    Each,
}

/// A fully resolved neuron fault site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NeuronSite {
    /// Injectable-layer index.
    pub layer: usize,
    /// Batch element; `None` applies to every element.
    pub batch: Option<usize>,
    /// Feature map (channel).
    pub channel: usize,
    /// Row.
    pub y: usize,
    /// Column.
    pub x: usize,
}

/// Which weight(s) to perturb.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WeightSelect {
    /// An exact flat index into one layer's weight tensor.
    Exact {
        /// Injectable-layer index.
        layer: usize,
        /// Flat (row-major) index into the weight tensor.
        index: usize,
    },
    /// A uniformly random weight within one layer.
    RandomInLayer {
        /// Injectable-layer index.
        layer: usize,
    },
    /// A uniformly random weight anywhere in the network, weighted by layer
    /// size.
    Random,
}

/// A fully resolved weight fault site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WeightSite {
    /// Injectable-layer index.
    pub layer: usize,
    /// Flat index into the layer's weight tensor.
    pub index: usize,
}

fn check_layer(profile: &ModelProfile, layer: usize) -> Result<(), FiError> {
    if profile.is_empty() {
        return Err(FiError::NoInjectableLayers);
    }
    if layer >= profile.len() {
        return Err(FiError::LayerOutOfRange {
            requested: layer,
            available: profile.len(),
        });
    }
    Ok(())
}

impl NeuronSelect {
    /// Resolves the selection to concrete sites for the given batch
    /// semantics.
    ///
    /// # Errors
    ///
    /// Returns [`FiError`] if a layer index, coordinate, or batch element is
    /// out of range for the profiled model.
    pub fn resolve(
        &self,
        profile: &ModelProfile,
        batch: BatchSelect,
        rng: &mut SeededRng,
    ) -> Result<Vec<NeuronSite>, FiError> {
        if profile.is_empty() {
            return Err(FiError::NoInjectableLayers);
        }
        let batches: Vec<Option<usize>> = match batch {
            BatchSelect::All => vec![None],
            BatchSelect::Element(b) => {
                if b >= profile.batch_size() {
                    return Err(FiError::BatchOutOfRange {
                        requested: b,
                        batch_size: profile.batch_size(),
                    });
                }
                vec![Some(b)]
            }
            BatchSelect::Each => (0..profile.batch_size()).map(Some).collect(),
        };
        let mut sites = Vec::with_capacity(batches.len());
        for b in batches {
            if let NeuronSelect::RandomPatch {
                layer,
                height,
                width,
            } = *self
            {
                sites.extend(Self::resolve_patch(profile, layer, height, width, b, rng)?);
            } else {
                sites.push(self.resolve_one(profile, b, rng)?);
            }
        }
        Ok(sites)
    }

    fn resolve_patch(
        profile: &ModelProfile,
        layer: usize,
        height: usize,
        width: usize,
        batch: Option<usize>,
        rng: &mut SeededRng,
    ) -> Result<Vec<NeuronSite>, FiError> {
        check_layer(profile, layer)?;
        if height == 0 || width == 0 {
            return Err(FiError::NeuronOutOfRange {
                layer,
                detail: "patch dimensions must be positive".into(),
            });
        }
        let dims = profile.layers()[layer].output_dims;
        let channel = rng.below(dims[1]);
        let y0 = rng.below(dims[2]);
        let x0 = rng.below(dims[3]);
        let mut sites = Vec::new();
        for dy in 0..height {
            for dx in 0..width {
                let (y, x) = (y0 + dy, x0 + dx);
                if y < dims[2] && x < dims[3] {
                    sites.push(NeuronSite {
                        layer,
                        batch,
                        channel,
                        y,
                        x,
                    });
                }
            }
        }
        Ok(sites)
    }

    fn resolve_one(
        &self,
        profile: &ModelProfile,
        batch: Option<usize>,
        rng: &mut SeededRng,
    ) -> Result<NeuronSite, FiError> {
        match *self {
            NeuronSelect::Exact {
                layer,
                channel,
                y,
                x,
            } => {
                check_layer(profile, layer)?;
                let dims = profile.layers()[layer].output_dims;
                if channel >= dims[1] || y >= dims[2] || x >= dims[3] {
                    return Err(FiError::NeuronOutOfRange {
                        layer,
                        detail: format!(
                            "requested (channel={channel}, y={y}, x={x}) but layer '{}' output is \
                             {} channels x {} x {}",
                            profile.layers()[layer].name,
                            dims[1],
                            dims[2],
                            dims[3]
                        ),
                    });
                }
                Ok(NeuronSite {
                    layer,
                    batch,
                    channel,
                    y,
                    x,
                })
            }
            NeuronSelect::RandomInLayer { layer } => {
                check_layer(profile, layer)?;
                let dims = profile.layers()[layer].output_dims;
                Ok(NeuronSite {
                    layer,
                    batch,
                    channel: rng.below(dims[1]),
                    y: rng.below(dims[2]),
                    x: rng.below(dims[3]),
                })
            }
            NeuronSelect::RandomInChannel { layer, channel } => {
                check_layer(profile, layer)?;
                let dims = profile.layers()[layer].output_dims;
                if channel >= dims[1] {
                    return Err(FiError::NeuronOutOfRange {
                        layer,
                        detail: format!(
                            "requested channel {channel} but layer '{}' has {} feature maps",
                            profile.layers()[layer].name,
                            dims[1]
                        ),
                    });
                }
                Ok(NeuronSite {
                    layer,
                    batch,
                    channel,
                    y: rng.below(dims[2]),
                    x: rng.below(dims[3]),
                })
            }
            NeuronSelect::RandomPatch { .. } => {
                unreachable!("RandomPatch is expanded by resolve(), not resolve_one()")
            }
            NeuronSelect::Random => {
                // Neuron-uniform: pick a flat index over all neurons.
                let total = profile.total_neurons_per_image();
                let mut pick = rng.below(total);
                for (layer, lp) in profile.layers().iter().enumerate() {
                    let n = lp.neurons_per_image();
                    if pick < n {
                        let dims = lp.output_dims;
                        let hw = dims[2] * dims[3];
                        return Ok(NeuronSite {
                            layer,
                            batch,
                            channel: pick / hw,
                            y: (pick % hw) / dims[3],
                            x: pick % dims[3],
                        });
                    }
                    pick -= n;
                }
                unreachable!("pick < total neurons")
            }
        }
    }
}

impl WeightSelect {
    /// Resolves the selection to a concrete weight site.
    ///
    /// # Errors
    ///
    /// Returns [`FiError`] if a layer index or weight index is out of range.
    pub fn resolve(
        &self,
        profile: &ModelProfile,
        rng: &mut SeededRng,
    ) -> Result<WeightSite, FiError> {
        if profile.is_empty() {
            return Err(FiError::NoInjectableLayers);
        }
        match *self {
            WeightSelect::Exact { layer, index } => {
                check_layer(profile, layer)?;
                let count = profile.layers()[layer].weight_count();
                if index >= count {
                    return Err(FiError::WeightOutOfRange {
                        layer,
                        detail: format!(
                            "flat index {index} out of range for weight tensor {:?} ({count} elements)",
                            profile.layers()[layer].weight_dims
                        ),
                    });
                }
                Ok(WeightSite { layer, index })
            }
            WeightSelect::RandomInLayer { layer } => {
                check_layer(profile, layer)?;
                let count = profile.layers()[layer].weight_count();
                Ok(WeightSite {
                    layer,
                    index: rng.below(count),
                })
            }
            WeightSelect::Random => {
                let total = profile.total_weights();
                let mut pick = rng.below(total);
                for (layer, lp) in profile.layers().iter().enumerate() {
                    let n = lp.weight_count();
                    if pick < n {
                        return Ok(WeightSite { layer, index: pick });
                    }
                    pick -= n;
                }
                unreachable!("pick < total weights")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::ModelProfile;
    use rustfi_nn::{zoo, ZooConfig};

    fn profile() -> ModelProfile {
        let mut net = zoo::lenet(&ZooConfig::tiny(10));
        ModelProfile::discover(&mut net, [2, 3, 16, 16])
    }

    #[test]
    fn exact_in_range_resolves() {
        let p = profile();
        let mut rng = SeededRng::new(1);
        let sites = NeuronSelect::Exact {
            layer: 0,
            channel: 5,
            y: 15,
            x: 0,
        }
        .resolve(&p, BatchSelect::All, &mut rng)
        .unwrap();
        assert_eq!(sites.len(), 1);
        assert_eq!(sites[0].batch, None);
        assert_eq!(sites[0].channel, 5);
    }

    #[test]
    fn exact_out_of_range_reports_geometry() {
        let p = profile();
        let mut rng = SeededRng::new(1);
        let err = NeuronSelect::Exact {
            layer: 0,
            channel: 6,
            y: 0,
            x: 0,
        }
        .resolve(&p, BatchSelect::All, &mut rng)
        .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("6 channels"), "{msg}");
    }

    #[test]
    fn layer_out_of_range() {
        let p = profile();
        let mut rng = SeededRng::new(1);
        let err = NeuronSelect::RandomInLayer { layer: 99 }
            .resolve(&p, BatchSelect::All, &mut rng)
            .unwrap_err();
        assert_eq!(
            err,
            FiError::LayerOutOfRange {
                requested: 99,
                available: 4
            }
        );
    }

    #[test]
    fn random_sites_are_always_legal() {
        let p = profile();
        let mut rng = SeededRng::new(2);
        for _ in 0..500 {
            let site = NeuronSelect::Random
                .resolve(&p, BatchSelect::All, &mut rng)
                .unwrap()[0];
            let dims = p.layers()[site.layer].output_dims;
            assert!(site.channel < dims[1] && site.y < dims[2] && site.x < dims[3]);
        }
    }

    #[test]
    fn random_is_neuron_uniform_across_layers() {
        // Layer 0 has 6*256=1536 neurons of 2346 total; expect ~65% of picks.
        let p = profile();
        let mut rng = SeededRng::new(3);
        let n = 4000;
        let mut in_layer0 = 0;
        for _ in 0..n {
            let site = NeuronSelect::Random
                .resolve(&p, BatchSelect::All, &mut rng)
                .unwrap()[0];
            if site.layer == 0 {
                in_layer0 += 1;
            }
        }
        let frac = in_layer0 as f32 / n as f32;
        let expect = 1536.0 / 2346.0;
        assert!(
            (frac - expect).abs() < 0.04,
            "got {frac}, expected ~{expect}"
        );
    }

    #[test]
    fn batch_each_gives_independent_sites() {
        let p = profile();
        let mut rng = SeededRng::new(4);
        let sites = NeuronSelect::RandomInLayer { layer: 0 }
            .resolve(&p, BatchSelect::Each, &mut rng)
            .unwrap();
        assert_eq!(sites.len(), 2, "one site per batch element");
        assert_eq!(sites[0].batch, Some(0));
        assert_eq!(sites[1].batch, Some(1));
        // Coordinates should (almost surely) differ.
        assert!(
            sites[0].channel != sites[1].channel
                || sites[0].y != sites[1].y
                || sites[0].x != sites[1].x
        );
    }

    #[test]
    fn batch_element_out_of_range() {
        let p = profile();
        let mut rng = SeededRng::new(5);
        let err = NeuronSelect::Random
            .resolve(&p, BatchSelect::Element(7), &mut rng)
            .unwrap_err();
        assert!(matches!(err, FiError::BatchOutOfRange { requested: 7, .. }));
    }

    #[test]
    fn random_in_channel_fixes_channel() {
        let p = profile();
        let mut rng = SeededRng::new(6);
        for _ in 0..50 {
            let site = NeuronSelect::RandomInChannel {
                layer: 1,
                channel: 3,
            }
            .resolve(&p, BatchSelect::All, &mut rng)
            .unwrap()[0];
            assert_eq!(site.layer, 1);
            assert_eq!(site.channel, 3);
        }
    }

    #[test]
    fn random_patch_resolves_contiguous_sites() {
        let p = profile();
        let mut rng = SeededRng::new(21);
        for _ in 0..50 {
            let sites = NeuronSelect::RandomPatch {
                layer: 1,
                height: 2,
                width: 3,
            }
            .resolve(&p, BatchSelect::All, &mut rng)
            .unwrap();
            assert!(!sites.is_empty() && sites.len() <= 6);
            let dims = p.layers()[1].output_dims;
            let (c0, y0, x0) = (sites[0].channel, sites[0].y, sites[0].x);
            for s in &sites {
                assert_eq!(s.channel, c0, "patch stays in one feature map");
                assert!(s.y < dims[2] && s.x < dims[3], "patch clamped to fmap");
                assert!(s.y >= y0 && s.y < y0 + 2 && s.x >= x0 && s.x < x0 + 3);
            }
        }
    }

    #[test]
    fn random_patch_on_linear_layer_degenerates_to_one_site() {
        // Linear outputs are [n, f, 1, 1]: the patch clamps to one neuron.
        let p = profile();
        let mut rng = SeededRng::new(22);
        let sites = NeuronSelect::RandomPatch {
            layer: 3,
            height: 4,
            width: 4,
        }
        .resolve(&p, BatchSelect::All, &mut rng)
        .unwrap();
        assert_eq!(sites.len(), 1);
    }

    #[test]
    fn random_patch_rejects_zero_size() {
        let p = profile();
        let mut rng = SeededRng::new(23);
        let err = NeuronSelect::RandomPatch {
            layer: 0,
            height: 0,
            width: 2,
        }
        .resolve(&p, BatchSelect::All, &mut rng)
        .unwrap_err();
        assert!(matches!(err, FiError::NeuronOutOfRange { .. }));
    }

    #[test]
    fn weight_selects_resolve_and_validate() {
        let p = profile();
        let mut rng = SeededRng::new(7);
        let w = WeightSelect::RandomInLayer { layer: 0 }
            .resolve(&p, &mut rng)
            .unwrap();
        assert!(w.index < p.layers()[0].weight_count());

        let err = WeightSelect::Exact {
            layer: 0,
            index: 999_999,
        }
        .resolve(&p, &mut rng)
        .unwrap_err();
        assert!(matches!(err, FiError::WeightOutOfRange { .. }));

        for _ in 0..100 {
            let w = WeightSelect::Random.resolve(&p, &mut rng).unwrap();
            assert!(w.index < p.layers()[w.layer].weight_count());
        }
    }

    #[test]
    fn resolution_is_deterministic_per_seed() {
        let p = profile();
        let a = NeuronSelect::Random
            .resolve(&p, BatchSelect::All, &mut SeededRng::new(9))
            .unwrap();
        let b = NeuronSelect::Random
            .resolve(&p, BatchSelect::All, &mut SeededRng::new(9))
            .unwrap();
        assert_eq!(a, b);
    }
}
