//! Deterministic shard planning and journal merging for distributed
//! campaigns.
//!
//! A campaign's trial space is partitioned into N contiguous-by-trial-id
//! shards ([`plan_shards`]). Each shard runs as an independent process
//! ([`crate::campaign::Campaign::run_shard`]) writing its own crash-safe
//! journal whose header records the shard identity and a fingerprint of
//! every record-affecting configuration knob ([`config_fingerprint`]).
//! Because every trial's randomness derives only from `(campaign seed,
//! trial index)` — never from which shard or worker executes it — the
//! records a shard produces are bit-identical to the same trial range of a
//! single-process run, and [`merge_shard_journals`] reassembles any set of
//! shard journals (torn tails and partially-complete shards included) into
//! one report that is record-identical regardless of shard count. A
//! property test (`shard_invariance`) enforces this the same way the
//! thread-invariance one does.
//!
//! The merger degrades gracefully: shards whose journals are missing or
//! incomplete are reported in [`MergedCampaign::missing_shards`] instead of
//! failing the merge, so an orchestrator that exhausted a shard's retry
//! budget can still deliver a partial report with an explicit gap.

use crate::campaign::{CampaignConfig, FaultMode, TrialRecord};
use crate::error::FiError;
use crate::journal::{read_journal, JournalHeader};
use crate::metrics::{OutcomeCounts, OutcomeKind};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// One shard of a campaign's trial space: trials `start..end` of `trials`
/// total, executed as shard `index` of `count`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    /// This shard's index, `0..count`.
    pub index: usize,
    /// Total shard count of the plan this spec came from.
    pub count: usize,
    /// First trial id this shard runs (inclusive).
    pub start: usize,
    /// One past the last trial id this shard runs (exclusive).
    pub end: usize,
}

impl ShardSpec {
    /// How many trials this shard runs.
    pub fn trials(&self) -> usize {
        self.end - self.start
    }

    /// Whether `trial` belongs to this shard.
    pub fn contains(&self, trial: usize) -> bool {
        (self.start..self.end).contains(&trial)
    }

    /// Canonical journal file name for this shard
    /// (`shard-<index>-of-<count>.jsonl`), used by the orchestrator and
    /// anything that wants to find shard journals later.
    pub fn journal_path(&self, dir: &Path) -> PathBuf {
        dir.join(format!(
            "shard-{:04}-of-{:04}.jsonl",
            self.index, self.count
        ))
    }
}

/// Partitions `trials` trials into `count` contiguous-by-trial-id shards.
///
/// The split is deterministic and as even as possible: the first
/// `trials % count` shards get one extra trial. Trailing shards may be
/// empty when `count > trials`; they are still planned (and considered
/// trivially complete) so shard identities never depend on the trial count.
///
/// # Panics
///
/// Panics if `count` is zero.
pub fn plan_shards(trials: usize, count: usize) -> Vec<ShardSpec> {
    assert!(count > 0, "a campaign needs at least one shard");
    let base = trials / count;
    let extra = trials % count;
    let mut start = 0;
    (0..count)
        .map(|index| {
            let len = base + usize::from(index < extra);
            let spec = ShardSpec {
                index,
                count,
                start,
                end: start + len,
            };
            start += len;
            spec
        })
        .collect()
}

/// Fingerprints every record-affecting campaign knob into a 64-bit FNV-1a
/// hash, stored in the journal header so a resume (or merge) can refuse
/// journals written under a different configuration instead of silently
/// producing a mixed report.
///
/// Covered: seed, trial count, quantization regime, guard mode, step
/// budget, the fault mode (selection template included), and the
/// perturbation model's name. Deliberately *not* covered: threads, prefix
/// cache, fusion, pooling, recorders — those are execution strategy, proven
/// record-invariant by property tests, and a journal written under one
/// strategy must stay resumable under another. Model weights and images are
/// out of reach here; the fingerprint is a strong guard against config
/// mix-ups, not a cryptographic binding.
pub fn config_fingerprint(cfg: &CampaignConfig, mode: &FaultMode, model_name: &str) -> u64 {
    let canonical = format!(
        "seed={};trials={};quant={:?};guard={:?};max_steps={:?};mode={:?};model={}",
        cfg.seed, cfg.trials, cfg.quant, cfg.guard, cfg.max_steps, mode, model_name
    );
    fnv1a(canonical.as_bytes())
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A campaign report reassembled from shard journals.
///
/// `records` holds every journaled trial in trial order, deduplicated;
/// `missing_shards` lists shards whose journals were absent or whose trial
/// range is not fully covered. When `missing_shards` is empty the report is
/// record-identical to a single-process run of the same campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct MergedCampaign {
    /// The campaign's root seed (from the shard headers).
    pub seed: u64,
    /// The campaign's total trial count (from the shard headers).
    pub trials: usize,
    /// The record-affecting configuration fingerprint the shards agreed on.
    pub config_hash: u64,
    /// The shard count the journals were written under.
    pub shard_count: usize,
    /// Every recovered trial record, in trial order, deduplicated.
    pub records: Vec<TrialRecord>,
    /// Outcome totals over `records`.
    pub counts: OutcomeCounts,
    /// Per-injectable-layer `(trials, sdcs)`, sized to the highest layer
    /// observed in the records (a single-process [`crate::CampaignResult`]
    /// sizes this to the model profile instead, so compare `records` and
    /// `counts` for identity, not this).
    pub per_layer: Vec<(usize, usize)>,
    /// Shards whose journal was missing or whose trial range is incomplete.
    pub missing_shards: Vec<usize>,
    /// Trial ids in `0..trials` with no record.
    pub missing_trials: usize,
}

impl MergedCampaign {
    /// Whether every trial of the campaign is accounted for.
    pub fn is_complete(&self) -> bool {
        self.missing_shards.is_empty() && self.missing_trials == 0
    }
}

/// Reassembles a set of shard journals into one [`MergedCampaign`].
///
/// Tolerates exactly the damage a killed shard leaves behind: a journal
/// with a torn final line (ignored, like resume does), a journal covering
/// only part of its shard's range (the gap is reported via
/// `missing_shards`/`missing_trials`), or a journal file that doesn't exist
/// at all. What it refuses, with a typed [`FiError::Journal`], is evidence
/// of a *mixed* campaign: headers that disagree on seed, trial count,
/// config fingerprint, or shard count, two journals claiming the same trial
/// with different records, or records outside the campaign's trial space.
///
/// The result is record-identical for any shard count — merging the
/// journals of a 5-shard run and a 2-shard run of the same campaign yields
/// the same records, which is what makes restarting a fleet at a different
/// width safe.
pub fn merge_shard_journals(paths: &[PathBuf]) -> Result<MergedCampaign, FiError> {
    let mut identity: Option<JournalHeader> = None;
    let mut seen_shards: Vec<usize> = Vec::new();
    let mut merged: BTreeMap<usize, TrialRecord> = BTreeMap::new();
    for path in paths {
        let (header, records) = match read_journal(path) {
            Ok(ok) => ok,
            // A shard that never got far enough to write its journal is a
            // gap to report, not a merge failure.
            Err(FiError::Io { ref source, .. })
                if source.kind() == std::io::ErrorKind::NotFound =>
            {
                continue;
            }
            Err(e) => return Err(e),
        };
        match &identity {
            None => identity = Some(header),
            Some(id) => {
                if (id.seed, id.trials, id.config_hash, id.shard_count)
                    != (
                        header.seed,
                        header.trials,
                        header.config_hash,
                        header.shard_count,
                    )
                {
                    return Err(FiError::Journal {
                        line: 1,
                        detail: format!(
                            "{} belongs to a different campaign: its header records seed {} \
                             over {} trials (config {:#018x}, {} shards), the first journal \
                             records seed {} over {} trials (config {:#018x}, {} shards)",
                            path.display(),
                            header.seed,
                            header.trials,
                            header.config_hash,
                            header.shard_count,
                            id.seed,
                            id.trials,
                            id.config_hash,
                            id.shard_count
                        ),
                    });
                }
            }
        }
        seen_shards.push(header.shard_index);
        for r in records {
            if r.trial >= header.trials {
                return Err(FiError::Journal {
                    line: 1,
                    detail: format!(
                        "{} records trial {} outside the campaign's {} trials",
                        path.display(),
                        r.trial,
                        header.trials
                    ),
                });
            }
            match merged.get(&r.trial) {
                None => {
                    merged.insert(r.trial, r);
                }
                // Shards are deterministic, so overlapping journals (e.g. a
                // restarted shard's old and new journal) must agree exactly.
                Some(existing) if *existing == r => {}
                Some(_) => {
                    return Err(FiError::Journal {
                        line: 1,
                        detail: format!(
                            "{} disagrees with another shard about trial {} — the journals \
                             come from diverging campaign configurations",
                            path.display(),
                            r.trial
                        ),
                    });
                }
            }
        }
    }
    let identity = identity.ok_or(FiError::Journal {
        line: 1,
        detail: String::from("no shard journal could be read; nothing to merge"),
    })?;

    // A shard is complete when every trial of its planned range has a
    // record. The plan is recomputed here — it is a pure function of
    // (trials, shard count), which is exactly why it can be.
    let plan = plan_shards(identity.trials, identity.shard_count);
    let missing_shards: Vec<usize> = plan
        .iter()
        .filter(|spec| {
            !seen_shards.contains(&spec.index)
                || (spec.start..spec.end).any(|t| !merged.contains_key(&t))
        })
        .map(|spec| spec.index)
        .collect();
    let missing_trials = identity.trials - merged.len();

    let mut counts = OutcomeCounts::default();
    let layer_count = merged
        .values()
        .filter(|r| r.layer != usize::MAX)
        .map(|r| r.layer + 1)
        .max()
        .unwrap_or(0);
    let mut per_layer = vec![(0usize, 0usize); layer_count];
    for r in merged.values() {
        counts.record(&r.outcome);
        if r.layer < per_layer.len() {
            per_layer[r.layer].0 += 1;
            if r.outcome == OutcomeKind::Sdc {
                per_layer[r.layer].1 += 1;
            }
        }
    }
    Ok(MergedCampaign {
        seed: identity.seed,
        trials: identity.trials,
        config_hash: identity.config_hash,
        shard_count: identity.shard_count,
        records: merged.into_values().collect(),
        counts,
        per_layer,
        missing_shards,
        missing_trials,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::GuardMode;
    use crate::journal::JournalWriter;
    use crate::location::{NeuronSelect, NeuronSite};

    #[test]
    fn plans_are_contiguous_even_and_exhaustive() {
        for trials in [0usize, 1, 7, 100, 101, 1000] {
            for count in [1usize, 2, 3, 5, 8, 13] {
                let plan = plan_shards(trials, count);
                assert_eq!(plan.len(), count);
                let mut next = 0;
                for (i, s) in plan.iter().enumerate() {
                    assert_eq!((s.index, s.count), (i, count));
                    assert_eq!(s.start, next, "contiguous by trial id");
                    next = s.end;
                    assert!(s.trials() >= trials / count);
                    assert!(s.trials() <= trials / count + 1, "near-even split");
                }
                assert_eq!(next, trials, "every trial assigned exactly once");
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_is_rejected() {
        plan_shards(10, 0);
    }

    #[test]
    fn fingerprint_separates_record_affecting_knobs_only() {
        let cfg = CampaignConfig::default();
        let mode = FaultMode::Neuron(NeuronSelect::Random);
        let base = config_fingerprint(&cfg, &mode, "stuck-at");
        // Same inputs, same fingerprint.
        assert_eq!(base, config_fingerprint(&cfg, &mode, "stuck-at"));
        // Record-affecting changes move it.
        let mut c = cfg.clone();
        c.seed ^= 1;
        assert_ne!(base, config_fingerprint(&c, &mode, "stuck-at"));
        let mut c = cfg.clone();
        c.guard = GuardMode::Record;
        assert_ne!(base, config_fingerprint(&c, &mode, "stuck-at"));
        let mut c = cfg.clone();
        c.quant = crate::injector::QuantMode::Simulated;
        assert_ne!(base, config_fingerprint(&c, &mode, "stuck-at"));
        c.quant = crate::injector::QuantMode::Int8;
        assert_ne!(base, config_fingerprint(&c, &mode, "stuck-at"));
        assert_ne!(
            base,
            config_fingerprint(
                &cfg,
                &FaultMode::Neuron(NeuronSelect::RandomInLayer { layer: 1 }),
                "stuck-at"
            )
        );
        assert_ne!(base, config_fingerprint(&cfg, &mode, "zero"));
        // Execution-strategy changes don't.
        let mut c = cfg.clone();
        c.threads = Some(7);
        c.fusion = Some(crate::campaign::FusionConfig::default());
        c.prefix_cache = Some(crate::prefix::PrefixCacheConfig::default());
        c.pool_budget_bytes = 0;
        assert_eq!(base, config_fingerprint(&c, &mode, "stuck-at"));
    }

    fn record(trial: usize) -> TrialRecord {
        TrialRecord {
            trial,
            image_index: trial % 3,
            layer: trial % 2,
            site: Some(NeuronSite {
                layer: trial % 2,
                batch: None,
                channel: 0,
                y: 1,
                x: 2,
            }),
            outcome: if trial.is_multiple_of(4) {
                OutcomeKind::Sdc
            } else {
                OutcomeKind::Masked
            },
            due_layer: None,
            top5_miss: trial.is_multiple_of(4),
            confidence_delta: trial as f32 * -0.01,
        }
    }

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("rustfi-shard-tests").join(name);
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn write_shard(dir: &Path, spec: &ShardSpec, trials: usize, upto: usize) -> PathBuf {
        let path = spec.journal_path(dir);
        let mut w = JournalWriter::create(
            &path,
            JournalHeader {
                seed: 9,
                trials,
                config_hash: 0xFEED,
                shard_index: spec.index,
                shard_count: spec.count,
            },
        )
        .unwrap();
        for t in spec.start..spec.end.min(upto) {
            w.append(&record(t), &path).unwrap();
        }
        path
    }

    #[test]
    fn merge_is_shard_count_invariant_and_flags_gaps() {
        let trials = 11;
        let dir = tmp_dir("merge");
        let mut reference: Option<Vec<TrialRecord>> = None;
        for count in [1usize, 2, 3, 5] {
            let plan = plan_shards(trials, count);
            let paths: Vec<PathBuf> = plan
                .iter()
                .map(|s| write_shard(&dir, s, trials, trials))
                .collect();
            let merged = merge_shard_journals(&paths).unwrap();
            assert!(merged.is_complete(), "{count} shards: {merged:?}");
            assert_eq!(merged.records.len(), trials);
            assert_eq!(merged.shard_count, count);
            match &reference {
                None => reference = Some(merged.records.clone()),
                Some(r) => assert_eq!(&merged.records, r, "{count} shards"),
            }
        }

        // Drop one shard's journal entirely and truncate another mid-range:
        // the merge degrades to a partial report instead of failing.
        let plan = plan_shards(trials, 5);
        let mut paths: Vec<PathBuf> = Vec::new();
        for s in &plan {
            if s.index == 2 {
                continue; // never started
            }
            paths.push(write_shard(
                &dir,
                s,
                trials,
                if s.index == 3 { s.start + 1 } else { trials },
            ));
        }
        // A path that doesn't exist at all is skipped, not fatal.
        paths.push(dir.join("never-written.jsonl"));
        let merged = merge_shard_journals(&paths).unwrap();
        assert!(!merged.is_complete());
        assert_eq!(merged.missing_shards, vec![2, 3]);
        let expected_missing = plan[2].trials() + (plan[3].trials() - 1);
        assert_eq!(merged.missing_trials, expected_missing);
        assert_eq!(merged.records.len(), trials - expected_missing);
    }

    #[test]
    fn merge_tolerates_torn_tails_and_overlap() {
        let trials = 8;
        let dir = tmp_dir("torn");
        let plan = plan_shards(trials, 2);
        let a = write_shard(&dir, &plan[0], trials, trials);
        let b = write_shard(&dir, &plan[1], trials, trials);
        // Tear shard b's final record mid-line, as a kill would.
        let text = std::fs::read_to_string(&b).unwrap();
        std::fs::write(&b, &text[..text.len() - 9]).unwrap();
        // Overlap: a second journal for shard 0 (a restart at width 2 whose
        // plan assigned it the same range) agrees on every shared trial.
        let dup = dir.join("restarted-shard-0.jsonl");
        std::fs::copy(&a, &dup).unwrap();
        let merged = merge_shard_journals(&[a.clone(), b.clone(), dup]).unwrap();
        assert_eq!(merged.missing_trials, 1, "exactly the torn record");
        assert_eq!(merged.missing_shards, vec![1]);
        assert_eq!(merged.records.len(), trials - 1);
    }

    #[test]
    fn merge_accepts_heartbeat_only_journals_as_gaps() {
        // A worker that was spawned, wrote its header, heartbeated for a
        // while, and was killed before finishing a single trial leaves a
        // header-plus-heartbeats journal. That is a *gap*, not corruption:
        // the merge must succeed and report every one of that shard's
        // trials as missing.
        let trials = 9;
        let dir = tmp_dir("heartbeat-only");
        let plan = plan_shards(trials, 3);
        let full_a = write_shard(&dir, &plan[0], trials, trials);
        let full_c = write_shard(&dir, &plan[2], trials, trials);
        // Shard 1: header, three heartbeats, zero records.
        let idle = write_shard(&dir, &plan[1], trials, plan[1].start);
        for _ in 0..3 {
            assert!(crate::journal::append_heartbeat(&idle).unwrap());
        }
        let merged = merge_shard_journals(&[full_a, idle, full_c]).unwrap();
        assert!(!merged.is_complete());
        assert_eq!(merged.missing_shards, vec![1]);
        assert_eq!(merged.missing_trials, plan[1].trials());
        assert_eq!(merged.records.len(), trials - plan[1].trials());
        // Only trials outside shard 1's range were recovered.
        assert!(merged.records.iter().all(|r| !plan[1].contains(r.trial)));
    }

    #[test]
    fn merge_refuses_mixed_campaigns() {
        let trials = 6;
        let dir = tmp_dir("mixed");
        let plan = plan_shards(trials, 2);
        let a = write_shard(&dir, &plan[0], trials, trials);

        // Different config hash.
        let foreign = dir.join("foreign.jsonl");
        let mut w = JournalWriter::create(
            &foreign,
            JournalHeader {
                seed: 9,
                trials,
                config_hash: 0xBAD,
                shard_index: 1,
                shard_count: 2,
            },
        )
        .unwrap();
        w.append(&record(4), &foreign).unwrap();
        drop(w);
        let err = merge_shard_journals(&[a.clone(), foreign]).unwrap_err();
        assert!(
            matches!(err, FiError::Journal { .. })
                && err.to_string().contains("different campaign"),
            "{err}"
        );

        // Same identity, conflicting record for a shared trial.
        let conflicted = dir.join("conflicted.jsonl");
        let mut w = JournalWriter::create(
            &conflicted,
            JournalHeader {
                seed: 9,
                trials,
                config_hash: 0xFEED,
                shard_index: 0,
                shard_count: 2,
            },
        )
        .unwrap();
        let mut r = record(0);
        r.outcome = OutcomeKind::Hang;
        w.append(&r, &conflicted).unwrap();
        drop(w);
        let err = merge_shard_journals(&[a.clone(), conflicted]).unwrap_err();
        assert!(err.to_string().contains("disagrees"), "{err}");

        // A record outside the campaign's trial space.
        let overflow = dir.join("overflow.jsonl");
        let mut w = JournalWriter::create(
            &overflow,
            JournalHeader {
                seed: 9,
                trials,
                config_hash: 0xFEED,
                shard_index: 1,
                shard_count: 2,
            },
        )
        .unwrap();
        w.append(&record(trials + 5), &overflow).unwrap();
        drop(w);
        let err = merge_shard_journals(&[a, overflow]).unwrap_err();
        assert!(err.to_string().contains("outside"), "{err}");

        // Nothing readable at all.
        let err = merge_shard_journals(&[dir.join("ghost.jsonl")]).unwrap_err();
        assert!(err.to_string().contains("nothing to merge"), "{err}");
    }
}
