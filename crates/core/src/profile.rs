//! Model profiling: the dummy inference that discovers layer geometry.

use parking_lot::Mutex;
use rustfi_nn::{LayerId, LayerKind, Network};
use rustfi_tensor::Tensor;
use std::fmt;
use std::sync::Arc;

/// Geometry of one injectable layer discovered during profiling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerProfile {
    /// The layer's network id.
    pub id: LayerId,
    /// The layer's name.
    pub name: String,
    /// The layer's kind (conv or linear).
    pub kind: LayerKind,
    /// Output shape normalized to `[n, c, h, w]` (linear outputs become
    /// `[n, f, 1, 1]`).
    pub output_dims: [usize; 4],
    /// Weight tensor shape.
    pub weight_dims: Vec<usize>,
}

impl LayerProfile {
    /// Neurons per batch element in this layer's output.
    pub fn neurons_per_image(&self) -> usize {
        self.output_dims[1] * self.output_dims[2] * self.output_dims[3]
    }

    /// Number of weight scalars.
    pub fn weight_count(&self) -> usize {
        self.weight_dims.iter().product()
    }
}

/// Everything the injector learned about a model from its profiling pass:
/// the injectable (conv/linear) layers in execution order with their output
/// geometry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelProfile {
    layers: Vec<LayerProfile>,
    batch_size: usize,
    input_dims: [usize; 4],
}

impl ModelProfile {
    /// Runs the dummy profiling inference.
    ///
    /// Registers a hook on every layer, pushes a zero tensor of the
    /// configured input shape through the network, and records each
    /// injectable layer's output shape in execution order.
    pub fn discover(net: &mut Network, input_dims: [usize; 4]) -> Self {
        type ShapeLog = Arc<Mutex<Vec<(LayerId, Vec<usize>)>>>;
        let records: ShapeLog = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&records);
        let handle = net.hooks().register_forward_all(move |ctx, out| {
            if ctx.kind.is_injectable() {
                sink.lock().push((ctx.id, out.dims().to_vec()));
            }
        });
        let dummy = Tensor::zeros(&input_dims);
        let was_training = net.is_training();
        net.set_training(false);
        net.forward(&dummy);
        net.set_training(was_training);
        net.hooks().remove(handle);

        let records = records.lock().clone();
        let infos: Vec<_> = net.layer_infos().to_vec();
        let mut layers = Vec::with_capacity(records.len());
        for (id, dims) in records {
            let info = infos
                .iter()
                .find(|l| l.id == id)
                .expect("hooked layer exists in the network");
            let output_dims = match dims.len() {
                4 => [dims[0], dims[1], dims[2], dims[3]],
                2 => [dims[0], dims[1], 1, 1],
                _ => panic!("unsupported injectable output rank {}", dims.len()),
            };
            layers.push(LayerProfile {
                id,
                name: info.name.clone(),
                kind: info.kind,
                output_dims,
                weight_dims: info.weight_dims.clone().unwrap_or_default(),
            });
        }
        Self {
            layers,
            batch_size: input_dims[0],
            input_dims,
        }
    }

    /// The injectable layers, in execution order.
    pub fn layers(&self) -> &[LayerProfile] {
        &self.layers
    }

    /// Number of injectable layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the model exposed no injectable layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// The profiled batch size.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// The profiled input shape.
    pub fn input_dims(&self) -> [usize; 4] {
        self.input_dims
    }

    /// Total neurons per image across all injectable layers.
    pub fn total_neurons_per_image(&self) -> usize {
        self.layers
            .iter()
            .map(LayerProfile::neurons_per_image)
            .sum()
    }

    /// Total weight scalars across all injectable layers.
    pub fn total_weights(&self) -> usize {
        self.layers.iter().map(LayerProfile::weight_count).sum()
    }
}

impl fmt::Display for ModelProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "ModelProfile: {} injectable layers, input {:?}",
            self.layers.len(),
            self.input_dims
        )?;
        for (i, l) in self.layers.iter().enumerate() {
            writeln!(
                f,
                "  [{i}] {} ({}) out {:?} weights {:?}",
                l.name, l.kind, l.output_dims, l.weight_dims
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rustfi_nn::{zoo, ZooConfig};

    #[test]
    fn profile_finds_lenet_layers() {
        let mut net = zoo::lenet(&ZooConfig::tiny(10));
        let p = ModelProfile::discover(&mut net, [1, 3, 16, 16]);
        // lenet: conv, conv, fc, fc.
        assert_eq!(p.len(), 4);
        assert_eq!(p.layers()[0].kind, LayerKind::Conv2d);
        assert_eq!(p.layers()[0].output_dims, [1, 6, 16, 16]);
        assert_eq!(p.layers()[1].output_dims, [1, 12, 8, 8]);
        assert_eq!(p.layers()[3].kind, LayerKind::Linear);
        assert_eq!(p.layers()[3].output_dims, [1, 10, 1, 1]);
    }

    #[test]
    fn profile_respects_batch_size() {
        let mut net = zoo::lenet(&ZooConfig::tiny(10));
        let p = ModelProfile::discover(&mut net, [4, 3, 16, 16]);
        assert_eq!(p.batch_size(), 4);
        assert_eq!(p.layers()[0].output_dims[0], 4);
    }

    #[test]
    fn profile_counts_neurons_and_weights() {
        let mut net = zoo::lenet(&ZooConfig::tiny(10));
        let p = ModelProfile::discover(&mut net, [1, 3, 16, 16]);
        // conv1: 6*16*16, conv2: 12*8*8, fc1: 32, fc2: 10.
        assert_eq!(p.total_neurons_per_image(), 6 * 256 + 12 * 64 + 32 + 10);
        assert!(p.total_weights() > 0);
    }

    #[test]
    fn profiling_removes_its_hook() {
        let mut net = zoo::lenet(&ZooConfig::tiny(10));
        let _ = ModelProfile::discover(&mut net, [1, 3, 16, 16]);
        assert!(
            net.hooks().is_empty(),
            "profiling must clean up after itself"
        );
    }

    #[test]
    fn layers_are_in_execution_order() {
        let mut net = zoo::resnet18(&ZooConfig::tiny(10));
        let p = ModelProfile::discover(&mut net, [1, 3, 16, 16]);
        // Spatial size never grows along the execution order of a resnet.
        let mut last_hw = usize::MAX;
        for l in p.layers() {
            let hw = l.output_dims[2] * l.output_dims[3];
            assert!(hw <= last_hw || hw == 1, "execution order violated");
            last_hw = hw.max(1);
        }
    }

    #[test]
    fn display_lists_layers() {
        let mut net = zoo::lenet(&ZooConfig::tiny(10));
        let p = ModelProfile::discover(&mut net, [1, 3, 16, 16]);
        let s = p.to_string();
        assert!(s.contains("4 injectable layers"));
        assert!(s.contains("conv"));
    }
}
