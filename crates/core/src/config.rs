//! Injector configuration.

/// Configuration handed to [`FaultInjector::new`], mirroring PyTorchFI's
/// initialization arguments (model input geometry, batch size, seed).
///
/// [`FaultInjector::new`]: crate::FaultInjector::new
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FiConfig {
    /// Input batch size used for the profiling pass (and the default batch
    /// assumed by batch-targeted faults).
    pub batch_size: usize,
    /// Input channels.
    pub channels: usize,
    /// Input height.
    pub height: usize,
    /// Input width.
    pub width: usize,
    /// Seed for fault-site sampling and perturbation-time randomness.
    pub seed: u64,
}

impl FiConfig {
    /// Creates a configuration from explicit geometry.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(batch_size: usize, channels: usize, height: usize, width: usize) -> Self {
        assert!(
            batch_size > 0 && channels > 0 && height > 0 && width > 0,
            "all input dimensions must be positive"
        );
        Self {
            batch_size,
            channels,
            height,
            width,
            seed: 0xF1_F1,
        }
    }

    /// Creates a configuration from an `[n, c, h, w]` shape slice.
    ///
    /// # Panics
    ///
    /// Panics if `dims` is not rank 4 or has zero entries.
    pub fn for_input(dims: &[usize]) -> Self {
        assert_eq!(dims.len(), 4, "expected [n, c, h, w], got {dims:?}");
        Self::new(dims[0], dims[1], dims[2], dims[3])
    }

    /// Replaces the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The `[n, c, h, w]` input shape.
    pub fn input_dims(&self) -> [usize; 4] {
        [self.batch_size, self.channels, self.height, self.width]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn for_input_roundtrips() {
        let cfg = FiConfig::for_input(&[2, 3, 16, 16]).with_seed(7);
        assert_eq!(cfg.input_dims(), [2, 3, 16, 16]);
        assert_eq!(cfg.seed, 7);
    }

    #[test]
    #[should_panic(expected = "expected [n, c, h, w]")]
    fn rejects_wrong_rank() {
        FiConfig::for_input(&[3, 16, 16]);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn rejects_zero_dims() {
        FiConfig::new(1, 0, 16, 16);
    }
}
