//! Coarser-granularity vulnerability analysis — the paper's suggested study
//! (1) in §IV-A: "evaluating resilience of a model at coarser granularity
//! (via layer or feature map level error injections) to gain insights into
//! why some models are more resilient than others, and use the results for
//! low-cost selective protection".
//!
//! [`feature_map_vulnerability`] runs one restricted campaign per feature
//! map of a layer and returns the per-map SDC rates; [`selective_protection`]
//! turns such a profile into the cheapest set of feature maps to protect
//! (e.g. by duplication) to cover a target fraction of observed SDCs.

use crate::campaign::{Campaign, CampaignConfig, FaultMode};
use crate::location::NeuronSelect;
use crate::perturbation::PerturbationModel;
use rustfi_nn::Network;
use rustfi_tensor::Tensor;
use std::sync::Arc;

/// Per-feature-map vulnerability of one layer.
#[derive(Debug, Clone)]
pub struct FeatureMapProfile {
    /// The injectable-layer index profiled.
    pub layer: usize,
    /// `(trials, sdcs)` per feature map (channel) of the layer.
    pub per_map: Vec<(usize, usize)>,
}

impl FeatureMapProfile {
    /// SDC rate of one feature map (0 when it saw no trials).
    pub fn rate(&self, channel: usize) -> f64 {
        match self.per_map.get(channel) {
            Some(&(t, s)) if t > 0 => s as f64 / t as f64,
            _ => 0.0,
        }
    }

    /// Channels ranked most-vulnerable first (by SDC count, ties by index).
    pub fn ranked(&self) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.per_map.len()).collect();
        idx.sort_by_key(|&c| std::cmp::Reverse(self.per_map[c].1));
        idx
    }

    /// Total SDCs observed across the layer.
    pub fn total_sdcs(&self) -> usize {
        self.per_map.iter().map(|&(_, s)| s).sum()
    }
}

/// Measures per-feature-map vulnerability of injectable layer `layer` by
/// running `trials_per_map` restricted injections into each channel.
///
/// # Panics
///
/// Panics if the layer index is out of range for the model (the underlying
/// campaign validates it) or `channels` is zero.
#[allow(clippy::too_many_arguments)]
pub fn feature_map_vulnerability(
    factory: &(dyn Fn() -> Network + Sync),
    images: &Tensor,
    labels: &[usize],
    layer: usize,
    channels: usize,
    model: Arc<dyn PerturbationModel>,
    trials_per_map: usize,
    cfg: &CampaignConfig,
) -> FeatureMapProfile {
    assert!(channels > 0, "layer must have at least one feature map");
    let mut per_map = Vec::with_capacity(channels);
    for channel in 0..channels {
        let campaign = Campaign::new(
            factory,
            images,
            labels,
            FaultMode::Neuron(NeuronSelect::RandomInChannel { layer, channel }),
            Arc::clone(&model),
        );
        let result = campaign
            .run(&CampaignConfig {
                trials: trials_per_map,
                seed: cfg.seed ^ (channel as u64).wrapping_mul(0x9E37_79B9),
                ..cfg.clone()
            })
            .expect("feature-map campaign inherits a validated config");
        per_map.push((result.counts.total(), result.counts.sdc + result.counts.due));
    }
    FeatureMapProfile { layer, per_map }
}

/// Given a vulnerability profile, returns the smallest set of feature maps
/// whose combined SDCs reach `coverage` (0–1] of the layer's observed total —
/// the candidates for low-cost selective protection.
///
/// Returns an empty set when no SDCs were observed.
///
/// # Panics
///
/// Panics unless `0 < coverage <= 1`.
pub fn selective_protection(profile: &FeatureMapProfile, coverage: f64) -> Vec<usize> {
    assert!(
        coverage > 0.0 && coverage <= 1.0,
        "coverage {coverage} out of (0, 1]"
    );
    let total = profile.total_sdcs();
    if total == 0 {
        return Vec::new();
    }
    let target = (coverage * total as f64).ceil() as usize;
    let mut covered = 0;
    let mut protect = Vec::new();
    for channel in profile.ranked() {
        if covered >= target {
            break;
        }
        let sdcs = profile.per_map[channel].1;
        if sdcs == 0 {
            break;
        }
        covered += sdcs;
        protect.push(channel);
    }
    protect
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::top1;
    use crate::models::StuckAt;
    use rustfi_nn::{zoo, ZooConfig};

    fn factory() -> Network {
        zoo::lenet(&ZooConfig::tiny(4))
    }

    fn fixtures() -> (Tensor, Vec<usize>) {
        let images = Tensor::from_fn(&[4, 3, 16, 16], |i| ((i as f32) * 0.011).sin());
        let mut net = factory();
        let labels = (0..4)
            .map(|i| top1(net.forward(&images.select_batch(i)).data()))
            .collect();
        (images, labels)
    }

    #[test]
    fn profile_covers_every_feature_map() {
        let (images, labels) = fixtures();
        let profile = feature_map_vulnerability(
            &factory,
            &images,
            &labels,
            0,
            6, // lenet conv1 has 6 maps
            Arc::new(StuckAt::new(1e9)),
            20,
            &CampaignConfig {
                threads: Some(2),
                ..CampaignConfig::default()
            },
        );
        assert_eq!(profile.per_map.len(), 6);
        assert!(profile.per_map.iter().all(|&(t, _)| t == 20));
        // Egregious injections produce at least some corruption somewhere.
        assert!(profile.total_sdcs() > 0);
    }

    #[test]
    fn ranked_orders_by_sdc_count() {
        let profile = FeatureMapProfile {
            layer: 0,
            per_map: vec![(10, 2), (10, 9), (10, 0), (10, 5)],
        };
        assert_eq!(profile.ranked(), vec![1, 3, 0, 2]);
        assert!((profile.rate(1) - 0.9).abs() < 1e-9);
        assert_eq!(profile.rate(99), 0.0, "missing channel has zero rate");
    }

    #[test]
    fn selective_protection_picks_minimal_cover() {
        let profile = FeatureMapProfile {
            layer: 0,
            per_map: vec![(10, 1), (10, 6), (10, 0), (10, 3)],
        };
        // 60% of 10 SDCs = 6 -> channel 1 alone suffices.
        assert_eq!(selective_protection(&profile, 0.6), vec![1]);
        // 90% of 10 = 9 -> channels 1 + 3.
        assert_eq!(selective_protection(&profile, 0.9), vec![1, 3]);
        // Full coverage: all channels with nonzero SDCs.
        assert_eq!(selective_protection(&profile, 1.0), vec![1, 3, 0]);
    }

    #[test]
    fn selective_protection_empty_when_no_sdcs() {
        let profile = FeatureMapProfile {
            layer: 2,
            per_map: vec![(50, 0), (50, 0)],
        };
        assert!(selective_protection(&profile, 0.99).is_empty());
    }

    #[test]
    #[should_panic(expected = "out of (0, 1]")]
    fn selective_protection_rejects_zero_coverage() {
        let profile = FeatureMapProfile {
            layer: 0,
            per_map: vec![(1, 1)],
        };
        selective_protection(&profile, 0.0);
    }
}
