//! Built-in perturbation models.
//!
//! This is the "default set of perturbation models" the paper ships: a
//! uniform random value, single bit flips (FP32 and INT8-quantized), zero,
//! stuck-at, and a gain model, plus [`Custom`] for user closures.

use crate::perturbation::{PerturbCtx, PerturbationModel};
use rustfi_quant::int8;
use rustfi_tensor::bits;
use std::sync::Arc;

/// How a bit-flip model chooses its bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BitSelect {
    /// Always the same bit.
    Fixed(u32),
    /// A uniformly random bit per perturbation.
    Random,
}

/// Replace the value with a uniform sample in `[lo, hi)` — the paper's
/// default model (`[-1, 1]`).
#[derive(Debug, Clone, Copy)]
pub struct RandomUniform {
    lo: f32,
    hi: f32,
}

impl RandomUniform {
    /// Uniform in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if the interval is empty or non-finite.
    pub fn new(lo: f32, hi: f32) -> Self {
        assert!(
            lo < hi && lo.is_finite() && hi.is_finite(),
            "bad interval [{lo}, {hi})"
        );
        Self { lo, hi }
    }
}

impl Default for RandomUniform {
    /// The paper's default: uniform in `[-1, 1)`.
    fn default() -> Self {
        Self::new(-1.0, 1.0)
    }
}

impl PerturbationModel for RandomUniform {
    fn name(&self) -> &str {
        "random-uniform"
    }
    fn perturb(&self, _original: f32, ctx: &mut PerturbCtx<'_>) -> f32 {
        ctx.rng.uniform(self.lo, self.hi)
    }
}

/// Replace the value with zero (a common masking/ablation model).
#[derive(Debug, Clone, Copy, Default)]
pub struct Zero;

impl PerturbationModel for Zero {
    fn name(&self) -> &str {
        "zero"
    }
    fn perturb(&self, _original: f32, _ctx: &mut PerturbCtx<'_>) -> f32 {
        0.0
    }
}

/// Replace the value with a constant (stuck-at fault).
#[derive(Debug, Clone, Copy)]
pub struct StuckAt {
    value: f32,
}

impl StuckAt {
    /// Stuck at `value`.
    pub fn new(value: f32) -> Self {
        Self { value }
    }
}

impl PerturbationModel for StuckAt {
    fn name(&self) -> &str {
        "stuck-at"
    }
    fn perturb(&self, _original: f32, _ctx: &mut PerturbCtx<'_>) -> f32 {
        self.value
    }
}

/// Multiply the value by a constant gain.
#[derive(Debug, Clone, Copy)]
pub struct Gain {
    factor: f32,
}

impl Gain {
    /// Multiplies by `factor`.
    pub fn new(factor: f32) -> Self {
        Self { factor }
    }
}

impl PerturbationModel for Gain {
    fn name(&self) -> &str {
        "gain"
    }
    fn perturb(&self, original: f32, _ctx: &mut PerturbCtx<'_>) -> f32 {
        original * self.factor
    }
}

/// Flip one bit of the FP32 IEEE-754 representation.
#[derive(Debug, Clone, Copy)]
pub struct BitFlipFp32 {
    bit: BitSelect,
}

impl BitFlipFp32 {
    /// Flips the selected bit.
    ///
    /// # Panics
    ///
    /// Panics if a fixed bit index is ≥ 32.
    pub fn new(bit: BitSelect) -> Self {
        if let BitSelect::Fixed(b) = bit {
            assert!(b < 32, "f32 bit index {b} out of range");
        }
        Self { bit }
    }
}

impl PerturbationModel for BitFlipFp32 {
    fn name(&self) -> &str {
        "bitflip-fp32"
    }
    fn perturb(&self, original: f32, ctx: &mut PerturbCtx<'_>) -> f32 {
        let bit = match self.bit {
            BitSelect::Fixed(b) => b,
            BitSelect::Random => ctx.rng.below(32) as u32,
        };
        bits::flip_bit_f32(original, bit)
    }
}

/// Flip one bit of the INT8-quantized representation of the value — the
/// model behind the paper's Fig. 4 study. Uses the stored-word scale when the
/// injector runs a real INT8 path, else the dynamic per-tensor scale from
/// the context (`max|tensor| / 127`); on the real path the flip lands
/// directly in the stored `i8` word via [`PerturbationModel::perturb_i8`].
#[derive(Debug, Clone, Copy)]
pub struct BitFlipInt8 {
    bit: BitSelect,
}

impl BitFlipInt8 {
    /// Flips the selected bit of the quantized byte.
    ///
    /// # Panics
    ///
    /// Panics if a fixed bit index is ≥ 8.
    pub fn new(bit: BitSelect) -> Self {
        if let BitSelect::Fixed(b) = bit {
            assert!(b < 8, "int8 bit index {b} out of range");
        }
        Self { bit }
    }
}

impl PerturbationModel for BitFlipInt8 {
    fn name(&self) -> &str {
        "bitflip-int8"
    }
    fn perturb(&self, original: f32, ctx: &mut PerturbCtx<'_>) -> f32 {
        let bit = match self.bit {
            BitSelect::Fixed(b) => b,
            BitSelect::Random => ctx.rng.below(8) as u32,
        };
        int8::flip_bit_in_quantized(original, ctx.int8_scale(), bit)
    }
    fn perturb_i8(&self, stored: i8, ctx: &mut PerturbCtx<'_>) -> Option<i8> {
        let bit = match self.bit {
            BitSelect::Fixed(b) => b,
            BitSelect::Random => ctx.rng.below(8) as u32,
        };
        Some(int8::flip_bit_i8(stored, bit))
    }
}

/// Flip `count` *distinct* random bits of the INT8-quantized representation
/// — the "multiple-bit flips" mapping of lower-level faults (paper §III-D).
#[derive(Debug, Clone, Copy)]
pub struct MultiBitFlipInt8 {
    count: u32,
}

impl MultiBitFlipInt8 {
    /// Flips `count` distinct bits per perturbation.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= count <= 8`.
    pub fn new(count: u32) -> Self {
        assert!(
            (1..=8).contains(&count),
            "int8 multi-bit count {count} out of range"
        );
        Self { count }
    }
}

impl PerturbationModel for MultiBitFlipInt8 {
    fn name(&self) -> &str {
        "multi-bitflip-int8"
    }
    fn perturb(&self, original: f32, ctx: &mut PerturbCtx<'_>) -> f32 {
        let scale = ctx.int8_scale();
        let q = int8::quantize(original, scale);
        int8::dequantize(self.flip_word(q, ctx), scale)
    }
    fn perturb_i8(&self, stored: i8, ctx: &mut PerturbCtx<'_>) -> Option<i8> {
        Some(self.flip_word(stored, ctx))
    }
}

impl MultiBitFlipInt8 {
    /// Flips `count` distinct bits of `q`, drawing bit indices from the
    /// context RNG in the same sequence for both perturb entry points.
    fn flip_word(&self, mut q: i8, ctx: &mut PerturbCtx<'_>) -> i8 {
        let mut flipped = 0u8;
        while flipped.count_ones() < self.count {
            flipped |= 1u8 << ctx.rng.below(8);
        }
        for bit in 0..8 {
            if flipped & (1 << bit) != 0 {
                q = int8::flip_bit_i8(q, bit);
            }
        }
        q
    }
}

/// Replace the value with a uniformly random *FP32 bit pattern* (rejecting
/// NaN/Inf so outcomes stay classifiable) — the "uniformly chosen random
/// FP32 value" model of the paper's object-detection study (§IV-B). Unlike
/// [`RandomUniform`], magnitudes span the full float range, so egregious
/// corruptions (1e30-scale activations) occur regularly.
#[derive(Debug, Clone, Copy, Default)]
pub struct RandomFp32Bits;

impl PerturbationModel for RandomFp32Bits {
    fn name(&self) -> &str {
        "random-fp32-bits"
    }
    fn perturb(&self, _original: f32, ctx: &mut PerturbCtx<'_>) -> f32 {
        loop {
            let bits = (ctx.rng.below(1 << 16) as u32) << 16 | ctx.rng.below(1 << 16) as u32;
            let v = f32::from_bits(bits);
            if v.is_finite() {
                return v;
            }
        }
    }
}

type CustomFn = dyn Fn(f32, &mut PerturbCtx<'_>) -> f32 + Send + Sync;

/// A user-supplied perturbation closure.
///
/// # Example
///
/// ```
/// use rustfi::models::Custom;
///
/// // A "saturate to +10" error model in one line.
/// let model = Custom::new("saturate", |old, _ctx| old.max(10.0));
/// ```
pub struct Custom {
    name: String,
    f: Arc<CustomFn>,
}

impl Custom {
    /// Wraps a closure as a perturbation model.
    pub fn new(
        name: impl Into<String>,
        f: impl Fn(f32, &mut PerturbCtx<'_>) -> f32 + Send + Sync + 'static,
    ) -> Self {
        Self {
            name: name.into(),
            f: Arc::new(f),
        }
    }
}

impl PerturbationModel for Custom {
    fn name(&self) -> &str {
        &self.name
    }
    fn perturb(&self, original: f32, ctx: &mut PerturbCtx<'_>) -> f32 {
        (self.f)(original, ctx)
    }
}

impl std::fmt::Debug for Custom {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Custom").field("name", &self.name).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rustfi_tensor::SeededRng;

    fn ctx(rng: &mut SeededRng) -> PerturbCtx<'_> {
        PerturbCtx {
            layer: 0,
            batch: 0,
            channel: 0,
            tensor_max_abs: 12.7,
            quant_scale: None,
            rng,
        }
    }

    #[test]
    fn random_uniform_respects_range() {
        let m = RandomUniform::new(-1.0, 1.0);
        let mut rng = SeededRng::new(1);
        for _ in 0..100 {
            let v = m.perturb(99.0, &mut ctx(&mut rng));
            assert!((-1.0..1.0).contains(&v));
        }
    }

    #[test]
    fn zero_and_stuck_at() {
        let mut rng = SeededRng::new(2);
        assert_eq!(Zero.perturb(5.0, &mut ctx(&mut rng)), 0.0);
        assert_eq!(StuckAt::new(7.5).perturb(5.0, &mut ctx(&mut rng)), 7.5);
        assert_eq!(Gain::new(-2.0).perturb(5.0, &mut ctx(&mut rng)), -10.0);
    }

    #[test]
    fn fp32_fixed_sign_bit_negates() {
        let m = BitFlipFp32::new(BitSelect::Fixed(31));
        let mut rng = SeededRng::new(3);
        assert_eq!(m.perturb(2.0, &mut ctx(&mut rng)), -2.0);
    }

    #[test]
    fn fp32_random_bit_changes_representation() {
        let m = BitFlipFp32::new(BitSelect::Random);
        let mut rng = SeededRng::new(4);
        for _ in 0..50 {
            let v = m.perturb(1.5, &mut ctx(&mut rng));
            assert_ne!(v.to_bits(), 1.5f32.to_bits());
        }
    }

    #[test]
    fn int8_flip_uses_tensor_scale() {
        // tensor_max_abs = 12.7 -> scale = 0.1. Flipping bit 0 of q(1.0)=10
        // gives 11 -> 1.1.
        let m = BitFlipInt8::new(BitSelect::Fixed(0));
        let mut rng = SeededRng::new(5);
        let v = m.perturb(1.0, &mut ctx(&mut rng));
        assert!((v - 1.1).abs() < 1e-5, "got {v}");
    }

    #[test]
    fn int8_flip_is_bounded_by_quantized_range() {
        let m = BitFlipInt8::new(BitSelect::Random);
        let mut rng = SeededRng::new(6);
        for _ in 0..200 {
            let v = m.perturb(3.0, &mut ctx(&mut rng));
            // Any flipped INT8 value dequantizes within ±128 * scale (1 LSB
            // beyond the clamp range, since flips can produce -128).
            assert!(v.abs() <= 12.8 + 1e-5, "got {v}");
        }
    }

    #[test]
    fn multi_bit_flip_flips_exactly_k_bits() {
        let mut rng = SeededRng::new(11);
        for count in 1..=8u32 {
            let m = MultiBitFlipInt8::new(count);
            for _ in 0..50 {
                let mut c = ctx(&mut rng);
                let scale = rustfi_quant::int8::scale_for_max_abs(c.tensor_max_abs);
                let original = 1.0f32;
                let q_before = rustfi_quant::int8::quantize(original, scale);
                let v = m.perturb(original, &mut c);
                let q_after = rustfi_quant::int8::quantize(v, scale);
                // Quantizing the output may clamp at ±127 (e.g. a flip to
                // -128 reads back as -127), so compare via dequantized
                // distance only when unclamped.
                if (-127..=127).contains(&(q_after as i32))
                    && v == rustfi_quant::int8::dequantize(q_after, scale)
                {
                    let diff = (q_before as u8) ^ (q_after as u8);
                    assert_eq!(
                        diff.count_ones(),
                        count,
                        "count {count}: {q_before} -> {q_after}"
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn multi_bit_rejects_zero() {
        MultiBitFlipInt8::new(0);
    }

    #[test]
    fn random_fp32_bits_is_finite_and_wild() {
        let m = RandomFp32Bits;
        let mut rng = SeededRng::new(9);
        let mut big = 0;
        for _ in 0..500 {
            let v = m.perturb(1.0, &mut ctx(&mut rng));
            assert!(v.is_finite());
            if v.abs() > 1e10 {
                big += 1;
            }
        }
        assert!(
            big > 50,
            "random bit patterns regularly produce huge values: {big}"
        );
    }

    #[test]
    fn custom_closure_runs() {
        let m = Custom::new("double", |old, _| old * 2.0);
        let mut rng = SeededRng::new(7);
        assert_eq!(m.perturb(4.0, &mut ctx(&mut rng)), 8.0);
        assert_eq!(m.name(), "double");
        assert!(format!("{m:?}").contains("double"));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn int8_rejects_fixed_bit_8() {
        BitFlipInt8::new(BitSelect::Fixed(8));
    }

    #[test]
    fn quant_scale_overrides_dynamic_tensor_scale() {
        // With quant_scale = 0.5 the dynamic 12.7/127 = 0.1 scale must be
        // ignored: q(1.0, 0.5) = 2, flip bit 0 -> 3 -> 1.5.
        let m = BitFlipInt8::new(BitSelect::Fixed(0));
        let mut rng = SeededRng::new(12);
        let mut c = ctx(&mut rng);
        c.quant_scale = Some(0.5);
        let v = m.perturb(1.0, &mut c);
        assert!((v - 1.5).abs() < 1e-6, "got {v}");
    }

    #[test]
    fn perturb_i8_matches_perturb_rng_sequence() {
        // For the same starting RNG state, perturb and perturb_i8 must make
        // identical draws so campaign records are representation-independent.
        for seed in 0..20u64 {
            for model in [
                &BitFlipInt8::new(BitSelect::Random) as &dyn PerturbationModel,
                &MultiBitFlipInt8::new(3),
            ] {
                let scale = 0.1f32;
                let stored = int8::quantize(2.3, scale);
                let mut rng_a = SeededRng::new(seed);
                let mut ca = ctx(&mut rng_a);
                ca.quant_scale = Some(scale);
                let via_f32 = model.perturb(int8::dequantize(stored, scale), &mut ca);
                let mut rng_b = SeededRng::new(seed);
                let mut cb = ctx(&mut rng_b);
                cb.quant_scale = Some(scale);
                let via_word = model.perturb_i8(stored, &mut cb).expect("int8 form");
                assert_eq!(
                    int8::quantize(via_f32, scale),
                    via_word,
                    "seed {seed} model {}",
                    model.name()
                );
                assert_eq!(rng_a.below(1 << 30), rng_b.below(1 << 30), "draw parity");
            }
        }
    }

    #[test]
    fn default_perturb_i8_is_none() {
        let mut rng = SeededRng::new(13);
        assert_eq!(Zero.perturb_i8(5, &mut ctx(&mut rng)), None);
        assert_eq!(StuckAt::new(1.0).perturb_i8(5, &mut ctx(&mut rng)), None);
    }

    #[test]
    fn names_are_stable() {
        let mut rng = SeededRng::new(8);
        let _ = &mut rng;
        assert_eq!(RandomUniform::default().name(), "random-uniform");
        assert_eq!(Zero.name(), "zero");
        assert_eq!(BitFlipFp32::new(BitSelect::Random).name(), "bitflip-fp32");
        assert_eq!(BitFlipInt8::new(BitSelect::Random).name(), "bitflip-int8");
    }
}
