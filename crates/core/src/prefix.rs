//! Golden-prefix activation cache for campaigns.
//!
//! A campaign trial that injects into layer *L* leaves every layer executed
//! before *L* fault-free — those layers recompute exactly the activations of
//! the golden (clean) run. The [`PrefixCache`] stores, per evaluated image,
//! the input activation of each injection layer's *resume point* (see
//! [`rustfi_nn::Network::resume_point`]); trials then restart the forward
//! pass there via [`rustfi_nn::Network::forward_from`] instead of from the
//! pixels. Because f32 inference is deterministic, the resumed pass is
//! bit-identical to a full one — only the skipped FLOPs differ.
//!
//! The cache is populated once, sequentially, during the golden pass, and
//! is read-only while trials run. That makes hit/miss behaviour — and
//! therefore every trial record — independent of the worker thread count. A
//! configurable byte budget bounds the heap cost on deep models: when an
//! insert would exceed it, the oldest entries are evicted
//! (insertion-ordered, i.e. earliest image/shallowest layer first, which is
//! deterministic); a missing entry just means that trial falls back to a
//! full forward pass.

use parking_lot::Mutex;
use rustfi_nn::LayerId;
use rustfi_tensor::Tensor;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Configuration of the golden-prefix cache
/// ([`CampaignConfig::prefix_cache`](crate::CampaignConfig::prefix_cache)).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrefixCacheConfig {
    /// Maximum bytes of cached activations. When the golden pass would
    /// exceed it, the oldest entries are evicted; affected trials fall back
    /// to full forward passes (results are unchanged either way).
    pub budget_bytes: usize,
    /// Restrict caching to these injectable-layer indices (profile order,
    /// as in [`TrialRecord::layer`](crate::TrialRecord::layer)). `None`
    /// caches for every injectable layer. Whitelisting the mid/late layers
    /// that dominate a campaign keeps the budget for the entries that pay.
    pub layers: Option<Vec<usize>>,
}

impl Default for PrefixCacheConfig {
    fn default() -> Self {
        Self {
            // 256 MiB holds the full prefix set for every zoo model at
            // CIFAR-scale inputs with plenty of headroom.
            budget_bytes: 256 << 20,
            layers: None,
        }
    }
}

impl PrefixCacheConfig {
    /// A cache with the given byte budget and no layer whitelist.
    pub fn with_budget(budget_bytes: usize) -> Self {
        Self {
            budget_bytes,
            ..Self::default()
        }
    }

    /// Whether `layer` (an injectable-layer index) may be cached.
    pub fn allows_layer(&self, layer: usize) -> bool {
        self.layers.as_ref().is_none_or(|l| l.contains(&layer))
    }
}

/// Counters describing one campaign's prefix-cache behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PrefixStats {
    /// Trials that resumed from a cached activation.
    pub hits: u64,
    /// Trials that fell back to a full forward pass.
    pub misses: u64,
    /// Entries resident when the campaign finished.
    pub entries: usize,
    /// Bytes resident when the campaign finished.
    pub bytes: usize,
    /// Entries evicted to stay within the byte budget.
    pub evictions: u64,
    /// Estimated floating-point operations skipped by hits.
    pub skipped_flops: u64,
}

impl PrefixStats {
    /// Fraction of lookups that hit, in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Inner {
    map: HashMap<(usize, LayerId), Arc<Tensor>>,
    /// Insertion order, for deterministic oldest-first eviction.
    order: VecDeque<(usize, LayerId)>,
    bytes: usize,
    evictions: u64,
}

/// Shared, budget-bounded store of golden prefix activations, keyed by
/// `(image index, resume-point layer id)`.
pub struct PrefixCache {
    inner: Mutex<Inner>,
    budget_bytes: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    skipped_flops: AtomicU64,
}

fn tensor_bytes(t: &Tensor) -> usize {
    t.len() * std::mem::size_of::<f32>()
}

impl PrefixCache {
    /// An empty cache with the given byte budget.
    pub fn new(budget_bytes: usize) -> Self {
        Self {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                order: VecDeque::new(),
                bytes: 0,
                evictions: 0,
            }),
            budget_bytes,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            skipped_flops: AtomicU64::new(0),
        }
    }

    /// Inserts the activation `image` presented to resume point `layer`,
    /// evicting oldest entries as needed to respect the budget. An
    /// activation larger than the whole budget is simply not cached.
    pub fn insert(&self, image: usize, layer: LayerId, activation: Tensor) {
        let size = tensor_bytes(&activation);
        if size > self.budget_bytes {
            return;
        }
        let mut inner = self.inner.lock();
        if inner.map.contains_key(&(image, layer)) {
            return;
        }
        while inner.bytes + size > self.budget_bytes {
            let Some(oldest) = inner.order.pop_front() else {
                break;
            };
            if let Some(evicted) = inner.map.remove(&oldest) {
                inner.bytes -= tensor_bytes(&evicted);
                inner.evictions += 1;
            }
        }
        inner.bytes += size;
        inner.order.push_back((image, layer));
        inner.map.insert((image, layer), Arc::new(activation));
    }

    /// Looks up the cached activation for `(image, layer)`, counting the
    /// outcome. `flops` is the caller's estimate of the work a hit skips
    /// (accumulated into [`PrefixStats::skipped_flops`]).
    pub fn lookup(&self, image: usize, layer: LayerId, flops: u64) -> Option<Arc<Tensor>> {
        let found = self.inner.lock().map.get(&(image, layer)).cloned();
        match &found {
            Some(_) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.skipped_flops.fetch_add(flops, Ordering::Relaxed);
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
            }
        }
        found
    }

    /// Looks up `(image, layer)` *without* counting the outcome.
    ///
    /// Fused campaign chunks peek before the batched forward and only charge
    /// the counters once the pass completes (via
    /// [`PrefixCache::record_outcome`]); if the chunk crashes and is
    /// replayed serially, the replay's own per-trial [`PrefixCache::lookup`]
    /// calls do the counting — keeping `hits + misses == trials` regardless
    /// of fusion.
    pub fn peek(&self, image: usize, layer: LayerId) -> Option<Arc<Tensor>> {
        self.inner.lock().map.get(&(image, layer)).cloned()
    }

    /// Counts `n` trials that shared one peeked outcome: `n` hits (each
    /// skipping `flops`) when `hit`, else `n` misses.
    pub fn record_outcome(&self, hit: bool, n: u64, flops: u64) {
        if hit {
            self.hits.fetch_add(n, Ordering::Relaxed);
            self.skipped_flops.fetch_add(flops * n, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current counters.
    pub fn stats(&self) -> PrefixStats {
        let inner = self.inner.lock();
        PrefixStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: inner.map.len(),
            bytes: inner.bytes,
            evictions: inner.evictions,
            skipped_flops: self.skipped_flops.load(Ordering::Relaxed),
        }
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl std::fmt::Debug for PrefixCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("PrefixCache")
            .field("budget_bytes", &self.budget_bytes)
            .field("entries", &stats.entries)
            .field("bytes", &stats.bytes)
            .field("hits", &stats.hits)
            .field("misses", &stats.misses)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(i: usize) -> LayerId {
        LayerId::from_index(i)
    }

    #[test]
    fn insert_then_lookup_round_trips() {
        let cache = PrefixCache::new(1 << 20);
        cache.insert(0, id(3), Tensor::ones(&[1, 2, 4, 4]));
        let hit = cache.lookup(0, id(3), 100).expect("cached");
        assert_eq!(hit.dims(), &[1, 2, 4, 4]);
        assert!(cache.lookup(1, id(3), 100).is_none());
        assert!(cache.lookup(0, id(4), 100).is_none());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (1, 2));
        assert_eq!(s.skipped_flops, 100);
        assert_eq!(s.entries, 1);
        assert_eq!(s.bytes, 32 * 4);
        assert!((s.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn peek_and_record_outcome_count_like_n_lookups() {
        let cache = PrefixCache::new(1 << 20);
        cache.insert(0, id(3), Tensor::ones(&[8]));
        // Peek never counts.
        assert!(cache.peek(0, id(3)).is_some());
        assert!(cache.peek(1, id(3)).is_none());
        assert_eq!((cache.stats().hits, cache.stats().misses), (0, 0));
        // A fused chunk of 5 trials on a hit, 3 on a miss.
        cache.record_outcome(true, 5, 100);
        cache.record_outcome(false, 3, 100);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.skipped_flops), (5, 3, 500));
    }

    #[test]
    fn budget_evicts_oldest_first() {
        // Budget fits exactly two 16-float entries.
        let cache = PrefixCache::new(2 * 16 * 4);
        cache.insert(0, id(1), Tensor::ones(&[16]));
        cache.insert(1, id(1), Tensor::ones(&[16]));
        cache.insert(2, id(1), Tensor::ones(&[16]));
        assert_eq!(cache.len(), 2);
        assert!(cache.lookup(0, id(1), 0).is_none(), "oldest evicted");
        assert!(cache.lookup(2, id(1), 0).is_some(), "newest kept");
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn oversized_entry_is_not_cached() {
        let cache = PrefixCache::new(15);
        cache.insert(0, id(0), Tensor::ones(&[16]));
        assert!(cache.is_empty());
        assert_eq!(cache.stats().evictions, 0);
    }

    #[test]
    fn duplicate_insert_is_ignored() {
        let cache = PrefixCache::new(1 << 20);
        cache.insert(0, id(0), Tensor::ones(&[4]));
        cache.insert(0, id(0), Tensor::zeros(&[8]));
        assert_eq!(cache.stats().bytes, 16, "first entry wins");
    }

    #[test]
    fn config_whitelist_filters_layers() {
        let all = PrefixCacheConfig::default();
        assert!(all.allows_layer(7));
        let some = PrefixCacheConfig {
            layers: Some(vec![2, 5]),
            ..Default::default()
        };
        assert!(some.allows_layer(2) && some.allows_layer(5));
        assert!(!some.allows_layer(0));
        assert_eq!(PrefixCacheConfig::with_budget(64).budget_bytes, 64);
    }
}
