//! # rustfi
//!
//! A runtime perturbation (fault-injection) tool for DNNs — a from-scratch
//! Rust reproduction of **PyTorchFI** (Mahmoud et al., DSN 2020) on top of
//! the hook-capable [`rustfi_nn`] framework.
//!
//! Exactly like the paper's tool, RustFI:
//!
//! - wraps a model and runs a single **dummy profiling inference** to learn
//!   every injectable layer's output geometry, which it uses to validate
//!   injection requests and produce precise error messages ([`ModelProfile`]);
//! - injects **neuron perturbations at runtime via forward hooks** — no
//!   topology rewriting, no framework patching ([`FaultInjector::declare_neuron_fi`]);
//! - applies **weight perturbations offline** by mutating the weight tensor
//!   before inference (zero runtime overhead), with undo
//!   ([`FaultInjector::declare_weight_fi`] / [`FaultInjector::restore`]);
//! - ships a library of **perturbation models** (uniform random value,
//!   FP32/INT8 single bit flip, zero, stuck-at, gain) and accepts custom
//!   ones through the [`PerturbationModel`] trait;
//! - supports single or multiple injection sites, per-layer and
//!   network-random site selection, and per-batch-element semantics
//!   ([`NeuronSelect`], [`BatchSelect`]);
//! - runs large seeded, parallel **error-injection campaigns** with SDC
//!   accounting ([`campaign`]), hardened for long unattended runs: panicking
//!   trials are isolated and recorded as crashes, a step-budget watchdog
//!   flags hangs, NaN/Inf guard hooks attribute DUEs to the layer that
//!   produced them, and a crash-safe JSONL [`journal`] lets an interrupted
//!   campaign resume bit-identically.
//!
//! # Three steps, as in the paper
//!
//! ```
//! use rustfi::{FaultInjector, FiConfig, NeuronFault, NeuronSelect, BatchSelect, models};
//! use rustfi_nn::{zoo, ZooConfig};
//! use rustfi_tensor::Tensor;
//! use std::sync::Arc;
//!
//! // (1) build a model, (2) wrap it — this profiles it with a dummy pass,
//! let net = zoo::lenet(&ZooConfig::tiny(10));
//! let mut fi = FaultInjector::new(net, FiConfig::for_input(&[1, 3, 16, 16]))?;
//! // (3) declare a perturbation and run.
//! fi.declare_neuron_fi(&[NeuronFault {
//!     select: NeuronSelect::Random,
//!     batch: BatchSelect::All,
//!     model: Arc::new(models::RandomUniform::new(-1.0, 1.0)),
//! }])?;
//! let out = fi.forward(&Tensor::zeros(&[1, 3, 16, 16]));
//! assert_eq!(out.dims(), &[1, 10]);
//! # Ok::<(), rustfi::FiError>(())
//! ```

pub mod campaign;
pub mod config;
pub mod error;
pub mod granularity;
pub mod injector;
pub mod journal;
pub mod location;
pub mod metrics;
pub mod models;
pub mod perturbation;
pub mod prefix;
pub mod profile;
pub mod report;
pub mod shard;

pub use campaign::{
    Campaign, CampaignConfig, CampaignResult, FaultMode, FusionConfig, FusionStats, GuardMode,
    ProgressRecorder, ProgressUpdate, TrialRecord,
};
pub use config::FiConfig;
pub use error::FiError;
pub use injector::{FaultInjector, NeuronFault, QuantMode, WeightFault};
pub use journal::{
    append_heartbeat, read_journal, read_journal_repairing, JournalHeader, JournalWriter,
    JOURNAL_VERSION,
};
pub use location::{BatchSelect, NeuronSelect, NeuronSite, WeightSelect, WeightSite};
pub use metrics::{classify_outcome, OutcomeCounts, OutcomeKind};
pub use perturbation::{PerturbCtx, PerturbationModel};
pub use prefix::{PrefixCache, PrefixCacheConfig, PrefixStats};
pub use profile::{LayerProfile, ModelProfile};
pub use shard::{config_fingerprint, merge_shard_journals, plan_shards, MergedCampaign, ShardSpec};
