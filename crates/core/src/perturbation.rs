//! The perturbation-model abstraction.
//!
//! The paper's key generalization is abstracting a hardware "error" into a
//! "perturbation": a function from the original value (plus context) to a
//! corrupted value. Built-in models live in [`crate::models`]; users plug in
//! their own by implementing [`PerturbationModel`] (a closure wrapper,
//! [`crate::models::Custom`], covers most cases).

use rustfi_tensor::SeededRng;

/// Context handed to a perturbation model for one corrupted value.
#[derive(Debug)]
pub struct PerturbCtx<'a> {
    /// Index of the injectable layer being perturbed.
    pub layer: usize,
    /// Batch element being perturbed.
    pub batch: usize,
    /// Feature map (channel) of the value.
    pub channel: usize,
    /// Largest absolute value in the tensor being perturbed; used by
    /// quantized fault models to derive the INT8 scale dynamically.
    pub tensor_max_abs: f32,
    /// The INT8 scale of the stored word being perturbed, when the injector
    /// runs a quantized path (real INT8 inference, or values the injector
    /// has already snapped to the INT8 grid). `None` on the plain f32 path;
    /// quantized models then derive a dynamic scale from
    /// [`Self::tensor_max_abs`].
    pub quant_scale: Option<f32>,
    /// Deterministic RNG stream for perturbation-time randomness.
    pub rng: &'a mut SeededRng,
}

impl PerturbCtx<'_> {
    /// The INT8 scale a quantized model should use: the stored-word scale
    /// when one is in effect, else the dynamic per-tensor scale
    /// `max|tensor| / 127`.
    pub fn int8_scale(&self) -> f32 {
        self.quant_scale
            .unwrap_or_else(|| rustfi_quant::int8::scale_for_max_abs(self.tensor_max_abs))
    }
}

/// A perturbation model: maps an original value to a corrupted one.
///
/// Implementations must be deterministic given the `PerturbCtx` RNG state so
/// campaigns stay reproducible.
pub trait PerturbationModel: Send + Sync {
    /// Short, stable name for reports (e.g. `"bitflip-int8"`).
    fn name(&self) -> &str;

    /// Produces the corrupted value.
    fn perturb(&self, original: f32, ctx: &mut PerturbCtx<'_>) -> f32;

    /// Perturbs a *stored* INT8 word directly, for injectors running a real
    /// quantized inference path. Returns `None` (the default) when the model
    /// has no integer-domain form; the injector then falls back to
    /// dequantize → [`Self::perturb`] → requantize.
    ///
    /// Implementations **must** draw from `ctx.rng` in exactly the same
    /// sequence as their [`Self::perturb`] would for the same site, so that a
    /// campaign's records are independent of which representation the
    /// injector happens to hold the value in.
    fn perturb_i8(&self, _stored: i8, _ctx: &mut PerturbCtx<'_>) -> Option<i8> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    struct Negate;
    impl PerturbationModel for Negate {
        fn name(&self) -> &str {
            "negate"
        }
        fn perturb(&self, original: f32, _ctx: &mut PerturbCtx<'_>) -> f32 {
            -original
        }
    }

    #[test]
    fn trait_objects_work() {
        let model: Arc<dyn PerturbationModel> = Arc::new(Negate);
        let mut rng = SeededRng::new(1);
        let mut ctx = PerturbCtx {
            layer: 0,
            batch: 0,
            channel: 0,
            tensor_max_abs: 1.0,
            quant_scale: None,
            rng: &mut rng,
        };
        assert_eq!(model.perturb(2.5, &mut ctx), -2.5);
        assert_eq!(model.name(), "negate");
    }
}
