//! Campaign reporting: formatted tables and CSV export.
//!
//! The paper positions PyTorchFI as a *research tool*; in practice that
//! means campaign results end up in plots and spreadsheets. This module
//! renders a [`CampaignResult`] as a human-readable summary and exports the
//! per-trial records as CSV for downstream analysis.

use crate::campaign::CampaignResult;
use std::fmt::Write as _;

/// Renders a multi-line human-readable summary of a campaign.
pub fn summarize(result: &CampaignResult) -> String {
    let mut out = String::new();
    let c = &result.counts;
    let _ = writeln!(
        out,
        "campaign: {} trials over {} eligible images",
        c.total(),
        result.eligible_images
    );
    let _ = writeln!(
        out,
        "outcomes: {} masked | {} SDC | {} DUE | {} crash | {} hang",
        c.masked, c.sdc, c.due, c.crash, c.hang
    );
    let _ = writeln!(
        out,
        "SDC rate: {:.4}% (99% CI ±{:.4}%) | top-5 miss rate: {:.4}% | mean confidence delta: {:+.4}",
        100.0 * c.sdc_rate(),
        100.0 * c.sdc_rate_ci99(),
        100.0 * result.top5_miss_rate(),
        result.mean_confidence_delta()
    );
    if result.per_layer.iter().any(|&(t, _)| t > 0) {
        let _ = writeln!(out, "per-layer vulnerability:");
        for (layer, &(trials, sdcs)) in result.per_layer.iter().enumerate() {
            if trials == 0 {
                continue;
            }
            let rate = 100.0 * sdcs as f64 / trials as f64;
            let bar_len = (rate * 4.0).round() as usize;
            let _ = writeln!(
                out,
                "  layer {layer:>3}: {trials:>7} trials {sdcs:>6} SDC {rate:>7.3}% {}",
                "#".repeat(bar_len.min(60))
            );
        }
    }
    out
}

/// CSV header matching [`to_csv`]'s rows.
pub const CSV_HEADER: &str =
    "trial,image_index,layer,batch,channel,y,x,outcome,due_layer,top5_miss,confidence_delta";

/// Exports all trial records as CSV (header + one line per trial).
pub fn to_csv(result: &CampaignResult) -> String {
    let mut out = String::with_capacity(result.records.len() * 48 + CSV_HEADER.len() + 1);
    out.push_str(CSV_HEADER);
    out.push('\n');
    for r in &result.records {
        let (batch, channel, y, x) = match r.site {
            Some(s) => (
                s.batch.map_or(String::from("all"), |b| b.to_string()),
                s.channel.to_string(),
                s.y.to_string(),
                s.x.to_string(),
            ),
            None => (
                String::from(""),
                String::new(),
                String::new(),
                String::new(),
            ),
        };
        let due_layer = r.due_layer.map_or(String::new(), |l| l.to_string());
        let _ = writeln!(
            out,
            "{},{},{},{batch},{channel},{y},{x},{},{due_layer},{},{}",
            r.trial,
            r.image_index,
            r.layer,
            r.outcome.label(),
            r.top5_miss,
            r.confidence_delta
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::TrialRecord;
    use crate::location::NeuronSite;
    use crate::metrics::{OutcomeCounts, OutcomeKind};

    fn sample_result() -> CampaignResult {
        let records = vec![
            TrialRecord {
                trial: 0,
                image_index: 3,
                layer: 1,
                site: Some(NeuronSite {
                    layer: 1,
                    batch: None,
                    channel: 2,
                    y: 4,
                    x: 5,
                }),
                outcome: OutcomeKind::Masked,
                due_layer: None,
                top5_miss: false,
                confidence_delta: -0.01,
            },
            TrialRecord {
                trial: 1,
                image_index: 7,
                layer: 0,
                site: None,
                outcome: OutcomeKind::Sdc,
                due_layer: None,
                top5_miss: true,
                confidence_delta: -0.8,
            },
            TrialRecord {
                trial: 2,
                image_index: 1,
                layer: 2,
                site: None,
                outcome: OutcomeKind::Due,
                due_layer: Some(6),
                top5_miss: true,
                confidence_delta: -0.5,
            },
            TrialRecord {
                trial: 3,
                image_index: 0,
                layer: usize::MAX,
                site: None,
                outcome: OutcomeKind::Crash {
                    detail: "boom".into(),
                },
                due_layer: None,
                top5_miss: true,
                confidence_delta: 0.0,
            },
        ];
        let mut counts = OutcomeCounts::default();
        for r in &records {
            counts.record(&r.outcome);
        }
        CampaignResult {
            records,
            counts,
            per_layer: vec![(1, 1), (1, 0), (1, 0)],
            eligible_images: 10,
            prefix: None,
            fusion: None,
        }
    }

    #[test]
    fn summary_contains_key_figures() {
        let s = summarize(&sample_result());
        assert!(s.contains("4 trials over 10 eligible images"), "{s}");
        assert!(
            s.contains("1 masked | 1 SDC | 1 DUE | 1 crash | 0 hang"),
            "{s}"
        );
        assert!(s.contains("per-layer vulnerability"), "{s}");
        assert!(s.contains("layer   0"), "{s}");
    }

    #[test]
    fn csv_roundtrips_fields() {
        let csv = to_csv(&sample_result());
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some(CSV_HEADER));
        let row0 = lines.next().unwrap();
        assert_eq!(row0, "0,3,1,all,2,4,5,masked,,false,-0.01");
        let row1 = lines.next().unwrap();
        assert!(row1.starts_with("1,7,0,,,,,sdc,,true,"), "{row1}");
        let row2 = lines.next().unwrap();
        assert!(row2.starts_with("2,1,2,,,,,due,6,true,"), "{row2}");
        let row3 = lines.next().unwrap();
        assert!(row3.contains(",crash,,true,0"), "{row3}");
        assert_eq!(lines.next(), None);
    }

    #[test]
    fn empty_result_renders() {
        let result = CampaignResult {
            records: Vec::new(),
            counts: OutcomeCounts::default(),
            per_layer: Vec::new(),
            eligible_images: 0,
            prefix: None,
            fusion: None,
        };
        let s = summarize(&result);
        assert!(s.contains("0 trials"));
        assert_eq!(to_csv(&result).lines().count(), 1, "header only");
    }
}
