//! Seeded, parallel, crash-safe error-injection campaigns.
//!
//! A campaign repeats: pick a correctly-classified input, plan a fresh fault
//! from a template, run the perturbed inference, classify the outcome. Trials
//! are distributed across worker threads, but every trial's randomness is
//! derived from `(campaign seed, trial index)`, so results are identical for
//! any thread count.
//!
//! Campaigns are *resilient*:
//!
//! - every trial runs inside a panic shield — a perturbation model or layer
//!   that panics costs one [`OutcomeKind::Crash`] record, not the campaign;
//! - an optional step-budget watchdog cuts runaway forward passes short and
//!   classifies them [`OutcomeKind::Hang`];
//! - optional NaN/Inf guard hooks ([`GuardMode`]) catch non-finite
//!   activations *inside* the network — including those that downstream
//!   ReLU/pooling would launder back into finite logits — and record the
//!   originating layer as DUE provenance;
//! - [`Campaign::run_journaled`] appends each finished trial to a crash-safe
//!   JSONL journal, and [`Campaign::resume`] replays it, running only the
//!   missing trials. Because trial randomness is position-based, a resumed
//!   campaign is bit-identical to an uninterrupted one.
//!
//! Campaigns can also *fuse* trials ([`CampaignConfig::fusion`]): pending
//! neuron-fault trials that share an `(injection layer, image)` pair — the
//! prefix-cache key — execute as one batched forward pass whose batch slices
//! carry independent faults. Guards and INT8 quantization are evaluated per
//! sample, so a NaN in one trial never touches its batch siblings, and a
//! chunk whose forward pass panics is replayed serially. Like prefix caching
//! and journaling, fusion is invisible in the results: records are
//! bit-identical to serial execution for every seed, worker count, and
//! fusion width (property-tested).

use crate::config::FiConfig;
use crate::error::FiError;
use crate::injector::{FaultInjector, FusedTrialFault, NeuronFault, QuantMode, WeightFault};
use crate::journal::{read_journal_repairing, JournalHeader, JournalWriter};
use crate::location::{BatchSelect, NeuronSelect, NeuronSite, WeightSelect};
use crate::metrics::{classify_outcome, confidence, top1, OutcomeCounts, OutcomeKind};
use crate::perturbation::PerturbationModel;
use parking_lot::Mutex;
use rustfi_nn::{
    CalibrationTable, DeadlineInterrupt, GuardConfig, GuardHook, LayerId, Network,
    NonFiniteInterrupt,
};
use rustfi_obs::{
    names as obs_names, now_ns, thread_tid, Event as ObsEvent, LocalRecorder, Recorder, SpanRecord,
    TrialOutcomeEvent,
};
use rustfi_tensor::{parallel, SeededRng, Tensor};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// What kind of fault each trial plans.
#[derive(Debug, Clone)]
pub enum FaultMode {
    /// A neuron fault from this selection template.
    Neuron(NeuronSelect),
    /// A weight fault from this selection template.
    Weight(WeightSelect),
}

/// How a campaign uses NaN/Inf guard hooks during trials.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GuardMode {
    /// No activation scanning; DUEs are detected from the output only.
    #[default]
    Off,
    /// Scan every layer's output; a trial whose activations go non-finite is
    /// classified DUE with the originating layer recorded, but the forward
    /// pass runs to completion.
    Record,
    /// Like [`GuardMode::Record`], but abort the forward pass at the first
    /// non-finite activation — the remaining layers' work is skipped. The
    /// classification is identical to `Record`; only the wasted compute
    /// differs.
    ShortCircuit,
}

/// Campaign trial-fusion knobs ([`CampaignConfig::fusion`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FusionConfig {
    /// Maximum trials fused into one batched forward pass. Values below 2
    /// disable fusion. Wider batches amortize more per-pass overhead but
    /// cost more memory per worker and waste more work when a chunk crashes
    /// and replays serially.
    pub max_batch: usize,
}

impl Default for FusionConfig {
    fn default() -> Self {
        Self { max_batch: 16 }
    }
}

impl FusionConfig {
    /// Fusion with the given maximum batch width.
    pub fn with_width(max_batch: usize) -> Self {
        Self { max_batch }
    }
}

/// Counters describing one campaign's trial-fusion behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FusionStats {
    /// Trials executed inside fused batched forward passes.
    pub fused_trials: u64,
    /// Trials that fell back to serial execution: site planning panicked,
    /// or the trial's fused chunk crashed and was replayed one-by-one.
    pub serial_trials: u64,
    /// Fused chunks (batched forward passes) executed to completion.
    pub groups: u64,
    /// Largest fused batch executed.
    pub max_width: usize,
}

/// A live snapshot of campaign progress, handed to a
/// [`ProgressRecorder`]'s sink every reporting interval.
#[derive(Debug, Clone, Copy)]
pub struct ProgressUpdate {
    /// Trials finished so far (journal-replayed trials included).
    pub done: usize,
    /// Total trials the campaign will run.
    pub total: usize,
    /// Trials replayed from a journal at startup rather than executed by
    /// this run. Counted inside [`Self::done`], but excluded from the rate:
    /// a resume that instantly replays 90% of the campaign has not observed
    /// a 90%-per-tick execution rate.
    pub resumed: usize,
    /// Wall time since the workers started.
    pub elapsed: Duration,
    /// Running outcome tallies.
    pub counts: OutcomeCounts,
}

impl ProgressUpdate {
    /// Trials *executed by this run* per second of wall time
    /// (journal-replayed trials excluded). Zero until the run has both
    /// executed a trial and observed measurable wall time.
    pub fn trials_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        let executed = self.done.saturating_sub(self.resumed);
        if secs <= 0.0 {
            0.0
        } else {
            executed as f64 / secs
        }
    }

    /// Estimated wall time until the campaign finishes, extrapolated from
    /// the current execution rate.
    ///
    /// `None` until a rate exists — on the very first tick, and right after
    /// a resume whose replayed trials say nothing about execution speed —
    /// rather than a nonsense extrapolation from a zero rate.
    pub fn eta(&self) -> Option<Duration> {
        if self.done >= self.total {
            return Some(Duration::ZERO);
        }
        let rate = self.trials_per_sec();
        if rate <= 0.0 || !rate.is_finite() {
            return None;
        }
        Some(Duration::from_secs_f64(
            (self.total - self.done) as f64 / rate,
        ))
    }

    /// One-line human-readable rendering. The ETA shows `--:--` until a
    /// rate has been observed.
    pub fn render(&self) -> String {
        let c = &self.counts;
        let eta = match self.eta() {
            Some(d) => format!("{:.1}s", d.as_secs_f64()),
            None => String::from("--:--"),
        };
        format!(
            "trials {}/{} ({:.1}/s, ETA {eta}) | masked {} sdc {} due {} crash {} hang {}",
            self.done,
            self.total,
            self.trials_per_sec(),
            c.masked,
            c.sdc,
            c.due,
            c.crash,
            c.hang
        )
    }
}

/// Periodic live progress reporting for campaigns.
///
/// The sink runs on whichever worker thread finishes the interval's last
/// trial, so it must be cheap and thread-safe. Reporting never affects trial
/// results (randomness is position-based).
#[derive(Clone)]
pub struct ProgressRecorder {
    every: usize,
    sink: Arc<dyn Fn(&ProgressUpdate) + Send + Sync>,
}

impl ProgressRecorder {
    /// Calls `sink` after every `every` finished trials (and at completion).
    ///
    /// # Panics
    ///
    /// Panics if `every` is zero.
    pub fn new(every: usize, sink: impl Fn(&ProgressUpdate) + Send + Sync + 'static) -> Self {
        assert!(every > 0, "progress interval must be positive");
        Self {
            every,
            sink: Arc::new(sink),
        }
    }

    /// A reporter that prints [`ProgressUpdate::render`] to stderr.
    pub fn stderr(every: usize) -> Self {
        Self::new(every, |u| eprintln!("{}", u.render()))
    }

    /// The reporting interval in trials.
    pub fn every(&self) -> usize {
        self.every
    }

    /// Invokes the sink directly with an externally-computed update — for
    /// aggregators (e.g. a fleet orchestrator summing shard journals) that
    /// track progress themselves rather than through a running campaign.
    pub fn emit(&self, update: &ProgressUpdate) {
        (self.sink)(update);
    }
}

impl std::fmt::Debug for ProgressRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProgressRecorder")
            .field("every", &self.every)
            .finish_non_exhaustive()
    }
}

/// Campaign-level knobs.
#[derive(Clone)]
pub struct CampaignConfig {
    /// Number of injection trials.
    pub trials: usize,
    /// Root seed; trial `t` derives its stream from `(seed, t)`.
    pub seed: u64,
    /// Worker threads (`None` = all available cores).
    pub threads: Option<usize>,
    /// Quantization regime for trial (and golden-prediction) forwards:
    /// [`QuantMode::Simulated`] snaps activations to the INT8 grid on top of
    /// f32 kernels; [`QuantMode::Int8`] runs real integer kernels against a
    /// calibration table built from the campaign's image set, with faults
    /// flipping stored INT8 words.
    pub quant: QuantMode,
    /// NaN/Inf guard-hook behaviour during trials.
    pub guard: GuardMode,
    /// Per-trial step budget: a forward pass dispatching more than this many
    /// leaf layers is cut short and classified [`OutcomeKind::Hang`].
    /// `None` disables the watchdog.
    pub max_steps: Option<usize>,
    /// Golden-prefix activation caching ([`crate::prefix::PrefixCacheConfig`]):
    /// snapshot
    /// each injection layer's input during the golden pass and start trial
    /// forward passes there instead of at the pixels. Purely a throughput
    /// optimization — trial records are bit-identical with or without it (a
    /// property test asserts this). Ignored when [`Self::max_steps`] is set,
    /// because the watchdog counts executed layers and a resumed pass
    /// executes fewer of them.
    pub prefix_cache: Option<crate::prefix::PrefixCacheConfig>,
    /// Trial fusion ([`FusionConfig`]): run up to `max_batch` trials that
    /// share an `(injection layer, image)` pair as one batched forward pass
    /// whose slices carry independent faults. Purely a throughput
    /// optimization — records are bit-identical to serial execution (a
    /// property test asserts this). Applies to neuron faults only, and —
    /// like the prefix cache — stands down when [`Self::max_steps`] is set,
    /// because the watchdog counts per-pass layer dispatches.
    pub fusion: Option<FusionConfig>,
    /// Compiled forward plans: every network (golden and per-worker) packs
    /// its layer weights into GEMM-microkernel panel layouts at campaign
    /// setup and fuses bias + activation (+ folded inference batchnorm)
    /// into the GEMM write-back. Purely a throughput optimization — trial
    /// records are bit-identical with planning on or off (a property test
    /// asserts this): packed accumulation preserves the serial `kk` order
    /// and fused epilogues apply the exact per-element expressions of the
    /// unfused layers. Layer groups carrying forward hooks (injection
    /// targets, guards, profilers) automatically run unfused, and a weight
    /// fault repacks only the perturbed layer's panel for that trial. The
    /// golden / calibration pass additionally tiles its GEMM rows across
    /// the otherwise idle worker cores.
    pub plan: bool,
    /// Per-worker tensor-pool budget in bytes: each worker thread recycles
    /// retired activation buffers through a thread-local free list capped at
    /// this many bytes, making steady-state forward passes allocation-free.
    /// Purely a throughput optimization — trial records are bit-identical
    /// with pooling on or off (a property test asserts this). `0` disables
    /// pooling.
    pub pool_budget_bytes: usize,
    /// Observability sink. Workers buffer spans/events/counters into
    /// per-thread recorders and merge them here at trial boundaries, so
    /// recording neither serializes workers nor perturbs results (a property
    /// test asserts bit-identical records with and without a recorder).
    pub recorder: Option<Arc<dyn Recorder>>,
    /// Live progress reporting (trials done, rate, ETA, outcome tallies).
    pub progress: Option<ProgressRecorder>,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        Self {
            trials: 1000,
            seed: 0xCA_4F,
            threads: None,
            quant: QuantMode::Off,
            guard: GuardMode::Off,
            max_steps: None,
            prefix_cache: None,
            fusion: None,
            plan: false,
            pool_budget_bytes: 128 << 20,
            recorder: None,
            progress: None,
        }
    }
}

impl std::fmt::Debug for CampaignConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CampaignConfig")
            .field("trials", &self.trials)
            .field("seed", &self.seed)
            .field("threads", &self.threads)
            .field("quant", &self.quant)
            .field("guard", &self.guard)
            .field("max_steps", &self.max_steps)
            .field("prefix_cache", &self.prefix_cache)
            .field("fusion", &self.fusion)
            .field("plan", &self.plan)
            .field("pool_budget_bytes", &self.pool_budget_bytes)
            .field("recorder", &self.recorder.is_some())
            .field("progress", &self.progress)
            .finish()
    }
}

/// Shared progress bookkeeping for one campaign run.
struct ProgressState {
    done: AtomicUsize,
    /// Trials replayed from a journal at startup; see
    /// [`ProgressUpdate::resumed`].
    resumed: usize,
    counts: Mutex<OutcomeCounts>,
    start: Instant,
}

/// One trial's record.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialRecord {
    /// Trial index.
    pub trial: usize,
    /// Which test image was used.
    pub image_index: usize,
    /// The injectable layer that was hit (`usize::MAX` when the trial
    /// crashed before a fault was planned).
    pub layer: usize,
    /// The resolved neuron site (weight faults report `None`).
    pub site: Option<NeuronSite>,
    /// Outcome vs. the golden prediction.
    pub outcome: OutcomeKind,
    /// For DUE outcomes caught by a guard hook: the network layer index
    /// where the first non-finite activation appeared. `None` when the DUE
    /// was only detected at the output (or the outcome is not a DUE).
    pub due_layer: Option<usize>,
    /// Whether the golden class dropped out of the Top-5 — the paper's
    /// alternative, stricter corruption criterion (§IV-A). Crashed, hung,
    /// and guard-aborted trials produced no ranking and count as misses.
    pub top5_miss: bool,
    /// Change in softmax confidence of the golden class. Zero for crashed
    /// and hung trials (no output to compare).
    pub confidence_delta: f32,
}

/// Aggregated campaign results.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignResult {
    /// Per-trial records, in trial order.
    pub records: Vec<TrialRecord>,
    /// Totals.
    pub counts: OutcomeCounts,
    /// Per-injectable-layer `(trials, sdcs)`.
    pub per_layer: Vec<(usize, usize)>,
    /// How many test images were eligible (classified correctly clean).
    pub eligible_images: usize,
    /// Prefix-cache counters (`None` when caching was off or bypassed).
    pub prefix: Option<crate::prefix::PrefixStats>,
    /// Trial-fusion counters (`None` when fusion was off or stood down).
    pub fusion: Option<FusionStats>,
}

impl CampaignResult {
    /// SDC rate over all trials.
    pub fn sdc_rate(&self) -> f64 {
        self.counts.sdc_rate()
    }

    /// Rate of the stricter "golden class not in Top-5" corruption
    /// criterion (paper §IV-A lists this as an alternative vulnerability
    /// definition). Always at most [`CampaignResult::sdc_rate`].
    pub fn top5_miss_rate(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records.iter().filter(|r| r.top5_miss).count() as f64 / self.records.len() as f64
    }

    /// SDC rate for one injectable layer (0 if it saw no trials).
    pub fn layer_sdc_rate(&self, layer: usize) -> f64 {
        match self.per_layer.get(layer) {
            Some(&(trials, sdcs)) if trials > 0 => sdcs as f64 / trials as f64,
            _ => 0.0,
        }
    }

    /// Mean confidence drop of the golden class across trials.
    pub fn mean_confidence_delta(&self) -> f32 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records.iter().map(|r| r.confidence_delta).sum::<f32>() / self.records.len() as f32
    }
}

/// Refuses to resume `header` when it doesn't match `expected`, with a
/// message that pinpoints *what* diverged: a configuration-fingerprint
/// mismatch (same campaign shape, different record-affecting knobs — the
/// silent-mixed-report hazard) gets called out explicitly.
fn refuse_foreign_journal(header: &JournalHeader, expected: &JournalHeader) -> Result<(), FiError> {
    if header == expected {
        return Ok(());
    }
    let detail = if (
        header.seed,
        header.trials,
        header.shard_index,
        header.shard_count,
    ) == (
        expected.seed,
        expected.trials,
        expected.shard_index,
        expected.shard_count,
    ) {
        format!(
            "journal belongs to a different campaign configuration: it was written under \
             config fingerprint {:#018x}, this campaign's record-affecting knobs hash to \
             {:#018x}; resuming would silently mix records from diverging runs",
            header.config_hash, expected.config_hash
        )
    } else {
        format!(
            "journal belongs to a different campaign: it records seed {} over {} trials \
             (shard {} of {}), the config asks for seed {} over {} trials (shard {} of {})",
            header.seed,
            header.trials,
            header.shard_index,
            header.shard_count,
            expected.seed,
            expected.trials,
            expected.shard_index,
            expected.shard_count
        )
    };
    Err(FiError::Journal { line: 1, detail })
}

/// Journal bookkeeping shared by the workers of a journaled run.
struct JournalState {
    path: PathBuf,
    writer: Mutex<JournalWriter>,
    /// Records replayed from an earlier run, keyed by trial. Workers skip
    /// these trials; the records merge into the final result.
    done: BTreeMap<usize, TrialRecord>,
}

/// An injection campaign over a fixed model and test set.
///
/// The `factory` must produce the *same* network every call (same
/// architecture and weights — e.g. rebuild from the same seed, or reload a
/// checkpoint): each worker thread constructs its own copy.
pub struct Campaign<'a> {
    factory: &'a (dyn Fn() -> Network + Sync),
    images: &'a Tensor,
    labels: &'a [usize],
    mode: FaultMode,
    model: Arc<dyn PerturbationModel>,
}

impl<'a> Campaign<'a> {
    /// Creates a campaign.
    ///
    /// # Panics
    ///
    /// Panics if `images`/`labels` lengths disagree or are empty.
    pub fn new(
        factory: &'a (dyn Fn() -> Network + Sync),
        images: &'a Tensor,
        labels: &'a [usize],
        mode: FaultMode,
        model: Arc<dyn PerturbationModel>,
    ) -> Self {
        assert_eq!(
            images.dims()[0],
            labels.len(),
            "{} images but {} labels",
            images.dims()[0],
            labels.len()
        );
        assert!(!labels.is_empty(), "empty test set");
        Self {
            factory,
            images,
            labels,
            mode,
            model,
        }
    }

    /// Runs the campaign.
    ///
    /// Only images the clean model classifies correctly participate (as in
    /// the paper); if none qualify, the result reports zero trials.
    pub fn run(&self, cfg: &CampaignConfig) -> Result<CampaignResult, FiError> {
        self.run_internal(cfg, None, (0, cfg.trials))
    }

    /// The record-affecting configuration fingerprint this campaign stamps
    /// into journal headers; see [`crate::shard::config_fingerprint`].
    pub fn config_hash(&self, cfg: &CampaignConfig) -> u64 {
        crate::shard::config_fingerprint(cfg, &self.mode, self.model.name())
    }

    /// Runs the campaign with a crash-safe journal at `path`.
    ///
    /// If the journal already exists this resumes it (see
    /// [`Campaign::resume`]); otherwise a fresh journal is created and every
    /// finished trial is appended to it, flushed line-atomically.
    pub fn run_journaled(
        &self,
        cfg: &CampaignConfig,
        path: &Path,
    ) -> Result<CampaignResult, FiError> {
        if path.exists() {
            return self.resume(cfg, path);
        }
        let writer = JournalWriter::create(
            path,
            JournalHeader::solo(cfg.seed, cfg.trials, self.config_hash(cfg)),
        )?;
        self.run_internal(
            cfg,
            Some(JournalState {
                path: path.to_path_buf(),
                writer: Mutex::new(writer),
                done: BTreeMap::new(),
            }),
            (0, cfg.trials),
        )
    }

    /// Resumes a journaled campaign: trials already recorded in the journal
    /// are replayed, only the missing ones run. The merged result is
    /// bit-identical to an uninterrupted [`Campaign::run`] with the same
    /// configuration.
    pub fn resume(&self, cfg: &CampaignConfig, path: &Path) -> Result<CampaignResult, FiError> {
        let (header, replayed) = read_journal_repairing(path)?;
        let expected = JournalHeader::solo(cfg.seed, cfg.trials, self.config_hash(cfg));
        refuse_foreign_journal(&header, &expected)?;
        let mut done = BTreeMap::new();
        for r in replayed {
            if r.trial < cfg.trials {
                done.entry(r.trial).or_insert(r);
            }
        }
        let writer = JournalWriter::open_append(path)?;
        self.run_internal(
            cfg,
            Some(JournalState {
                path: path.to_path_buf(),
                writer: Mutex::new(writer),
                done,
            }),
            (0, cfg.trials),
        )
    }

    /// Runs one shard of the campaign — trials `spec.start..spec.end` of
    /// `cfg.trials` — with a crash-safe journal at `path`, creating or
    /// resuming it exactly as [`Campaign::run_journaled`] does.
    ///
    /// Trial randomness depends only on `(cfg.seed, trial index)`, never on
    /// which shard or worker executes a trial, so the records this shard
    /// produces are bit-identical to the same trial range of an unsharded
    /// run; [`crate::shard::merge_shard_journals`] reassembles the full
    /// report. All execution-strategy knobs (threads, fusion, prefix cache,
    /// pooling) apply per shard. The returned [`CampaignResult`] covers only
    /// this shard's range.
    ///
    /// The shard spec must come from [`crate::shard::plan_shards`] for this
    /// campaign's trial count; an inconsistent spec is refused, as is an
    /// existing journal written by a different campaign, shard identity, or
    /// configuration fingerprint.
    pub fn run_shard(
        &self,
        cfg: &CampaignConfig,
        spec: &crate::shard::ShardSpec,
        path: &Path,
    ) -> Result<CampaignResult, FiError> {
        let canonical = crate::shard::plan_shards(cfg.trials, spec.count)
            .get(spec.index)
            .copied();
        if canonical != Some(*spec) {
            return Err(FiError::Journal {
                line: 1,
                detail: format!(
                    "shard spec {spec:?} does not match the canonical plan entry {canonical:?} \
                     for {} trials",
                    cfg.trials
                ),
            });
        }
        let expected = JournalHeader {
            seed: cfg.seed,
            trials: cfg.trials,
            config_hash: self.config_hash(cfg),
            shard_index: spec.index,
            shard_count: spec.count,
        };
        let journal = if path.exists() {
            let (header, replayed) = read_journal_repairing(path)?;
            refuse_foreign_journal(&header, &expected)?;
            let mut done = BTreeMap::new();
            for r in replayed {
                if spec.contains(r.trial) {
                    done.entry(r.trial).or_insert(r);
                }
            }
            JournalState {
                path: path.to_path_buf(),
                writer: Mutex::new(JournalWriter::open_append(path)?),
                done,
            }
        } else {
            JournalState {
                path: path.to_path_buf(),
                writer: Mutex::new(JournalWriter::create(path, expected)?),
                done: BTreeMap::new(),
            }
        };
        self.run_internal(cfg, Some(journal), (spec.start, spec.end))
    }

    fn run_internal(
        &self,
        cfg: &CampaignConfig,
        journal: Option<JournalState>,
        range: (usize, usize),
    ) -> Result<CampaignResult, FiError> {
        let input_dims = {
            let d = self.images.dims();
            [1, d[1], d[2], d[3]]
        };
        // Arm this thread's tensor pool for the golden pass and planning
        // forwards too, not just the worker trial loops; dropped (and
        // cleared) when the campaign returns.
        let _pool = rustfi_tensor::tpool::budget_scope(cfg.pool_budget_bytes);

        // Golden pass: find eligible images and their clean confidence —
        // and, with prefix caching on, snapshot each resume point's input
        // so trials can skip re-running the fault-free layers before it.
        // The watchdog counts executed layers, so a resumed (shorter) pass
        // would classify Hang differently: caching stands down under it.
        let use_prefix = cfg.prefix_cache.is_some() && cfg.max_steps.is_none();
        let mut golden = FaultInjector::new((self.factory)(), FiConfig::for_input(&input_dims))?;
        golden.net_mut().set_plan(cfg.plan);
        // With a compiled plan, the golden / calibration phase runs alone
        // while every worker core idles — let its planned GEMMs tile rows
        // across them. Scoped to this phase (the guard is thread-local and
        // not inherited): trial workers parallelize across trials, where a
        // within-pass split would only add sync overhead.
        let wide = cfg.plan.then(rustfi_tensor::parallel::wide_scope);
        // Install the quantization regime before anything observes
        // activations: golden predictions, prefix snapshots, and trial
        // forwards all run under the same arithmetic. The INT8 calibration
        // ranges come from the *full* campaign image set, so the table — and
        // with it every trial record — is identical across shards, thread
        // counts, and fusion widths.
        let int8_table = match cfg.quant {
            QuantMode::Off => None,
            QuantMode::Simulated => {
                golden.enable_int8_activations();
                None
            }
            QuantMode::Int8 => {
                let imgs: Vec<Tensor> = (0..self.images.dims()[0])
                    .map(|i| self.images.select_batch(i))
                    .collect();
                let table = Arc::new(CalibrationTable::calibrate(golden.net_mut(), &imgs));
                golden.enable_int8_backend(Arc::clone(&table));
                Some(table)
            }
        };
        let prefix = if use_prefix {
            let pc = cfg.prefix_cache.as_ref().expect("use_prefix checked");
            let layers = golden.profile().layers();
            let resume: Vec<Option<LayerId>> = layers
                .iter()
                .map(|l| golden.net().resume_point(l.id))
                .collect();
            // A hit on layer `li` skips the injectable layers that run
            // strictly before its resume point; layers sharing the resume
            // point live inside the same resumed container and re-execute.
            // (Estimate: 2 FLOPs per MAC of conv/linear layers only.)
            let flops: Vec<u64> = layers
                .iter()
                .map(|l| {
                    let per_neuron = l.weight_dims.get(1..).map_or(0, |d| d.iter().product());
                    2 * l.neurons_per_image() as u64 * per_neuron as u64
                })
                .collect();
            let skipped: Vec<u64> = (0..layers.len())
                .map(|li| {
                    (0..li)
                        .filter(|&j| resume[j] != resume[li])
                        .map(|j| flops[j])
                        .sum()
                })
                .collect();
            // Only snapshot what trials will look up: the resume points of
            // whitelisted injection layers.
            let capture_ids: std::collections::HashSet<LayerId> = (0..layers.len())
                .filter(|&li| pc.allows_layer(li))
                .filter_map(|li| resume[li])
                .collect();
            Some((
                crate::prefix::PrefixCache::new(pc.budget_bytes),
                resume,
                skipped,
                capture_ids,
            ))
        } else {
            None
        };
        // With guard hooks in play, an uncached trial scans the prefix
        // layers' activations while a cached one skips them. Golden
        // prefixes are clean, so that only matters if the *golden* run
        // itself goes non-finite (e.g. laundered by a downstream ReLU) —
        // detect that here and leave such images uncached.
        let golden_guard = (prefix.is_some() && cfg.guard != GuardMode::Off).then(|| {
            GuardHook::install(
                golden.net(),
                GuardConfig {
                    detect_non_finite: true,
                    short_circuit: false,
                    max_steps: None,
                    per_sample: false,
                },
            )
        });
        let mut eligible: Vec<(usize, f32)> = Vec::new(); // (image index, clean confidence)
        for i in 0..self.labels.len() {
            let x = self.images.select_batch(i);
            if let Some((cache, _, _, capture_ids)) = &prefix {
                if let Some(g) = &golden_guard {
                    g.reset();
                }
                let mut captured: Vec<(LayerId, Tensor)> = Vec::new();
                let out = golden.forward_with_capture(&x, &mut |id, t| {
                    if capture_ids.contains(&id) {
                        captured.push((id, t.clone()));
                    }
                });
                let row = out.data();
                if top1(row) == self.labels[i] {
                    eligible.push((i, confidence(row, self.labels[i])));
                    let clean = golden_guard
                        .as_ref()
                        .and_then(|g| g.first_non_finite())
                        .is_none();
                    if clean {
                        for (id, t) in captured {
                            cache.insert(i, id, t);
                        }
                    }
                }
            } else {
                let out = golden.forward(&x);
                let row = out.data();
                if top1(row) == self.labels[i] {
                    eligible.push((i, confidence(row, self.labels[i])));
                }
            }
        }
        // `GuardHook` has no `Drop` — detach the golden guard explicitly so
        // the recycled injector doesn't carry a stale hook into the trial
        // loop (workers install their own guard with trial settings).
        if let Some(g) = &golden_guard {
            g.uninstall(golden.net());
        }
        drop(golden_guard);
        drop(wide);
        // The golden injector already paid for a model build and a profiling
        // forward; recycle both. The profile feeds fusion planning and the
        // per-layer aggregation, and the injector itself is handed to the
        // first worker that asks instead of being rebuilt from scratch.
        let profile = golden.profile().clone();
        let golden_cell: Mutex<Option<FaultInjector>> = Mutex::new(Some(golden));
        if eligible.is_empty() {
            // Durability point even for degenerate runs: streaming recorders
            // (telemetry sidecars, flight rings) get their flush hook.
            if let Some(rec) = &cfg.recorder {
                rec.flush();
            }
            return Ok(CampaignResult {
                records: Vec::new(),
                counts: OutcomeCounts::default(),
                per_layer: Vec::new(),
                eligible_images: 0,
                prefix: None,
                fusion: None,
            });
        }

        // Fan this run's trial range across workers; trial randomness
        // depends only on (seed, trial), so the range — the whole campaign,
        // or one shard's slice — never affects a trial's record.
        let (start, end) = range;
        debug_assert!(start <= end && end <= cfg.trials);
        let span = end - start;
        let workers = cfg
            .threads
            .unwrap_or_else(parallel::worker_count)
            .clamp(1, span.max(1));
        let root = SeededRng::new(cfg.seed);
        // Trial fusion: batch trials sharing an (injection layer, image)
        // pair into one forward pass. Neuron faults only (a weight fault
        // mutates the one set of weights every slice shares), and — like
        // the prefix cache — it stands down under the watchdog, whose step
        // accounting is per forward pass, not per trial.
        let fusion_width = match (&cfg.fusion, &self.mode) {
            (Some(f), FaultMode::Neuron(_)) if f.max_batch >= 2 && cfg.max_steps.is_none() => {
                Some(f.max_batch)
            }
            _ => None,
        };
        // Journal-replayed trials count as already done so a resumed
        // campaign's progress line starts from where the previous run ended.
        let progress_state = cfg.progress.as_ref().map(|_| {
            let mut counts = OutcomeCounts::default();
            let mut done = 0usize;
            if let Some(j) = journal.as_ref() {
                for r in j.done.values() {
                    counts.record(&r.outcome);
                    done += 1;
                }
            }
            ProgressState {
                done: AtomicUsize::new(done),
                resumed: done,
                counts: Mutex::new(counts),
                start: Instant::now(),
            }
        });
        let env = RunEnv {
            input_dims,
            range,
            cfg,
            int8_table: &int8_table,
            root: &root,
            eligible: &eligible,
            prefix: &prefix,
            mode: &self.mode,
            model: &self.model,
            profile: &profile,
            factory: self.factory,
            images: self.images,
            labels: self.labels,
            journal: journal.as_ref(),
            shared_recorder: cfg.recorder.as_ref(),
            progress: cfg.progress.as_ref(),
            progress_state: progress_state.as_ref(),
        };

        let mut fusion_counters: Option<FusionCounters> = None;
        let worker_results: Vec<Result<Vec<TrialRecord>, FiError>> = if let Some(width) =
            fusion_width
        {
            let counters = FusionCounters::default();
            let units = plan_fused_units(&env, width)?;
            let results = parallel::map_indexed(workers, |w| {
                // Enable this worker thread's tensor pool for the duration
                // of its trial loop; dropped (and cleared) on exit so pooling
                // never leaks outside the campaign.
                let _pool = rustfi_tensor::tpool::budget_scope(cfg.pool_budget_bytes);
                let local: Option<Arc<LocalRecorder>> =
                    env.shared_recorder.map(|_| Arc::new(LocalRecorder::new()));
                let (mut fi, mut guard) =
                    build_worker(&env, &local, true, golden_cell.lock().take())?;
                let mut records = Vec::new();
                let mut u = w;
                while u < units.len() {
                    match &units[u] {
                        WorkUnit::Fused {
                            layer,
                            image_index,
                            chunk,
                        } => records.extend(run_fused_chunk(
                            &env,
                            &mut fi,
                            &mut guard,
                            &local,
                            *layer,
                            *image_index,
                            chunk,
                            &counters,
                        )?),
                        WorkUnit::Serial(t) => {
                            counters.serial.fetch_add(1, Ordering::Relaxed);
                            records
                                .push(run_one_trial(&env, &mut fi, &mut guard, &local, true, *t)?);
                        }
                    }
                    u += workers;
                }
                Ok(records)
            });
            fusion_counters = Some(counters);
            results
        } else {
            parallel::map_indexed(workers, |w| {
                // Enable this worker thread's tensor pool for the duration
                // of its trial loop; dropped (and cleared) on exit so pooling
                // never leaks outside the campaign.
                let _pool = rustfi_tensor::tpool::budget_scope(cfg.pool_budget_bytes);
                // Per-worker observability buffer; merged into the shared
                // recorder at trial boundaries (one lock-free push per
                // trial) so recording never serializes workers.
                let local: Option<Arc<LocalRecorder>> =
                    env.shared_recorder.map(|_| Arc::new(LocalRecorder::new()));
                let (mut fi, mut guard) =
                    build_worker(&env, &local, false, golden_cell.lock().take())?;
                let mut records = Vec::new();
                let mut t = start + w;
                while t < end {
                    if env.journal.is_some_and(|j| j.done.contains_key(&t)) {
                        t += workers;
                        continue;
                    }
                    records.push(run_one_trial(&env, &mut fi, &mut guard, &local, false, t)?);
                    t += workers;
                }
                Ok(records)
            })
        };

        let mut all_records: Vec<TrialRecord> = journal
            .map(|j| j.done.into_values().collect())
            .unwrap_or_default();
        for result in worker_results {
            all_records.extend(result?);
        }
        all_records.sort_by_key(|r| r.trial);

        // Aggregate.
        let mut counts = OutcomeCounts::default();
        let layer_count = profile.len();
        let mut per_layer = vec![(0usize, 0usize); layer_count];
        for r in &all_records {
            counts.record(&r.outcome);
            if r.layer < per_layer.len() {
                per_layer[r.layer].0 += 1;
                if r.outcome == OutcomeKind::Sdc {
                    per_layer[r.layer].1 += 1;
                }
            }
        }
        // Durability point: every worker has flushed its LocalRecorder into
        // the shared recorder by now; ask the recorder to push buffered
        // state to its backing store (telemetry sidecar, flight postmortem)
        // before the result is reported. In-memory recorders no-op.
        if let Some(rec) = &cfg.recorder {
            rec.flush();
        }
        Ok(CampaignResult {
            records: all_records,
            counts,
            per_layer,
            eligible_images: eligible.len(),
            prefix: prefix.as_ref().map(|(cache, ..)| cache.stats()),
            fusion: fusion_counters.map(|c| FusionStats {
                fused_trials: c.fused.into_inner(),
                serial_trials: c.serial.into_inner(),
                groups: c.groups.into_inner(),
                max_width: c.max_width.into_inner(),
            }),
        })
    }
}

/// The golden-prefix context built once per run: the cache itself, each
/// injectable layer's resume point, the FLOPs a hit skips, and which layer
/// ids the golden pass snapshots.
type PrefixEnv = (
    crate::prefix::PrefixCache,
    Vec<Option<LayerId>>,
    Vec<u64>,
    std::collections::HashSet<LayerId>,
);

/// Borrowed per-run context shared by every campaign worker.
struct RunEnv<'e> {
    input_dims: [usize; 4],
    /// This run's trial range `[start, end)`: the whole campaign for
    /// ordinary runs, one shard's slice under [`Campaign::run_shard`].
    range: (usize, usize),
    cfg: &'e CampaignConfig,
    /// The shared calibration table under [`QuantMode::Int8`] (built once
    /// from the full image set during the golden pass), else `None`.
    int8_table: &'e Option<Arc<CalibrationTable>>,
    root: &'e SeededRng,
    eligible: &'e [(usize, f32)],
    prefix: &'e Option<PrefixEnv>,
    mode: &'e FaultMode,
    model: &'e Arc<dyn PerturbationModel>,
    profile: &'e crate::profile::ModelProfile,
    factory: &'e (dyn Fn() -> Network + Sync),
    images: &'e Tensor,
    labels: &'e [usize],
    journal: Option<&'e JournalState>,
    shared_recorder: Option<&'e Arc<dyn Recorder>>,
    progress: Option<&'e ProgressRecorder>,
    progress_state: Option<&'e ProgressState>,
}

impl RunEnv<'_> {
    /// Trials in this run's range — the progress total.
    fn span(&self) -> usize {
        self.range.1 - self.range.0
    }
}

/// Shared tallies behind [`FusionStats`].
#[derive(Default)]
struct FusionCounters {
    fused: AtomicU64,
    serial: AtomicU64,
    groups: AtomicU64,
    max_width: AtomicUsize,
}

/// One planned (not yet executed) trial of a fused campaign.
#[derive(Clone)]
struct PlannedTrial {
    t: usize,
    seed: u64,
    image_index: usize,
    clean_conf: f32,
    sites: Vec<NeuronSite>,
}

/// A unit of fused-scheduler work: a chunk of trials sharing an
/// `(injection layer, image)` pair, or one trial that must run serially.
enum WorkUnit {
    Fused {
        layer: usize,
        image_index: usize,
        chunk: Vec<PlannedTrial>,
    },
    Serial(usize),
}

/// An injector (+ guard) for one worker; also used to rebuild after a
/// crashed trial, whose unwind may have left the network mid-mutation.
///
/// `recycled` (when given) is the golden-pass injector, reused instead of
/// paying another model build + profiling forward. Every trial path restores
/// weights and reseeds (or carries explicit per-trial seeds) before touching
/// the injector, so a recycled one is record-identical to a fresh build.
fn build_worker(
    env: &RunEnv<'_>,
    local: &Option<Arc<LocalRecorder>>,
    per_sample: bool,
    recycled: Option<FaultInjector>,
) -> Result<(FaultInjector, Option<GuardHook>), FiError> {
    let cfg = env.cfg;
    let mut fi = match recycled {
        Some(fi) => fi,
        None => FaultInjector::new((env.factory)(), FiConfig::for_input(&env.input_dims))?,
    };
    if let Some(l) = local {
        // Before the guard install, so guard events route through the same
        // buffer.
        fi.set_recorder(Some(Arc::clone(l) as Arc<dyn Recorder>));
    }
    // A recycled golden injector arrives already planned; a fresh build
    // packs its panels lazily at the first trial forward (setup cost, not
    // steady state).
    fi.net_mut().set_plan(cfg.plan);
    match cfg.quant {
        QuantMode::Off => {}
        QuantMode::Simulated => fi.enable_int8_activations(),
        QuantMode::Int8 => fi.enable_int8_backend(Arc::clone(
            env.int8_table.as_ref().expect("Int8 mode built a table"),
        )),
    }
    // Install the guard after the quant regime so it scans the values the
    // next layer will actually consume.
    let guard = (cfg.guard != GuardMode::Off || cfg.max_steps.is_some()).then(|| {
        GuardHook::install(
            fi.net(),
            GuardConfig {
                detect_non_finite: cfg.guard != GuardMode::Off,
                short_circuit: cfg.guard == GuardMode::ShortCircuit,
                max_steps: cfg.max_steps,
                per_sample,
            },
        )
    });
    Ok((fi, guard))
}

/// Runs trial `t` serially, exactly as campaigns always have: plan, inject,
/// forward, classify, journal, observe, report. Fused campaigns call this
/// too — for trials whose planning panicked and for chunks replayed after a
/// crash — which is what makes fused records bit-identical to serial ones.
fn run_one_trial(
    env: &RunEnv<'_>,
    fi: &mut FaultInjector,
    guard: &mut Option<GuardHook>,
    local: &Option<Arc<LocalRecorder>>,
    per_sample: bool,
    t: usize,
) -> Result<TrialRecord, FiError> {
    let total = env.span();
    let trial_seed = env.root.fork(t as u64).seed();
    let mut pick_rng = SeededRng::new(trial_seed).fork(3);
    let (image_index, clean_conf) = env.eligible[pick_rng.below(env.eligible.len())];
    let golden_label = env.labels[image_index];
    fi.restore();
    fi.reseed(trial_seed);
    fi.set_trial(Some(t));
    let trial_start = local.as_ref().map(|_| now_ns());
    if let Some(g) = guard.as_ref() {
        g.reset();
    }

    // The shield confines a panicking perturbation model (or layer) to this
    // trial; guard interrupts unwind through the same channel and are told
    // apart by payload type.
    let mut planned: Option<(usize, Option<NeuronSite>)> = None;
    let mut prefix_hit: Option<bool> = None;
    let shielded = parallel::shield::run_quietly(|| -> Result<Vec<f32>, FiError> {
        let (layer, site) = match env.mode {
            FaultMode::Neuron(select) => {
                let sites = fi
                    .declare_neuron_fi(&[NeuronFault {
                        select: select.clone(),
                        batch: BatchSelect::All,
                        model: Arc::clone(env.model),
                    }])
                    .map_err(|e| FiError::Trial {
                        trial: t,
                        source: Box::new(e),
                    })?;
                (sites[0].layer, Some(sites[0]))
            }
            FaultMode::Weight(select) => {
                let sites = fi
                    .declare_weight_fi(&[WeightFault {
                        select: select.clone(),
                        model: Arc::clone(env.model),
                    }])
                    .map_err(|e| FiError::Trial {
                        trial: t,
                        source: Box::new(e),
                    })?;
                (sites[0].layer, None)
            }
        };
        planned = Some((layer, site));
        // Prefix fast path: resume from the cached golden activation of
        // this layer's resume point; any miss (evicted, unwhitelisted, or
        // non-finite golden) falls back to a full pass with identical
        // results.
        if let Some((cache, resume, skipped, _)) = env.prefix {
            if let Some(rid) = resume.get(layer).copied().flatten() {
                match cache.lookup(image_index, rid, skipped[layer]) {
                    Some(act) => {
                        prefix_hit = Some(true);
                        if let Some(out) = fi.forward_from(rid, &act) {
                            let row = out.data().to_vec();
                            out.into_pool();
                            return Ok(row);
                        }
                    }
                    None => prefix_hit = Some(false),
                }
            }
        }
        let x = env.images.select_batch(image_index);
        let out = fi.forward(&x);
        x.into_pool();
        let row = out.data().to_vec();
        out.into_pool();
        Ok(row)
    });

    let (layer, site) = planned.unwrap_or((usize::MAX, None));
    let base = TrialRecord {
        trial: t,
        image_index,
        layer,
        site,
        outcome: OutcomeKind::Hang, // placeholder, always overwritten
        due_layer: None,
        top5_miss: true,
        confidence_delta: 0.0,
    };
    let record = match shielded {
        Ok(Ok(row)) => {
            match guard.as_ref().and_then(|g| g.first_non_finite()) {
                // Guard saw a non-finite activation (the output itself may
                // look fine): DUE with layer provenance, classified exactly
                // as a short-circuited trial would be.
                Some((gid, _)) => TrialRecord {
                    outcome: OutcomeKind::Due,
                    due_layer: Some(gid.index()),
                    confidence_delta: -clean_conf,
                    ..base
                },
                None => {
                    let outcome = classify_outcome(golden_label, &row);
                    let finite = row.iter().all(|v| v.is_finite());
                    let top5_miss = !finite || !crate::metrics::in_top_k(&row, golden_label, 5);
                    let confidence_delta = if finite {
                        confidence(&row, golden_label) - clean_conf
                    } else {
                        -clean_conf
                    };
                    TrialRecord {
                        outcome,
                        top5_miss,
                        confidence_delta,
                        ..base
                    }
                }
            }
        }
        // Planning rejected the fault template: a configuration error, not
        // a trial outcome.
        Ok(Err(e)) => return Err(e),
        Err(payload) => {
            if let Some(nf) = payload.downcast_ref::<NonFiniteInterrupt>() {
                TrialRecord {
                    outcome: OutcomeKind::Due,
                    due_layer: Some(nf.layer.index()),
                    confidence_delta: -clean_conf,
                    ..base
                }
            } else if payload.downcast_ref::<DeadlineInterrupt>().is_some() {
                TrialRecord {
                    outcome: OutcomeKind::Hang,
                    ..base
                }
            } else {
                let detail = parallel::shield::payload_message(payload.as_ref());
                // The unwind may have interrupted a weight mutation or hook
                // bookkeeping: rebuild this worker's injector from scratch.
                let (new_fi, new_guard) = build_worker(env, local, per_sample, None)?;
                *fi = new_fi;
                *guard = new_guard;
                TrialRecord {
                    outcome: OutcomeKind::Crash { detail },
                    ..base
                }
            }
        }
    };
    if let Some(j) = env.journal {
        j.writer.lock().append(&record, &j.path)?;
    }
    if let (Some(l), Some(start)) = (local, trial_start) {
        let dur = now_ns().saturating_sub(start);
        l.span(SpanRecord {
            name: format!("trial {t}"),
            kind: "trial",
            layer: None,
            start_ns: start,
            dur_ns: dur,
            tid: thread_tid(),
        });
        l.observe_ns(obs_names::CAMPAIGN_TRIAL_NS, dur);
        // Pool counters since the last trial boundary on this thread; zero
        // activity (pooling disabled) emits nothing.
        let pool = rustfi_tensor::tpool::take_stats();
        if pool.hits + pool.misses > 0 {
            l.counter_add(obs_names::CAMPAIGN_POOL_HITS, pool.hits);
            l.counter_add(obs_names::CAMPAIGN_POOL_MISSES, pool.misses);
            l.counter_add(obs_names::CAMPAIGN_POOL_RECYCLED_BYTES, pool.bytes_recycled);
        }
        match prefix_hit {
            Some(true) => {
                l.counter_add(obs_names::CAMPAIGN_PREFIX_HITS, 1);
                if let Some((_, _, skipped, _)) = env.prefix {
                    l.counter_add(
                        obs_names::CAMPAIGN_PREFIX_SKIPPED_FLOPS,
                        skipped[record.layer],
                    );
                }
            }
            Some(false) => l.counter_add(obs_names::CAMPAIGN_PREFIX_MISSES, 1),
            None => {}
        }
        l.event(ObsEvent::TrialOutcome(TrialOutcomeEvent {
            trial: t,
            layer: record.layer,
            outcome: record.outcome.label(),
            due_layer: record.due_layer,
        }));
        // Trial boundary: hand the whole buffer to the shared recorder in
        // one lock-free merge.
        if let Some(shared) = env.shared_recorder {
            l.flush_into(&**shared);
        }
    }
    if let Some(p) = env.progress_state {
        let done = {
            let mut c = p.counts.lock();
            c.record(&record.outcome);
            p.done.fetch_add(1, Ordering::Relaxed) + 1
        };
        if let Some(pr) = env.progress {
            if done % pr.every() == 0 || done == total {
                let counts = *p.counts.lock();
                (pr.sink)(&ProgressUpdate {
                    done,
                    total,
                    resumed: p.resumed,
                    elapsed: p.start.elapsed(),
                    counts,
                });
            }
        }
    }
    Ok(record)
}

/// Plans every pending trial by replaying exactly the per-trial RNG streams
/// a serial run would use, then groups the plans by `(injection layer,
/// image)` and cuts each group into chunks of at most `width` trials.
///
/// Planning is cheap (site resolution against the profile; no inference),
/// so it runs single-threaded — which also makes group formation trivially
/// deterministic.
fn plan_fused_units(env: &RunEnv<'_>, width: usize) -> Result<Vec<WorkUnit>, FiError> {
    let select = match env.mode {
        FaultMode::Neuron(s) => s,
        FaultMode::Weight(_) => unreachable!("fusion stands down for weight faults"),
    };
    let profile = env.profile;
    let mut groups: BTreeMap<(usize, usize), Vec<PlannedTrial>> = BTreeMap::new();
    let mut serial: Vec<usize> = Vec::new();
    for t in env.range.0..env.range.1 {
        if env.journal.is_some_and(|j| j.done.contains_key(&t)) {
            continue;
        }
        let seed = env.root.fork(t as u64).seed();
        let mut pick_rng = SeededRng::new(seed).fork(3);
        let (image_index, clean_conf) = env.eligible[pick_rng.below(env.eligible.len())];
        // The plan stream a serial declare would draw from after
        // `reseed(seed)`.
        let mut plan_rng = SeededRng::new(seed).fork(1);
        match parallel::shield::run_quietly(|| {
            select.resolve(profile, BatchSelect::All, &mut plan_rng)
        }) {
            Ok(Ok(sites)) => groups
                .entry((sites[0].layer, image_index))
                .or_default()
                .push(PlannedTrial {
                    t,
                    seed,
                    image_index,
                    clean_conf,
                    sites,
                }),
            Ok(Err(e)) => {
                return Err(FiError::Trial {
                    trial: t,
                    source: Box::new(e),
                })
            }
            // Site resolution panicked: in serial mode that is a Crash
            // record. Route the trial to serial execution so the crash
            // reproduces with identical record and side effects.
            Err(_) => serial.push(t),
        }
    }
    let mut units: Vec<WorkUnit> = Vec::new();
    for ((layer, image_index), list) in groups {
        for chunk in list.chunks(width) {
            units.push(WorkUnit::Fused {
                layer,
                image_index,
                chunk: chunk.to_vec(),
            });
        }
    }
    units.extend(serial.into_iter().map(WorkUnit::Serial));
    Ok(units)
}

/// Executes one fused chunk: a single batched forward pass whose slice `i`
/// carries `chunk[i]`'s fault, then per-sample classification. If the pass
/// panics, the whole chunk is replayed serially through [`run_one_trial`],
/// reproducing the exact serial records (crash detail included).
#[allow(clippy::too_many_arguments)]
fn run_fused_chunk(
    env: &RunEnv<'_>,
    fi: &mut FaultInjector,
    guard: &mut Option<GuardHook>,
    local: &Option<Arc<LocalRecorder>>,
    layer: usize,
    image_index: usize,
    chunk: &[PlannedTrial],
    counters: &FusionCounters,
) -> Result<Vec<TrialRecord>, FiError> {
    let n = chunk.len();
    fi.restore();
    fi.set_trial(None); // injection events carry per-slice trial indices
    if let Some(g) = guard.as_ref() {
        g.reset_samples(n);
    }
    let chunk_start = local.as_ref().map(|_| now_ns());
    let faults: Vec<FusedTrialFault> = chunk
        .iter()
        .map(|p| FusedTrialFault {
            trial: p.t,
            seed: p.seed,
            sites: p.sites.clone(),
            model: Arc::clone(env.model),
        })
        .collect();
    fi.declare_fused_neuron_fi(layer, faults)
        .map_err(|e| FiError::Trial {
            trial: chunk[0].t,
            source: Box::new(e),
        })?;
    // Peek the prefix cache outside the shield and charge its counters only
    // once the pass completes: a crashed chunk's serial replay does its own
    // per-trial counting, keeping `hits + misses == trials` either way.
    let mut resume_from: Option<(LayerId, Arc<Tensor>)> = None;
    let mut prefix_hit: Option<bool> = None;
    if let Some((cache, resume, _, _)) = env.prefix {
        if let Some(rid) = resume.get(layer).copied().flatten() {
            match cache.peek(image_index, rid) {
                Some(act) => {
                    prefix_hit = Some(true);
                    resume_from = Some((rid, act));
                }
                None => prefix_hit = Some(false),
            }
        }
    }
    let shielded = parallel::shield::run_quietly(|| {
        if let Some((rid, act)) = &resume_from {
            // On a flat spine the resume point *is* the injection layer, so
            // every batch slice enters it with the same cached activation:
            // compute it once at batch 1 and broadcast its output, letting
            // the per-slice fault hooks and downstream layers run at batch
            // `n` (bit-identical, see `forward_from_broadcast`).
            if let Some(out) = fi.forward_from_broadcast(*rid, act, n) {
                return out;
            }
            let xb = act.repeat_batch(n);
            let resumed = fi.forward_from(*rid, &xb);
            xb.into_pool();
            if let Some(out) = resumed {
                return out;
            }
        }
        let x = env.images.select_batch(image_index);
        let xb = x.repeat_batch(n);
        x.into_pool();
        let out = fi.forward(&xb);
        xb.into_pool();
        out
    });
    let out = match shielded {
        Ok(out) => out,
        Err(_) => {
            // One slice's fault panicked and unwound the whole fused pass
            // (per-sample guards never interrupt, so this is a genuine
            // crash). Rebuild and replay the chunk serially: every trial
            // re-runs in isolation and produces exactly the record a serial
            // campaign would, including which trial crashed.
            let (new_fi, new_guard) = build_worker(env, local, true, None)?;
            *fi = new_fi;
            *guard = new_guard;
            counters.serial.fetch_add(n as u64, Ordering::Relaxed);
            let mut records = Vec::with_capacity(n);
            for p in chunk {
                records.push(run_one_trial(env, fi, guard, local, true, p.t)?);
            }
            return Ok(records);
        }
    };

    // Per-sample classification — each slice judged exactly as a batch-1
    // serial trial would be.
    let classes = out.len() / n;
    let data = out.data();
    let mut records = Vec::with_capacity(n);
    for (b, p) in chunk.iter().enumerate() {
        let row = &data[b * classes..(b + 1) * classes];
        let golden_label = env.labels[p.image_index];
        let base = TrialRecord {
            trial: p.t,
            image_index: p.image_index,
            layer,
            site: Some(p.sites[0]),
            outcome: OutcomeKind::Hang, // placeholder, always overwritten
            due_layer: None,
            top5_miss: true,
            confidence_delta: 0.0,
        };
        let record = match guard.as_ref().and_then(|g| g.first_non_finite_for(b)) {
            Some((gid, _)) => TrialRecord {
                outcome: OutcomeKind::Due,
                due_layer: Some(gid.index()),
                confidence_delta: -p.clean_conf,
                ..base
            },
            None => {
                let outcome = classify_outcome(golden_label, row);
                let finite = row.iter().all(|v| v.is_finite());
                let top5_miss = !finite || !crate::metrics::in_top_k(row, golden_label, 5);
                let confidence_delta = if finite {
                    confidence(row, golden_label) - p.clean_conf
                } else {
                    -p.clean_conf
                };
                TrialRecord {
                    outcome,
                    top5_miss,
                    confidence_delta,
                    ..base
                }
            }
        };
        records.push(record);
    }
    out.into_pool();

    if let (Some((cache, _, skipped, _)), Some(hit)) = (env.prefix, prefix_hit) {
        cache.record_outcome(hit, n as u64, skipped[layer]);
    }
    counters.fused.fetch_add(n as u64, Ordering::Relaxed);
    counters.groups.fetch_add(1, Ordering::Relaxed);
    counters.max_width.fetch_max(n, Ordering::Relaxed);

    if let Some(j) = env.journal {
        for record in &records {
            j.writer.lock().append(record, &j.path)?;
        }
    }
    if let (Some(l), Some(start)) = (local, chunk_start) {
        let dur = now_ns().saturating_sub(start);
        l.span(SpanRecord {
            name: format!("fused chunk layer {layer} image {image_index} x{n}"),
            kind: "fused",
            layer: None,
            start_ns: start,
            dur_ns: dur,
            tid: thread_tid(),
        });
        l.observe_ns(obs_names::CAMPAIGN_FUSED_CHUNK_NS, dur);
        l.observe_ns(obs_names::CAMPAIGN_FUSED_WIDTH, n as u64);
        l.counter_add(obs_names::CAMPAIGN_FUSED_TRIALS, n as u64);
        l.counter_add(obs_names::CAMPAIGN_FUSED_GROUPS, 1);
        // Pool counters since the last trial boundary on this thread; zero
        // activity (pooling disabled) emits nothing.
        let pool = rustfi_tensor::tpool::take_stats();
        if pool.hits + pool.misses > 0 {
            l.counter_add(obs_names::CAMPAIGN_POOL_HITS, pool.hits);
            l.counter_add(obs_names::CAMPAIGN_POOL_MISSES, pool.misses);
            l.counter_add(obs_names::CAMPAIGN_POOL_RECYCLED_BYTES, pool.bytes_recycled);
        }
        match prefix_hit {
            Some(true) => {
                l.counter_add(obs_names::CAMPAIGN_PREFIX_HITS, n as u64);
                if let Some((_, _, skipped, _)) = env.prefix {
                    l.counter_add(
                        obs_names::CAMPAIGN_PREFIX_SKIPPED_FLOPS,
                        skipped[layer] * n as u64,
                    );
                }
            }
            Some(false) => l.counter_add(obs_names::CAMPAIGN_PREFIX_MISSES, n as u64),
            None => {}
        }
        for record in &records {
            l.event(ObsEvent::TrialOutcome(TrialOutcomeEvent {
                trial: record.trial,
                layer: record.layer,
                outcome: record.outcome.label(),
                due_layer: record.due_layer,
            }));
        }
        if let Some(shared) = env.shared_recorder {
            l.flush_into(&**shared);
        }
    }
    if let Some(p) = env.progress_state {
        for record in &records {
            let done = {
                let mut c = p.counts.lock();
                c.record(&record.outcome);
                p.done.fetch_add(1, Ordering::Relaxed) + 1
            };
            if let Some(pr) = env.progress {
                if done % pr.every() == 0 || done == env.span() {
                    let counts = *p.counts.lock();
                    (pr.sink)(&ProgressUpdate {
                        done,
                        total: env.span(),
                        resumed: p.resumed,
                        elapsed: p.start.elapsed(),
                        counts,
                    });
                }
            }
        }
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{BitFlipInt8, BitSelect, Custom, RandomUniform, StuckAt};
    use rustfi_nn::{zoo, ZooConfig};
    use rustfi_tensor::Tensor;

    fn factory() -> Network {
        zoo::lenet(&ZooConfig::tiny(4))
    }

    /// Labels that match whatever the untrained net predicts, so every image
    /// is "correctly classified" and campaigns have eligible inputs.
    fn aligned_labels(images: &Tensor) -> Vec<usize> {
        let mut net = factory();
        (0..images.dims()[0])
            .map(|i| {
                let out = net.forward(&images.select_batch(i));
                top1(out.data())
            })
            .collect()
    }

    fn images() -> Tensor {
        Tensor::from_fn(&[6, 3, 16, 16], |i| ((i as f32) * 0.013).sin())
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("rustfi-campaign-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        let _ = std::fs::remove_file(&path);
        path
    }

    #[test]
    fn campaign_runs_and_accounts_every_trial() {
        let images = images();
        let labels = aligned_labels(&images);
        let campaign = Campaign::new(
            &factory,
            &images,
            &labels,
            FaultMode::Neuron(NeuronSelect::Random),
            Arc::new(RandomUniform::default()),
        );
        let result = campaign
            .run(&CampaignConfig {
                trials: 64,
                seed: 1,
                threads: Some(2),
                ..CampaignConfig::default()
            })
            .unwrap();
        assert_eq!(result.records.len(), 64);
        assert_eq!(result.counts.total(), 64);
        assert_eq!(result.eligible_images, 6);
        let layer_trials: usize = result.per_layer.iter().map(|(t, _)| t).sum();
        assert_eq!(layer_trials, 64);
        for (i, r) in result.records.iter().enumerate() {
            assert_eq!(r.trial, i);
        }
    }

    #[test]
    fn campaign_is_deterministic_across_thread_counts() {
        let images = images();
        let labels = aligned_labels(&images);
        let campaign = Campaign::new(
            &factory,
            &images,
            &labels,
            FaultMode::Neuron(NeuronSelect::Random),
            Arc::new(RandomUniform::default()),
        );
        let run = |threads| {
            campaign
                .run(&CampaignConfig {
                    trials: 40,
                    seed: 5,
                    threads: Some(threads),
                    ..CampaignConfig::default()
                })
                .unwrap()
        };
        assert_eq!(run(1), run(4));
    }

    #[test]
    fn different_seeds_sample_different_sites() {
        let images = images();
        let labels = aligned_labels(&images);
        let campaign = Campaign::new(
            &factory,
            &images,
            &labels,
            FaultMode::Neuron(NeuronSelect::Random),
            Arc::new(RandomUniform::default()),
        );
        let sites = |seed| {
            campaign
                .run(&CampaignConfig {
                    trials: 10,
                    seed,
                    threads: Some(1),
                    ..CampaignConfig::default()
                })
                .unwrap()
                .records
                .iter()
                .map(|r| r.site)
                .collect::<Vec<_>>()
        };
        assert_ne!(sites(1), sites(2));
    }

    #[test]
    fn egregious_faults_produce_sdcs() {
        let images = images();
        let labels = aligned_labels(&images);
        // Stuck-at a huge value in random neurons: should flip predictions
        // at least sometimes.
        let campaign = Campaign::new(
            &factory,
            &images,
            &labels,
            FaultMode::Neuron(NeuronSelect::Random),
            Arc::new(StuckAt::new(1e9)),
        );
        let result = campaign
            .run(&CampaignConfig {
                trials: 150,
                seed: 2,
                ..CampaignConfig::default()
            })
            .unwrap();
        assert!(
            result.counts.sdc + result.counts.due > 0,
            "1e9 injections should corrupt something: {:?}",
            result.counts
        );
        // On corrupted trials the saturated class outcompetes the golden
        // label, so its confidence must drop on average. (Over *all* trials
        // the sign is noise: an injection that saturates the golden class
        // itself yields a masked outcome with a large positive delta.)
        let corrupted: Vec<f32> = result
            .records
            .iter()
            .filter(|r| r.outcome != OutcomeKind::Masked)
            .map(|r| r.confidence_delta)
            .collect();
        let mean = corrupted.iter().sum::<f32>() / corrupted.len() as f32;
        assert!(mean < 0.0, "confidence drops on corrupted trials: {mean}");
    }

    #[test]
    fn top5_miss_is_stricter_than_sdc() {
        let images = images();
        let labels = aligned_labels(&images);
        let campaign = Campaign::new(
            &factory,
            &images,
            &labels,
            FaultMode::Neuron(NeuronSelect::Random),
            Arc::new(StuckAt::new(1e9)),
        );
        let result = campaign
            .run(&CampaignConfig {
                trials: 80,
                seed: 6,
                threads: Some(2),
                ..CampaignConfig::default()
            })
            .unwrap();
        // A Top-5 miss implies a Top-1 miss, never the other way around.
        assert!(result.top5_miss_rate() <= result.sdc_rate() + 1e-9);
        for r in &result.records {
            if r.top5_miss {
                assert_ne!(
                    r.outcome,
                    OutcomeKind::Masked,
                    "top-5 miss implies corruption"
                );
            }
        }
    }

    #[test]
    fn weight_mode_works() {
        let images = images();
        let labels = aligned_labels(&images);
        let campaign = Campaign::new(
            &factory,
            &images,
            &labels,
            FaultMode::Weight(WeightSelect::Random),
            Arc::new(RandomUniform::default()),
        );
        let result = campaign
            .run(&CampaignConfig {
                trials: 16,
                seed: 3,
                threads: Some(2),
                ..CampaignConfig::default()
            })
            .unwrap();
        assert_eq!(result.counts.total(), 16);
        assert!(result.records.iter().all(|r| r.site.is_none()));
    }

    #[test]
    fn per_layer_restriction_only_hits_that_layer() {
        let images = images();
        let labels = aligned_labels(&images);
        let campaign = Campaign::new(
            &factory,
            &images,
            &labels,
            FaultMode::Neuron(NeuronSelect::RandomInLayer { layer: 2 }),
            Arc::new(RandomUniform::default()),
        );
        let result = campaign
            .run(&CampaignConfig {
                trials: 20,
                seed: 4,
                threads: Some(2),
                ..CampaignConfig::default()
            })
            .unwrap();
        assert!(result.records.iter().all(|r| r.layer == 2));
        assert_eq!(result.per_layer[2].0, 20);
    }

    /// A perturbation model that panics on a seeded fraction of trials.
    fn grenade(p: f64) -> Arc<Custom> {
        Arc::new(Custom::new("grenade", move |old, ctx| {
            if ctx.rng.chance(p) {
                panic!("perturbation model exploded");
            }
            old + 1e6
        }))
    }

    #[test]
    fn panicking_trials_are_recorded_as_crashes() {
        let images = images();
        let labels = aligned_labels(&images);
        let campaign = Campaign::new(
            &factory,
            &images,
            &labels,
            FaultMode::Neuron(NeuronSelect::Random),
            grenade(0.3),
        );
        let run = |threads| {
            campaign
                .run(&CampaignConfig {
                    trials: 40,
                    seed: 7,
                    threads: Some(threads),
                    ..CampaignConfig::default()
                })
                .unwrap()
        };
        let result = run(1);
        assert_eq!(result.counts.total(), 40, "every trial accounted for");
        assert!(
            result.counts.crash > 0 && result.counts.crash < 40,
            "a seeded fraction crashes: {:?}",
            result.counts
        );
        for r in &result.records {
            if let OutcomeKind::Crash { detail } = &r.outcome {
                assert!(detail.contains("exploded"), "panic message kept: {detail}");
                assert!(r.top5_miss && r.confidence_delta == 0.0);
            }
        }
        // Isolation must not break determinism: same records (including
        // which trials crashed) for any thread count.
        assert_eq!(result, run(4));
    }

    #[test]
    fn watchdog_flags_hangs() {
        let images = images();
        let labels = aligned_labels(&images);
        let campaign = Campaign::new(
            &factory,
            &images,
            &labels,
            FaultMode::Neuron(NeuronSelect::Random),
            Arc::new(RandomUniform::default()),
        );
        let result = campaign
            .run(&CampaignConfig {
                trials: 12,
                seed: 8,
                threads: Some(3),
                max_steps: Some(2),
                ..CampaignConfig::default()
            })
            .unwrap();
        assert_eq!(result.counts.hang, 12, "a 2-step budget hangs every trial");
        assert!(result
            .records
            .iter()
            .all(|r| r.outcome == OutcomeKind::Hang && r.top5_miss));
    }

    #[test]
    fn guard_record_and_short_circuit_classify_identically() {
        let images = images();
        let labels = aligned_labels(&images);
        // Inf floods survive downstream ReLU/max-pool (unlike NaN, which
        // `f32::max` absorbs), so the guard reliably has something to see.
        let campaign = Campaign::new(
            &factory,
            &images,
            &labels,
            FaultMode::Neuron(NeuronSelect::Random),
            Arc::new(StuckAt::new(f32::INFINITY)),
        );
        let run = |guard| {
            campaign
                .run(&CampaignConfig {
                    trials: 24,
                    seed: 9,
                    threads: Some(2),
                    guard,
                    ..CampaignConfig::default()
                })
                .unwrap()
        };
        let record = run(GuardMode::Record);
        let short = run(GuardMode::ShortCircuit);
        assert!(record.counts.due > 0, "Inf injections are DUEs");
        assert_eq!(
            record, short,
            "short-circuiting only skips work, never changes the classification"
        );
        for r in &record.records {
            if r.outcome == OutcomeKind::Due {
                assert!(r.due_layer.is_some(), "guard DUEs carry layer provenance");
            }
        }
    }

    #[test]
    fn journal_resume_is_bit_identical() {
        let images = images();
        let labels = aligned_labels(&images);
        let campaign = Campaign::new(
            &factory,
            &images,
            &labels,
            FaultMode::Neuron(NeuronSelect::Random),
            grenade(0.2),
        );
        let cfg = CampaignConfig {
            trials: 30,
            seed: 10,
            threads: Some(2),
            ..CampaignConfig::default()
        };
        let uninterrupted = campaign.run(&cfg).unwrap();

        let path = tmp("resume.jsonl");
        let journaled = campaign.run_journaled(&cfg, &path).unwrap();
        assert_eq!(journaled, uninterrupted, "journaling is invisible");

        // Simulate a kill: keep the header plus a prefix of the records,
        // with the final kept line torn mid-write.
        let text = std::fs::read_to_string(&path).unwrap();
        let keep: Vec<&str> = text.lines().take(12).collect();
        let mut truncated = keep.join("\n");
        truncated.push('\n');
        truncated.push_str(&keep[11][..keep[11].len() / 2]);
        std::fs::write(&path, truncated).unwrap();

        let resumed = campaign.resume(&cfg, &path).unwrap();
        assert_eq!(resumed, uninterrupted, "resume fills exactly the gap");
        // And the journal is now complete: resuming again runs nothing new.
        let again = campaign.run_journaled(&cfg, &path).unwrap();
        assert_eq!(again, uninterrupted);
    }

    #[test]
    fn recording_and_progress_leave_results_bit_identical() {
        use rustfi_obs::TraceRecorder;

        let images = images();
        let labels = aligned_labels(&images);
        let campaign = Campaign::new(
            &factory,
            &images,
            &labels,
            FaultMode::Neuron(NeuronSelect::Random),
            Arc::new(StuckAt::new(f32::INFINITY)),
        );
        let cfg = CampaignConfig {
            trials: 24,
            seed: 13,
            threads: Some(2),
            guard: GuardMode::Record,
            ..CampaignConfig::default()
        };
        let plain = campaign.run(&cfg).unwrap();

        let rec = Arc::new(TraceRecorder::new());
        let updates: Arc<Mutex<Vec<ProgressUpdate>>> = Arc::new(Mutex::new(Vec::new()));
        let sink_updates = Arc::clone(&updates);
        let observed = campaign
            .run(&CampaignConfig {
                recorder: Some(rec.clone() as Arc<dyn Recorder>),
                progress: Some(ProgressRecorder::new(5, move |u| {
                    sink_updates.lock().push(*u);
                })),
                ..cfg.clone()
            })
            .unwrap();
        assert_eq!(observed, plain, "observation never changes outcomes");

        let snap = rec.snapshot();
        let trial_spans = snap.spans.iter().filter(|s| s.kind == "trial").count();
        assert_eq!(trial_spans, 24, "one trial span per trial");
        assert!(
            snap.spans.iter().any(|s| s.kind == "conv"),
            "layer spans flowed through the worker recorders"
        );
        let outcomes: Vec<_> = snap
            .events
            .iter()
            .filter_map(|e| match e {
                rustfi_obs::Event::TrialOutcome(o) => Some(o.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(outcomes.len(), 24);
        let mut trials_seen: Vec<usize> = outcomes.iter().map(|o| o.trial).collect();
        trials_seen.sort_unstable();
        assert_eq!(trials_seen, (0..24).collect::<Vec<_>>());
        // Inf injections under GuardMode::Record produce guard provenance
        // events and matching DUE outcome labels.
        assert!(plain.counts.due > 0);
        assert!(snap
            .events
            .iter()
            .any(|e| matches!(e, rustfi_obs::Event::Guard(_))));
        assert!(snap.counters.contains_key("fi.injections"));
        assert_eq!(snap.timings.get("campaign.trial_ns").unwrap().count, 24);

        let updates = updates.lock();
        assert!(!updates.is_empty(), "progress fired");
        let last = updates.last().unwrap();
        assert_eq!(last.done, 24);
        assert_eq!(last.total, 24);
        assert_eq!(last.counts.total(), 24);
        for u in updates.iter() {
            assert!(u.done % 5 == 0 || u.done == 24);
        }
        assert!(last.render().contains("trials 24/24"));
    }

    #[test]
    fn recorder_is_thread_count_invariant() {
        use rustfi_obs::{NullRecorder, TraceRecorder};

        let images = images();
        let labels = aligned_labels(&images);
        let campaign = Campaign::new(
            &factory,
            &images,
            &labels,
            FaultMode::Neuron(NeuronSelect::Random),
            grenade(0.2),
        );
        let run = |threads, recorder: Option<Arc<dyn Recorder>>| {
            campaign
                .run(&CampaignConfig {
                    trials: 30,
                    seed: 14,
                    threads: Some(threads),
                    recorder,
                    ..CampaignConfig::default()
                })
                .unwrap()
        };
        let baseline = run(1, None);
        assert_eq!(baseline, run(4, Some(Arc::new(NullRecorder))));
        assert_eq!(baseline, run(3, Some(Arc::new(TraceRecorder::new()))));
    }

    #[test]
    fn resume_rejects_a_foreign_journal() {
        let images = images();
        let labels = aligned_labels(&images);
        let campaign = Campaign::new(
            &factory,
            &images,
            &labels,
            FaultMode::Neuron(NeuronSelect::Random),
            Arc::new(RandomUniform::default()),
        );
        let path = tmp("foreign.jsonl");
        let cfg = CampaignConfig {
            trials: 8,
            seed: 11,
            threads: Some(1),
            ..CampaignConfig::default()
        };
        campaign.run_journaled(&cfg, &path).unwrap();
        let err = campaign
            .resume(
                &CampaignConfig {
                    seed: 12,
                    ..cfg.clone()
                },
                &path,
            )
            .unwrap_err();
        assert!(
            matches!(err, FiError::Journal { .. }),
            "seed mismatch rejected: {err}"
        );
    }

    #[test]
    fn prefix_cache_leaves_records_bit_identical() {
        use crate::prefix::PrefixCacheConfig;

        let images = images();
        let labels = aligned_labels(&images);
        let campaign = Campaign::new(
            &factory,
            &images,
            &labels,
            FaultMode::Neuron(NeuronSelect::Random),
            Arc::new(RandomUniform::default()),
        );
        let cfg = CampaignConfig {
            trials: 48,
            seed: 21,
            threads: Some(3),
            ..CampaignConfig::default()
        };
        let plain = campaign.run(&cfg).unwrap();
        let cached = campaign
            .run(&CampaignConfig {
                prefix_cache: Some(PrefixCacheConfig::default()),
                ..cfg.clone()
            })
            .unwrap();
        assert_eq!(cached.records, plain.records, "caching is invisible");
        assert_eq!(cached.counts, plain.counts);
        let stats = cached.prefix.expect("stats reported when caching is on");
        assert_eq!(stats.hits + stats.misses, 48, "every trial looked up");
        assert!(
            stats.hits > 0,
            "default budget caches everything: {stats:?}"
        );
        assert!(stats.entries > 0 && stats.bytes > 0);
        assert_eq!(stats.evictions, 0);
        assert!(stats.skipped_flops > 0, "mid/late layers skipped work");
        assert!(plain.prefix.is_none());
    }

    #[test]
    fn prefix_cache_is_thread_count_invariant_for_weight_faults() {
        use crate::prefix::PrefixCacheConfig;

        let images = images();
        let labels = aligned_labels(&images);
        let campaign = Campaign::new(
            &factory,
            &images,
            &labels,
            FaultMode::Weight(WeightSelect::Random),
            Arc::new(StuckAt::new(1e9)),
        );
        let run = |threads, prefix_cache| {
            campaign
                .run(&CampaignConfig {
                    trials: 32,
                    seed: 22,
                    threads: Some(threads),
                    prefix_cache,
                    ..CampaignConfig::default()
                })
                .unwrap()
        };
        let baseline = run(1, None);
        for threads in [1, 4] {
            let cached = run(threads, Some(PrefixCacheConfig::default()));
            assert_eq!(cached.records, baseline.records);
        }
    }

    #[test]
    fn prefix_cache_preserves_guard_classification() {
        use crate::prefix::PrefixCacheConfig;

        let images = images();
        let labels = aligned_labels(&images);
        let campaign = Campaign::new(
            &factory,
            &images,
            &labels,
            FaultMode::Neuron(NeuronSelect::Random),
            Arc::new(StuckAt::new(f32::INFINITY)),
        );
        for guard in [GuardMode::Record, GuardMode::ShortCircuit] {
            let cfg = CampaignConfig {
                trials: 24,
                seed: 23,
                threads: Some(2),
                guard,
                ..CampaignConfig::default()
            };
            let plain = campaign.run(&cfg).unwrap();
            let cached = campaign
                .run(&CampaignConfig {
                    prefix_cache: Some(PrefixCacheConfig::default()),
                    ..cfg.clone()
                })
                .unwrap();
            assert!(plain.counts.due > 0, "Inf injections are DUEs");
            assert_eq!(
                cached.records, plain.records,
                "DUE provenance survives prefix resumption under {guard:?}"
            );
        }
    }

    #[test]
    fn prefix_cache_stands_down_under_the_watchdog() {
        use crate::prefix::PrefixCacheConfig;

        let images = images();
        let labels = aligned_labels(&images);
        let campaign = Campaign::new(
            &factory,
            &images,
            &labels,
            FaultMode::Neuron(NeuronSelect::Random),
            Arc::new(RandomUniform::default()),
        );
        let result = campaign
            .run(&CampaignConfig {
                trials: 8,
                seed: 24,
                threads: Some(2),
                max_steps: Some(1000),
                prefix_cache: Some(PrefixCacheConfig::default()),
                ..CampaignConfig::default()
            })
            .unwrap();
        assert!(
            result.prefix.is_none(),
            "step accounting would differ on a resumed pass"
        );
    }

    #[test]
    fn tiny_budget_evicts_but_never_changes_results() {
        use crate::prefix::PrefixCacheConfig;

        let images = images();
        let labels = aligned_labels(&images);
        let campaign = Campaign::new(
            &factory,
            &images,
            &labels,
            FaultMode::Neuron(NeuronSelect::Random),
            Arc::new(RandomUniform::default()),
        );
        let cfg = CampaignConfig {
            trials: 32,
            seed: 25,
            threads: Some(2),
            ..CampaignConfig::default()
        };
        let plain = campaign.run(&cfg).unwrap();
        // Room for a handful of activations: later images evict earlier
        // ones, and their trials fall back to full forward passes.
        let cached = campaign
            .run(&CampaignConfig {
                prefix_cache: Some(PrefixCacheConfig::with_budget(8 << 10)),
                ..cfg.clone()
            })
            .unwrap();
        assert_eq!(cached.records, plain.records);
        let stats = cached.prefix.unwrap();
        assert!(stats.evictions > 0, "8 KiB cannot hold 6 images: {stats:?}");
        assert!(stats.misses > 0, "evicted entries miss");
        assert!(stats.bytes <= 8 << 10, "budget respected");
    }

    #[test]
    fn layer_whitelist_limits_caching_to_those_layers() {
        use crate::prefix::PrefixCacheConfig;

        let images = images();
        let labels = aligned_labels(&images);
        let campaign = Campaign::new(
            &factory,
            &images,
            &labels,
            FaultMode::Neuron(NeuronSelect::Random),
            Arc::new(RandomUniform::default()),
        );
        let cfg = CampaignConfig {
            trials: 40,
            seed: 26,
            threads: Some(2),
            ..CampaignConfig::default()
        };
        let plain = campaign.run(&cfg).unwrap();
        let layer_count = plain.per_layer.len();
        assert!(layer_count > 2, "lenet has several injectable layers");
        // Whitelist only the final injectable layer.
        let cached = campaign
            .run(&CampaignConfig {
                prefix_cache: Some(PrefixCacheConfig {
                    layers: Some(vec![layer_count - 1]),
                    ..PrefixCacheConfig::default()
                }),
                ..cfg.clone()
            })
            .unwrap();
        assert_eq!(cached.records, plain.records);
        let stats = cached.prefix.unwrap();
        let last_layer_trials = plain.per_layer[layer_count - 1].0 as u64;
        assert_eq!(
            stats.hits, last_layer_trials,
            "exactly the whitelisted layer's trials hit: {stats:?}"
        );
        assert!(stats.misses > 0, "other layers fall back");
    }

    #[test]
    fn fusion_leaves_records_bit_identical() {
        use crate::prefix::PrefixCacheConfig;

        let images = images();
        let labels = aligned_labels(&images);
        let campaign = Campaign::new(
            &factory,
            &images,
            &labels,
            FaultMode::Neuron(NeuronSelect::Random),
            Arc::new(RandomUniform::default()),
        );
        let cfg = CampaignConfig {
            trials: 48,
            seed: 31,
            threads: Some(1),
            ..CampaignConfig::default()
        };
        let plain = campaign.run(&cfg).unwrap();
        for width in [2, 5, 16] {
            for threads in [1, 3] {
                for prefix_cache in [None, Some(PrefixCacheConfig::default())] {
                    let fused = campaign
                        .run(&CampaignConfig {
                            threads: Some(threads),
                            fusion: Some(FusionConfig::with_width(width)),
                            prefix_cache: prefix_cache.clone(),
                            ..cfg.clone()
                        })
                        .unwrap();
                    assert_eq!(
                        fused.records,
                        plain.records,
                        "fusion is invisible at width {width}, {threads} threads, \
                         prefix={}",
                        prefix_cache.is_some()
                    );
                    assert_eq!(fused.counts, plain.counts);
                    let stats = fused.fusion.expect("stats reported when fusion is on");
                    assert_eq!(
                        stats.fused_trials + stats.serial_trials,
                        48,
                        "every trial ran exactly once: {stats:?}"
                    );
                    assert_eq!(stats.serial_trials, 0, "nothing crashed here");
                    assert!(stats.groups > 0 && stats.max_width <= width);
                    if prefix_cache.is_some() {
                        let p = fused.prefix.expect("prefix stats still reported");
                        assert_eq!(p.hits + p.misses, 48, "fused counting matches serial");
                    }
                }
            }
        }
        assert!(plain.fusion.is_none(), "no stats when fusion is off");
    }

    #[test]
    fn fused_crashes_replay_serially_and_stay_bit_identical() {
        let images = images();
        let labels = aligned_labels(&images);
        let campaign = Campaign::new(
            &factory,
            &images,
            &labels,
            FaultMode::Neuron(NeuronSelect::Random),
            grenade(0.3),
        );
        let cfg = CampaignConfig {
            trials: 40,
            seed: 32,
            threads: Some(2),
            ..CampaignConfig::default()
        };
        let plain = campaign.run(&cfg).unwrap();
        assert!(
            plain.counts.crash > 0,
            "the grenade fires: {:?}",
            plain.counts
        );
        let fused = campaign
            .run(&CampaignConfig {
                fusion: Some(FusionConfig::default()),
                ..cfg.clone()
            })
            .unwrap();
        assert_eq!(
            fused.records, plain.records,
            "a crashed chunk replays serially with identical records"
        );
        let stats = fused.fusion.unwrap();
        assert!(
            stats.serial_trials > 0,
            "crashed chunks fell back to serial: {stats:?}"
        );
        assert_eq!(stats.fused_trials + stats.serial_trials, 40);
    }

    #[test]
    fn fused_guard_blames_only_the_corrupt_slice() {
        let images = images();
        let labels = aligned_labels(&images);
        // Inf floods make some slices DUE while their chunk-mates stay
        // clean: per-sample guards must keep those verdicts separate.
        let campaign = Campaign::new(
            &factory,
            &images,
            &labels,
            FaultMode::Neuron(NeuronSelect::Random),
            Arc::new(Custom::new("inf-sometimes", |old, ctx| {
                if ctx.rng.chance(0.5) {
                    f32::INFINITY
                } else {
                    old
                }
            })),
        );
        for guard in [GuardMode::Record, GuardMode::ShortCircuit] {
            let cfg = CampaignConfig {
                trials: 32,
                seed: 33,
                threads: Some(2),
                guard,
                ..CampaignConfig::default()
            };
            let plain = campaign.run(&cfg).unwrap();
            assert!(
                plain.counts.due > 0 && plain.counts.masked > 0,
                "mixed outcomes under {guard:?}: {:?}",
                plain.counts
            );
            let fused = campaign
                .run(&CampaignConfig {
                    fusion: Some(FusionConfig::with_width(8)),
                    ..cfg.clone()
                })
                .unwrap();
            assert_eq!(
                fused.records, plain.records,
                "an Inf in one slice never contaminates its chunk-mates \
                 under {guard:?}"
            );
        }
    }

    #[test]
    fn fusion_stands_down_for_weight_faults_and_watchdog() {
        let images = images();
        let labels = aligned_labels(&images);
        let weight = Campaign::new(
            &factory,
            &images,
            &labels,
            FaultMode::Weight(WeightSelect::Random),
            Arc::new(RandomUniform::default()),
        );
        let result = weight
            .run(&CampaignConfig {
                trials: 8,
                seed: 34,
                fusion: Some(FusionConfig::default()),
                ..CampaignConfig::default()
            })
            .unwrap();
        assert!(
            result.fusion.is_none(),
            "weight faults mutate shared state; fusion stands down"
        );

        let neuron = Campaign::new(
            &factory,
            &images,
            &labels,
            FaultMode::Neuron(NeuronSelect::Random),
            Arc::new(RandomUniform::default()),
        );
        let result = neuron
            .run(&CampaignConfig {
                trials: 8,
                seed: 34,
                max_steps: Some(1000),
                fusion: Some(FusionConfig::default()),
                ..CampaignConfig::default()
            })
            .unwrap();
        assert!(
            result.fusion.is_none(),
            "step budgets count per forward pass; fusion stands down"
        );
        // A width below 2 cannot fuse anything.
        let result = neuron
            .run(&CampaignConfig {
                trials: 8,
                seed: 34,
                fusion: Some(FusionConfig::with_width(1)),
                ..CampaignConfig::default()
            })
            .unwrap();
        assert!(result.fusion.is_none());
    }

    #[test]
    fn fused_int8_campaigns_match_serial() {
        let images = images();
        let labels = aligned_labels(&images);
        let campaign = Campaign::new(
            &factory,
            &images,
            &labels,
            FaultMode::Neuron(NeuronSelect::Random),
            Arc::new(StuckAt::new(1e9)),
        );
        let cfg = CampaignConfig {
            trials: 24,
            seed: 35,
            threads: Some(2),
            quant: QuantMode::Simulated,
            ..CampaignConfig::default()
        };
        let plain = campaign.run(&cfg).unwrap();
        let fused = campaign
            .run(&CampaignConfig {
                fusion: Some(FusionConfig::default()),
                ..cfg.clone()
            })
            .unwrap();
        assert_eq!(
            fused.records, plain.records,
            "per-slice int8 scales equal the per-tensor scales of batch-1 runs"
        );
    }

    #[test]
    fn int8_campaigns_run_and_are_thread_invariant() {
        let images = images();
        let labels = aligned_labels(&images);
        let campaign = Campaign::new(
            &factory,
            &images,
            &labels,
            FaultMode::Neuron(NeuronSelect::Random),
            Arc::new(BitFlipInt8::new(BitSelect::Random)),
        );
        let cfg = CampaignConfig {
            trials: 24,
            seed: 37,
            threads: Some(1),
            quant: QuantMode::Int8,
            ..CampaignConfig::default()
        };
        let serial = campaign.run(&cfg).unwrap();
        assert_eq!(serial.records.len(), 24);
        let threaded = campaign
            .run(&CampaignConfig {
                threads: Some(3),
                ..cfg.clone()
            })
            .unwrap();
        assert_eq!(serial.records, threaded.records);
    }

    #[test]
    fn int8_fused_and_prefixed_campaigns_match_serial() {
        let images = images();
        let labels = aligned_labels(&images);
        let campaign = Campaign::new(
            &factory,
            &images,
            &labels,
            FaultMode::Neuron(NeuronSelect::Random),
            Arc::new(BitFlipInt8::new(BitSelect::Random)),
        );
        let cfg = CampaignConfig {
            trials: 24,
            seed: 38,
            threads: Some(2),
            quant: QuantMode::Int8,
            ..CampaignConfig::default()
        };
        let plain = campaign.run(&cfg).unwrap();
        let accelerated = campaign
            .run(&CampaignConfig {
                fusion: Some(FusionConfig::default()),
                prefix_cache: Some(crate::prefix::PrefixCacheConfig::default()),
                ..cfg.clone()
            })
            .unwrap();
        assert_eq!(
            accelerated.records, plain.records,
            "stored-word faults compose with fusion and prefix caching"
        );
    }

    #[test]
    fn int8_weight_campaigns_flip_stored_words() {
        let images = images();
        let labels = aligned_labels(&images);
        let campaign = Campaign::new(
            &factory,
            &images,
            &labels,
            FaultMode::Weight(WeightSelect::Random),
            Arc::new(BitFlipInt8::new(BitSelect::Random)),
        );
        let cfg = CampaignConfig {
            trials: 16,
            seed: 39,
            threads: Some(2),
            quant: QuantMode::Int8,
            ..CampaignConfig::default()
        };
        let result = campaign.run(&cfg).unwrap();
        assert_eq!(result.records.len(), 16);
        let rerun = campaign.run(&cfg).unwrap();
        assert_eq!(result.records, rerun.records, "word flips restore cleanly");
    }

    #[test]
    fn fused_journal_resume_is_bit_identical() {
        let images = images();
        let labels = aligned_labels(&images);
        let campaign = Campaign::new(
            &factory,
            &images,
            &labels,
            FaultMode::Neuron(NeuronSelect::Random),
            Arc::new(RandomUniform::default()),
        );
        let cfg = CampaignConfig {
            trials: 30,
            seed: 36,
            threads: Some(2),
            fusion: Some(FusionConfig::with_width(4)),
            ..CampaignConfig::default()
        };
        let uninterrupted = campaign.run(&cfg).unwrap();

        let path = tmp("fused-resume.jsonl");
        let journaled = campaign.run_journaled(&cfg, &path).unwrap();
        assert_eq!(journaled, uninterrupted, "journaling is invisible");

        let text = std::fs::read_to_string(&path).unwrap();
        let keep: Vec<&str> = text.lines().take(12).collect();
        let mut truncated = keep.join("\n");
        truncated.push('\n');
        std::fs::write(&path, truncated).unwrap();

        let resumed = campaign.resume(&cfg, &path).unwrap();
        assert_eq!(
            resumed.records, uninterrupted.records,
            "resume fills the gap"
        );
        assert_eq!(resumed.counts, uninterrupted.counts);
        // The journal kept 11 records, so only the 19 missing trials ran —
        // fused among themselves, never mixed with replayed history.
        let stats = resumed.fusion.unwrap();
        assert_eq!(stats.fused_trials + stats.serial_trials, 19);
    }

    #[test]
    fn fused_observability_reports_chunks_and_outcomes() {
        use rustfi_obs::TraceRecorder;

        let images = images();
        let labels = aligned_labels(&images);
        let campaign = Campaign::new(
            &factory,
            &images,
            &labels,
            FaultMode::Neuron(NeuronSelect::Random),
            Arc::new(RandomUniform::default()),
        );
        let rec = Arc::new(TraceRecorder::new());
        let result = campaign
            .run(&CampaignConfig {
                trials: 24,
                seed: 37,
                threads: Some(2),
                fusion: Some(FusionConfig::with_width(4)),
                recorder: Some(rec.clone() as Arc<dyn Recorder>),
                ..CampaignConfig::default()
            })
            .unwrap();
        let stats = result.fusion.unwrap();
        let snap = rec.snapshot();
        let fused_spans = snap.spans.iter().filter(|s| s.kind == "fused").count();
        assert_eq!(fused_spans as u64, stats.groups, "one span per chunk");
        assert_eq!(
            snap.counters.get("campaign.fused_trials").copied(),
            Some(stats.fused_trials)
        );
        assert_eq!(
            snap.counters.get("campaign.fused_groups").copied(),
            Some(stats.groups)
        );
        let widths = snap.timings.get("campaign.fused_width").unwrap();
        assert_eq!(widths.count, stats.groups);
        assert!(
            snap.timings.contains_key("campaign.fused_chunk_ns"),
            "chunk wall time recorded"
        );
        let outcomes = snap
            .events
            .iter()
            .filter(|e| matches!(e, rustfi_obs::Event::TrialOutcome(_)))
            .count();
        assert_eq!(outcomes, 24, "every trial still reports its outcome");
    }
}
