//! Seeded, parallel error-injection campaigns.
//!
//! A campaign repeats: pick a correctly-classified input, plan a fresh fault
//! from a template, run the perturbed inference, classify the outcome. Trials
//! are distributed across worker threads, but every trial's randomness is
//! derived from `(campaign seed, trial index)`, so results are identical for
//! any thread count.

use crate::config::FiConfig;
use crate::injector::{FaultInjector, NeuronFault, WeightFault};
use crate::location::{BatchSelect, NeuronSelect, NeuronSite, WeightSelect};
use crate::metrics::{classify_outcome, confidence, top1, OutcomeCounts, OutcomeKind};
use crate::perturbation::PerturbationModel;
use rustfi_nn::Network;
use rustfi_tensor::{parallel, SeededRng, Tensor};
use std::sync::Arc;

/// What kind of fault each trial plans.
#[derive(Debug, Clone)]
pub enum FaultMode {
    /// A neuron fault from this selection template.
    Neuron(NeuronSelect),
    /// A weight fault from this selection template.
    Weight(WeightSelect),
}

/// Campaign-level knobs.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Number of injection trials.
    pub trials: usize,
    /// Root seed; trial `t` derives its stream from `(seed, t)`.
    pub seed: u64,
    /// Worker threads (`None` = all available cores).
    pub threads: Option<usize>,
    /// Whether to emulate INT8 activation quantization during trials (and
    /// when computing golden predictions).
    pub int8_activations: bool,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        Self {
            trials: 1000,
            seed: 0xCA_4F,
            threads: None,
            int8_activations: false,
        }
    }
}

/// One trial's record.
#[derive(Debug, Clone)]
pub struct TrialRecord {
    /// Trial index.
    pub trial: usize,
    /// Which test image was used.
    pub image_index: usize,
    /// The injectable layer that was hit.
    pub layer: usize,
    /// The resolved neuron site (weights faults report channel/x/y of 0).
    pub site: Option<NeuronSite>,
    /// Outcome vs. the golden prediction.
    pub outcome: OutcomeKind,
    /// Whether the golden class dropped out of the Top-5 — the paper's
    /// alternative, stricter corruption criterion (§IV-A).
    pub top5_miss: bool,
    /// Change in softmax confidence of the golden class.
    pub confidence_delta: f32,
}

/// Aggregated campaign results.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    /// Per-trial records, in trial order.
    pub records: Vec<TrialRecord>,
    /// Totals.
    pub counts: OutcomeCounts,
    /// Per-injectable-layer `(trials, sdcs)`.
    pub per_layer: Vec<(usize, usize)>,
    /// How many test images were eligible (classified correctly clean).
    pub eligible_images: usize,
}

impl CampaignResult {
    /// SDC rate over all trials.
    pub fn sdc_rate(&self) -> f64 {
        self.counts.sdc_rate()
    }

    /// Rate of the stricter "golden class not in Top-5" corruption
    /// criterion (paper §IV-A lists this as an alternative vulnerability
    /// definition). Always at most [`CampaignResult::sdc_rate`].
    pub fn top5_miss_rate(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records.iter().filter(|r| r.top5_miss).count() as f64 / self.records.len() as f64
    }

    /// SDC rate for one injectable layer (0 if it saw no trials).
    pub fn layer_sdc_rate(&self, layer: usize) -> f64 {
        match self.per_layer.get(layer) {
            Some(&(trials, sdcs)) if trials > 0 => sdcs as f64 / trials as f64,
            _ => 0.0,
        }
    }

    /// Mean confidence drop of the golden class across trials.
    pub fn mean_confidence_delta(&self) -> f32 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records.iter().map(|r| r.confidence_delta).sum::<f32>() / self.records.len() as f32
    }
}

/// An injection campaign over a fixed model and test set.
///
/// The `factory` must produce the *same* network every call (same
/// architecture and weights — e.g. rebuild from the same seed, or reload a
/// checkpoint): each worker thread constructs its own copy.
pub struct Campaign<'a> {
    factory: &'a (dyn Fn() -> Network + Sync),
    images: &'a Tensor,
    labels: &'a [usize],
    mode: FaultMode,
    model: Arc<dyn PerturbationModel>,
}

impl<'a> Campaign<'a> {
    /// Creates a campaign.
    ///
    /// # Panics
    ///
    /// Panics if `images`/`labels` lengths disagree or are empty.
    pub fn new(
        factory: &'a (dyn Fn() -> Network + Sync),
        images: &'a Tensor,
        labels: &'a [usize],
        mode: FaultMode,
        model: Arc<dyn PerturbationModel>,
    ) -> Self {
        assert_eq!(
            images.dims()[0],
            labels.len(),
            "{} images but {} labels",
            images.dims()[0],
            labels.len()
        );
        assert!(!labels.is_empty(), "empty test set");
        Self {
            factory,
            images,
            labels,
            mode,
            model,
        }
    }

    /// Runs the campaign.
    ///
    /// Only images the clean model classifies correctly participate (as in
    /// the paper); if none qualify, the result reports zero trials.
    pub fn run(&self, cfg: &CampaignConfig) -> CampaignResult {
        let input_dims = {
            let d = self.images.dims();
            [1, d[1], d[2], d[3]]
        };

        // Golden pass: find eligible images and their clean confidence.
        let mut golden_net = (self.factory)();
        let mut golden = FaultInjector::new(golden_net_take(&mut golden_net), FiConfig::for_input(&input_dims))
            .expect("model must have injectable layers");
        if cfg.int8_activations {
            golden.enable_int8_activations();
        }
        let mut eligible: Vec<(usize, f32)> = Vec::new(); // (image index, clean confidence)
        for i in 0..self.labels.len() {
            let x = self.images.select_batch(i);
            let out = golden.forward(&x);
            let row = out.data();
            if top1(row) == self.labels[i] {
                eligible.push((i, confidence(row, self.labels[i])));
            }
        }
        drop(golden);
        if eligible.is_empty() {
            return CampaignResult {
                records: Vec::new(),
                counts: OutcomeCounts::default(),
                per_layer: Vec::new(),
                eligible_images: 0,
            };
        }

        // Fan trials across workers; trial randomness depends only on
        // (seed, trial).
        let trials = cfg.trials;
        let workers = cfg
            .threads
            .unwrap_or_else(parallel::worker_count)
            .clamp(1, trials.max(1));
        let root = SeededRng::new(cfg.seed);
        let eligible = &eligible;
        let mode = &self.mode;
        let model = &self.model;
        let factory = self.factory;
        let images = self.images;
        let labels = self.labels;

        let mut all_records: Vec<TrialRecord> = parallel::map_indexed(workers, |w| {
            let mut fi = FaultInjector::new((factory)(), FiConfig::for_input(&input_dims))
                .expect("model must have injectable layers");
            if cfg.int8_activations {
                fi.enable_int8_activations();
            }
            let mut records = Vec::new();
            let mut t = w;
            while t < trials {
                let trial_seed = root.fork(t as u64).seed();
                let mut pick_rng = SeededRng::new(trial_seed).fork(3);
                let (image_index, clean_conf) = eligible[pick_rng.below(eligible.len())];
                fi.restore();
                fi.reseed(trial_seed);

                let (layer, site) = match mode {
                    FaultMode::Neuron(select) => {
                        let sites = fi
                            .declare_neuron_fi(&[NeuronFault {
                                select: select.clone(),
                                batch: BatchSelect::All,
                                model: Arc::clone(model),
                            }])
                            .expect("template validated against profile");
                        (sites[0].layer, Some(sites[0]))
                    }
                    FaultMode::Weight(select) => {
                        let sites = fi
                            .declare_weight_fi(&[WeightFault {
                                select: select.clone(),
                                model: Arc::clone(model),
                            }])
                            .expect("template validated against profile");
                        (sites[0].layer, None)
                    }
                };

                let x = images.select_batch(image_index);
                let out = fi.forward(&x);
                let row = out.data();
                let golden_label = labels[image_index];
                let outcome = classify_outcome(golden_label, row);
                let finite = row.iter().all(|v| v.is_finite());
                let top5_miss = !finite || !crate::metrics::in_top_k(row, golden_label, 5);
                let confidence_delta = if finite {
                    confidence(row, golden_label) - clean_conf
                } else {
                    -clean_conf
                };
                records.push(TrialRecord {
                    trial: t,
                    image_index,
                    layer,
                    site,
                    outcome,
                    top5_miss,
                    confidence_delta,
                });
                t += workers;
            }
            records
        })
        .into_iter()
        .flatten()
        .collect();
        all_records.sort_by_key(|r| r.trial);

        // Aggregate.
        let mut counts = OutcomeCounts::default();
        let layer_count = {
            let mut net = (self.factory)();
            let p = crate::profile::ModelProfile::discover(&mut net, input_dims);
            p.len()
        };
        let mut per_layer = vec![(0usize, 0usize); layer_count];
        for r in &all_records {
            counts.record(r.outcome);
            if r.layer < per_layer.len() {
                per_layer[r.layer].0 += 1;
                if r.outcome == OutcomeKind::Sdc {
                    per_layer[r.layer].1 += 1;
                }
            }
        }
        CampaignResult {
            records: all_records,
            counts,
            per_layer,
            eligible_images: eligible.len(),
        }
    }
}

/// Moves a network out of a mutable binding (helper keeping `run` readable).
fn golden_net_take(net: &mut Network) -> Network {
    std::mem::replace(net, Network::new(Box::new(rustfi_nn::layer::Sequential::new(Vec::new()))))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{RandomUniform, StuckAt};
    use rustfi_nn::{zoo, ZooConfig};
    use rustfi_tensor::Tensor;

    fn factory() -> Network {
        zoo::lenet(&ZooConfig::tiny(4))
    }

    /// Labels that match whatever the untrained net predicts, so every image
    /// is "correctly classified" and campaigns have eligible inputs.
    fn aligned_labels(images: &Tensor) -> Vec<usize> {
        let mut net = factory();
        (0..images.dims()[0])
            .map(|i| {
                let out = net.forward(&images.select_batch(i));
                top1(out.data())
            })
            .collect()
    }

    fn images() -> Tensor {
        Tensor::from_fn(&[6, 3, 16, 16], |i| ((i as f32) * 0.013).sin())
    }

    #[test]
    fn campaign_runs_and_accounts_every_trial() {
        let images = images();
        let labels = aligned_labels(&images);
        let campaign = Campaign::new(
            &factory,
            &images,
            &labels,
            FaultMode::Neuron(NeuronSelect::Random),
            Arc::new(RandomUniform::default()),
        );
        let result = campaign.run(&CampaignConfig {
            trials: 64,
            seed: 1,
            threads: Some(2),
            int8_activations: false,
        });
        assert_eq!(result.records.len(), 64);
        assert_eq!(result.counts.total(), 64);
        assert_eq!(result.eligible_images, 6);
        let layer_trials: usize = result.per_layer.iter().map(|(t, _)| t).sum();
        assert_eq!(layer_trials, 64);
        for (i, r) in result.records.iter().enumerate() {
            assert_eq!(r.trial, i);
        }
    }

    #[test]
    fn campaign_is_deterministic_across_thread_counts() {
        let images = images();
        let labels = aligned_labels(&images);
        let campaign = Campaign::new(
            &factory,
            &images,
            &labels,
            FaultMode::Neuron(NeuronSelect::Random),
            Arc::new(RandomUniform::default()),
        );
        let run = |threads| {
            let r = campaign.run(&CampaignConfig {
                trials: 40,
                seed: 5,
                threads: Some(threads),
                int8_activations: false,
            });
            r.records
                .iter()
                .map(|r| (r.image_index, r.layer, r.site, r.outcome))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(1), run(4));
    }

    #[test]
    fn different_seeds_sample_different_sites() {
        let images = images();
        let labels = aligned_labels(&images);
        let campaign = Campaign::new(
            &factory,
            &images,
            &labels,
            FaultMode::Neuron(NeuronSelect::Random),
            Arc::new(RandomUniform::default()),
        );
        let sites = |seed| {
            campaign
                .run(&CampaignConfig {
                    trials: 10,
                    seed,
                    threads: Some(1),
                    int8_activations: false,
                })
                .records
                .iter()
                .map(|r| r.site)
                .collect::<Vec<_>>()
        };
        assert_ne!(sites(1), sites(2));
    }

    #[test]
    fn egregious_faults_produce_sdcs() {
        let images = images();
        let labels = aligned_labels(&images);
        // Stuck-at a huge value in random neurons: should flip predictions
        // at least sometimes.
        let campaign = Campaign::new(
            &factory,
            &images,
            &labels,
            FaultMode::Neuron(NeuronSelect::Random),
            Arc::new(StuckAt::new(1e9)),
        );
        let result = campaign.run(&CampaignConfig {
            trials: 60,
            seed: 2,
            threads: None,
            int8_activations: false,
        });
        assert!(
            result.counts.sdc + result.counts.due > 0,
            "1e9 injections should corrupt something: {:?}",
            result.counts
        );
        assert!(result.mean_confidence_delta() < 0.0, "confidence drops on average");
    }

    #[test]
    fn top5_miss_is_stricter_than_sdc() {
        let images = images();
        let labels = aligned_labels(&images);
        let campaign = Campaign::new(
            &factory,
            &images,
            &labels,
            FaultMode::Neuron(NeuronSelect::Random),
            Arc::new(StuckAt::new(1e9)),
        );
        let result = campaign.run(&CampaignConfig {
            trials: 80,
            seed: 6,
            threads: Some(2),
            int8_activations: false,
        });
        // A Top-5 miss implies a Top-1 miss, never the other way around.
        assert!(result.top5_miss_rate() <= result.sdc_rate() + 1e-9);
        for r in &result.records {
            if r.top5_miss {
                assert_ne!(r.outcome, OutcomeKind::Masked, "top-5 miss implies corruption");
            }
        }
    }

    #[test]
    fn weight_mode_works() {
        let images = images();
        let labels = aligned_labels(&images);
        let campaign = Campaign::new(
            &factory,
            &images,
            &labels,
            FaultMode::Weight(WeightSelect::Random),
            Arc::new(RandomUniform::default()),
        );
        let result = campaign.run(&CampaignConfig {
            trials: 16,
            seed: 3,
            threads: Some(2),
            int8_activations: false,
        });
        assert_eq!(result.counts.total(), 16);
        assert!(result.records.iter().all(|r| r.site.is_none()));
    }

    #[test]
    fn per_layer_restriction_only_hits_that_layer() {
        let images = images();
        let labels = aligned_labels(&images);
        let campaign = Campaign::new(
            &factory,
            &images,
            &labels,
            FaultMode::Neuron(NeuronSelect::RandomInLayer { layer: 2 }),
            Arc::new(RandomUniform::default()),
        );
        let result = campaign.run(&CampaignConfig {
            trials: 20,
            seed: 4,
            threads: Some(2),
            int8_activations: false,
        });
        assert!(result.records.iter().all(|r| r.layer == 2));
        assert_eq!(result.per_layer[2].0, 20);
    }
}
