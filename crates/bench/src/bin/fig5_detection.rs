//! Fig. 5: perturbations on the object-detection network. The paper shows a
//! qualitative before/after (YOLOv3 inventing phantom objects); we quantify
//! the same effect — per-layer random-FP32 injections against the trained
//! YOLO-lite — as phantom/missed/misclassified counts over many scenes, and
//! render one example scene as ASCII.
//!
//! Run with: `cargo run -p rustfi-bench --bin fig5_detection --release`
//! Knobs: `RUSTFI_SCENES` (default 20) scenes, `RUSTFI_FI_TRIALS` (default 10)
//! injection trials per scene.

use rustfi::{models, BatchSelect, FaultInjector, FiConfig, NeuronFault, NeuronSelect};
use rustfi_bench::env_usize;
use rustfi_data::DetectionSpec;
use rustfi_detect::{
    decode_grid, diff_detections, nms, DetectionDiff, DetectorConfig, TrainDetectorConfig, YoloLite,
};
use rustfi_interpret::render::render_channel;
use std::sync::Arc;

fn main() {
    let n_scenes = env_usize("RUSTFI_SCENES", 20);
    let fi_trials = env_usize("RUSTFI_FI_TRIALS", 10);
    let score_threshold = 0.4;

    let train_scenes = DetectionSpec::coco_like().generate(env_usize("RUSTFI_TRAIN_SCENES", 96));
    let eval_scenes = DetectionSpec::coco_like()
        .with_seed(0xE7A1)
        .generate(n_scenes);

    let det_cfg = DetectorConfig::default();
    let mut detector = YoloLite::new(&det_cfg);
    println!("training YOLO-lite on {} scenes...", train_scenes.len());
    let losses = detector.train(&train_scenes, &TrainDetectorConfig::default());
    println!(
        "training loss {:.3} -> {:.3}\n",
        losses[0],
        losses.last().unwrap()
    );

    // Clean pass over the evaluation scenes.
    let mut clean_total = DetectionDiff::default();
    let mut clean_per_scene = Vec::with_capacity(n_scenes);
    for scene in &eval_scenes {
        let d = diff_detections(
            &detector.detect(&scene.image, score_threshold),
            &scene.objects,
            0.3,
        );
        clean_per_scene.push(d);
        clean_total = add(clean_total, d);
    }

    // Faulty passes: one random neuron per layer, uniformly random FP32 bits.
    let mut fi = FaultInjector::new(
        detector.into_net(),
        FiConfig::for_input(&[1, 3, det_cfg.image_hw, det_cfg.image_hw]),
    )
    .expect("detector has conv layers");
    let per_layer_faults: Vec<NeuronFault> = (0..fi.profile().len())
        .map(|layer| NeuronFault {
            select: NeuronSelect::RandomInLayer { layer },
            batch: BatchSelect::All,
            model: Arc::new(models::RandomFp32Bits),
        })
        .collect();

    let mut faulty_total = DetectionDiff::default();
    let mut corrupted_runs = 0;
    let total_runs = n_scenes * fi_trials;
    for (si, scene) in eval_scenes.iter().enumerate() {
        for t in 0..fi_trials {
            fi.restore();
            fi.reseed((si * fi_trials + t) as u64);
            fi.declare_neuron_fi(&per_layer_faults)
                .expect("legal faults");
            let raw = fi.forward(&scene.image);
            let dets = nms(
                decode_grid(&raw, 0, det_cfg.num_classes)
                    .into_iter()
                    .filter(|d| d.score >= score_threshold)
                    .collect(),
                0.4,
            );
            let d = diff_detections(&dets, &scene.objects, 0.3);
            if d.phantom > clean_per_scene[si].phantom
                || d.missed > clean_per_scene[si].missed
                || d.misclassified > clean_per_scene[si].misclassified
            {
                corrupted_runs += 1;
            }
            faulty_total = add(faulty_total, d);
        }
    }

    println!("Fig. 5 — detection outcomes over {n_scenes} scenes");
    println!(
        "{:<26} {:>9} {:>14} {:>9} {:>9}",
        "condition", "matched", "misclassified", "phantom", "missed"
    );
    println!(
        "{:<26} {:>9} {:>14} {:>9} {:>9}",
        "clean (per scene-pass)",
        clean_total.matched,
        clean_total.misclassified,
        clean_total.phantom,
        clean_total.missed
    );
    println!(
        "{:<26} {:>9.2} {:>14.2} {:>9.2} {:>9.2}",
        format!("faulty (mean of {fi_trials} trials)"),
        faulty_total.matched as f64 / fi_trials as f64,
        faulty_total.misclassified as f64 / fi_trials as f64,
        faulty_total.phantom as f64 / fi_trials as f64,
        faulty_total.missed as f64 / fi_trials as f64,
    );
    println!(
        "\ninjection corrupted the detection output in {corrupted_runs}/{total_runs} runs ({:.1}%)",
        100.0 * corrupted_runs as f64 / total_runs as f64
    );

    // Qualitative panel: one scene, clean vs faulty detections.
    let scene = &eval_scenes[0];
    println!(
        "\nexample scene (channel 0):\n{}",
        render_channel(&scene.image, 0, 0)
    );
    println!("ground truth: {:?}", scene.objects);
    let mut detector = YoloLite::from_net(fi.into_inner(), &det_cfg);
    let clean = detector.detect(&scene.image, score_threshold);
    println!("clean detections: {clean:?}");
    let mut fi = FaultInjector::new(
        detector.into_net(),
        FiConfig::for_input(&[1, 3, det_cfg.image_hw, det_cfg.image_hw]),
    )
    .expect("detector has conv layers");
    fi.reseed(1);
    fi.declare_neuron_fi(&per_layer_faults)
        .expect("legal faults");
    let raw = fi.forward(&scene.image);
    let dets = nms(
        decode_grid(&raw, 0, det_cfg.num_classes)
            .into_iter()
            .filter(|d| d.score >= score_threshold)
            .collect(),
        0.4,
    );
    println!("faulty detections: {dets:?}");
}

fn add(a: DetectionDiff, b: DetectionDiff) -> DetectionDiff {
    DetectionDiff {
        matched: a.matched + b.matched,
        misclassified: a.misclassified + b.misclassified,
        phantom: a.phantom + b.phantom,
        missed: a.missed + b.missed,
    }
}
