//! Fig. 7: Grad-CAM visualization of error injections. For several
//! confidently-classified images, inject an egregious value into the least-
//! and most-sensitive feature map of a mid-network convolution and measure
//! (a) whether the Top-1 class survives and (b) how much the heatmap
//! diverges.
//!
//! Paper shape to reproduce: least-sensitive injections leave the heatmap
//! and Top-1 nearly unchanged; most-sensitive injections skew the heatmap.
//!
//! Run with: `cargo run -p rustfi-bench --bin fig7_gradcam --release`
//! Knobs: `RUSTFI_IMAGES` (default 5) images to evaluate.

use rustfi::{models, BatchSelect, FaultInjector, FiConfig, NeuronFault, NeuronSelect};
use rustfi_bench::env_usize;
use rustfi_data::SynthSpec;
use rustfi_interpret::sensitivity::aggregate_channel_weights;
use rustfi_interpret::{gradcam, heatmap_divergence, rank_feature_maps, render_heatmap};
use rustfi_nn::train::{fit, predict, TrainConfig};
use rustfi_nn::{zoo, LayerKind, ZooConfig};
use std::sync::Arc;

fn main() {
    let n_images = env_usize("RUSTFI_IMAGES", 5);
    let egregious = 200.0f32; // ~100x this substrate's activation scale

    let data = SynthSpec::cifar10_like().generate();
    let mut net = zoo::vgg19(&ZooConfig::cifar10_like().with_width(2.0));
    println!("training vgg19...");
    fit(
        &mut net,
        &data.train_images,
        &data.train_labels,
        &TrainConfig {
            lr: 0.005,
            epochs: 20,
            ..TrainConfig::default()
        },
    );

    // The most confidently correct test images.
    let preds = predict(&mut net, &data.test_images, 32);
    let mut ranked: Vec<(usize, f32)> = (0..data.test_len())
        .filter(|&i| preds[i] == data.test_labels[i])
        .map(|i| {
            let logits = net.forward(&data.test_images.select_batch(i));
            (
                i,
                rustfi::metrics::confidence(logits.data(), data.test_labels[i]),
            )
        })
        .collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    ranked.truncate(n_images);

    let conv = net
        .layer_infos()
        .iter()
        .filter(|l| l.kind == LayerKind::Conv2d)
        .map(|l| l.id)
        .nth(4)
        .expect("mid-network conv");

    println!("\nFig. 7 — injections into least/most sensitive feature maps (value {egregious})");
    println!(
        "{:>6} {:>6} | {:>14} {:>10} | {:>14} {:>10}",
        "image", "class", "least: top1", "divergence", "most: top1", "divergence"
    );

    let mut first_panels: Option<(String, String, String)> = None;
    let mut fi = FaultInjector::new(net, FiConfig::for_input(&[1, 3, 16, 16])).expect("injectable");
    let layer_index = fi
        .profile()
        .layers()
        .iter()
        .position(|l| l.id == conv)
        .expect("profiled");

    let mut least_divs = Vec::new();
    let mut most_divs = Vec::new();
    let mut least_flips = 0;
    for &(idx, _conf) in &ranked {
        let image = data.test_images.select_batch(idx);
        let label = data.test_labels[idx];
        fi.restore();
        let clean = gradcam(fi.net_mut(), &image, label, conv);
        let agg = aggregate_channel_weights(fi.net_mut(), &image, conv, data.num_classes);
        let ranking = rank_feature_maps(&agg);
        let most = ranking[0].0;
        let least = ranking.last().unwrap().0;

        let mut cams = Vec::new();
        for channel in [least, most] {
            fi.restore();
            fi.declare_neuron_fi(&[NeuronFault {
                select: NeuronSelect::RandomInChannel {
                    layer: layer_index,
                    channel,
                },
                batch: BatchSelect::All,
                model: Arc::new(models::StuckAt::new(egregious)),
            }])
            .expect("legal fault");
            cams.push(gradcam(fi.net_mut(), &image, label, conv));
        }
        let least_div = heatmap_divergence(&clean.heatmap, &cams[0].heatmap);
        let most_div = heatmap_divergence(&clean.heatmap, &cams[1].heatmap);
        least_divs.push(least_div);
        most_divs.push(most_div);
        if cams[0].top1 != clean.top1 {
            least_flips += 1;
        }
        println!(
            "{:>6} {:>6} | {:>8} ({:>3}) {:>10.3} | {:>8} ({:>3}) {:>10.3}",
            idx,
            label,
            cams[0].top1,
            if cams[0].top1 == clean.top1 {
                "ok"
            } else {
                "FLP"
            },
            least_div,
            cams[1].top1,
            if cams[1].top1 == clean.top1 {
                "ok"
            } else {
                "FLP"
            },
            most_div,
        );
        if first_panels.is_none() {
            first_panels = Some((
                render_heatmap(&clean.heatmap),
                render_heatmap(&cams[0].heatmap),
                render_heatmap(&cams[1].heatmap),
            ));
        }
    }

    let mean = |v: &[f32]| v.iter().sum::<f32>() / v.len().max(1) as f32;
    println!(
        "\nmean divergence: least-sensitive {:.3}, most-sensitive {:.3} ({:.1}x)",
        mean(&least_divs),
        mean(&most_divs),
        mean(&most_divs) / mean(&least_divs).max(1e-6)
    );
    println!(
        "least-sensitive injections flipped Top-1 in {least_flips}/{} images",
        ranked.len()
    );

    if let Some((clean, least, most)) = first_panels {
        println!("\n(a) no perturbation:\n{clean}");
        println!("(b) least-sensitive map perturbed:\n{least}");
        println!("(c) most-sensitive map perturbed:\n{most}");
    }
}
