//! Fig. 6: relative vulnerability (vs. a non-IBP baseline) of the first two
//! layers of AlexNet trained with Interval Bound Propagation, across
//! α ∈ {0.025, 0.1, 0.25} and the paper's ε grid rescaled to this
//! substrate's input range.
//!
//! Scaling notes (documented in DESIGN.md/EXPERIMENTS.md):
//! - The paper's ε ∈ {0.125, 0.25, 0.5, 2} are L∞ radii on [0, 1] CIFAR
//!   pixels. Our synthetic images span ≈ [-4, 4] with class noise σ = 1.0,
//!   so the same *relative* radii are ε/4: {0.03125, 0.0625, 0.125, 0.5}.
//! - The evaluation injects INT8 bit flips into magnitude bits 4–6 of
//!   first/second-layer neurons. Full-range flips (including bit 7, worth
//!   2× the layer maximum) are far outside any trainable robustness radius
//!   at this scale and are dominated by clean-margin effects rather than
//!   propagation; bits 4–6 exercise exactly the bounded-perturbation
//!   propagation IBP certifies.
//!
//! Paper shape to reproduce: relative vulnerability below 1 for most of the
//! grid, improvements up to ~4×, degrading at extreme (α, ε) (the paper's
//! "not all models trained to be robust … are equally resilient").
//!
//! Run with: `cargo run -p rustfi-bench --bin fig6_ibp --release`
//! Knobs: `RUSTFI_TRIALS` (default 12000) injections per layer per variant.

use rustfi::{models, Campaign, CampaignConfig, FaultMode, NeuronSelect};
use rustfi_bench::env_usize;
use rustfi_data::SynthSpec;
use rustfi_nn::{checkpoint, train, Network};
use rustfi_quant::int8;
use rustfi_robust::ibp::{IbpNet, IbpSpec, IbpTrainConfig};
use std::path::PathBuf;
use std::sync::Arc;

/// Trains one (α, ε) variant and returns its checkpoint + accuracy.
fn train_variant(
    data: &rustfi_data::ClassificationDataset,
    alpha: f32,
    eps: f32,
    tag: &str,
) -> (PathBuf, f32) {
    let mut ibp = IbpNet::alexnet_like(&IbpSpec::tiny(10));
    ibp.train(
        &data.train_images,
        &data.train_labels,
        &IbpTrainConfig {
            alpha_max: alpha,
            eps_max: eps,
            ..IbpTrainConfig::default()
        },
    );
    let mut net = ibp.to_network();
    let acc = train::accuracy(&mut net, &data.test_images, &data.test_labels, 32);
    let path = std::env::temp_dir().join(format!("rustfi-fig6-{tag}-{}.ckpt", std::process::id()));
    checkpoint::save(&mut net, &path).expect("write checkpoint");
    (path, acc)
}

fn ibp_factory(path: PathBuf) -> impl Fn() -> Network + Sync {
    move || {
        let mut net = IbpNet::alexnet_like(&IbpSpec::tiny(10)).to_network();
        checkpoint::load(&mut net, &path).expect("read checkpoint");
        net
    }
}

/// First-two-layer SDC+DUE rate under INT8 flips of magnitude bits 4–6.
fn first_two_layer_rate(
    factory: &(dyn Fn() -> Network + Sync),
    data: &rustfi_data::ClassificationDataset,
    trials: usize,
) -> (f64, usize) {
    let model = Arc::new(models::Custom::new("bitflip-int8-b456", |old, ctx| {
        let bit = 4 + ctx.rng.below(3) as u32;
        let scale = int8::scale_for_max_abs(ctx.tensor_max_abs);
        int8::flip_bit_in_quantized(old, scale, bit)
    }));
    let mut sdcs = 0;
    let mut total = 0;
    for layer in 0..2 {
        let campaign = Campaign::new(
            factory,
            &data.test_images,
            &data.test_labels,
            FaultMode::Neuron(NeuronSelect::RandomInLayer { layer }),
            Arc::clone(&model) as Arc<dyn rustfi::PerturbationModel>,
        );
        let result = campaign
            .run(&CampaignConfig {
                trials,
                seed: 0xF166 + layer as u64,
                quant: rustfi::QuantMode::Simulated,
                ..CampaignConfig::default()
            })
            .expect("campaign config is valid");
        sdcs += result.counts.sdc + result.counts.due;
        total += result.counts.total();
    }
    (sdcs as f64 / total.max(1) as f64, sdcs)
}

fn main() {
    let trials = env_usize("RUSTFI_TRIALS", 12_000);
    let mut spec = SynthSpec::cifar10_like();
    spec.noise = 1.0;
    spec.train_per_class = 60;
    let data = spec.generate();

    println!("Fig. 6 — relative first-two-layer vulnerability of IBP-trained AlexNet");
    println!("({trials} injections per layer per variant; eval = INT8 flips, bits 4-6)\n");

    let (base_ckpt, base_acc) = train_variant(&data, 0.0, 0.0, "baseline");
    let base_factory = ibp_factory(base_ckpt.clone());
    let (base_rate, base_sdcs) = first_two_layer_rate(&base_factory, &data, trials);
    println!(
        "baseline (no IBP): accuracy {:.1}%, first-two-layer SDC rate {:.4}% ({base_sdcs} SDCs)\n",
        100.0 * base_acc,
        100.0 * base_rate
    );
    println!(
        "{:>9} {:>7} {:>10} {:>12} {:>8} {:>22}",
        "eps", "alpha", "accuracy", "SDC rate", "SDCs", "relative vulnerability"
    );

    // The paper's {0.125, 0.25, 0.5, 2} rescaled by the input-range ratio.
    for eps in [0.03125f32, 0.0625, 0.125, 0.5] {
        for alpha in [0.025f32, 0.1, 0.25] {
            let tag = format!("a{alpha}e{eps}");
            let (ckpt, acc) = train_variant(&data, alpha, eps, &tag);
            let factory = ibp_factory(ckpt.clone());
            let (rate, sdcs) = first_two_layer_rate(&factory, &data, trials);
            let relative = if base_rate > 0.0 {
                rate / base_rate
            } else {
                f64::NAN
            };
            println!(
                "{:>9} {:>7} {:>9.1}% {:>11.4}% {:>8} {:>22.3}",
                eps,
                alpha,
                100.0 * acc,
                100.0 * rate,
                sdcs,
                relative
            );
            std::fs::remove_file(&ckpt).ok();
        }
    }
    std::fs::remove_file(&base_ckpt).ok();
}
