//! `fuzz_gate` — the differential architecture fuzzer as a CI gate.
//!
//! Runs in three layers, any failure exits nonzero:
//!
//! 1. **Corpus replay**: every `tests/regressions/*.case` file (workspace
//!    root) is parsed and re-run. A missing or empty corpus directory is
//!    fine — the gate then only fuzzes fresh cases.
//! 2. **Fresh fuzzing**: `RUSTFI_FUZZ_CASES` random cases (default 24; the
//!    nightly workflow raises this into the hundreds) drawn from
//!    [`rustfi_bench::fuzz::cases`], with every fourth case forced to
//!    contain both `Residual` and `Branches` containers. The master seed
//!    comes from `RUSTFI_FUZZ_SEED` (decimal or `0x…` hex) so a failing CI
//!    run is reproducible locally with the same budget.
//! 3. **Failure persistence**: each failing case is serialized to
//!    `RUSTFI_FUZZ_OUT` (default `target/fuzz-failures/`) as a replayable
//!    `.case` file, and the exact replay command is printed. Committing such
//!    a file into `tests/regressions/` turns it into a permanent corpus
//!    entry.
//!
//! Replay a single case with `fuzz_gate -- --replay <file>`.

use proptest::{Strategy, TestRng};
use rustfi_bench::fuzz::{cases, container_cases, parse_case_file, run_case, FuzzCase};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn workspace_root() -> PathBuf {
    PathBuf::from(format!("{}/../..", env!("CARGO_MANIFEST_DIR")))
}

fn env_u64(name: &str) -> Option<u64> {
    let raw = std::env::var(name).ok()?;
    let raw = raw.trim();
    let parsed = if let Some(hex) = raw.strip_prefix("0x") {
        u64::from_str_radix(hex, 16)
    } else {
        raw.parse()
    };
    match parsed {
        Ok(v) => Some(v),
        Err(e) => {
            eprintln!("fuzz_gate: ignoring unparseable {name}={raw:?}: {e}");
            None
        }
    }
}

/// Runs one case, printing a pass line or the full failure.
fn run_one(label: &str, case: &FuzzCase, failures: &mut Vec<FuzzCase>) {
    match run_case(case) {
        Ok(report) => {
            println!(
                "  ok {label}: seed={:#x} legs={} trials={} layers={}",
                case.seed, report.legs, report.trials_run, report.leaf_layers
            );
        }
        Err(failure) => {
            eprintln!("  FAIL {label}:\n{failure}");
            failures.push(case.clone());
        }
    }
}

fn replay_corpus(dir: &Path, failures: &mut Vec<FuzzCase>) -> usize {
    let Ok(entries) = std::fs::read_dir(dir) else {
        println!(
            "fuzz_gate: no corpus directory at {} — skipping replay",
            dir.display()
        );
        return 0;
    };
    let mut paths: Vec<PathBuf> = entries
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "case"))
        .collect();
    paths.sort();
    for path in &paths {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("?");
        match std::fs::read_to_string(path)
            .map_err(|e| e.to_string())
            .and_then(|t| parse_case_file(&t))
        {
            Ok(case) => run_one(&format!("corpus/{name}"), &case, failures),
            Err(e) => {
                eprintln!("  FAIL corpus/{name}: unparseable case file: {e}");
                // An unreadable corpus entry is a gate failure too — a
                // regression test that silently stops running is worse than
                // one that fails loudly. Persist nothing; the file is
                // already in the repo.
                failures.push(FuzzCase::sample(0));
            }
        }
    }
    paths.len()
}

fn persist_failures(out_dir: &Path, failures: &[FuzzCase]) {
    if failures.is_empty() {
        return;
    }
    if let Err(e) = std::fs::create_dir_all(out_dir) {
        eprintln!("fuzz_gate: cannot create {}: {e}", out_dir.display());
        return;
    }
    for case in failures {
        let path = out_dir.join(format!("fuzz-{:016x}.case", case.seed));
        match std::fs::write(&path, case.to_case_file()) {
            Ok(()) => {
                eprintln!("fuzz_gate: wrote {}", path.display());
                eprintln!(
                    "fuzz_gate: replay with: cargo run --release -p rustfi-bench --bin fuzz_gate -- --replay {}",
                    path.display()
                );
                eprintln!("fuzz_gate: to pin it forever, commit it to tests/regressions/");
            }
            Err(e) => eprintln!("fuzz_gate: cannot write {}: {e}", path.display()),
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut failures: Vec<FuzzCase> = Vec::new();

    // Single-case replay mode.
    if let Some(i) = args.iter().position(|a| a == "--replay") {
        let Some(path) = args.get(i + 1) else {
            eprintln!("usage: fuzz_gate --replay <case-file>");
            return ExitCode::from(2);
        };
        let case = match std::fs::read_to_string(path)
            .map_err(|e| e.to_string())
            .and_then(|t| parse_case_file(&t))
        {
            Ok(case) => case,
            Err(e) => {
                eprintln!("fuzz_gate: cannot load {path}: {e}");
                return ExitCode::from(2);
            }
        };
        println!("fuzz_gate: replaying {path}");
        println!("  case: {case}");
        run_one("replay", &case, &mut failures);
        return if failures.is_empty() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    let root = workspace_root();
    let corpus = root.join("tests/regressions");
    println!("fuzz_gate: replaying corpus from {}", corpus.display());
    let replayed = replay_corpus(&corpus, &mut failures);

    let budget = rustfi_bench::env_usize("RUSTFI_FUZZ_CASES", 24);
    let master = env_u64("RUSTFI_FUZZ_SEED");
    let mut rng = match master {
        Some(seed) => TestRng::deterministic(&format!("fuzz_gate-{seed:#x}")),
        None => TestRng::deterministic("fuzz_gate"),
    };
    println!(
        "fuzz_gate: fuzzing {budget} fresh cases (RUSTFI_FUZZ_SEED={})",
        master.map_or_else(|| "default".into(), |s| format!("{s:#x}"))
    );
    let free = cases();
    let forced = container_cases();
    for i in 0..budget {
        // Every fourth case must contain both container topologies — the
        // corner of the architecture space where resume points, fusion and
        // prefix caching interact hardest.
        let case = if i % 4 == 3 {
            forced.generate(&mut rng)
        } else {
            free.generate(&mut rng)
        };
        run_one(&format!("fuzz[{i}]"), &case, &mut failures);
    }

    let out_dir = std::env::var("RUSTFI_FUZZ_OUT")
        .map(PathBuf::from)
        .unwrap_or_else(|_| root.join("target/fuzz-failures"));
    persist_failures(&out_dir, &failures);

    println!(
        "fuzz_gate: {replayed} corpus case(s) + {budget} fresh case(s), {} failure(s)",
        failures.len()
    );
    if failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
