//! Table I: training ResNet-18 with and without RustFI injections.
//!
//! Paper shape to reproduce: training time unchanged, test accuracy within a
//! fraction of a percent, and the FI-trained model suffers fewer
//! post-training output misclassifications under injection.
//!
//! Scaling notes: the paper ran 24 M injections; at this substrate's SDC
//! rates (~0.04%) the default here is 100 k per model so the difference is
//! measurable in minutes. The training-injection dose is 4 neurons per
//! hidden layer per forward pass — the paper's 1-per-layer protocol scaled
//! to layers that are orders of magnitude smaller (§IV-D explicitly frames
//! injection frequency as a protocol knob).
//!
//! Run with: `cargo run -p rustfi-bench --bin table1_training --release`
//! Knobs: `RUSTFI_TRIALS` (default 100000) post-training injections per model.

use rustfi::{models, Campaign, CampaignConfig, FaultMode, NeuronSelect};
use rustfi_bench::env_usize;
use rustfi_data::SynthSpec;
use rustfi_nn::train::{accuracy, fit, TrainConfig};
use rustfi_nn::{checkpoint, zoo, Network, ZooConfig};
use rustfi_robust::TrainingInjector;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

struct Row {
    train_time: Duration,
    accuracy: f32,
    sdcs: usize,
}

fn post_training_sdcs(
    net: &mut Network,
    data: &rustfi_data::ClassificationDataset,
    trials: usize,
    tag: &str,
) -> usize {
    let ckpt: PathBuf =
        std::env::temp_dir().join(format!("rustfi-table1-{tag}-{}.ckpt", std::process::id()));
    checkpoint::save(net, &ckpt).expect("write checkpoint");
    let path = ckpt.clone();
    let factory = move || {
        let mut n = zoo::resnet18(&ZooConfig::cifar10_like());
        checkpoint::load(&mut n, &path).expect("read checkpoint");
        n
    };
    let campaign = Campaign::new(
        &factory,
        &data.test_images,
        &data.test_labels,
        FaultMode::Neuron(NeuronSelect::Random),
        Arc::new(models::BitFlipInt8::new(models::BitSelect::Random)),
    );
    let result = campaign
        .run(&CampaignConfig {
            trials,
            seed: 0x7AB1E1,
            quant: rustfi::QuantMode::Simulated,
            ..CampaignConfig::default()
        })
        .expect("campaign config is valid");
    std::fs::remove_file(&ckpt).ok();
    result.counts.sdc + result.counts.due
}

fn main() {
    let trials = env_usize("RUSTFI_TRIALS", 100_000);
    let mut spec = SynthSpec::cifar10_like();
    // Margins thin enough that post-training SDC counts are measurable at
    // this trial budget.
    spec.noise = 1.5;
    spec.train_per_class = 60;
    let data = spec.generate();
    let cfg = TrainConfig {
        epochs: 12,
        ..TrainConfig::default()
    };

    // Baseline: clean training from the default init seed.
    let mut baseline = zoo::resnet18(&ZooConfig::cifar10_like());
    let report = fit(&mut baseline, &data.train_images, &data.train_labels, &cfg);
    let base = Row {
        train_time: report.wall_time,
        accuracy: accuracy(&mut baseline, &data.test_images, &data.test_labels, 32),
        sdcs: post_training_sdcs(&mut baseline, &data, trials, "base"),
    };

    // FI-trained: identical init (same constructor seed), with a random
    // hidden neuron per layer perturbed to uniform [-1, 1] on every training
    // forward pass.
    let mut fi_net = zoo::resnet18(&ZooConfig::cifar10_like());
    let injector = TrainingInjector::install_hidden_with_dose(&fi_net, -1.0, 1.0, 0x7AB1E, 4);
    let report = fit(&mut fi_net, &data.train_images, &data.train_labels, &cfg);
    let injections = injector.injections();
    injector.remove();
    let fi = Row {
        train_time: report.wall_time,
        accuracy: accuracy(&mut fi_net, &data.test_images, &data.test_labels, 32),
        sdcs: post_training_sdcs(&mut fi_net, &data, trials, "fi"),
    };

    println!("Table I — training ResNet-18 with and without RustFI");
    println!(
        "({} post-training injections per model; {injections} injections during FI training)\n",
        trials
    );
    println!("{:<42} {:>14} {:>14}", "", "Baseline", "RustFI");
    println!(
        "{:<42} {:>14} {:>14}",
        "Training time",
        format!("{:.2?}", base.train_time),
        format!("{:.2?}", fi.train_time)
    );
    println!(
        "{:<42} {:>13.2}% {:>13.2}%",
        "Test accuracy",
        100.0 * base.accuracy,
        100.0 * fi.accuracy
    );
    println!(
        "{:<42} {:>14} {:>14}",
        format!("Post-training output misclassifications"),
        base.sdcs,
        fi.sdcs
    );
    println!(
        "{:<42} {:>14} {:>14}",
        format!("  (out of {trials})"),
        "",
        ""
    );
    if fi.sdcs < base.sdcs {
        println!("\n=> FI-trained model is more resilient, matching the paper's Table I.");
    } else {
        println!("\n=> WARNING: FI-trained model was not more resilient in this run.");
    }
}
