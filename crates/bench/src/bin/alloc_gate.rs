//! CI gate for the zero-allocation forward path.
//!
//! Installs the counting global allocator, arms the thread-local tensor
//! pool, warms a small CNN, and asserts that subsequent forward passes make
//! **zero** heap allocations. The model and input are deliberately small
//! enough to stay below the parallel-matmul threshold: the scoped-thread
//! fan-out allocates when it spawns, and thread management is outside the
//! tensor-path claim this gate protects.
//!
//! Three measurements keep the assertion honest:
//!
//! 1. With pooling *disabled* (budget 0), the same passes must allocate —
//!    proving the counter actually observes the forward path (a vacuously
//!    green gate would otherwise hide a broken instrument).
//! 2. With pooling *enabled*, warmed passes must allocate nothing.
//! 3. With the real-INT8 backend armed on top (calibrated scales, integer
//!    kernels, thread-local `i8`/`i32` scratch), warmed passes must still
//!    allocate nothing — the quantized fast path shares the zero-allocation
//!    claim.
//! 4. With a compiled forward plan on top (prepacked weight panels, fused
//!    GEMM epilogues), warmed planned passes must also allocate nothing —
//!    panel packing is a setup cost, never a steady-state one.
//!
//! Run with: `cargo run -p rustfi-bench --bin alloc_gate --release`

use rustfi_bench::alloc_count::{self, CountingAlloc};
use rustfi_nn::{zoo, Backend, CalibrationTable, ZooConfig};
use rustfi_tensor::{tpool, SeededRng, Tensor};
use std::sync::Arc;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn main() {
    let cfg = ZooConfig::tiny(4);
    let mut net = zoo::lenet(&cfg);
    let mut rng = SeededRng::new(23);
    let input = Tensor::rand_normal(
        &[1, cfg.in_channels, cfg.image_hw, cfg.image_hw],
        0.0,
        1.0,
        &mut rng,
    );

    let unpooled = {
        let _off = tpool::budget_scope(0);
        alloc_count::steady_state_forward_allocs(&mut net, &input, 4, 16)
    };
    println!("alloc_gate: pooling off  -> {unpooled:.1} allocations/pass");
    assert!(
        unpooled > 0.0,
        "counter saw no allocations even with pooling disabled — instrument is broken"
    );

    let pooled = {
        let _pool = tpool::budget_scope(64 << 20);
        alloc_count::steady_state_forward_allocs(&mut net, &input, 8, 64)
    };
    println!("alloc_gate: pooling on   -> {pooled:.1} allocations/pass");
    assert!(
        pooled == 0.0,
        "forward path allocated at steady state with the tensor pool armed \
         ({pooled:.3} allocations/pass)"
    );

    let quantized = {
        let _pool = tpool::budget_scope(64 << 20);
        let table = CalibrationTable::calibrate(&mut net, std::slice::from_ref(&input));
        net.set_backend(Backend::Int8(Arc::new(table)));
        alloc_count::steady_state_forward_allocs(&mut net, &input, 8, 64)
    };
    println!("alloc_gate: int8 backend -> {quantized:.1} allocations/pass");
    assert!(
        quantized == 0.0,
        "quantized forward path allocated at steady state \
         ({quantized:.3} allocations/pass)"
    );

    let planned = {
        let _pool = tpool::budget_scope(64 << 20);
        net.set_backend(Backend::Fp32);
        net.set_plan(true);
        alloc_count::steady_state_forward_allocs(&mut net, &input, 8, 64)
    };
    println!("alloc_gate: planned      -> {planned:.1} allocations/pass");
    assert!(
        planned == 0.0,
        "planned forward path allocated at steady state — panel packing must \
         happen at warmup, not per pass ({planned:.3} allocations/pass)"
    );
    println!("alloc_gate: ok — steady-state forward passes are allocation-free");
}
