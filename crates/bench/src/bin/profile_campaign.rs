//! Campaign profiler: runs a neuron bit-flip campaign with the full
//! observability stack armed and reports where the time goes.
//!
//! Output:
//! - a per-layer table joining forward wall time (from layer spans) with
//!   injection trials and SDC counts (from the campaign result);
//! - trial latency summary and kernel-call counters;
//! - a Chrome `trace_event` JSON file loadable in Perfetto or
//!   `chrome://tracing` (one row per worker thread, one slice per layer);
//! - the Prometheus text exposition of all counters and timings.
//!
//! The model is untrained and labels are aligned to its own clean
//! predictions, so every image is campaign-eligible without a training run.
//!
//! Run with: `cargo run -p rustfi-bench --bin profile_campaign --release`
//! Knobs: `RUSTFI_TRIALS` (default 200), `RUSTFI_MODEL` (default alexnet),
//! `RUSTFI_THREADS` (default: all cores), `RUSTFI_TRACE_PATH` (default
//! `profile_campaign.trace.json`), `RUSTFI_EVENTS_PATH` (optional JSONL
//! event-stream dump).

use rustfi::{
    models, Campaign, CampaignConfig, FaultMode, GuardMode, ModelProfile, NeuronSelect,
    ProgressRecorder,
};
use rustfi_bench::env_usize;
use rustfi_nn::{train, zoo, ZooConfig};
use rustfi_obs::{FanoutRecorder, Recorder, StatsRecorder, TraceRecorder};
use rustfi_tensor::{opcount, Tensor};
use std::path::PathBuf;
use std::sync::Arc;

fn env_str(name: &str, default: &str) -> String {
    std::env::var(name).unwrap_or_else(|_| default.to_string())
}

fn main() {
    let trials = env_usize("RUSTFI_TRIALS", 200);
    let model = env_str("RUSTFI_MODEL", "alexnet");
    let threads = std::env::var("RUSTFI_THREADS")
        .ok()
        .and_then(|v| v.parse().ok());
    let trace_path = PathBuf::from(env_str("RUSTFI_TRACE_PATH", "profile_campaign.trace.json"));

    let cfg = ZooConfig::imagenet_like();
    let factory = || zoo::by_name(&model, &cfg).unwrap_or_else(|| panic!("unknown model {model}"));
    let images = Tensor::from_fn(&[8, cfg.in_channels, cfg.image_hw, cfg.image_hw], |i| {
        ((i as f32) * 0.013).sin()
    });
    let labels = train::predict(&mut factory(), &images, 8);

    println!("profile_campaign — {model} (untrained, imagenet-like config), {trials} trials");
    opcount::reset();
    opcount::enable(true);
    // Tee the stream: the trace recorder keeps everything for the Chrome
    // trace / per-layer join, the stats recorder folds outcomes and
    // latencies into fixed-memory streaming statistics.
    let recorder = Arc::new(TraceRecorder::new());
    let stats_rec = Arc::new(StatsRecorder::default());
    let fanout = Arc::new(FanoutRecorder::new(vec![
        recorder.clone() as Arc<dyn Recorder>,
        stats_rec.clone() as Arc<dyn Recorder>,
    ]));
    let campaign = Campaign::new(
        &factory,
        &images,
        &labels,
        FaultMode::Neuron(NeuronSelect::Random),
        Arc::new(models::BitFlipFp32::new(models::BitSelect::Random)),
    );
    let result = campaign
        .run(&CampaignConfig {
            trials,
            seed: 0x9806,
            threads,
            guard: GuardMode::Record,
            recorder: Some(fanout as Arc<dyn Recorder>),
            progress: Some(ProgressRecorder::stderr(trials.div_ceil(10).max(1))),
            ..CampaignConfig::default()
        })
        .expect("campaign config is valid");
    opcount::enable(false);

    // Join the recorder's per-layer wall time (keyed by network layer index)
    // with the campaign's per-injectable-layer trial/SDC counts.
    let snap = recorder.snapshot();
    let profile = ModelProfile::discover(
        &mut factory(),
        [1, cfg.in_channels, cfg.image_hw, cfg.image_hw],
    );
    println!(
        "\n{:<5} {:<8} {:<24} {:>8} {:>10} {:>10} {:>7} {:>5}",
        "layer", "kind", "name", "calls", "mean µs", "total ms", "trials", "SDC"
    );
    for row in snap.layer_times() {
        let injected = profile
            .layers()
            .iter()
            .position(|l| l.id.index() == row.layer)
            .and_then(|i| result.per_layer.get(i));
        let (t, s) = injected.copied().unwrap_or((0, 0));
        println!(
            "{:<5} {:<8} {:<24} {:>8} {:>10.1} {:>10.2} {:>7} {:>5}",
            row.layer,
            row.kind,
            row.name,
            row.calls,
            row.mean_ns() as f64 / 1_000.0,
            row.total_ns as f64 / 1e6,
            t,
            s
        );
    }

    if let Some(stat) = snap.timings.get("campaign.trial_ns") {
        println!(
            "\ntrials: {} | mean {:.2} ms | min {:.2} ms | max {:.2} ms",
            stat.count,
            stat.mean_ns() as f64 / 1e6,
            stat.min_ns as f64 / 1e6,
            stat.max_ns as f64 / 1e6
        );
    }
    let ops = opcount::counts();
    println!(
        "kernel calls: conv2d {} | matmul {} | elementwise {} | pool {} | norm {}",
        ops.conv2d, ops.matmul, ops.elementwise, ops.pool, ops.norm
    );
    let tail = ops.elementwise + ops.pool + ops.norm;
    let total = ops.conv2d + ops.matmul + tail;
    if total > 0 {
        println!(
            "memory-bound tail (elementwise+pool+norm): {tail} of {total} kernel calls ({:.1}%)",
            100.0 * tail as f64 / total as f64
        );
    }
    println!(
        "outcomes: masked {} sdc {} due {} crash {} hang {} (SDC rate {:.3}%)",
        result.counts.masked,
        result.counts.sdc,
        result.counts.due,
        result.counts.crash,
        result.counts.hang,
        100.0 * result.sdc_rate()
    );

    // Streaming statistical report: per-layer SDC/DUE rates with 95% Wilson
    // score intervals, plus latency quantiles from the log-linear
    // histograms. Nothing here stored per-record.
    let stats = stats_rec.snapshot();
    println!("\n# Statistical report (95% Wilson intervals)");
    print!("{}", stats.sdc_table());
    print!("{}", stats.latency_summary());

    recorder
        .write_chrome_trace(&trace_path)
        .expect("write chrome trace");
    println!(
        "\nwrote {} spans + {} events to {} (load in Perfetto / chrome://tracing)",
        snap.spans.len(),
        snap.events.len(),
        trace_path.display()
    );
    if let Ok(events_path) = std::env::var("RUSTFI_EVENTS_PATH") {
        let events_path = PathBuf::from(events_path);
        recorder
            .write_events_jsonl(&events_path)
            .expect("write events jsonl");
        println!("wrote event stream to {}", events_path.display());
    }

    println!("\n# Prometheus exposition\n{}", recorder.prometheus());
}
