//! Fig. 3: average inference runtime for the 19 network/dataset pairs with
//! and without a single-neuron PyTorchFI-style injection (batch 1), plus the
//! §III-C batch-size sweep.
//!
//! The paper measured CPU (AMD EPYC) and GPU (Titan Xp); our substrate is a
//! CPU framework, so the reproduced claim is the *relative* one — the FI
//! runtime matches the base runtime within noise on every model.
//!
//! Run with: `cargo run -p rustfi-bench --bin fig3_overhead_table --release`
//! Knobs: `RUSTFI_REPS` (default 200) inference repetitions per cell.

use rustfi::{models, BatchSelect, FaultInjector, FiConfig, NeuronFault, NeuronSelect};
use rustfi_bench::{env_usize, fig3_pairs, mean_seconds, zoo_config_for};
use rustfi_nn::zoo;
use rustfi_tensor::{SeededRng, Tensor};
use std::sync::Arc;

fn main() {
    let reps = env_usize("RUSTFI_REPS", 200);
    let mut rng = SeededRng::new(33);
    println!("Fig. 3 — inference wall-clock with and without RustFI, batch 1, {reps} reps");
    println!(
        "{:<14} {:<13} {:>12} {:>12} {:>10}",
        "dataset", "model", "base (ms)", "fi (ms)", "overhead"
    );

    let mut base_sum = 0.0;
    let mut fi_sum = 0.0;
    for (dataset, model) in fig3_pairs() {
        let cfg = zoo_config_for(dataset);
        let net = zoo::by_name(model, &cfg).expect("known model");
        let input = Tensor::rand_normal(&[1, 3, cfg.image_hw, cfg.image_hw], 0.0, 1.0, &mut rng);

        let mut fi =
            FaultInjector::new(net, FiConfig::for_input(input.dims())).expect("injectable");
        let base = mean_seconds(reps, || {
            std::hint::black_box(fi.forward(&input));
        });

        fi.declare_neuron_fi(&[NeuronFault {
            select: NeuronSelect::Random,
            batch: BatchSelect::All,
            model: Arc::new(models::RandomUniform::default()),
        }])
        .expect("legal fault");
        let with_fi = mean_seconds(reps, || {
            std::hint::black_box(fi.forward(&input));
        });

        base_sum += base;
        fi_sum += with_fi;
        println!(
            "{:<14} {:<13} {:>12.4} {:>12.4} {:>9.2}%",
            dataset,
            model,
            base * 1e3,
            with_fi * 1e3,
            100.0 * (with_fi - base) / base
        );
    }
    println!(
        "{:<14} {:<13} {:>12.4} {:>12.4} {:>9.2}%",
        "average",
        "",
        base_sum / 19.0 * 1e3,
        fi_sum / 19.0 * 1e3,
        100.0 * (fi_sum - base_sum) / base_sum
    );

    // §III-C batch sweep: amortized cost per model.
    println!("\n§III-C — batch sweep (resnet110, cifar10-like), per-batch wall clock");
    println!(
        "{:>6} {:>12} {:>12} {:>10}",
        "batch", "base (ms)", "fi (ms)", "overhead"
    );
    for batch in [1usize, 4, 16, 64] {
        let cfg = zoo_config_for("cifar10-like");
        let net = zoo::resnet110(&cfg);
        let input = Tensor::rand_normal(&[batch, 3, 16, 16], 0.0, 1.0, &mut rng);
        let mut fi =
            FaultInjector::new(net, FiConfig::for_input(input.dims())).expect("injectable");
        let reps_b = (reps / batch).max(10);
        let base = mean_seconds(reps_b, || {
            std::hint::black_box(fi.forward(&input));
        });
        fi.declare_neuron_fi(&[NeuronFault {
            select: NeuronSelect::Random,
            batch: BatchSelect::Each,
            model: Arc::new(models::RandomUniform::default()),
        }])
        .expect("legal fault");
        let with_fi = mean_seconds(reps_b, || {
            std::hint::black_box(fi.forward(&input));
        });
        println!(
            "{:>6} {:>12.4} {:>12.4} {:>9.2}%",
            batch,
            base * 1e3,
            with_fi * 1e3,
            100.0 * (with_fi - base) / base
        );
    }
}
