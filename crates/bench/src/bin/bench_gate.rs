//! CI perf-regression gate for the campaign bench.
//!
//! Compares a freshly measured `BENCH_campaign.json` (written by
//! `benches/campaign_throughput` in quick mode) against the committed
//! baseline at the repository root, and exits non-zero if any within-run
//! speedup ratio — prefix caching, trial fusion, matmul kernel geomean,
//! packed-panel GEMM geomean, planned-vs-fused campaign rate — fell below
//! `RUSTFI_GATE_MIN_RATIO` (default 0.75, i.e. a >25% regression).
//! Speedups are ratios of two measurements from the same run on the same
//! machine, so the comparison is runner-speed independent; gating absolute
//! trials/sec would not be.
//!
//! On top of the baseline-relative ratios, the gate enforces absolute
//! within-run floors (`gate::absolute_floors`): the AVX2 int8 GEMM must
//! beat its own portable compilation by at least 1.5x, and the compiled
//! forward plan must beat the plain fused campaign by at least 1.25x,
//! whenever the fresh summary reports the AVX2 kernels dispatched.
//!
//! Run with: `cargo run -p rustfi-bench --bin bench_gate --release`
//!
//! Knobs:
//!
//! - `RUSTFI_GATE_SKIP=1` — skip the gate entirely (escape hatch for known
//!   noisy runners or intentional perf trade-offs; say why in the commit).
//! - `RUSTFI_GATE_MIN_RATIO` — minimum fresh/baseline speedup ratio
//!   (default `0.75`).
//! - `RUSTFI_GATE_BASELINE` — committed baseline path (default
//!   `BENCH_campaign.json` at the repository root).
//! - `RUSTFI_GATE_FRESH` — freshly measured summary path (default: the
//!   shared `RUSTFI_BENCH_JSON` quick-mode knob).
//!
//! To bless a new baseline after an intentional perf change, re-run the
//! bench with its defaults and commit the regenerated `BENCH_campaign.json`.

use rustfi_bench::{env_f64, gate, QuickMode};
use std::process::ExitCode;

fn main() -> ExitCode {
    if std::env::var("RUSTFI_GATE_SKIP").is_ok_and(|v| v == "1") {
        println!("bench_gate: skipped (RUSTFI_GATE_SKIP=1)");
        return ExitCode::SUCCESS;
    }
    let baseline_path = std::env::var("RUSTFI_GATE_BASELINE")
        .unwrap_or_else(|_| format!("{}/../../BENCH_campaign.json", env!("CARGO_MANIFEST_DIR")));
    let fresh_path = std::env::var("RUSTFI_GATE_FRESH")
        .ok()
        // Anchor a relative override at the workspace root, matching where
        // the bench harness resolves `RUSTFI_BENCH_JSON` (its CWD is the
        // package dir, ours is the caller's).
        .map(|p| {
            if std::path::Path::new(&p).is_absolute() {
                p
            } else {
                format!("{}/../../{p}", env!("CARGO_MANIFEST_DIR"))
            }
        })
        .or_else(|| QuickMode::from_env().json_path)
        .expect("no fresh summary path: RUSTFI_GATE_FRESH unset and RUSTFI_BENCH_JSON=skip");
    let min_ratio = env_f64("RUSTFI_GATE_MIN_RATIO", 0.75);

    let read = |path: &str| {
        std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("bench_gate: cannot read {path}: {e}"))
    };
    let baseline = read(&baseline_path);
    let fresh = read(&fresh_path);

    let checks = gate::checks(&baseline, &fresh);
    assert!(
        !checks.is_empty(),
        "bench_gate: {baseline_path} and {fresh_path} share no comparable metric"
    );

    println!("bench_gate: {fresh_path} vs {baseline_path} (min ratio {min_ratio:.2})");
    println!(
        "{:<26} {:>10} {:>10} {:>8} {:>6}",
        "metric", "baseline", "fresh", "ratio", "gate"
    );
    let mut failed = false;
    for c in &checks {
        let ok = c.passes(min_ratio);
        failed |= !ok;
        println!(
            "{:<26} {:>9.2}x {:>9.2}x {:>8.3} {:>6}",
            c.name,
            c.baseline,
            c.fresh,
            c.ratio(),
            if ok { "ok" } else { "FAIL" }
        );
    }
    // Absolute floors are judged against the fresh run alone ("baseline" is
    // the constant floor), so the full ratio is required — no min-ratio
    // slack.
    for c in gate::absolute_floors(&fresh) {
        let ok = c.passes(1.0);
        failed |= !ok;
        println!(
            "{:<26} {:>9.2}x {:>9.2}x {:>8.3} {:>6}",
            c.name,
            c.baseline,
            c.fresh,
            c.ratio(),
            if ok { "ok" } else { "FAIL" }
        );
    }
    if failed {
        println!(
            "bench_gate: FAIL — speedup regressed more than {:.0}% vs the committed baseline",
            (1.0 - min_ratio) * 100.0
        );
        println!("bench_gate: if intentional, bless a new baseline (see module docs)");
        ExitCode::FAILURE
    } else {
        println!("bench_gate: ok");
        ExitCode::SUCCESS
    }
}
