//! Fig. 4: Top-1 misclassification probability of six ImageNet-like
//! networks with INT8 neuron quantization under single-bit-flip injections
//! into randomly selected neurons.
//!
//! Paper shape to reproduce: every network shows output corruptions, all
//! rates are below 1%, and rates differ across topologies (AlexNet and
//! ShuffleNet land near each other despite very different accuracy).
//!
//! Run with: `cargo run -p rustfi-bench --bin fig4_classification --release`
//! Knobs: `RUSTFI_TRIALS` (default 20000) injections per network.

use rustfi::{models, Campaign, CampaignConfig, FaultMode, NeuronSelect};
use rustfi_bench::{env_usize, factory_from_checkpoint, fig4_models, train_and_checkpoint};
use rustfi_data::SynthSpec;
use std::sync::Arc;

fn main() {
    let trials = env_usize("RUSTFI_TRIALS", 20_000);
    let spec = SynthSpec::imagenet_like();
    let data = spec.generate();
    println!(
        "Fig. 4 — single INT8 bit flips in random neurons, {trials} trials/network, dataset {}",
        spec.name
    );
    println!(
        "{:<12} {:>9} {:>9} {:>8} {:>8} {:>12} {:>12} {:>14}",
        "model", "accuracy", "eligible", "SDC", "DUE", "SDC rate", "99% CI", "top5-miss rate"
    );

    for model in fig4_models() {
        let (ckpt, acc) = train_and_checkpoint(model, &spec);
        let factory = factory_from_checkpoint(model, "imagenet-like", ckpt.clone());
        let campaign = Campaign::new(
            &factory,
            &data.test_images,
            &data.test_labels,
            FaultMode::Neuron(NeuronSelect::Random),
            Arc::new(models::BitFlipInt8::new(models::BitSelect::Random)),
        );
        let result = campaign.run(&CampaignConfig {
            trials,
            seed: 0xF164,
            threads: None,
            int8_activations: true,
        });
        println!(
            "{:<12} {:>8.1}% {:>9} {:>8} {:>8} {:>11.3}% {:>10.3}% {:>13.3}%",
            model,
            100.0 * acc,
            result.eligible_images,
            result.counts.sdc,
            result.counts.due,
            100.0 * result.sdc_rate(),
            100.0 * result.counts.sdc_rate_ci99(),
            100.0 * result.top5_miss_rate(),
        );
        std::fs::remove_file(&ckpt).ok();
    }
}
