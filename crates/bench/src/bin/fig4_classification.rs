//! Fig. 4: Top-1 misclassification probability of six ImageNet-like
//! networks with INT8 neuron quantization under single-bit-flip injections
//! into randomly selected neurons.
//!
//! Paper shape to reproduce: every network shows output corruptions, all
//! rates are below 1%, and rates differ across topologies (AlexNet and
//! ShuffleNet land near each other despite very different accuracy).
//!
//! The table reports the full outcome taxonomy (masked/SDC/DUE/crash/hang);
//! single bit flips never crash or hang, so those columns stay zero here and
//! act as a sanity check of the campaign's trial accounting.
//!
//! After the main table, a guard-hook ablation floods activations with Inf
//! (a worst-case DUE workload) and compares `GuardMode::Record` against
//! `GuardMode::ShortCircuit`: identical classifications, less wall clock.
//!
//! A final table puts the two quantization regimes side by side: the same
//! bit-flip campaign under `QuantMode::Simulated` (f32 kernels, activations
//! snapped to the INT8 grid) and under `QuantMode::Int8` (real integer
//! kernels, faults landing in stored INT8 words), reporting SDC rates with
//! 95% Wilson intervals. The intervals should overlap heavily — both
//! regimes model the same hardware fault, and the words they flip are
//! bit-identical by construction.
//!
//! Run with: `cargo run -p rustfi-bench --bin fig4_classification --release`
//! Knobs: `RUSTFI_TRIALS` (default 20000) injections per network,
//! `RUSTFI_GUARD_TRIALS` (default 1000) for the guard ablation,
//! `RUSTFI_INT8_TRIALS` (default `RUSTFI_TRIALS`/10) per regime for the
//! quantization comparison.

use rustfi::{models, Campaign, CampaignConfig, FaultMode, GuardMode, NeuronSelect, QuantMode};
use rustfi_bench::{
    env_usize, factory_from_checkpoint, fig4_models, outcome_table_header, outcome_table_row,
    train_and_checkpoint,
};
use rustfi_data::SynthSpec;
use rustfi_obs::{wilson_interval, Z_95};
use std::sync::Arc;

fn main() {
    let trials = env_usize("RUSTFI_TRIALS", 20_000);
    let int8_trials = env_usize("RUSTFI_INT8_TRIALS", (trials / 10).max(1));
    let spec = SynthSpec::imagenet_like();
    let data = spec.generate();
    println!(
        "Fig. 4 — single INT8 bit flips in random neurons, {trials} trials/network, dataset {}",
        spec.name
    );
    println!("{}", outcome_table_header());

    let mut quant_rows = Vec::new();
    for model in fig4_models() {
        let (ckpt, acc) = train_and_checkpoint(model, &spec);
        let factory = factory_from_checkpoint(model, "imagenet-like", ckpt.clone());
        let campaign = Campaign::new(
            &factory,
            &data.test_images,
            &data.test_labels,
            FaultMode::Neuron(NeuronSelect::Random),
            Arc::new(models::BitFlipInt8::new(models::BitSelect::Random)),
        );
        let result = campaign
            .run(&CampaignConfig {
                trials,
                seed: 0xF164,
                quant: QuantMode::Simulated,
                ..CampaignConfig::default()
            })
            .expect("campaign config is valid");
        println!("{}", outcome_table_row(model, Some(acc), &result));

        // Same campaign, both quantization regimes, for the comparison
        // table (fewer trials: two extra campaigns per network).
        let regime = |quant| {
            campaign
                .run(&CampaignConfig {
                    trials: int8_trials,
                    seed: 0x714D,
                    quant,
                    ..CampaignConfig::default()
                })
                .expect("campaign config is valid")
        };
        quant_rows.push((
            *model,
            regime(QuantMode::Simulated),
            regime(QuantMode::Int8),
        ));

        if model == &"alexnet" {
            guard_ablation(&factory, &data);
        }
        std::fs::remove_file(&ckpt).ok();
    }

    println!(
        "\nQuantized campaigns — simulated INT8 (f32 kernels) vs real INT8 backend \
         (integer kernels, stored-word flips), {int8_trials} trials each, SDC with \
         95% Wilson intervals"
    );
    println!("{:<12} {:>26} {:>26}", "model", "simulated", "real-int8");
    for (model, sim, int8) in &quant_rows {
        println!("{:<12} {:>26} {:>26}", model, sdc_ci(sim), sdc_ci(int8));
    }
}

/// `"x.xx% [lo.xx, hi.xx]"`: the SDC rate with its 95% Wilson interval.
fn sdc_ci(r: &rustfi::CampaignResult) -> String {
    let n = r.counts.total() as u64;
    let (lo, hi) = wilson_interval(r.counts.sdc as u64, n, Z_95);
    let p = if n == 0 {
        0.0
    } else {
        r.counts.sdc as f64 / n as f64
    };
    format!("{:.2}% [{:.2}, {:.2}]", p * 100.0, lo * 100.0, hi * 100.0)
}

/// Guard-hook ablation on the first (AlexNet) checkpoint: every trial
/// injects `+Inf`, so every forward pass goes non-finite and the
/// short-circuiting guard can skip the remaining layers.
fn guard_ablation(
    factory: &(dyn Fn() -> rustfi_nn::Network + Sync),
    data: &rustfi_data::ClassificationDataset,
) {
    let trials = env_usize("RUSTFI_GUARD_TRIALS", 1000);
    let campaign = Campaign::new(
        factory,
        &data.test_images,
        &data.test_labels,
        FaultMode::Neuron(NeuronSelect::Random),
        Arc::new(models::StuckAt::new(f32::INFINITY)),
    );
    let timed = |guard| {
        let (result, elapsed) = rustfi_obs::time(|| {
            campaign
                .run(&CampaignConfig {
                    trials,
                    seed: 0x6A2D,
                    quant: rustfi::QuantMode::Simulated,
                    guard,
                    ..CampaignConfig::default()
                })
                .expect("campaign config is valid")
        });
        (elapsed.as_secs_f64(), result)
    };
    let (t_record, record) = timed(GuardMode::Record);
    let (t_short, short) = timed(GuardMode::ShortCircuit);
    println!(
        "  guard ablation (alexnet, stuck-at-Inf, {trials} trials): \
         record {t_record:.2}s | short-circuit {t_short:.2}s | speedup {:.2}x | \
         DUEs {}/{} | classifications identical: {}",
        t_record / t_short.max(1e-9),
        record.counts.due,
        record.counts.total(),
        record.records == short.records
    );
}
