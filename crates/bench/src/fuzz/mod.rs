//! Differential architecture fuzzer for the forward-path strategy matrix.
//!
//! The execution-strategy matrix — serial, prefix-cached, fused, pooled,
//! sharded, single- or multi-threaded, f32 or INT8 — promises **bit-identical
//! trial records** for every cell. The per-feature property tests each pin
//! one axis of that promise on one fixed model; this module is the shared
//! harness that attacks the whole matrix at once on *randomly composed*
//! networks:
//!
//! 1. [`FuzzCase::sample`] derives a complete differential test case from a
//!    single `u64` seed: a random architecture from the zoo building blocks
//!    (conv / grouped conv / norm / activation / pooling, `Residual` and
//!    `Branches` containers, via [`rustfi_nn::zoo::random::ArchSpec`]),
//!    random input data, a fault-injection configuration (neuron or weight
//!    faults, guard mode, quantization mode) and campaign knobs (threads,
//!    fusion width, prefix budget, pool budget, shard count).
//! 2. [`run_case`] executes the case through strategy *pairs* — a serial
//!    reference vs. the fully accelerated path, the unsharded run vs. a
//!    merged multi-shard run — and asserts records, counts and merged
//!    telemetry are identical. Any divergence is reported as a
//!    [`CaseFailure`] carrying the replaying seed.
//! 3. [`CaseStrategy`] plugs the generator into the vendored `proptest`
//!    runner so property tests (see `tests/properties.rs`) and the
//!    `fuzz_gate` CI binary draw cases from one distribution. Failing cases
//!    serialize to `key = value` files (see [`FuzzCase::to_case_file`])
//!    that replay deterministically via `fuzz_gate --replay`.
//!
//! Case budgets are environment-tunable (`RUSTFI_FUZZ_CASES`,
//! `RUSTFI_FUZZ_SEED`), so tier-1 CI runs a quick smoke pass while the
//! nightly workflow soaks the same generator for hundreds of cases.

mod case;
mod diff;

pub use case::{parse_case_file, FuzzCase};
pub use diff::{run_case, CaseFailure, CaseFixture, CaseReport};

use proptest::{Strategy, TestRng};
use rustfi_nn::zoo::random::ForcedTopology;

/// A [`proptest::Strategy`] producing [`FuzzCase`]s.
///
/// Each generated case is fully determined by one `u64` drawn from the
/// runner's RNG, so a failure always reduces to a single replayable seed.
#[derive(Debug, Clone, Copy, Default)]
pub struct CaseStrategy {
    /// Topologies every sampled architecture must contain.
    pub forced: ForcedTopology,
}

impl Strategy for CaseStrategy {
    type Value = FuzzCase;

    fn generate(&self, rng: &mut TestRng) -> FuzzCase {
        FuzzCase::sample_with(rng.next_u64(), self.forced)
    }
}

/// Cases over the full architecture distribution.
pub fn cases() -> CaseStrategy {
    CaseStrategy::default()
}

/// Cases whose architectures are guaranteed to contain both a `Residual`
/// and a `Branches` container — the topologies where resume points, prefix
/// caching and fusion interact in the most intricate ways.
pub fn container_cases() -> CaseStrategy {
    CaseStrategy {
        forced: ForcedTopology {
            residual: true,
            branches: true,
        },
    }
}
