//! The differential runner: executes one [`FuzzCase`] through strategy
//! pairs and reports the first divergence.

use super::FuzzCase;
use rustfi::{
    merge_shard_journals, models, plan_shards, Campaign, CampaignConfig, CampaignResult,
    FaultInjector, FaultMode, FiConfig, NeuronSelect, PerturbationModel, QuantMode, WeightSelect,
};
use rustfi_nn::quantized::CalibrationTable;
use rustfi_obs::{merge_shard_telemetry, read_sidecar, Event, Recorder, SidecarRecorder};
use rustfi_tensor::{SeededRng, Tensor};
use std::collections::BTreeMap;
use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// What a passing case exercised — surfaced by `fuzz_gate -v` so soak logs
/// show the matrix actually being covered rather than a bare pass count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CaseReport {
    /// Images the campaign's own golden pass accepted.
    pub eligible_images: usize,
    /// Trials each campaign leg executed.
    pub trials_run: usize,
    /// Differential comparisons that ran (serial-vs-accelerated, telemetry,
    /// shard merge, …).
    pub legs: usize,
    /// Leaf layers in the sampled architecture.
    pub leaf_layers: usize,
}

/// A divergence (or crash) found while running a case, carrying everything
/// needed to replay it.
#[derive(Debug, Clone)]
pub struct CaseFailure {
    /// The offending case.
    pub case: FuzzCase,
    /// Which differential leg diverged.
    pub leg: &'static str,
    /// Human-readable mismatch description.
    pub detail: String,
}

impl fmt::Display for CaseFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}\n  case: {}", self.leg, self.detail, self.case)
    }
}

impl std::error::Error for CaseFailure {}

/// A scratch directory unique across threads and processes, removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str, seed: u64) -> std::io::Result<Self> {
        static NEXT: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "rustfi-fuzz-{}-{tag}-{seed:016x}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir)?;
        Ok(Scratch(dir))
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// `(trial, layer, outcome, due_layer)` tuples extracted from recorded
/// telemetry — the merge-invariant payload sidecars must agree on.
type OutcomeSet = BTreeMap<usize, (usize, &'static str, Option<usize>)>;

fn outcome_set(events: &[Event]) -> OutcomeSet {
    events
        .iter()
        .filter_map(|e| match e {
            Event::TrialOutcome(t) => Some((t.trial, (t.layer, t.outcome, t.due_layer))),
            _ => None,
        })
        .collect()
}

/// Everything a differential leg needs to build [`Campaign`]s for a case:
/// the validated architecture, seeded input images, labels probed under the
/// case's own quantization arithmetic (so the golden pass accepts every
/// image and no case is vacuous), and the matching fault mode and bit-flip
/// model.
///
/// Property tests that pin one strategy axis (fusion, pooling, sharding, …)
/// build their campaigns from this fixture instead of private per-test
/// models, so the whole suite draws from one architecture distribution.
pub struct CaseFixture {
    arch: rustfi_nn::zoo::random::ArchSpec,
    /// Campaign test images, `[images, C, H, W]`.
    pub images: Tensor,
    /// Per-image labels (the clean model's own predictions).
    pub labels: Vec<usize>,
    /// Neuron or weight faults per the case.
    pub mode: FaultMode,
    /// Bit-flip model matching the case's quantization regime.
    pub model: Arc<dyn PerturbationModel>,
}

impl CaseFixture {
    /// Builds the fixture, validating the architecture on the way: the
    /// sampled spec must pass [`infer_dims`](rustfi_nn::Network::infer_dims)
    /// and the inferred output shape must match a real forward pass.
    pub fn new(case: &FuzzCase) -> Result<CaseFixture, String> {
        let mut net = case
            .arch
            .build_checked()
            .map_err(|e| format!("sampled arch failed validation: {e}"))?;
        let hw = case.arch.image_hw;
        let input_dims = [case.images, case.arch.in_channels, hw, hw];
        let inferred = net
            .infer_dims(&input_dims)
            .map_err(|e| format!("infer_dims rejected campaign input: {e}"))?;
        let mut data_rng = SeededRng::new(case.seed).fork(3);
        let images = Tensor::rand_normal(&input_dims, 0.0, 1.0, &mut data_rng);
        let forwarded = net.forward(&images);
        if inferred != forwarded.dims() {
            return Err(format!(
                "infer_dims says {inferred:?} but forward produced {:?}",
                forwarded.dims()
            ));
        }

        // Label probe under the campaign's own arithmetic (calibrated INT8
        // backend for `QuantMode::Int8`, activation snapping for
        // `Simulated`), mirroring the campaign's golden pass exactly.
        let mut probe = FaultInjector::new(case.arch.build(), FiConfig::for_input(&input_dims))
            .map_err(|e| format!("probe injector: {e}"))?;
        match case.quant {
            QuantMode::Off => {}
            QuantMode::Simulated => probe.enable_int8_activations(),
            QuantMode::Int8 => {
                let imgs: Vec<Tensor> = (0..case.images).map(|i| images.select_batch(i)).collect();
                let table = Arc::new(CalibrationTable::calibrate(probe.net_mut(), &imgs));
                probe.enable_int8_backend(table);
            }
        }
        let labels: Vec<usize> = (0..case.images)
            .map(|i| rustfi::metrics::top1(probe.forward(&images.select_batch(i)).data()))
            .collect();

        let mode = if case.weight_fault {
            FaultMode::Weight(WeightSelect::Random)
        } else {
            FaultMode::Neuron(NeuronSelect::Random)
        };
        let model: Arc<dyn PerturbationModel> = if case.quant == QuantMode::Int8 {
            Arc::new(models::BitFlipInt8::new(models::BitSelect::Random))
        } else {
            Arc::new(models::BitFlipFp32::new(models::BitSelect::Random))
        };
        Ok(CaseFixture {
            arch: case.arch.clone(),
            images,
            labels,
            mode,
            model,
        })
    }

    /// A model factory for [`Campaign::new`], rebuilding the architecture
    /// with its seeded weights on every call.
    pub fn factory(&self) -> impl Fn() -> rustfi_nn::Network + Sync {
        let arch = self.arch.clone();
        move || arch.build()
    }
}

/// Runs one case through every differential leg, returning the first
/// divergence as a [`CaseFailure`].
///
/// Legs, in order:
///
/// 1. **build** — the sampled architecture must validate via
///    [`infer_dims`](rustfi_nn::Network::infer_dims) and the inferred output
///    shape must match the real forward pass.
/// 2. **serial-vs-accelerated** — records and counts of a single-threaded,
///    unfused, uncached, unpooled reference must equal those of the fully
///    accelerated configuration (threads, fusion, prefix cache, pooling per
///    the case's knobs).
/// 3. **accounting** — prefix and fusion statistics must account for every
///    trial.
/// 4. **telemetry** — a sidecar-recorded accelerated run must reproduce the
///    reference records, write no torn lines, and log exactly one
///    `TrialOutcome` per trial, agreeing with the record stream.
/// 5. **shard-merge** (when `case.shards > 1`) — running every shard of the
///    plan through its own journal and merging must reproduce the reference
///    records and counts.
/// 6. **shard-telemetry** — merging the per-shard sidecars must yield the
///    same `(trial, layer, outcome)` set as the unsharded sidecar.
pub fn run_case(case: &FuzzCase) -> Result<CaseReport, Box<CaseFailure>> {
    // Boxed so the hot Ok path isn't sized for the failure payload.
    let fail = |leg: &'static str, detail: String| {
        Box::new(CaseFailure {
            case: case.clone(),
            leg,
            detail,
        })
    };

    // Leg 1: fixture construction performs the build-time shape checks.
    let fixture = CaseFixture::new(case).map_err(|detail| fail("build", detail))?;
    let factory = fixture.factory();
    let campaign = Campaign::new(
        &factory,
        &fixture.images,
        &fixture.labels,
        fixture.mode.clone(),
        Arc::clone(&fixture.model),
    );

    let reference_cfg = case.reference_config();
    let accel_cfg = case.accelerated_config();

    // Leg 2: serial reference vs. the fully accelerated strategy.
    let reference = campaign
        .run(&reference_cfg)
        .map_err(|e| fail("serial-vs-accelerated", format!("reference run: {e}")))?;
    let accelerated = campaign
        .run(&accel_cfg)
        .map_err(|e| fail("serial-vs-accelerated", format!("accelerated run: {e}")))?;
    let mut legs = 2;
    diff_results("serial-vs-accelerated", &reference, &accelerated)
        .map_err(|d| fail("serial-vs-accelerated", d))?;
    let trials_run = reference.counts.total();

    // Leg 3: strategy statistics account for every trial.
    if let Some(p) = &accelerated.prefix {
        if p.hits + p.misses != trials_run as u64 {
            return Err(fail(
                "accounting",
                format!(
                    "prefix cache saw {} lookups for {trials_run} trials",
                    p.hits + p.misses
                ),
            ));
        }
    }
    if let Some(fu) = &accelerated.fusion {
        if fu.fused_trials + fu.serial_trials != trials_run as u64 {
            return Err(fail(
                "accounting",
                format!(
                    "fusion planned {} trials of {trials_run}",
                    fu.fused_trials + fu.serial_trials
                ),
            ));
        }
        if fu.max_width > case.fusion_width {
            return Err(fail(
                "accounting",
                format!(
                    "fusion width {} exceeds configured {}",
                    fu.max_width, case.fusion_width
                ),
            ));
        }
    }
    legs += 1;

    // Leg 4: recording telemetry must not perturb results, and the sidecar
    // must agree with the record stream.
    let scratch =
        Scratch::new("case", case.seed).map_err(|e| fail("telemetry", format!("scratch: {e}")))?;
    let sidecar_path = scratch.0.join("run.telemetry.jsonl");
    let sidecar = SidecarRecorder::create(&sidecar_path, 0, 1, 0)
        .map_err(|e| fail("telemetry", format!("sidecar: {e}")))?;
    let observed_cfg = CampaignConfig {
        recorder: Some(Arc::new(sidecar) as Arc<dyn Recorder>),
        ..accel_cfg.clone()
    };
    let observed = campaign
        .run(&observed_cfg)
        .map_err(|e| fail("telemetry", format!("observed run: {e}")))?;
    diff_results("telemetry", &reference, &observed).map_err(|d| fail("telemetry", d))?;
    let sc = read_sidecar(&sidecar_path).map_err(|e| fail("telemetry", format!("read: {e}")))?;
    if sc.torn_lines != 0 {
        return Err(fail(
            "telemetry",
            format!("{} torn sidecar lines", sc.torn_lines),
        ));
    }
    let unsharded_outcomes = outcome_set(&sc.batch.events);
    if unsharded_outcomes.len() != trials_run {
        return Err(fail(
            "telemetry",
            format!(
                "sidecar logged {} trial outcomes for {trials_run} trials",
                unsharded_outcomes.len()
            ),
        ));
    }
    for r in &reference.records {
        match unsharded_outcomes.get(&r.trial) {
            None => {
                return Err(fail(
                    "telemetry",
                    format!("trial {} missing from sidecar", r.trial),
                ))
            }
            Some((_, outcome, _)) if *outcome != r.outcome.label() => {
                return Err(fail(
                    "telemetry",
                    format!(
                        "trial {}: record says {}, sidecar says {outcome}",
                        r.trial,
                        r.outcome.label()
                    ),
                ))
            }
            Some(_) => {}
        }
    }
    legs += 1;

    // Legs 5+6: shard-merge invariance for both journals and telemetry.
    if case.shards > 1 {
        let mut journal_paths = Vec::new();
        let mut sidecar_paths = Vec::new();
        for spec in plan_shards(reference_cfg.trials, case.shards) {
            let journal = spec.journal_path(&scratch.0);
            let telemetry = scratch
                .0
                .join(format!("shard-{}.telemetry.jsonl", spec.index));
            let recorder = SidecarRecorder::create(&telemetry, spec.index, case.shards, 0)
                .map_err(|e| fail("shard-merge", format!("shard sidecar: {e}")))?;
            let shard_cfg = CampaignConfig {
                recorder: Some(Arc::new(recorder) as Arc<dyn Recorder>),
                ..accel_cfg.clone()
            };
            campaign
                .run_shard(&shard_cfg, &spec, &journal)
                .map_err(|e| fail("shard-merge", format!("shard {}: {e}", spec.index)))?;
            journal_paths.push(journal);
            sidecar_paths.push(telemetry);
        }
        let merged = merge_shard_journals(&journal_paths)
            .map_err(|e| fail("shard-merge", format!("merge: {e}")))?;
        if !merged.is_complete() {
            return Err(fail("shard-merge", "merged journal has gaps".into()));
        }
        if merged.records != reference.records {
            return Err(fail(
                "shard-merge",
                first_record_diff(&reference.records, &merged.records),
            ));
        }
        if merged.counts != reference.counts {
            return Err(fail(
                "shard-merge",
                format!(
                    "counts diverge: reference {:?} vs merged {:?}",
                    reference.counts, merged.counts
                ),
            ));
        }
        legs += 1;

        let telemetry = merge_shard_telemetry(&sidecar_paths);
        if let Some((path, why)) = telemetry.skipped.first() {
            return Err(fail(
                "shard-telemetry",
                format!("unreadable sidecar {}: {why}", path.display()),
            ));
        }
        let mut sharded_outcomes = OutcomeSet::new();
        for lane in &telemetry.lanes {
            if lane.torn_lines != 0 {
                return Err(fail(
                    "shard-telemetry",
                    format!("shard {} sidecar has torn lines", lane.header.shard),
                ));
            }
            sharded_outcomes.extend(outcome_set(&lane.batch.events));
        }
        if sharded_outcomes != unsharded_outcomes {
            return Err(fail(
                "shard-telemetry",
                format!(
                    "merged shard telemetry diverges: {} sharded vs {} unsharded outcomes",
                    sharded_outcomes.len(),
                    unsharded_outcomes.len()
                ),
            ));
        }
        legs += 1;
    }

    Ok(CaseReport {
        eligible_images: reference.eligible_images,
        trials_run,
        legs,
        leaf_layers: case.arch.leaf_count(),
    })
}

/// Compares two campaign results record-by-record, returning a description
/// of the first divergence.
fn diff_results(
    leg: &str,
    reference: &CampaignResult,
    other: &CampaignResult,
) -> Result<(), String> {
    if reference.records != other.records {
        return Err(first_record_diff(&reference.records, &other.records));
    }
    if reference.counts != other.counts {
        return Err(format!(
            "counts diverge on {leg}: {:?} vs {:?}",
            reference.counts, other.counts
        ));
    }
    Ok(())
}

fn first_record_diff(reference: &[rustfi::TrialRecord], other: &[rustfi::TrialRecord]) -> String {
    if reference.len() != other.len() {
        return format!(
            "record streams have different lengths: {} vs {}",
            reference.len(),
            other.len()
        );
    }
    for (a, b) in reference.iter().zip(other) {
        if a != b {
            return format!("first diverging record:\n  reference: {a:?}\n  other:     {b:?}");
        }
    }
    "records compare unequal but no element differs".into()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fuzz::{cases, container_cases};
    use proptest::Strategy;

    #[test]
    fn a_handful_of_cases_pass_every_leg() {
        let mut sharded = false;
        for seed in 0..4u64 {
            let case = FuzzCase::sample(seed);
            sharded |= case.shards > 1;
            let report = run_case(&case).unwrap_or_else(|f| panic!("{f}"));
            assert!(
                report.legs >= 4,
                "seed {seed} ran only {} legs",
                report.legs
            );
            assert_eq!(report.eligible_images, case.images, "seed {seed}");
            assert_eq!(report.trials_run, case.trials, "seed {seed}");
        }
        // At least one of the smoke seeds must cover the shard legs; if the
        // distribution shifts, pin different seeds here.
        assert!(sharded, "no smoke seed exercised sharding");
    }

    #[test]
    fn forced_container_case_runs() {
        let mut rng = proptest::TestRng::deterministic("forced_container_case_runs");
        let case = container_cases().generate(&mut rng);
        assert!(case.arch.has_residual() && case.arch.has_branches());
        run_case(&case).unwrap_or_else(|f| panic!("{f}"));
    }

    #[test]
    fn strategy_draws_are_replayable_by_seed() {
        let mut rng = proptest::TestRng::deterministic("strategy_draws_are_replayable");
        let drawn = cases().generate(&mut rng);
        assert_eq!(drawn, FuzzCase::sample(drawn.seed));
    }
}
