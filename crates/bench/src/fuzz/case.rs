//! Fuzz-case sampling and the replayable `key = value` case-file format.

use rustfi::{GuardMode, QuantMode};
use rustfi_nn::zoo::random::{ArchSpec, ForcedTopology};
use rustfi_tensor::SeededRng;
use std::fmt;

/// One complete differential test case, fully determined by [`FuzzCase::seed`]
/// (plus the [`ForcedTopology`] constraint it was sampled under).
///
/// Everything downstream — the architecture, its weights, the input images,
/// the fault configuration, every campaign knob — derives deterministically
/// from that one `u64`, so a failing case is pinned by a single number and a
/// short `key = value` file replays it bit-for-bit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuzzCase {
    /// Master seed every other field derives from.
    pub seed: u64,
    /// Topology constraint the architecture was sampled under.
    pub forced: ForcedTopology,
    /// The sampled architecture (re-derived from `seed`, never serialized).
    pub arch: ArchSpec,
    /// Test-set images (small: the differential harness runs each case
    /// through several full campaigns).
    pub images: usize,
    /// Trials per campaign.
    pub trials: usize,
    /// Weight faults instead of neuron faults.
    pub weight_fault: bool,
    /// Quantization regime (picks the matching bit-flip model).
    pub quant: QuantMode,
    /// NaN/Inf guard mode.
    pub guard: GuardMode,
    /// Worker threads for the accelerated run (the reference is serial).
    pub threads: usize,
    /// Fusion width for the accelerated run; `0` disables fusion.
    pub fusion_width: usize,
    /// Prefix-cache budget in KiB for the accelerated run; `0` disables it.
    pub prefix_budget_kib: usize,
    /// Tensor-pool budget in bytes for the accelerated run; `0` disables
    /// pooling.
    pub pool_budget_bytes: usize,
    /// Shard count for the merge-invariance leg; `1` skips it.
    pub shards: usize,
    /// Compiled forward plan (weight prepacking + fused GEMM epilogues)
    /// for the accelerated run; the reference always runs unplanned.
    pub plan: bool,
}

impl FuzzCase {
    /// Samples a case from the full architecture distribution.
    pub fn sample(seed: u64) -> Self {
        Self::sample_with(seed, ForcedTopology::default())
    }

    /// Samples a case whose architecture must contain the `forced`
    /// topologies.
    pub fn sample_with(seed: u64, forced: ForcedTopology) -> Self {
        let rng = SeededRng::new(seed);
        let arch = ArchSpec::sample_with(&mut rng.fork(1), forced);
        let mut k = rng.fork(2);
        let quant = match k.below(4) {
            0 => QuantMode::Simulated,
            1 => QuantMode::Int8,
            _ => QuantMode::Off,
        };
        let guard = match k.below(4) {
            0 => GuardMode::Off,
            1 => GuardMode::ShortCircuit,
            _ => GuardMode::Record,
        };
        FuzzCase {
            seed,
            forced,
            arch,
            images: k.range(3, 5),
            trials: k.range(6, 13),
            weight_fault: k.chance(0.5),
            quant,
            guard,
            threads: k.range(2, 5),
            fusion_width: if k.chance(1.0 / 3.0) {
                0
            } else {
                k.range(2, 9)
            },
            prefix_budget_kib: if k.chance(1.0 / 3.0) {
                0
            } else {
                1usize << k.range(2, 17)
            },
            pool_budget_bytes: if k.chance(1.0 / 3.0) { 0 } else { 128 << 20 },
            shards: if k.chance(0.5) { 1 } else { k.range(2, 4) },
            // Drawn last so older seeds keep the knobs they replayed with.
            plan: k.chance(0.5),
        }
    }

    /// The single-threaded, unfused, uncached, unpooled reference
    /// configuration every differential leg compares against.
    pub fn reference_config(&self) -> rustfi::CampaignConfig {
        rustfi::CampaignConfig {
            trials: self.trials,
            seed: self.seed,
            threads: Some(1),
            quant: self.quant,
            guard: self.guard,
            pool_budget_bytes: 0,
            ..rustfi::CampaignConfig::default()
        }
    }

    /// The fully accelerated configuration: this case's thread count,
    /// fusion width, prefix budget and pool budget layered onto
    /// [`FuzzCase::reference_config`].
    pub fn accelerated_config(&self) -> rustfi::CampaignConfig {
        rustfi::CampaignConfig {
            threads: Some(self.threads),
            fusion: (self.fusion_width > 0)
                .then(|| rustfi::FusionConfig::with_width(self.fusion_width)),
            prefix_cache: (self.prefix_budget_kib > 0)
                .then(|| rustfi::PrefixCacheConfig::with_budget(self.prefix_budget_kib << 10)),
            pool_budget_bytes: self.pool_budget_bytes,
            plan: self.plan,
            ..self.reference_config()
        }
    }

    /// Serializes the case as a replayable regression file.
    ///
    /// The file pins the master seed plus every scalar knob, so a replay is
    /// stable even if the knob *distribution* in [`FuzzCase::sample_with`]
    /// shifts later; only the architecture is re-derived from the seed.
    pub fn to_case_file(&self) -> String {
        format!(
            "# rustfi differential-fuzzer regression case\n\
             # replay: cargo run --release -p rustfi-bench --bin fuzz_gate -- --replay <this file>\n\
             # arch: {arch}\n\
             seed = {seed:#018x}\n\
             forced_residual = {fr}\n\
             forced_branches = {fb}\n\
             images = {images}\n\
             trials = {trials}\n\
             weight_fault = {weight_fault}\n\
             quant = {quant}\n\
             guard = {guard}\n\
             threads = {threads}\n\
             fusion_width = {fusion_width}\n\
             prefix_budget_kib = {prefix}\n\
             pool_budget_bytes = {pool}\n\
             shards = {shards}\n\
             plan = {plan}\n",
            arch = self.arch,
            seed = self.seed,
            fr = self.forced.residual,
            fb = self.forced.branches,
            images = self.images,
            trials = self.trials,
            weight_fault = self.weight_fault,
            quant = quant_str(self.quant),
            guard = guard_str(self.guard),
            threads = self.threads,
            fusion_width = self.fusion_width,
            prefix = self.prefix_budget_kib,
            pool = self.pool_budget_bytes,
            shards = self.shards,
            plan = self.plan,
        )
    }
}

impl fmt::Display for FuzzCase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "seed={:#x} {} faults={} quant={} guard={} threads={} fusion={} prefix={}KiB pool={}B shards={} plan={} arch=[{}]",
            self.seed,
            if self.forced.residual || self.forced.branches {
                "forced-topology"
            } else {
                "free-topology"
            },
            if self.weight_fault { "weight" } else { "neuron" },
            quant_str(self.quant),
            guard_str(self.guard),
            self.threads,
            self.fusion_width,
            self.prefix_budget_kib,
            self.pool_budget_bytes,
            self.shards,
            self.plan,
            self.arch,
        )
    }
}

fn quant_str(q: QuantMode) -> &'static str {
    match q {
        QuantMode::Off => "off",
        QuantMode::Simulated => "simulated",
        QuantMode::Int8 => "int8",
    }
}

fn guard_str(g: GuardMode) -> &'static str {
    match g {
        GuardMode::Off => "off",
        GuardMode::Record => "record",
        GuardMode::ShortCircuit => "short-circuit",
    }
}

/// Parses a regression case file written by [`FuzzCase::to_case_file`].
///
/// `seed` (and the two `forced_*` flags) are required and fix the
/// architecture; any scalar knob present overrides the value re-derived from
/// the seed, so old corpus files keep their exact shape as the sampler
/// evolves. Unknown keys are rejected to catch typos in hand-edited files.
pub fn parse_case_file(text: &str) -> Result<FuzzCase, String> {
    let mut seed: Option<u64> = None;
    let mut forced = ForcedTopology::default();
    let mut knobs: Vec<(String, String)> = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| format!("line {}: expected `key = value`, got {line:?}", idx + 1))?;
        let (key, value) = (key.trim(), value.trim());
        match key {
            "seed" => {
                let parsed = if let Some(hex) = value.strip_prefix("0x") {
                    u64::from_str_radix(hex, 16)
                } else {
                    value.parse()
                };
                seed = Some(parsed.map_err(|e| format!("line {}: bad seed: {e}", idx + 1))?);
            }
            "forced_residual" => forced.residual = parse_bool(value)?,
            "forced_branches" => forced.branches = parse_bool(value)?,
            _ => knobs.push((key.to_string(), value.to_string())),
        }
    }
    let seed = seed.ok_or("case file has no `seed` line")?;
    let mut case = FuzzCase::sample_with(seed, forced);
    for (key, value) in knobs {
        match key.as_str() {
            "images" => case.images = parse_usize(&value)?,
            "trials" => case.trials = parse_usize(&value)?,
            "weight_fault" => case.weight_fault = parse_bool(&value)?,
            "quant" => {
                case.quant = match value.as_str() {
                    "off" => QuantMode::Off,
                    "simulated" => QuantMode::Simulated,
                    "int8" => QuantMode::Int8,
                    other => return Err(format!("unknown quant mode {other:?}")),
                }
            }
            "guard" => {
                case.guard = match value.as_str() {
                    "off" => GuardMode::Off,
                    "record" => GuardMode::Record,
                    "short-circuit" => GuardMode::ShortCircuit,
                    other => return Err(format!("unknown guard mode {other:?}")),
                }
            }
            "threads" => case.threads = parse_usize(&value)?.max(1),
            "fusion_width" => case.fusion_width = parse_usize(&value)?,
            "prefix_budget_kib" => case.prefix_budget_kib = parse_usize(&value)?,
            "pool_budget_bytes" => case.pool_budget_bytes = parse_usize(&value)?,
            "shards" => case.shards = parse_usize(&value)?.max(1),
            "plan" => case.plan = parse_bool(&value)?,
            other => return Err(format!("unknown case-file key {other:?}")),
        }
    }
    if case.images == 0 || case.trials == 0 {
        return Err("images and trials must be nonzero".into());
    }
    Ok(case)
}

fn parse_bool(value: &str) -> Result<bool, String> {
    value
        .parse()
        .map_err(|_| format!("expected true/false, got {value:?}"))
}

fn parse_usize(value: &str) -> Result<usize, String> {
    value
        .parse()
        .map_err(|e| format!("bad integer {value:?}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_is_deterministic_and_seed_pins_everything() {
        for seed in [0u64, 1, 0xDEAD_BEEF, u64::MAX] {
            assert_eq!(FuzzCase::sample(seed), FuzzCase::sample(seed));
        }
        assert_ne!(FuzzCase::sample(7).arch, FuzzCase::sample(8).arch);
    }

    #[test]
    fn case_files_round_trip() {
        for seed in 0..24u64 {
            let case = FuzzCase::sample(seed);
            let parsed = parse_case_file(&case.to_case_file()).unwrap();
            assert_eq!(case, parsed, "seed {seed}");
        }
        let forced = ForcedTopology {
            residual: true,
            branches: true,
        };
        let case = FuzzCase::sample_with(99, forced);
        let parsed = parse_case_file(&case.to_case_file()).unwrap();
        assert_eq!(case, parsed);
        assert!(parsed.arch.has_residual() && parsed.arch.has_branches());
    }

    #[test]
    fn knob_overrides_survive_even_if_rederivation_differs() {
        let mut case = FuzzCase::sample(3);
        case.trials = 61;
        case.quant = QuantMode::Int8;
        case.shards = 3;
        let parsed = parse_case_file(&case.to_case_file()).unwrap();
        assert_eq!(parsed.trials, 61);
        assert_eq!(parsed.quant, QuantMode::Int8);
        assert_eq!(parsed.shards, 3);
    }

    #[test]
    fn bad_case_files_are_rejected_with_context() {
        assert!(parse_case_file("").unwrap_err().contains("no `seed`"));
        assert!(parse_case_file("seed = xyz")
            .unwrap_err()
            .contains("bad seed"));
        assert!(parse_case_file("seed = 1\nbogus_key = 2")
            .unwrap_err()
            .contains("bogus_key"));
        assert!(parse_case_file("seed = 1\nquant = float64")
            .unwrap_err()
            .contains("float64"));
    }

    #[test]
    fn knob_distribution_covers_the_matrix() {
        let mut seen_int8 = false;
        let mut seen_weight = false;
        let mut seen_sharded = false;
        let mut seen_fused = false;
        let mut seen_prefix_off = false;
        let mut seen_plan = false;
        let mut seen_unplanned = false;
        for seed in 0..64u64 {
            let c = FuzzCase::sample(seed);
            seen_int8 |= c.quant == QuantMode::Int8;
            seen_weight |= c.weight_fault;
            seen_sharded |= c.shards > 1;
            seen_fused |= c.fusion_width > 0;
            seen_prefix_off |= c.prefix_budget_kib == 0;
            seen_plan |= c.plan;
            seen_unplanned |= !c.plan;
            assert!((3..=4).contains(&c.images));
            assert!((6..=12).contains(&c.trials));
            assert!((2..=4).contains(&c.threads));
        }
        assert!(seen_int8 && seen_weight && seen_sharded && seen_fused && seen_prefix_off);
        assert!(seen_plan && seen_unplanned, "plan knob exercises both arms");
    }
}
