//! Shared harness utilities for the experiment binaries and Criterion
//! benches that regenerate the paper's tables and figures.
//!
//! Each paper artifact maps to one binary (see `src/bin/`):
//!
//! | Paper artifact | Binary |
//! |---|---|
//! | Fig. 3 (runtime overhead, 19 networks + batch sweep) | `fig3_overhead_table` |
//! | Fig. 4 (INT8 bit-flip misclassification probability) | `fig4_classification` |
//! | Fig. 5 (object-detection perturbations) | `fig5_detection` |
//! | Fig. 6 (IBP relative vulnerability grid) | `fig6_ibp` |
//! | Table I (training with injections) | `table1_training` |
//! | Fig. 7 (Grad-CAM sensitivity) | `fig7_gradcam` |
//!
//! Criterion benches (`benches/`) cover the Fig. 3 measurement loop and the
//! two design-choice ablations called out in `DESIGN.md`.

pub mod fuzz;

use rustfi::CampaignResult;
use rustfi_data::SynthSpec;
use rustfi_nn::train::TrainConfig;
use rustfi_nn::{checkpoint, train, zoo, Network, ZooConfig};
use std::path::PathBuf;

/// Reads an override from the environment (`RUSTFI_TRIALS`, …), falling back
/// to `default`.
pub fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Reads a float override from the environment, falling back to `default`.
pub fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The quick-mode knobs shared by `benches/campaign_throughput` and the
/// `bench_gate` CI binary, read once from the `RUSTFI_*` environment instead
/// of being re-parsed at every use site.
#[derive(Debug, Clone)]
pub struct QuickMode {
    /// Zoo model under test (`RUSTFI_BENCH_MODEL`, default `vgg19`).
    pub model: String,
    /// Dataset geometry (`RUSTFI_BENCH_DATASET`, default `cifar10-like`).
    pub dataset: String,
    /// Test images (`RUSTFI_IMAGES`, default 8).
    pub images: usize,
    /// Trials per layer (`RUSTFI_TRIALS`, default 500 — per-campaign setup
    /// costs amortize over trials, so very small counts understate the
    /// steady-state throughput gain).
    pub trials: usize,
    /// Timed iterations per measurement (`RUSTFI_CAMPAIGN_ITERS`, default 3).
    pub iters: usize,
    /// Summary destination (`RUSTFI_BENCH_JSON`, default
    /// `BENCH_campaign.json` in the repository root); `None` when suppressed
    /// with `RUSTFI_BENCH_JSON=skip`.
    pub json_path: Option<String>,
}

impl QuickMode {
    /// Reads every knob from the environment.
    pub fn from_env() -> Self {
        let json = match std::env::var("RUSTFI_BENCH_JSON") {
            // Cargo runs bench harnesses with CWD = the package dir but
            // `cargo run` binaries (like bench_gate) with the caller's CWD,
            // so a relative override is anchored at the workspace root to
            // mean the same file from both sides.
            Ok(p) if p != "skip" && !std::path::Path::new(&p).is_absolute() => {
                format!("{}/../../{p}", env!("CARGO_MANIFEST_DIR"))
            }
            Ok(p) => p,
            Err(_) => format!("{}/../../BENCH_campaign.json", env!("CARGO_MANIFEST_DIR")),
        };
        Self {
            model: std::env::var("RUSTFI_BENCH_MODEL").unwrap_or_else(|_| "vgg19".into()),
            dataset: std::env::var("RUSTFI_BENCH_DATASET")
                .unwrap_or_else(|_| "cifar10-like".into()),
            images: env_usize("RUSTFI_IMAGES", 8),
            trials: env_usize("RUSTFI_TRIALS", 500),
            iters: env_usize("RUSTFI_CAMPAIGN_ITERS", 3),
            json_path: (json != "skip").then_some(json),
        }
    }
}

/// The CI perf-regression gate's comparison logic (see `src/bin/bench_gate`).
///
/// The gate compares *within-run speedup ratios* — prefix-cache speedup,
/// fused speedup, matmul kernel geomean, packed-vs-unpacked GEMM geomean,
/// planned-vs-fused campaign rate — between a freshly measured
/// `BENCH_campaign.json` and the committed baseline. Ratios of two
/// measurements taken on the same machine in the same run cancel out the
/// machine's absolute speed, so the committed baseline stays meaningful on
/// any CI runner; absolute trials/sec would not.
pub mod gate {
    /// How to pull one gated metric out of a bench summary.
    type Extract = fn(&str) -> Option<f64>;

    /// Extracts the JSON number following `"key":` at or after byte `from`.
    ///
    /// The bench summary is flat enough that positional scanning beats a
    /// JSON dependency; `from` disambiguates keys that repeat across
    /// sections (each matmul row has its own `"speedup"`).
    pub fn json_f64(text: &str, key: &str, from: usize) -> Option<f64> {
        let needle = format!("\"{key}\":");
        let at = from + text.get(from..)?.find(&needle)? + needle.len();
        let rest = text[at..].trim_start();
        let end = rest
            .find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c)))
            .unwrap_or(rest.len());
        rest[..end].parse().ok()
    }

    /// One gated metric: the fresh run must retain at least `min_ratio` of
    /// the baseline's value.
    #[derive(Debug, Clone, PartialEq)]
    pub struct Check {
        pub name: &'static str,
        pub baseline: f64,
        pub fresh: f64,
    }

    impl Check {
        /// Fresh-to-baseline ratio (1.0 = exactly as fast as the baseline).
        pub fn ratio(&self) -> f64 {
            self.fresh / self.baseline
        }

        /// Whether this metric clears the gate.
        pub fn passes(&self, min_ratio: f64) -> bool {
            self.baseline > 0.0 && self.fresh > 0.0 && self.ratio() >= min_ratio
        }
    }

    /// Builds the gated comparisons between two bench summaries. A metric
    /// missing from either file is skipped (older baselines may predate it);
    /// an empty return therefore means the files share no comparable metric.
    pub fn checks(baseline: &str, fresh: &str) -> Vec<Check> {
        let mut out = Vec::new();
        let pairs: [(&'static str, Extract); 8] = [
            ("matmul_geomean_speedup", |t| {
                json_f64(t, "matmul_geomean_speedup", 0)
            }),
            ("packed_vs_unpacked_geomean", |t| {
                json_f64(t, "packed_vs_unpacked_geomean", 0)
            }),
            ("int8_matmul_geomean_speedup", |t| {
                json_f64(t, "int8_matmul_geomean_speedup", 0)
            }),
            ("elementwise_geomean_speedup", |t| {
                json_f64(t, "elementwise_geomean_speedup", 0)
            }),
            ("prefix_cache_speedup", |t| {
                let at = t.find("\"campaign\"")?;
                json_f64(t, "speedup", at)
            }),
            ("fused_speedup", |t| json_f64(t, "fused_speedup", 0)),
            ("planned_fused_vs_f32_fused", |t| {
                json_f64(t, "planned_fused_vs_f32_fused", 0)
            }),
            ("int8_fused_vs_f32", |t| json_f64(t, "int8_fused_vs_f32", 0)),
        ];
        for (name, get) in pairs {
            if let (Some(b), Some(f)) = (get(baseline), get(fresh)) {
                out.push(Check {
                    name,
                    baseline: b,
                    fresh: f,
                });
            }
        }
        out
    }

    /// Absolute within-run floors, judged against the fresh summary alone
    /// (pass = `ratio() >= 1.0`). Unlike the baseline-relative [`checks`],
    /// these pin a claim to a constant: the AVX2 int8 GEMM must beat its own
    /// portable compilation by at least 1.5x, and the compiled forward plan
    /// (prepacked panels + fused GEMM epilogues) must beat the plain fused
    /// campaign by at least 1.25x — both within-run ratios, so still
    /// runner-speed independent. The floors only apply when the summary
    /// says the AVX2 kernels actually dispatched; a portable-only host has
    /// no microkernel for packing to feed and is skipped.
    pub fn absolute_floors(fresh: &str) -> Vec<Check> {
        let mut out = Vec::new();
        if fresh.contains("\"int8_matmul_simd\": \"avx2\"") {
            if let Some(f) = json_f64(fresh, "int8_matmul_geomean_speedup", 0) {
                out.push(Check {
                    name: "int8_matmul_floor_1.5x",
                    baseline: 1.5,
                    fresh: f,
                });
            }
            if let Some(f) = json_f64(fresh, "planned_fused_vs_f32_fused", 0) {
                out.push(Check {
                    name: "planned_fused_floor_1.25x",
                    baseline: 1.25,
                    fresh: f,
                });
            }
        }
        out
    }
}

/// A counting global allocator for the zero-allocation forward-path claim
/// (see `src/bin/alloc_gate` and `benches/campaign_throughput`).
///
/// Install it with `#[global_allocator]` in a binary, warm the code under
/// test, then diff [`alloc_count::thread_allocs`] around the measured
/// section. Counting is per-thread, so a single-threaded measurement is
/// immune to allocator traffic from unrelated threads.
pub mod alloc_count {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::cell::Cell;

    /// Forwards to the system allocator, bumping a thread-local counter on
    /// every allocation (plain, zeroed, and reallocations; frees are not
    /// counted — the claim under test is about acquiring memory).
    pub struct CountingAlloc;

    thread_local! {
        // `const` init: reading the counter never itself allocates.
        static ALLOCS: Cell<u64> = const { Cell::new(0) };
    }

    /// Heap allocations made by the calling thread so far.
    pub fn thread_allocs() -> u64 {
        ALLOCS.with(Cell::get)
    }

    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCS.with(|c| c.set(c.get() + 1));
            System.alloc(layout)
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout)
        }

        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            ALLOCS.with(|c| c.set(c.get() + 1));
            System.alloc_zeroed(layout)
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOCS.with(|c| c.set(c.get() + 1));
            System.realloc(ptr, layout, new_size)
        }
    }

    /// Allocations per forward pass of `net` at steady state: runs `warm`
    /// un-counted passes (filling caches and the tensor pool), then counts
    /// across `iters` passes and returns the mean. Meaningful only with
    /// [`CountingAlloc`] installed; callers enable the tensor pool first.
    pub fn steady_state_forward_allocs(
        net: &mut rustfi_nn::Network,
        input: &rustfi_tensor::Tensor,
        warm: usize,
        iters: usize,
    ) -> f64 {
        assert!(iters > 0, "need at least one counted iteration");
        for _ in 0..warm {
            std::hint::black_box(net.forward(input)).into_pool();
        }
        let before = thread_allocs();
        for _ in 0..iters {
            std::hint::black_box(net.forward(input)).into_pool();
        }
        (thread_allocs() - before) as f64 / iters as f64
    }
}

/// The 19 network/dataset pairs of Fig. 3, as `(dataset, model)` names.
pub fn fig3_pairs() -> Vec<(&'static str, &'static str)> {
    let mut pairs = Vec::new();
    for model in [
        "alexnet",
        "densenet",
        "preresnet110",
        "resnet110",
        "resnext",
        "vgg19",
    ] {
        pairs.push(("cifar10-like", model));
    }
    for model in [
        "alexnet",
        "densenet",
        "preresnet110",
        "resnet110",
        "resnext",
        "vgg19",
    ] {
        pairs.push(("cifar100-like", model));
    }
    for model in [
        "alexnet",
        "googlenet",
        "mobilenet",
        "resnet50",
        "shufflenet",
        "squeezenet",
        "vgg19",
    ] {
        pairs.push(("imagenet-like", model));
    }
    pairs
}

/// The six networks of Fig. 4 (ImageNet-like).
pub fn fig4_models() -> &'static [&'static str] {
    &[
        "alexnet",
        "googlenet",
        "resnet50",
        "shufflenet",
        "squeezenet",
        "vgg19",
    ]
}

/// Zoo config for a dataset name.
///
/// # Panics
///
/// Panics on an unknown dataset name.
pub fn zoo_config_for(dataset: &str) -> ZooConfig {
    match dataset {
        "cifar10-like" => ZooConfig::cifar10_like(),
        "cifar100-like" => ZooConfig::cifar100_like(),
        "imagenet-like" => ZooConfig::imagenet_like(),
        other => panic!("unknown dataset {other}"),
    }
}

/// Per-model training recipe: architectures without batch norm need gentler
/// learning rates on the synthetic datasets; BN models converge fastest with
/// the default.
pub fn recipe(model: &str) -> TrainConfig {
    match model {
        // No batch norm: sensitive to large steps.
        "alexnet" | "vgg19" | "lenet" => TrainConfig {
            lr: 0.005,
            momentum: 0.9,
            epochs: 20,
            ..TrainConfig::default()
        },
        // Mostly-unnormalized branched nets: moderate lr, longer schedule.
        "googlenet" | "squeezenet" => TrainConfig {
            lr: 0.01,
            momentum: 0.9,
            epochs: 30,
            ..TrainConfig::default()
        },
        // Batch-normalized residual/compact nets.
        _ => TrainConfig {
            lr: 0.05,
            momentum: 0.9,
            epochs: 12,
            ..TrainConfig::default()
        },
    }
}

/// Trains `model` on `dataset`, checkpoints it, and returns the checkpoint
/// path plus test accuracy. The checkpoint lands in the temp directory and
/// is the caller's to delete.
///
/// # Panics
///
/// Panics on unknown names or checkpoint I/O failure.
pub fn train_and_checkpoint(model: &str, dataset: &SynthSpec) -> (PathBuf, f32) {
    let data = dataset.generate();
    let cfg = zoo_config_for(dataset.name);
    let mut net = zoo::by_name(model, &cfg).unwrap_or_else(|| panic!("unknown model {model}"));
    train::fit(
        &mut net,
        &data.train_images,
        &data.train_labels,
        &recipe(model),
    );
    let acc = train::accuracy(&mut net, &data.test_images, &data.test_labels, 32);
    let path = std::env::temp_dir().join(format!(
        "rustfi-bench-{}-{}-{}.ckpt",
        dataset.name,
        model,
        std::process::id()
    ));
    checkpoint::save(&mut net, &path).expect("write checkpoint");
    (path, acc)
}

/// Builds a factory closure that reconstructs the trained model from its
/// checkpoint (what campaign workers use).
pub fn factory_from_checkpoint(
    model: &'static str,
    dataset_name: &'static str,
    path: PathBuf,
) -> impl Fn() -> Network + Sync {
    move || {
        let mut net = zoo::by_name(model, &zoo_config_for(dataset_name)).expect("known model");
        checkpoint::load(&mut net, &path).expect("read checkpoint");
        net
    }
}

/// Header of the shared campaign-outcome table used by the experiment
/// binaries: one column per outcome kind of the full taxonomy plus the
/// paper's headline rates. Rows come from [`outcome_table_row`].
pub fn outcome_table_header() -> String {
    format!(
        "{:<12} {:>9} {:>9} {:>8} {:>7} {:>7} {:>6} {:>5} {:>11} {:>9} {:>10}",
        "model",
        "accuracy",
        "eligible",
        "masked",
        "SDC",
        "DUE",
        "crash",
        "hang",
        "SDC rate",
        "99% CI",
        "top5-miss"
    )
}

/// One row of the shared outcome table. Pass `None` for `accuracy` when the
/// table has no clean-accuracy column value (e.g. untrained ablations).
pub fn outcome_table_row(name: &str, accuracy: Option<f32>, r: &CampaignResult) -> String {
    let acc = match accuracy {
        Some(a) => format!("{:>8.1}%", 100.0 * a),
        None => format!("{:>9}", "-"),
    };
    format!(
        "{:<12} {} {:>9} {:>8} {:>7} {:>7} {:>6} {:>5} {:>10.3}% {:>8.3}% {:>9.3}%",
        name,
        acc,
        r.eligible_images,
        r.counts.masked,
        r.counts.sdc,
        r.counts.due,
        r.counts.crash,
        r.counts.hang,
        100.0 * r.sdc_rate(),
        100.0 * r.counts.sdc_rate_ci99(),
        100.0 * r.top5_miss_rate()
    )
}

pub use rustfi_obs::mean_seconds;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_has_19_pairs() {
        let pairs = fig3_pairs();
        assert_eq!(pairs.len(), 19);
        // Every pair resolves to a constructible model.
        for (dataset, model) in pairs {
            let cfg = zoo_config_for(dataset);
            assert!(zoo::by_name(model, &cfg).is_some(), "{dataset}/{model}");
        }
    }

    #[test]
    fn recipes_exist_for_all_fig4_models() {
        for model in fig4_models() {
            let r = recipe(model);
            assert!(r.lr > 0.0 && r.epochs > 0);
        }
    }

    #[test]
    fn env_usize_parses_and_defaults() {
        std::env::set_var("RUSTFI_TEST_KNOB", "123");
        assert_eq!(env_usize("RUSTFI_TEST_KNOB", 5), 123);
        assert_eq!(env_usize("RUSTFI_TEST_KNOB_MISSING", 5), 5);
        std::env::remove_var("RUSTFI_TEST_KNOB");
    }

    #[test]
    fn outcome_table_rows_line_up_with_the_header() {
        use rustfi::{OutcomeCounts, OutcomeKind};
        let mut counts = OutcomeCounts::default();
        for _ in 0..97 {
            counts.record(&OutcomeKind::Masked);
        }
        counts.record(&OutcomeKind::Sdc);
        counts.record(&OutcomeKind::Crash { detail: "x".into() });
        counts.record(&OutcomeKind::Hang);
        let result = CampaignResult {
            records: Vec::new(),
            counts,
            per_layer: Vec::new(),
            eligible_images: 42,
            prefix: None,
            fusion: None,
        };
        let header = outcome_table_header();
        let with_acc = outcome_table_row("alexnet", Some(0.935), &result);
        let without = outcome_table_row("probe", None, &result);
        assert_eq!(header.len(), with_acc.len(), "\n{header}\n{with_acc}");
        assert_eq!(header.len(), without.len(), "\n{header}\n{without}");
        assert!(with_acc.contains("93.5%"));
        assert!(with_acc.contains("42"));
        // masked, SDC, crash, hang all present.
        for needle in ["97", "1"] {
            assert!(with_acc.contains(needle), "{with_acc}");
        }
    }

    #[test]
    fn quick_mode_reads_defaults_and_overrides() {
        // Only poke knobs no other test reads, to stay order-independent.
        std::env::remove_var("RUSTFI_BENCH_MODEL");
        let qm = QuickMode::from_env();
        assert_eq!(qm.model, "vgg19");
        assert_eq!(qm.dataset, "cifar10-like");
        assert!(
            qm.json_path.is_some(),
            "default path points at the repo root"
        );

        std::env::set_var("RUSTFI_BENCH_MODEL", "alexnet");
        std::env::set_var("RUSTFI_BENCH_JSON", "skip");
        let qm = QuickMode::from_env();
        assert_eq!(qm.model, "alexnet");
        assert!(qm.json_path.is_none(), "skip suppresses the summary");
        std::env::remove_var("RUSTFI_BENCH_MODEL");
        std::env::remove_var("RUSTFI_BENCH_JSON");
    }

    const FAKE_BENCH: &str = r#"{
  "matmul": [
    {"m": 1, "k": 2, "n": 3, "speedup": 9.999}
  ],
  "matmul_geomean_speedup": 2.000,
  "elementwise_geomean_speedup": 1.500,
  "campaign": {
    "model": "vgg19",
    "speedup": 4.000,
    "fused_speedup": 8.000
  }
}"#;

    #[test]
    fn gate_scans_the_right_speedups() {
        use gate::json_f64;
        assert_eq!(json_f64(FAKE_BENCH, "matmul_geomean_speedup", 0), Some(2.0));
        // The campaign's own "speedup", not the matmul row's.
        let at = FAKE_BENCH.find("\"campaign\"").unwrap();
        assert_eq!(json_f64(FAKE_BENCH, "speedup", at), Some(4.0));
        assert_eq!(json_f64(FAKE_BENCH, "no_such_key", 0), None);
    }

    #[test]
    fn gate_checks_compare_ratios_not_absolutes() {
        let fresh = FAKE_BENCH
            .replace("4.000", "3.200") // prefix speedup dropped to 0.8x
            .replace("8.000", "5.000"); // fused speedup dropped to 0.625x
        let checks = gate::checks(FAKE_BENCH, &fresh);
        assert_eq!(checks.len(), 4);
        let by_name = |n: &str| checks.iter().find(|c| c.name == n).unwrap();
        assert!(by_name("matmul_geomean_speedup").passes(0.75), "unchanged");
        assert!(
            by_name("elementwise_geomean_speedup").passes(0.75),
            "unchanged"
        );
        assert!(by_name("prefix_cache_speedup").passes(0.75), "0.8 >= 0.75");
        assert!(!by_name("fused_speedup").passes(0.75), "0.625 < 0.75");
        // A metric absent from one side is skipped, not failed.
        let old_baseline = FAKE_BENCH.replace("\"fused_speedup\": 8.000", "\"x\": 0");
        assert_eq!(gate::checks(&old_baseline, FAKE_BENCH).len(), 3);
        // Nonsense values never pass.
        let broken = gate::Check {
            name: "x",
            baseline: 0.0,
            fresh: 1.0,
        };
        assert!(!broken.passes(0.75));
    }

    const FAKE_BENCH_INT8: &str = r#"{
  "matmul_geomean_speedup": 2.000,
  "int8_matmul": [
    {"m": 1, "k": 2, "n": 3, "speedup": 9.999}
  ],
  "packed_vs_unpacked_geomean": 1.300,
  "int8_matmul_geomean_speedup": 2.500,
  "int8_matmul_simd": "avx2",
  "elementwise_geomean_speedup": 1.500,
  "campaign": {
    "model": "vgg19",
    "speedup": 4.000,
    "fused_speedup": 8.000,
    "planned_fused_vs_f32_fused": 1.600,
    "int8_fused_vs_f32": 1.200
  }
}"#;

    #[test]
    fn gate_compares_int8_metrics_when_both_sides_have_them() {
        let checks = gate::checks(FAKE_BENCH_INT8, FAKE_BENCH_INT8);
        assert_eq!(checks.len(), 8);
        let by_name = |n: &str| checks.iter().find(|c| c.name == n).unwrap();
        // The int8 geomean key must not be confused with the f32 one.
        assert_eq!(by_name("int8_matmul_geomean_speedup").fresh, 2.5);
        assert_eq!(by_name("matmul_geomean_speedup").fresh, 2.0);
        assert_eq!(by_name("int8_fused_vs_f32").fresh, 1.2);
        assert_eq!(by_name("packed_vs_unpacked_geomean").fresh, 1.3);
        assert_eq!(by_name("planned_fused_vs_f32_fused").fresh, 1.6);
        // An old baseline without the int8/packing keys skips them, not fails.
        assert_eq!(gate::checks(FAKE_BENCH, FAKE_BENCH_INT8).len(), 4);
    }

    #[test]
    fn int8_floor_applies_only_when_avx2_dispatched() {
        let floors = gate::absolute_floors(FAKE_BENCH_INT8);
        assert_eq!(floors.len(), 2);
        let by_name = |n: &str| floors.iter().find(|c| c.name == n).unwrap();
        assert!(
            by_name("int8_matmul_floor_1.5x").passes(1.0),
            "2.5 clears the 1.5 floor"
        );
        assert!(
            by_name("planned_fused_floor_1.25x").passes(1.0),
            "1.6 clears the 1.25 floor"
        );
        let slow = FAKE_BENCH_INT8.replace("2.500", "1.400");
        assert!(!gate::absolute_floors(&slow)[0].passes(1.0), "1.4 < 1.5");
        let slow_plan = FAKE_BENCH_INT8.replace("1.600", "1.100");
        assert!(
            !gate::absolute_floors(&slow_plan)[1].passes(1.0),
            "1.1 < 1.25"
        );
        let portable = FAKE_BENCH_INT8.replace("\"avx2\"", "\"portable\"");
        assert!(
            gate::absolute_floors(&portable).is_empty(),
            "portable hosts measure 1.0x by construction and are exempt"
        );
        assert!(gate::absolute_floors(FAKE_BENCH).is_empty(), "no int8 data");
    }

    #[test]
    fn env_f64_parses_and_defaults() {
        std::env::set_var("RUSTFI_TEST_RATIO", "0.5");
        assert!((env_f64("RUSTFI_TEST_RATIO", 0.75) - 0.5).abs() < 1e-12);
        assert!((env_f64("RUSTFI_TEST_RATIO_MISSING", 0.75) - 0.75).abs() < 1e-12);
        std::env::remove_var("RUSTFI_TEST_RATIO");
    }

    #[test]
    fn mean_seconds_is_positive() {
        let s = mean_seconds(3, || {
            std::hint::black_box(1 + 1);
        });
        assert!(s >= 0.0);
    }
}
