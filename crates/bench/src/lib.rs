//! Shared harness utilities for the experiment binaries and Criterion
//! benches that regenerate the paper's tables and figures.
//!
//! Each paper artifact maps to one binary (see `src/bin/`):
//!
//! | Paper artifact | Binary |
//! |---|---|
//! | Fig. 3 (runtime overhead, 19 networks + batch sweep) | `fig3_overhead_table` |
//! | Fig. 4 (INT8 bit-flip misclassification probability) | `fig4_classification` |
//! | Fig. 5 (object-detection perturbations) | `fig5_detection` |
//! | Fig. 6 (IBP relative vulnerability grid) | `fig6_ibp` |
//! | Table I (training with injections) | `table1_training` |
//! | Fig. 7 (Grad-CAM sensitivity) | `fig7_gradcam` |
//!
//! Criterion benches (`benches/`) cover the Fig. 3 measurement loop and the
//! two design-choice ablations called out in `DESIGN.md`.

use rustfi::CampaignResult;
use rustfi_data::SynthSpec;
use rustfi_nn::train::TrainConfig;
use rustfi_nn::{checkpoint, train, zoo, Network, ZooConfig};
use std::path::PathBuf;

/// Reads an override from the environment (`RUSTFI_TRIALS`, …), falling back
/// to `default`.
pub fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The 19 network/dataset pairs of Fig. 3, as `(dataset, model)` names.
pub fn fig3_pairs() -> Vec<(&'static str, &'static str)> {
    let mut pairs = Vec::new();
    for model in [
        "alexnet",
        "densenet",
        "preresnet110",
        "resnet110",
        "resnext",
        "vgg19",
    ] {
        pairs.push(("cifar10-like", model));
    }
    for model in [
        "alexnet",
        "densenet",
        "preresnet110",
        "resnet110",
        "resnext",
        "vgg19",
    ] {
        pairs.push(("cifar100-like", model));
    }
    for model in [
        "alexnet",
        "googlenet",
        "mobilenet",
        "resnet50",
        "shufflenet",
        "squeezenet",
        "vgg19",
    ] {
        pairs.push(("imagenet-like", model));
    }
    pairs
}

/// The six networks of Fig. 4 (ImageNet-like).
pub fn fig4_models() -> &'static [&'static str] {
    &[
        "alexnet",
        "googlenet",
        "resnet50",
        "shufflenet",
        "squeezenet",
        "vgg19",
    ]
}

/// Zoo config for a dataset name.
///
/// # Panics
///
/// Panics on an unknown dataset name.
pub fn zoo_config_for(dataset: &str) -> ZooConfig {
    match dataset {
        "cifar10-like" => ZooConfig::cifar10_like(),
        "cifar100-like" => ZooConfig::cifar100_like(),
        "imagenet-like" => ZooConfig::imagenet_like(),
        other => panic!("unknown dataset {other}"),
    }
}

/// Per-model training recipe: architectures without batch norm need gentler
/// learning rates on the synthetic datasets; BN models converge fastest with
/// the default.
pub fn recipe(model: &str) -> TrainConfig {
    match model {
        // No batch norm: sensitive to large steps.
        "alexnet" | "vgg19" | "lenet" => TrainConfig {
            lr: 0.005,
            momentum: 0.9,
            epochs: 20,
            ..TrainConfig::default()
        },
        // Mostly-unnormalized branched nets: moderate lr, longer schedule.
        "googlenet" | "squeezenet" => TrainConfig {
            lr: 0.01,
            momentum: 0.9,
            epochs: 30,
            ..TrainConfig::default()
        },
        // Batch-normalized residual/compact nets.
        _ => TrainConfig {
            lr: 0.05,
            momentum: 0.9,
            epochs: 12,
            ..TrainConfig::default()
        },
    }
}

/// Trains `model` on `dataset`, checkpoints it, and returns the checkpoint
/// path plus test accuracy. The checkpoint lands in the temp directory and
/// is the caller's to delete.
///
/// # Panics
///
/// Panics on unknown names or checkpoint I/O failure.
pub fn train_and_checkpoint(model: &str, dataset: &SynthSpec) -> (PathBuf, f32) {
    let data = dataset.generate();
    let cfg = zoo_config_for(dataset.name);
    let mut net = zoo::by_name(model, &cfg).unwrap_or_else(|| panic!("unknown model {model}"));
    train::fit(
        &mut net,
        &data.train_images,
        &data.train_labels,
        &recipe(model),
    );
    let acc = train::accuracy(&mut net, &data.test_images, &data.test_labels, 32);
    let path = std::env::temp_dir().join(format!(
        "rustfi-bench-{}-{}-{}.ckpt",
        dataset.name,
        model,
        std::process::id()
    ));
    checkpoint::save(&mut net, &path).expect("write checkpoint");
    (path, acc)
}

/// Builds a factory closure that reconstructs the trained model from its
/// checkpoint (what campaign workers use).
pub fn factory_from_checkpoint(
    model: &'static str,
    dataset_name: &'static str,
    path: PathBuf,
) -> impl Fn() -> Network + Sync {
    move || {
        let mut net = zoo::by_name(model, &zoo_config_for(dataset_name)).expect("known model");
        checkpoint::load(&mut net, &path).expect("read checkpoint");
        net
    }
}

/// Header of the shared campaign-outcome table used by the experiment
/// binaries: one column per outcome kind of the full taxonomy plus the
/// paper's headline rates. Rows come from [`outcome_table_row`].
pub fn outcome_table_header() -> String {
    format!(
        "{:<12} {:>9} {:>9} {:>8} {:>7} {:>7} {:>6} {:>5} {:>11} {:>9} {:>10}",
        "model",
        "accuracy",
        "eligible",
        "masked",
        "SDC",
        "DUE",
        "crash",
        "hang",
        "SDC rate",
        "99% CI",
        "top5-miss"
    )
}

/// One row of the shared outcome table. Pass `None` for `accuracy` when the
/// table has no clean-accuracy column value (e.g. untrained ablations).
pub fn outcome_table_row(name: &str, accuracy: Option<f32>, r: &CampaignResult) -> String {
    let acc = match accuracy {
        Some(a) => format!("{:>8.1}%", 100.0 * a),
        None => format!("{:>9}", "-"),
    };
    format!(
        "{:<12} {} {:>9} {:>8} {:>7} {:>7} {:>6} {:>5} {:>10.3}% {:>8.3}% {:>9.3}%",
        name,
        acc,
        r.eligible_images,
        r.counts.masked,
        r.counts.sdc,
        r.counts.due,
        r.counts.crash,
        r.counts.hang,
        100.0 * r.sdc_rate(),
        100.0 * r.counts.sdc_rate_ci99(),
        100.0 * r.top5_miss_rate()
    )
}

pub use rustfi_obs::mean_seconds;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_has_19_pairs() {
        let pairs = fig3_pairs();
        assert_eq!(pairs.len(), 19);
        // Every pair resolves to a constructible model.
        for (dataset, model) in pairs {
            let cfg = zoo_config_for(dataset);
            assert!(zoo::by_name(model, &cfg).is_some(), "{dataset}/{model}");
        }
    }

    #[test]
    fn recipes_exist_for_all_fig4_models() {
        for model in fig4_models() {
            let r = recipe(model);
            assert!(r.lr > 0.0 && r.epochs > 0);
        }
    }

    #[test]
    fn env_usize_parses_and_defaults() {
        std::env::set_var("RUSTFI_TEST_KNOB", "123");
        assert_eq!(env_usize("RUSTFI_TEST_KNOB", 5), 123);
        assert_eq!(env_usize("RUSTFI_TEST_KNOB_MISSING", 5), 5);
        std::env::remove_var("RUSTFI_TEST_KNOB");
    }

    #[test]
    fn outcome_table_rows_line_up_with_the_header() {
        use rustfi::{OutcomeCounts, OutcomeKind};
        let mut counts = OutcomeCounts::default();
        for _ in 0..97 {
            counts.record(&OutcomeKind::Masked);
        }
        counts.record(&OutcomeKind::Sdc);
        counts.record(&OutcomeKind::Crash { detail: "x".into() });
        counts.record(&OutcomeKind::Hang);
        let result = CampaignResult {
            records: Vec::new(),
            counts,
            per_layer: Vec::new(),
            eligible_images: 42,
            prefix: None,
        };
        let header = outcome_table_header();
        let with_acc = outcome_table_row("alexnet", Some(0.935), &result);
        let without = outcome_table_row("probe", None, &result);
        assert_eq!(header.len(), with_acc.len(), "\n{header}\n{with_acc}");
        assert_eq!(header.len(), without.len(), "\n{header}\n{without}");
        assert!(with_acc.contains("93.5%"));
        assert!(with_acc.contains("42"));
        // masked, SDC, crash, hang all present.
        for needle in ["97", "1"] {
            assert!(with_acc.contains(needle), "{with_acc}");
        }
    }

    #[test]
    fn mean_seconds_is_positive() {
        let s = mean_seconds(3, || {
            std::hint::black_box(1 + 1);
        });
        assert!(s >= 0.0);
    }
}
