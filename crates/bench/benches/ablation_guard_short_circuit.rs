//! Ablation for the NaN/Inf guard hook: once an activation goes non-finite,
//! every later layer computes garbage. `GuardMode::ShortCircuit` aborts the
//! forward pass at the first corrupted layer; this bench measures how much
//! of the inference that saves against scanning without aborting
//! (`GuardMode::Record`) and against no guard at all.
//!
//! The workload injects `+Inf` into the first conv layer, the worst case for
//! wasted downstream compute (and one ReLU/max-pool cannot launder away, as
//! `f32::max` would for NaN).

use criterion::{criterion_group, criterion_main, Criterion};
use rustfi::{models, BatchSelect, FaultInjector, FiConfig, NeuronFault, NeuronSelect};
use rustfi_nn::{zoo, GuardConfig, GuardHook, ZooConfig};
use rustfi_tensor::{SeededRng, Tensor};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// An injector with an Inf stuck-at fault in the first conv layer.
fn inf_injector() -> FaultInjector {
    let mut fi = FaultInjector::new(
        zoo::vgg19(&ZooConfig::tiny(10)),
        FiConfig::for_input(&[1, 3, 16, 16]),
    )
    .expect("injectable");
    fi.declare_neuron_fi(&[NeuronFault {
        select: NeuronSelect::RandomInLayer { layer: 0 },
        batch: BatchSelect::All,
        model: Arc::new(models::StuckAt::new(f32::INFINITY)),
    }])
    .expect("legal fault");
    fi
}

fn bench_guard(c: &mut Criterion) {
    let input = Tensor::rand_normal(&[1, 3, 16, 16], 0.0, 1.0, &mut SeededRng::new(1));
    let mut group = c.benchmark_group("ablation_guard_short_circuit");
    group.sample_size(20);

    let mut unguarded = inf_injector();
    group.bench_function("no_guard", |b| {
        b.iter(|| std::hint::black_box(unguarded.forward(&input)))
    });

    let mut recording = inf_injector();
    let record_guard = GuardHook::install(recording.net(), GuardConfig::default());
    group.bench_function("guard_record", |b| {
        b.iter(|| {
            record_guard.reset();
            std::hint::black_box(recording.forward(&input))
        })
    });

    let mut aborting = inf_injector();
    let short_guard = GuardHook::install(
        aborting.net(),
        GuardConfig {
            short_circuit: true,
            ..GuardConfig::default()
        },
    );
    group.bench_function("guard_short_circuit", |b| {
        b.iter(|| {
            short_guard.reset();
            let aborted = catch_unwind(AssertUnwindSafe(|| aborting.forward(&input)));
            std::hint::black_box(aborted.is_err())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_guard);
criterion_main!(benches);
