//! Ablation for design choice 2 (DESIGN.md §4): weight perturbations applied
//! *offline* (mutate the weight tensor once, before inference) vs paying a
//! per-inference runtime hook.
//!
//! Expected result: `weight_offline` is indistinguishable from `clean`
//! (§III-B's "no runtime overhead for weight perturbations"), while
//! `neuron_hook` carries the (small) hook dispatch + perturbation cost.

use criterion::{criterion_group, criterion_main, Criterion};
use rustfi::{
    models, BatchSelect, FaultInjector, FiConfig, NeuronFault, NeuronSelect, WeightFault,
    WeightSelect,
};
use rustfi_nn::{zoo, ZooConfig};
use rustfi_tensor::{SeededRng, Tensor};
use std::sync::Arc;

fn bench_weight_offline(c: &mut Criterion) {
    let input = Tensor::rand_normal(&[1, 3, 16, 16], 0.0, 1.0, &mut SeededRng::new(2));
    let make_fi = || {
        FaultInjector::new(
            zoo::resnet18(&ZooConfig::tiny(10)),
            FiConfig::for_input(&[1, 3, 16, 16]),
        )
        .expect("injectable")
    };
    let mut group = c.benchmark_group("ablation_weight_offline");
    group.sample_size(20);

    let mut clean = make_fi();
    group.bench_function("clean", |b| {
        b.iter(|| std::hint::black_box(clean.forward(&input)))
    });

    let mut weight = make_fi();
    weight
        .declare_weight_fi(&[WeightFault {
            select: WeightSelect::Random,
            model: Arc::new(models::Gain::new(-2.0)),
        }])
        .expect("legal fault");
    group.bench_function("weight_offline", |b| {
        b.iter(|| std::hint::black_box(weight.forward(&input)))
    });

    let mut neuron = make_fi();
    neuron
        .declare_neuron_fi(&[NeuronFault {
            select: NeuronSelect::Random,
            batch: BatchSelect::All,
            model: Arc::new(models::RandomUniform::default()),
        }])
        .expect("legal fault");
    group.bench_function("neuron_hook", |b| {
        b.iter(|| std::hint::black_box(neuron.forward(&input)))
    });
    group.finish();
}

criterion_group!(benches, bench_weight_offline);
criterion_main!(benches);
