//! Ablation for design choice 1 (DESIGN.md §4): hook-based injection vs the
//! rejected "append a perturbation layer after every convolution" topology
//! rewrite (paper §III-A).
//!
//! Three variants run the same LeNet workload:
//! - `clean`: no instrumentation at all;
//! - `hooks_armed`: RustFI's approach — one forward hook injecting one neuron;
//! - `perturb_layers`: a network rebuilt with an explicit perturbation layer
//!   after every convolution (each one pays a full tensor copy even when it
//!   perturbs nothing, and the model graph had to be modified).

use criterion::{criterion_group, criterion_main, Criterion};
use rustfi::{models, BatchSelect, FaultInjector, FiConfig, NeuronFault, NeuronSelect};
use rustfi_nn::layer::{Conv2d, Flatten, Linear, MaxPool2d, Relu, Sequential};
use rustfi_nn::module::{BackwardCtx, ForwardCtx, LayerKind, LayerMeta, Module, Network};
use rustfi_nn::{zoo, ZooConfig};
use rustfi_tensor::{ConvSpec, SeededRng, Tensor};
use std::sync::Arc;

/// The rejected design: an explicit layer that copies its input and
/// overwrites one neuron.
struct PerturbLayer {
    meta: LayerMeta,
    offset: usize,
    value: f32,
}

impl Module for PerturbLayer {
    fn kind(&self) -> LayerKind {
        LayerKind::Dropout // reuse an inert kind; not injectable
    }
    fn meta(&self) -> &LayerMeta {
        &self.meta
    }
    fn meta_mut(&mut self) -> &mut LayerMeta {
        &mut self.meta
    }
    fn forward(&mut self, input: &Tensor, _ctx: &mut ForwardCtx<'_>) -> Tensor {
        let mut out = input.clone();
        if self.offset < out.len() {
            out.data_mut()[self.offset] = self.value;
        }
        out
    }
    fn backward(&mut self, grad_out: &Tensor, _ctx: &mut BackwardCtx<'_>) -> Tensor {
        grad_out.clone()
    }
    fn visit(&self, f: &mut dyn FnMut(&dyn Module)) {
        f(self)
    }
    fn visit_mut(&mut self, f: &mut dyn FnMut(&mut dyn Module)) {
        f(self)
    }
    fn find_mut(&mut self, id: rustfi_nn::LayerId) -> Option<&mut dyn Module> {
        if self.meta.id == id {
            Some(self)
        } else {
            None
        }
    }
}

/// LeNet rebuilt with a perturbation layer after each conv — the topology
/// rewrite users of the rejected design would have to perform by hand.
#[allow(clippy::vec_init_then_push)]
fn lenet_with_perturb_layers() -> Network {
    let mut rng = SeededRng::new(0x5EED);
    let mut layers: Vec<Box<dyn Module>> = Vec::new();
    layers.push(Box::new(Conv2d::new(
        3,
        6,
        5,
        ConvSpec::new().padding(2),
        &mut rng,
    )));
    layers.push(Box::new(PerturbLayer {
        meta: LayerMeta::default(),
        offset: 10,
        value: 0.42,
    }));
    layers.push(Box::new(Relu::new()));
    layers.push(Box::new(MaxPool2d::new(2, 2)));
    layers.push(Box::new(Conv2d::new(
        6,
        12,
        5,
        ConvSpec::new().padding(2),
        &mut rng,
    )));
    layers.push(Box::new(PerturbLayer {
        meta: LayerMeta::default(),
        offset: usize::MAX, // inert but still pays the copy
        value: 0.0,
    }));
    layers.push(Box::new(Relu::new()));
    layers.push(Box::new(MaxPool2d::new(2, 2)));
    layers.push(Box::new(Flatten::new()));
    layers.push(Box::new(Linear::new(12 * 16, 32, &mut rng)));
    layers.push(Box::new(Relu::new()));
    layers.push(Box::new(Linear::new(32, 10, &mut rng)));
    Network::new(Box::new(Sequential::new(layers)))
}

fn bench_dispatch(c: &mut Criterion) {
    let input = Tensor::rand_normal(&[1, 3, 16, 16], 0.0, 1.0, &mut SeededRng::new(1));
    let mut group = c.benchmark_group("ablation_hook_dispatch");
    group.sample_size(30);

    let mut clean = zoo::lenet(&ZooConfig::tiny(10));
    group.bench_function("clean", |b| {
        b.iter(|| std::hint::black_box(clean.forward(&input)))
    });

    let mut fi = FaultInjector::new(
        zoo::lenet(&ZooConfig::tiny(10)),
        FiConfig::for_input(&[1, 3, 16, 16]),
    )
    .expect("injectable");
    fi.declare_neuron_fi(&[NeuronFault {
        select: NeuronSelect::Exact {
            layer: 0,
            channel: 0,
            y: 1,
            x: 4,
        },
        batch: BatchSelect::All,
        model: Arc::new(models::StuckAt::new(0.42)),
    }])
    .expect("legal fault");
    group.bench_function("hooks_armed", |b| {
        b.iter(|| std::hint::black_box(fi.forward(&input)))
    });

    let mut rewritten = lenet_with_perturb_layers();
    group.bench_function("perturb_layers", |b| {
        b.iter(|| std::hint::black_box(rewritten.forward(&input)))
    });
    group.finish();
}

criterion_group!(benches, bench_dispatch);
criterion_main!(benches);
