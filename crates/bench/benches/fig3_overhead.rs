//! Criterion version of the Fig. 3 measurement: base vs FI inference time
//! for representative networks from each dataset group. (The full 19-pair
//! table with the batch sweep is the `fig3_overhead_table` binary.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rustfi::{models, BatchSelect, FaultInjector, FiConfig, NeuronFault, NeuronSelect};
use rustfi_bench::zoo_config_for;
use rustfi_nn::zoo;
use rustfi_tensor::{SeededRng, Tensor};
use std::sync::Arc;

fn bench_overhead(c: &mut Criterion) {
    let mut rng = SeededRng::new(3);
    let cases = [
        ("cifar10-like", "alexnet"),
        ("cifar10-like", "resnet110"),
        ("cifar10-like", "densenet"),
        ("imagenet-like", "vgg19"),
        ("imagenet-like", "mobilenet"),
        ("imagenet-like", "squeezenet"),
    ];
    let mut group = c.benchmark_group("fig3_overhead");
    group.sample_size(20);
    for (dataset, model) in cases {
        let cfg = zoo_config_for(dataset);
        let input = Tensor::rand_normal(&[1, 3, cfg.image_hw, cfg.image_hw], 0.0, 1.0, &mut rng);

        let net = zoo::by_name(model, &cfg).expect("known model");
        let mut fi =
            FaultInjector::new(net, FiConfig::for_input(input.dims())).expect("injectable");
        group.bench_with_input(BenchmarkId::new("base", model), &(), |b, ()| {
            b.iter(|| std::hint::black_box(fi.forward(&input)))
        });

        fi.declare_neuron_fi(&[NeuronFault {
            select: NeuronSelect::Random,
            batch: BatchSelect::All,
            model: Arc::new(models::RandomUniform::default()),
        }])
        .expect("legal fault");
        group.bench_with_input(BenchmarkId::new("fi", model), &(), |b, ()| {
            b.iter(|| std::hint::black_box(fi.forward(&input)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_overhead);
criterion_main!(benches);
