//! Ablation for the observability layer: forward-pass cost of the recorder
//! hook-points.
//!
//! Three variants run the same LeNet forward pass:
//! - `no_recorder`: observability disabled (the `None` fast path — one branch
//!   per child dispatch);
//! - `null_recorder`: a [`NullRecorder`] installed — every hook-point fires
//!   but resolves to an inlined no-op. The zero-cost claim is that this is
//!   indistinguishable from `no_recorder`;
//! - `trace_recorder`: the full [`TraceRecorder`] buffering spans, the price
//!   of actually collecting a profile.

use criterion::{criterion_group, criterion_main, Criterion};
use rustfi_nn::{zoo, Network, ZooConfig};
use rustfi_obs::{NullRecorder, Recorder, TraceRecorder};
use rustfi_tensor::{SeededRng, Tensor};
use std::sync::Arc;

fn lenet_with(recorder: Option<Arc<dyn Recorder>>) -> Network {
    let mut net = zoo::lenet(&ZooConfig::tiny(10));
    net.set_recorder(recorder);
    net
}

fn bench_obs_overhead(c: &mut Criterion) {
    let input = Tensor::rand_normal(&[1, 3, 16, 16], 0.0, 1.0, &mut SeededRng::new(1));
    let mut group = c.benchmark_group("ablation_obs_overhead");
    group.sample_size(30);

    let mut clean = lenet_with(None);
    group.bench_function("no_recorder", |b| {
        b.iter(|| std::hint::black_box(clean.forward(&input)))
    });

    let mut null = lenet_with(Some(Arc::new(NullRecorder)));
    group.bench_function("null_recorder", |b| {
        b.iter(|| std::hint::black_box(null.forward(&input)))
    });

    let mut traced = lenet_with(Some(Arc::new(TraceRecorder::new())));
    group.bench_function("trace_recorder", |b| {
        b.iter(|| std::hint::black_box(traced.forward(&input)))
    });
    group.finish();
}

criterion_group!(benches, bench_obs_overhead);
criterion_main!(benches);
