//! Campaign trial throughput: golden-prefix caching, fused batched trials,
//! and the blocked matmul kernel, with a machine-readable
//! `BENCH_campaign.json` summary.
//!
//! Three measurements back the perf claims in `EXPERIMENTS.md`:
//!
//! 1. **Kernel**: the register-blocked `matmul` against a faithful copy of
//!    the previous ikj kernel (zero-skip branch included), at im2col GEMM
//!    shapes representative of the zoo's convolutions.
//! 2. **Campaign**: a Fig. 4-style per-layer injection campaign over the
//!    mid/late layers of a CIFAR-scale network, with and without
//!    [`rustfi::PrefixCacheConfig`] — trials resume from the injection
//!    layer instead of re-running the clean prefix, so the speedup grows
//!    with injection depth. Records are asserted bit-identical.
//! 3. **Fusion**: the same campaign with [`rustfi::FusionConfig`] stacked on
//!    the prefix cache — trials sharing an `(injection layer, image)` pair
//!    execute as one batched forward pass, amortizing per-pass overhead
//!    across the batch. Records are asserted bit-identical.
//! 4. **Elementwise tail + allocations**: the runtime-dispatched
//!    [`rustfi_tensor::kernels`] against equivalent scalar loops compiled at
//!    the default target level, plus the steady-state heap allocations per
//!    forward pass with the thread-local tensor pool armed (the
//!    zero-allocation claim, measured under a counting global allocator).
//! 5. **INT8**: the AVX2-dispatched integer GEMM
//!    ([`rustfi_tensor::matmul_i8_nt`]) against its portable compilation at
//!    the same im2col shapes (outputs asserted bit-identical), and the same
//!    fused campaign re-run with [`rustfi::QuantMode::Int8`] — real integer
//!    kernels, faults landing in stored INT8 words — reported as a
//!    within-run ratio against the f32 fused campaign.
//!
//! Knobs are the shared quick-mode `RUSTFI_*` environment variables — see
//! [`rustfi_bench::QuickMode`] — which `bench_gate` reads too.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rustfi::{
    Campaign, CampaignConfig, FaultMode, FusionConfig, NeuronSelect, PrefixCacheConfig, QuantMode,
};
use rustfi_bench::{env_usize, zoo_config_for, QuickMode};
use rustfi_nn::{zoo, Network, ZooConfig};
use rustfi_tensor::pack::{matmul_packed_a, Epilogue, PackedA};
use rustfi_tensor::qkernels::{matmul_i8_nt, matmul_i8_nt_portable};
use rustfi_tensor::{kernels, matmul, matmul_into, parallel, tpool, SeededRng, Tensor};
use std::sync::Arc;
use std::time::Instant;

/// Counts heap allocations so the steady-state zero-allocation claim is
/// measured in the same run that produces the throughput numbers.
#[global_allocator]
static ALLOC: rustfi_bench::alloc_count::CountingAlloc = rustfi_bench::alloc_count::CountingAlloc;

/// The pre-blocking ikj kernel, kept verbatim (including the `aik == 0.0`
/// skip and the row-parallel fan-out) as the comparison baseline.
fn matmul_ikj_baseline(a: &Tensor, b: &Tensor) -> Tensor {
    const PARALLEL_MACS: usize = 1 << 20;
    let (m, k) = a.dims2();
    let (k2, n) = b.dims2();
    assert_eq!(k, k2);
    let mut out = vec![0.0f32; m * n];
    let a_data = a.data();
    let b_data = b.data();
    let row_work = |rows: std::ops::Range<usize>, out_rows: &mut [f32]| {
        for (local_i, i) in rows.enumerate() {
            let out_row = &mut out_rows[local_i * n..(local_i + 1) * n];
            for kk in 0..k {
                let aik = a_data[i * k + kk];
                if aik == 0.0 {
                    continue;
                }
                let b_row = &b_data[kk * n..(kk + 1) * n];
                for (o, &bv) in out_row.iter_mut().zip(b_row) {
                    *o += aik * bv;
                }
            }
        }
    };
    if m * n * k >= PARALLEL_MACS && m > 1 {
        parallel::for_each_chunk_mut(&mut out, n, |chunk_idx, rows, slab| {
            row_work(chunk_idx..chunk_idx + rows, slab);
        });
    } else {
        row_work(0..m, &mut out);
    }
    Tensor::from_vec(out, &[m, n])
}

/// Mean seconds per call over `iters` timed runs (after one warm-up).
fn time_mean<R>(iters: usize, mut f: impl FnMut() -> R) -> f64 {
    std::hint::black_box(f());
    let start = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    start.elapsed().as_secs_f64() / iters as f64
}

struct MatmulRow {
    m: usize,
    k: usize,
    n: usize,
    baseline_s: f64,
    blocked_s: f64,
}

fn bench_matmul_kernels(c: &mut Criterion, rows: &mut Vec<MatmulRow>) {
    let mut rng = SeededRng::new(11);
    // im2col GEMM shapes (oc, cg*kh*kw, oh*ow) of early / mid / late zoo
    // convolutions at CIFAR scale, plus a classifier matmul.
    let shapes = [
        (64usize, 27usize, 1024usize),
        (256, 1152, 256),
        (512, 4608, 16),
        (128, 512, 128),
    ];
    let iters = env_usize("RUSTFI_MATMUL_ITERS", 12);
    let mut group = c.benchmark_group("matmul_kernel");
    group.sample_size(iters);
    for (m, k, n) in shapes {
        let a = Tensor::rand_normal(&[m, k], 0.0, 1.0, &mut rng);
        let b = Tensor::rand_normal(&[k, n], 0.0, 1.0, &mut rng);
        group.bench_with_input(
            BenchmarkId::new("ikj_baseline", format!("{m}x{k}x{n}")),
            &(),
            {
                let (a, b) = (a.clone(), b.clone());
                move |bch, ()| bch.iter(|| matmul_ikj_baseline(&a, &b))
            },
        );
        group.bench_with_input(BenchmarkId::new("blocked", format!("{m}x{k}x{n}")), &(), {
            let (a, b) = (a.clone(), b.clone());
            move |bch, ()| bch.iter(|| matmul(&a, &b))
        });
        let baseline_s = time_mean(iters, || matmul_ikj_baseline(&a, &b));
        let blocked_s = time_mean(iters, || matmul(&a, &b));
        println!(
            "  {m}x{k}x{n}: ikj {:.3} ms -> blocked {:.3} ms ({:.2}x)",
            baseline_s * 1e3,
            blocked_s * 1e3,
            baseline_s / blocked_s
        );
        rows.push(MatmulRow {
            m,
            k,
            n,
            baseline_s,
            blocked_s,
        });
    }
    group.finish();
}

struct PackedMatmulRow {
    m: usize,
    k: usize,
    n: usize,
    unpacked_s: f64,
    packed_s: f64,
}

/// The compiled-plan GEMM: weights pre-tiled into microkernel panels (the
/// pack cost paid once at campaign setup) against the unpacked blocked
/// kernel on the same im2col shapes. Both write into a preallocated output
/// and accumulate in the same `kk` order, so the products are bit-identical
/// — asserted after timing.
fn bench_packed_matmul(c: &mut Criterion, rows: &mut Vec<PackedMatmulRow>) {
    let mut rng = SeededRng::new(17);
    let shapes = [
        (64usize, 27usize, 1024usize),
        (256, 1152, 256),
        (512, 4608, 16),
        (128, 512, 128),
    ];
    let iters = env_usize("RUSTFI_MATMUL_ITERS", 12);
    let mut group = c.benchmark_group("packed_matmul_kernel");
    group.sample_size(iters);
    for (m, k, n) in shapes {
        let a = Tensor::rand_normal(&[m, k], 0.0, 1.0, &mut rng);
        let b = Tensor::rand_normal(&[k, n], 0.0, 1.0, &mut rng);
        let pa = PackedA::pack(a.data(), m, k);
        group.bench_with_input(BenchmarkId::new("unpacked", format!("{m}x{k}x{n}")), &(), {
            let (a, b) = (a.clone(), b.clone());
            let mut out = vec![0.0f32; m * n];
            move |bch, ()| bch.iter(|| matmul_into(a.data(), b.data(), &mut out, m, k, n, true))
        });
        group.bench_with_input(BenchmarkId::new("packed", format!("{m}x{k}x{n}")), &(), {
            let (pa, b) = (PackedA::pack(a.data(), m, k), b.clone());
            let mut out = vec![0.0f32; m * n];
            move |bch, ()| {
                bch.iter(|| matmul_packed_a(&pa, b.data(), &mut out, n, &Epilogue::None, true))
            }
        });
        let mut unpacked = vec![0.0f32; m * n];
        let mut packed = vec![0.0f32; m * n];
        let unpacked_s = time_mean(iters, || {
            matmul_into(a.data(), b.data(), &mut unpacked, m, k, n, true)
        });
        let packed_s = time_mean(iters, || {
            matmul_packed_a(&pa, b.data(), &mut packed, n, &Epilogue::None, true)
        });
        assert_eq!(
            unpacked.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            packed.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "packed GEMM diverged from the unpacked kernel"
        );
        println!(
            "  packed {m}x{k}x{n}: unpacked {:.3} ms -> packed {:.3} ms ({:.2}x)",
            unpacked_s * 1e3,
            packed_s * 1e3,
            unpacked_s / packed_s
        );
        rows.push(PackedMatmulRow {
            m,
            k,
            n,
            unpacked_s,
            packed_s,
        });
    }
    group.finish();
}

struct Int8MatmulRow {
    m: usize,
    k: usize,
    n: usize,
    portable_s: f64,
    dispatched_s: f64,
}

/// Which int8 GEMM the dispatcher resolves to on this host; the gate only
/// applies the absolute speedup floor when AVX2 actually ran (a portable-only
/// host measures 1.0x by construction).
fn int8_matmul_simd() -> &'static str {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        return "avx2";
    }
    "portable"
}

/// The integer GEMM behind the quantized conv/linear layers: the
/// AVX2-dispatched kernel against its portable compilation, at the f32
/// bench's im2col shapes (weights-as-`a`, im2row patches as transposed `b`).
/// Every output element is an exact integer dot product, so the two
/// compilations must agree bit for bit — asserted after timing.
fn bench_int8_matmul(c: &mut Criterion, rows: &mut Vec<Int8MatmulRow>) {
    let mut rng = SeededRng::new(13);
    let shapes = [
        (64usize, 27usize, 1024usize),
        (256, 1152, 256),
        (512, 4608, 16),
        (128, 512, 128),
    ];
    let iters = env_usize("RUSTFI_MATMUL_ITERS", 12);
    let mut group = c.benchmark_group("int8_matmul_kernel");
    group.sample_size(iters);
    for (m, k, n) in shapes {
        let a: Vec<i8> = (0..m * k)
            .map(|_| (rng.below(255) as i64 - 127) as i8)
            .collect();
        let b: Vec<i8> = (0..n * k)
            .map(|_| (rng.below(255) as i64 - 127) as i8)
            .collect();
        group.bench_with_input(BenchmarkId::new("portable", format!("{m}x{k}x{n}")), &(), {
            let (a, b) = (a.clone(), b.clone());
            let mut out = vec![0i32; m * n];
            move |bch, ()| bch.iter(|| matmul_i8_nt_portable(&a, &b, &mut out, m, k, n))
        });
        group.bench_with_input(
            BenchmarkId::new("dispatched", format!("{m}x{k}x{n}")),
            &(),
            {
                let (a, b) = (a.clone(), b.clone());
                let mut out = vec![0i32; m * n];
                move |bch, ()| bch.iter(|| matmul_i8_nt(&a, &b, &mut out, m, k, n))
            },
        );
        let mut portable = vec![0i32; m * n];
        let mut dispatched = vec![0i32; m * n];
        let portable_s = time_mean(iters, || {
            matmul_i8_nt_portable(&a, &b, &mut portable, m, k, n)
        });
        let dispatched_s = time_mean(iters, || matmul_i8_nt(&a, &b, &mut dispatched, m, k, n));
        assert_eq!(portable, dispatched, "int8 GEMM compilations disagree");
        println!(
            "  int8 {m}x{k}x{n}: portable {:.3} ms -> dispatched {:.3} ms ({:.2}x)",
            portable_s * 1e3,
            dispatched_s * 1e3,
            portable_s / dispatched_s
        );
        rows.push(Int8MatmulRow {
            m,
            k,
            n,
            portable_s,
            dispatched_s,
        });
    }
    group.finish();
}

struct ElemwiseRow {
    op: &'static str,
    scalar_s: f64,
    kernel_s: f64,
}

/// Plain scalar loops with the shapes the pre-kernel `ops.rs` code used,
/// compiled at the crate's default target level — the "before" side of the
/// elementwise speedup claim. The dispatched kernels run the same
/// per-element operations, so outputs are bit-identical; only codegen
/// differs.
mod scalar_ref {
    pub fn relu(a: &[f32], out: &mut [f32]) {
        for (o, &x) in out.iter_mut().zip(a) {
            *o = x.max(0.0);
        }
    }

    pub fn add(a: &[f32], b: &[f32], out: &mut [f32]) {
        for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
            *o = x + y;
        }
    }

    pub fn mul(a: &[f32], b: &[f32], out: &mut [f32]) {
        for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
            *o = x * y;
        }
    }

    pub fn axpy(out: &mut [f32], a: &[f32], s: f32) {
        for (o, &x) in out.iter_mut().zip(a) {
            *o += s * x;
        }
    }

    pub fn bn_fmap(
        x: &[f32],
        mean: f32,
        inv_std: f32,
        g: f32,
        b: f32,
        x_hat: &mut [f32],
        out: &mut [f32],
    ) {
        for ((&v, xh), o) in x.iter().zip(x_hat.iter_mut()).zip(out.iter_mut()) {
            let n = (v - mean) * inv_std;
            *xh = n;
            *o = g * n + b;
        }
    }

    pub fn softmax_row(row: &[f32], out: &mut [f32]) {
        let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut denom = 0.0;
        for (o, &x) in out.iter_mut().zip(row) {
            let e = (x - m).exp();
            *o = e;
            denom += e;
        }
        for o in out.iter_mut() {
            *o /= denom;
        }
    }
}

fn bench_elementwise(c: &mut Criterion, rows: &mut Vec<ElemwiseRow>) {
    // 64 Ki elements (256 KiB) stays cache-resident, so the measurement
    // reflects codegen rather than memory bandwidth; softmax treats the
    // buffer as `cols`-wide rows.
    let len = env_usize("RUSTFI_ELEMWISE_LEN", 1 << 16).max(1);
    let cols = 256.min(len);
    let iters = env_usize("RUSTFI_ELEMWISE_ITERS", 200);
    let mut rng = SeededRng::new(29);
    let at = Tensor::rand_normal(&[len], 0.0, 1.0, &mut rng);
    let bt = Tensor::rand_normal(&[len], 0.0, 1.0, &mut rng);
    let (a, b) = (at.data(), bt.data());
    let mut out = vec![0.0f32; len];
    let mut aux = vec![0.0f32; len];

    let mut group = c.benchmark_group("elementwise_kernel");
    group.sample_size(iters);
    // Registers the scalar/dispatched pair with Criterion, times both with
    // `time_mean` for the JSON summary, and records the row.
    macro_rules! case {
        ($op:literal, $scalar:expr, $kernel:expr) => {{
            group.bench_function(BenchmarkId::new($op, "scalar"), |bch| bch.iter(|| $scalar));
            group.bench_function(BenchmarkId::new($op, "dispatched"), |bch| {
                bch.iter(|| $kernel)
            });
            let scalar_s = time_mean(iters, || $scalar);
            let kernel_s = time_mean(iters, || $kernel);
            println!(
                "  elementwise {}: scalar {:.3} µs -> dispatched {:.3} µs ({:.2}x)",
                $op,
                scalar_s * 1e6,
                kernel_s * 1e6,
                scalar_s / kernel_s
            );
            rows.push(ElemwiseRow {
                op: $op,
                scalar_s,
                kernel_s,
            });
        }};
    }

    case!(
        "relu",
        scalar_ref::relu(a, &mut out),
        kernels::relu(a, &mut out)
    );
    case!(
        "add",
        scalar_ref::add(a, b, &mut out),
        kernels::add(a, b, &mut out)
    );
    case!(
        "mul",
        scalar_ref::mul(a, b, &mut out),
        kernels::mul(a, b, &mut out)
    );
    case!(
        "axpy",
        scalar_ref::axpy(&mut out, a, 0.37),
        kernels::axpy(&mut out, a, 0.37)
    );
    case!(
        "batchnorm",
        scalar_ref::bn_fmap(a, 0.1, 1.3, 0.9, -0.2, &mut aux, &mut out),
        kernels::bn_fmap(a, 0.1, 1.3, 0.9, -0.2, &mut aux, &mut out)
    );
    case!(
        "softmax",
        for (r, o) in a.chunks_exact(cols).zip(out.chunks_exact_mut(cols)) {
            scalar_ref::softmax_row(r, o);
        },
        for (r, o) in a.chunks_exact(cols).zip(out.chunks_exact_mut(cols)) {
            kernels::softmax_row(r, o);
        }
    );
    group.finish();
}

struct CampaignNumbers {
    model: String,
    dataset: String,
    layers: Vec<usize>,
    trials_per_layer: usize,
    images: usize,
    uncached_s: f64,
    cached_s: f64,
    fused_s: f64,
    planned_fused_s: f64,
    int8_uncached_s: f64,
    int8_fused_s: f64,
    int8_planned_fused_s: f64,
    fusion_width: usize,
    hits: u64,
    misses: u64,
    skipped_flops: u64,
}

fn bench_campaign(c: &mut Criterion, qm: &QuickMode) -> CampaignNumbers {
    let QuickMode {
        model,
        dataset,
        images: n_images,
        trials,
        iters,
        ..
    } = qm.clone();
    let cfg = zoo_config_for(&dataset);
    let hw = cfg.image_hw;
    let fusion = FusionConfig::default();
    let fusion_width = fusion.max_batch;

    let model_name: &'static str = Box::leak(model.clone().into_boxed_str());
    let dataset_name: &'static str = Box::leak(dataset.clone().into_boxed_str());
    let factory = move || -> Network {
        zoo::by_name(model_name, &zoo_config_for(dataset_name)).expect("known model")
    };

    let mut rng = SeededRng::new(7);
    let images = Tensor::rand_normal(&[n_images, 3, hw, hw], 0.0, 1.0, &mut rng);
    let mut probe = factory();
    let labels: Vec<usize> = (0..n_images)
        .map(|i| rustfi::metrics::top1(probe.forward(&images.select_batch(i)).data()))
        .collect();
    let layer_count = {
        let profile = rustfi::ModelProfile::discover(&mut probe, [1, 3, hw, hw]);
        profile.len()
    };
    drop(probe);
    // Fig. 4 sweeps injections per layer; the mid/late back half is where
    // prefix caching skips the most clean recomputation.
    let layers: Vec<usize> = (layer_count / 2..layer_count).collect();

    // The f32 campaigns perturb with uniform random values (the Fig. 3
    // workload); the quantized campaigns flip a random bit in the stored
    // INT8 word — the fault model the real-INT8 backend exists for. Both
    // models cost nanoseconds per trial, so the throughput ratio reflects
    // the forward-pass kernels, not the perturbation arithmetic.
    let f32_model: Arc<dyn rustfi::PerturbationModel> =
        Arc::new(rustfi::models::RandomUniform::default());
    let int8_model: Arc<dyn rustfi::PerturbationModel> = Arc::new(
        rustfi::models::BitFlipInt8::new(rustfi::models::BitSelect::Random),
    );
    let run_plan = |prefix: Option<PrefixCacheConfig>,
                    fusion: Option<FusionConfig>,
                    quant: QuantMode,
                    pmodel: &Arc<dyn rustfi::PerturbationModel>,
                    plan: bool| {
        let mut results = Vec::new();
        for &layer in &layers {
            let campaign = Campaign::new(
                &factory,
                &images,
                &labels,
                FaultMode::Neuron(NeuronSelect::RandomInLayer { layer }),
                Arc::clone(pmodel),
            );
            results.push(
                campaign
                    .run(&CampaignConfig {
                        trials,
                        seed: 0xF164 + layer as u64,
                        prefix_cache: prefix.clone(),
                        fusion,
                        quant,
                        plan,
                        ..CampaignConfig::default()
                    })
                    .expect("campaign runs"),
            );
        }
        results
    };
    let run_all = |prefix: Option<PrefixCacheConfig>,
                   fusion: Option<FusionConfig>,
                   quant: QuantMode,
                   pmodel: &Arc<dyn rustfi::PerturbationModel>| {
        run_plan(prefix, fusion, quant, pmodel, false)
    };

    let mut group = c.benchmark_group("campaign_throughput");
    group.sample_size(iters);
    group.bench_function(BenchmarkId::new("uncached", model_name), |b| {
        b.iter(|| run_all(None, None, QuantMode::Off, &f32_model))
    });
    group.bench_function(BenchmarkId::new("prefix_cached", model_name), |b| {
        b.iter(|| {
            run_all(
                Some(PrefixCacheConfig::default()),
                None,
                QuantMode::Off,
                &f32_model,
            )
        })
    });
    group.bench_function(BenchmarkId::new("fused", model_name), |b| {
        b.iter(|| {
            run_all(
                Some(PrefixCacheConfig::default()),
                Some(fusion),
                QuantMode::Off,
                &f32_model,
            )
        })
    });
    group.bench_function(BenchmarkId::new("planned_fused", model_name), |b| {
        b.iter(|| {
            run_plan(
                Some(PrefixCacheConfig::default()),
                Some(fusion),
                QuantMode::Off,
                &f32_model,
                true,
            )
        })
    });
    group.bench_function(BenchmarkId::new("int8_fused", model_name), |b| {
        b.iter(|| {
            run_all(
                Some(PrefixCacheConfig::default()),
                Some(fusion),
                QuantMode::Int8,
                &int8_model,
            )
        })
    });
    group.finish();

    let uncached_s = time_mean(iters, || run_all(None, None, QuantMode::Off, &f32_model));
    let cached_s = time_mean(iters, || {
        run_all(
            Some(PrefixCacheConfig::default()),
            None,
            QuantMode::Off,
            &f32_model,
        )
    });
    let fused_s = time_mean(iters, || {
        run_all(
            Some(PrefixCacheConfig::default()),
            Some(fusion),
            QuantMode::Off,
            &f32_model,
        )
    });
    let planned_fused_s = time_mean(iters, || {
        run_plan(
            Some(PrefixCacheConfig::default()),
            Some(fusion),
            QuantMode::Off,
            &f32_model,
            true,
        )
    });
    let int8_uncached_s = time_mean(iters, || run_all(None, None, QuantMode::Int8, &int8_model));
    let int8_fused_s = time_mean(iters, || {
        run_all(
            Some(PrefixCacheConfig::default()),
            Some(fusion),
            QuantMode::Int8,
            &int8_model,
        )
    });
    let int8_planned_fused_s = time_mean(iters, || {
        run_plan(
            Some(PrefixCacheConfig::default()),
            Some(fusion),
            QuantMode::Int8,
            &int8_model,
            true,
        )
    });

    // The optimizations must be invisible in the records — in both
    // quantization regimes.
    let plain = run_all(None, None, QuantMode::Off, &f32_model);
    let cached = run_all(
        Some(PrefixCacheConfig::default()),
        None,
        QuantMode::Off,
        &f32_model,
    );
    let fused = run_all(
        Some(PrefixCacheConfig::default()),
        Some(fusion),
        QuantMode::Off,
        &f32_model,
    );
    let (mut hits, mut misses, mut skipped_flops) = (0u64, 0u64, 0u64);
    for ((p, cr), fr) in plain.iter().zip(&cached).zip(&fused) {
        assert_eq!(p.records, cr.records, "prefix caching changed records");
        assert_eq!(p.records, fr.records, "trial fusion changed records");
        let s = cr.prefix.expect("stats on");
        hits += s.hits;
        misses += s.misses;
        skipped_flops += s.skipped_flops;
    }
    let planned = run_plan(
        Some(PrefixCacheConfig::default()),
        Some(fusion),
        QuantMode::Off,
        &f32_model,
        true,
    );
    for (p, pr) in plain.iter().zip(&planned) {
        assert_eq!(p.records, pr.records, "compiled plan changed records");
    }
    let int8_plain = run_all(None, None, QuantMode::Int8, &int8_model);
    let int8_fused = run_all(
        Some(PrefixCacheConfig::default()),
        Some(fusion),
        QuantMode::Int8,
        &int8_model,
    );
    for (p, fr) in int8_plain.iter().zip(&int8_fused) {
        assert_eq!(p.records, fr.records, "acceleration changed INT8 records");
    }
    let int8_planned = run_plan(
        Some(PrefixCacheConfig::default()),
        Some(fusion),
        QuantMode::Int8,
        &int8_model,
        true,
    );
    for (p, pr) in int8_plain.iter().zip(&int8_planned) {
        assert_eq!(p.records, pr.records, "compiled plan changed INT8 records");
    }
    let total_trials = (trials * layers.len()) as f64;
    println!(
        "  campaign {model_name}: uncached {:.1} trials/s -> prefix-cached {:.1} trials/s \
         ({:.2}x, {hits} hits / {misses} misses) -> fused {:.1} trials/s ({:.2}x)",
        total_trials / uncached_s,
        total_trials / cached_s,
        uncached_s / cached_s,
        total_trials / fused_s,
        uncached_s / fused_s
    );
    println!(
        "  campaign {model_name} planned: fused {:.1} trials/s -> planned+fused {:.1} trials/s \
         ({:.2}x)",
        total_trials / fused_s,
        total_trials / planned_fused_s,
        fused_s / planned_fused_s
    );
    println!(
        "  campaign {model_name} int8: uncached {:.1} trials/s -> fused {:.1} trials/s \
         ({:.2}x of the f32 fused rate) -> planned+fused {:.1} trials/s ({:.2}x)",
        total_trials / int8_uncached_s,
        total_trials / int8_fused_s,
        fused_s / int8_fused_s,
        total_trials / int8_planned_fused_s,
        int8_fused_s / int8_planned_fused_s
    );

    CampaignNumbers {
        model,
        dataset,
        layers,
        trials_per_layer: trials,
        images: n_images,
        uncached_s,
        cached_s,
        fused_s,
        planned_fused_s,
        int8_uncached_s,
        int8_fused_s,
        int8_planned_fused_s,
        fusion_width,
        hits,
        misses,
        skipped_flops,
    }
}

/// Steady-state heap allocations per forward pass on a single thread with
/// the tensor pool armed — the zero-allocation claim, measured under the
/// counting global allocator. Uses a model/input small enough to stay below
/// the parallel-matmul threshold, so the scoped-thread fan-out (whose spawns
/// allocate, and which is outside the tensor-path claim) never engages.
fn measure_steady_state_allocs() -> f64 {
    let _pool = tpool::budget_scope(64 << 20);
    let cfg = ZooConfig::tiny(4);
    let mut net = zoo::lenet(&cfg);
    let mut rng = SeededRng::new(23);
    let input = Tensor::rand_normal(
        &[1, cfg.in_channels, cfg.image_hw, cfg.image_hw],
        0.0,
        1.0,
        &mut rng,
    );
    rustfi_bench::alloc_count::steady_state_forward_allocs(&mut net, &input, 8, 32)
}

fn geomean(ratios: impl Iterator<Item = f64>) -> f64 {
    let (sum, n) = ratios.fold((0.0, 0usize), |(s, n), r| (s + r.ln(), n + 1));
    if n == 0 {
        1.0
    } else {
        (sum / n as f64).exp()
    }
}

fn write_json(
    matmul_rows: &[MatmulRow],
    packed_matmul_rows: &[PackedMatmulRow],
    int8_matmul_rows: &[Int8MatmulRow],
    elemwise_rows: &[ElemwiseRow],
    steady_state_allocs: f64,
    camp: &CampaignNumbers,
    qm: &QuickMode,
) {
    let Some(path) = &qm.json_path else {
        return;
    };
    let matmul_json: Vec<String> = matmul_rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"m\": {}, \"k\": {}, \"n\": {}, \"ikj_baseline_s\": {:.6e}, \
                 \"blocked_s\": {:.6e}, \"speedup\": {:.3}}}",
                r.m,
                r.k,
                r.n,
                r.baseline_s,
                r.blocked_s,
                r.baseline_s / r.blocked_s
            )
        })
        .collect();
    let packed_matmul_json: Vec<String> = packed_matmul_rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"m\": {}, \"k\": {}, \"n\": {}, \"unpacked_s\": {:.6e}, \
                 \"packed_s\": {:.6e}, \"speedup\": {:.3}}}",
                r.m,
                r.k,
                r.n,
                r.unpacked_s,
                r.packed_s,
                r.unpacked_s / r.packed_s
            )
        })
        .collect();
    let int8_matmul_json: Vec<String> = int8_matmul_rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"m\": {}, \"k\": {}, \"n\": {}, \"portable_s\": {:.6e}, \
                 \"dispatched_s\": {:.6e}, \"speedup\": {:.3}}}",
                r.m,
                r.k,
                r.n,
                r.portable_s,
                r.dispatched_s,
                r.portable_s / r.dispatched_s
            )
        })
        .collect();
    let elemwise_json: Vec<String> = elemwise_rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"op\": \"{}\", \"scalar_s\": {:.6e}, \"dispatched_s\": {:.6e}, \
                 \"speedup\": {:.3}}}",
                r.op,
                r.scalar_s,
                r.kernel_s,
                r.scalar_s / r.kernel_s
            )
        })
        .collect();
    let total_trials = (camp.trials_per_layer * camp.layers.len()) as f64;
    let layers: Vec<String> = camp.layers.iter().map(|l| l.to_string()).collect();
    let json = format!(
        "{{\n\
         \x20 \"bench\": \"campaign_throughput\",\n\
         \x20 \"matmul\": [\n{}\n  ],\n\
         \x20 \"matmul_geomean_speedup\": {:.3},\n\
         \x20 \"packed_matmul\": [\n{}\n  ],\n\
         \x20 \"packed_vs_unpacked_geomean\": {:.3},\n\
         \x20 \"int8_matmul\": [\n{}\n  ],\n\
         \x20 \"int8_matmul_geomean_speedup\": {:.3},\n\
         \x20 \"int8_matmul_simd\": \"{}\",\n\
         \x20 \"elementwise\": [\n{}\n  ],\n\
         \x20 \"elementwise_geomean_speedup\": {:.3},\n\
         \x20 \"campaign\": {{\n\
         \x20   \"model\": \"{}\",\n\
         \x20   \"dataset\": \"{}\",\n\
         \x20   \"layers\": [{}],\n\
         \x20   \"trials_per_layer\": {},\n\
         \x20   \"images\": {},\n\
         \x20   \"uncached_s\": {:.6},\n\
         \x20   \"prefix_cached_s\": {:.6},\n\
         \x20   \"fused_s\": {:.6},\n\
         \x20   \"planned_fused_s\": {:.6},\n\
         \x20   \"uncached_trials_per_s\": {:.2},\n\
         \x20   \"prefix_cached_trials_per_s\": {:.2},\n\
         \x20   \"fused_trials_per_s\": {:.2},\n\
         \x20   \"planned_fused_trials_per_s\": {:.2},\n\
         \x20   \"speedup\": {:.3},\n\
         \x20   \"fused_speedup\": {:.3},\n\
         \x20   \"planned_fused_vs_f32_fused\": {:.3},\n\
         \x20   \"int8_uncached_s\": {:.6},\n\
         \x20   \"int8_fused_s\": {:.6},\n\
         \x20   \"int8_planned_fused_s\": {:.6},\n\
         \x20   \"int8_fused_trials_per_s\": {:.2},\n\
         \x20   \"int8_planned_fused_trials_per_s\": {:.2},\n\
         \x20   \"int8_fused_vs_f32\": {:.3},\n\
         \x20   \"steady_state_allocs_per_trial\": {:.3},\n\
         \x20   \"fusion_width\": {},\n\
         \x20   \"prefix_hits\": {},\n\
         \x20   \"prefix_misses\": {},\n\
         \x20   \"prefix_skipped_flops\": {}\n\
         \x20 }}\n\
         }}\n",
        matmul_json.join(",\n"),
        geomean(matmul_rows.iter().map(|r| r.baseline_s / r.blocked_s)),
        packed_matmul_json.join(",\n"),
        geomean(packed_matmul_rows.iter().map(|r| r.unpacked_s / r.packed_s)),
        int8_matmul_json.join(",\n"),
        geomean(
            int8_matmul_rows
                .iter()
                .map(|r| r.portable_s / r.dispatched_s)
        ),
        int8_matmul_simd(),
        elemwise_json.join(",\n"),
        geomean(elemwise_rows.iter().map(|r| r.scalar_s / r.kernel_s)),
        camp.model,
        camp.dataset,
        layers.join(", "),
        camp.trials_per_layer,
        camp.images,
        camp.uncached_s,
        camp.cached_s,
        camp.fused_s,
        camp.planned_fused_s,
        total_trials / camp.uncached_s,
        total_trials / camp.cached_s,
        total_trials / camp.fused_s,
        total_trials / camp.planned_fused_s,
        camp.uncached_s / camp.cached_s,
        camp.uncached_s / camp.fused_s,
        camp.fused_s / camp.planned_fused_s,
        camp.int8_uncached_s,
        camp.int8_fused_s,
        camp.int8_planned_fused_s,
        total_trials / camp.int8_fused_s,
        total_trials / camp.int8_planned_fused_s,
        camp.fused_s / camp.int8_fused_s,
        steady_state_allocs,
        camp.fusion_width,
        camp.hits,
        camp.misses,
        camp.skipped_flops,
    );
    std::fs::write(path, json).expect("write BENCH_campaign.json");
    println!("  wrote {path}");
}

fn bench_all(c: &mut Criterion) {
    let qm = QuickMode::from_env();
    let mut matmul_rows = Vec::new();
    bench_matmul_kernels(c, &mut matmul_rows);
    let mut packed_matmul_rows = Vec::new();
    bench_packed_matmul(c, &mut packed_matmul_rows);
    let mut int8_matmul_rows = Vec::new();
    bench_int8_matmul(c, &mut int8_matmul_rows);
    let mut elemwise_rows = Vec::new();
    bench_elementwise(c, &mut elemwise_rows);
    let camp = bench_campaign(c, &qm);
    let steady_state_allocs = measure_steady_state_allocs();
    println!(
        "  steady-state forward allocations/pass (pool armed, single thread): \
         {steady_state_allocs:.3}"
    );
    write_json(
        &matmul_rows,
        &packed_matmul_rows,
        &int8_matmul_rows,
        &elemwise_rows,
        steady_state_allocs,
        &camp,
        &qm,
    );
}

criterion_group!(benches, bench_all);
criterion_main!(benches);
