//! Property tests for the fleet-telemetry layer (ISSUE 7 satellite):
//!
//! - sidecar merge determinism: partitioning one event/timing stream across
//!   any number of shard sidecars recovers the same multiset of events,
//!   counters, and timings — shard count and partition boundaries must not
//!   change what the merged report sees;
//! - the flight-recorder ring keeps *exactly* the last N items under
//!   wraparound, for any capacity and push count.

use std::collections::BTreeMap;
use std::path::PathBuf;

use proptest::prelude::*;

use rustfi_obs::sidecar::{sidecar_path, SidecarRecorder};
use rustfi_obs::{
    merge_shard_telemetry, Event, FlightRecorder, InjectionEvent, InjectionSite, MergedTelemetry,
    ObsBatch, Recorder, SpanRecord, TrialOutcomeEvent,
};

/// SplitMix64 — deriving item streams from a proptest seed keeps each case
/// deterministic without needing compound strategies.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut x = *state;
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

const OUTCOMES: [&str; 5] = ["masked", "sdc", "due", "crash", "hang"];

/// Builds a deterministic mixed batch of `n` telemetry items from `seed`.
fn synth_items(seed: u64, n: usize) -> Vec<ObsBatch> {
    let mut state = seed;
    (0..n)
        .map(|i| {
            let mut batch = ObsBatch::default();
            match mix(&mut state) % 5 {
                0 => batch.events.push(Event::TrialOutcome(TrialOutcomeEvent {
                    trial: i,
                    layer: (mix(&mut state) % 4) as usize,
                    outcome: OUTCOMES[(mix(&mut state) % 5) as usize],
                    due_layer: None,
                })),
                1 => {
                    let bit = (mix(&mut state) % 32) as u32;
                    batch.events.push(Event::Injection(InjectionEvent {
                        trial: Some(i),
                        layer: (mix(&mut state) % 8) as usize,
                        site: InjectionSite::Weight { index: i * 7 },
                        bit: Some(bit),
                        before: 1.5,
                        after: f32::from_bits(1.5f32.to_bits() ^ (1 << bit)),
                    }));
                }
                2 => batch.counters.push((
                    if mix(&mut state).is_multiple_of(2) {
                        "fi.injections"
                    } else {
                        "campaign.prefix_hits"
                    },
                    1 + mix(&mut state) % 9,
                )),
                3 => batch
                    .timings
                    .push(("campaign.trial_ns", 1 + mix(&mut state) % 10_000_000)),
                _ => {
                    let layer = (mix(&mut state) % 6) as usize;
                    let dur = 1 + mix(&mut state) % 100_000;
                    batch.spans.push(SpanRecord {
                        name: format!("layer{layer}"),
                        kind: "conv",
                        layer: Some(layer),
                        start_ns: dur * 3,
                        dur_ns: dur,
                        tid: 1,
                    });
                }
            }
            batch
        })
        .collect()
}

/// Canonical multiset fingerprint of a merged result: sorted event JSON,
/// counter totals, sorted timing observations, sorted span signatures.
type Fingerprint = (
    Vec<String>,
    BTreeMap<&'static str, u64>,
    Vec<(String, u64)>,
    Vec<String>,
);

fn fingerprint(merged: &MergedTelemetry) -> Fingerprint {
    let snap = merged.aggregated_snapshot();
    let mut events: Vec<String> = snap.events.iter().map(|e| e.to_json()).collect();
    events.sort();
    let mut timings: Vec<(String, u64)> = merged
        .lanes
        .iter()
        .flat_map(|lane| {
            lane.batch
                .timings
                .iter()
                .map(|(name, ns)| (name.to_string(), *ns))
        })
        .collect();
    timings.sort();
    let mut spans: Vec<String> = snap
        .spans
        .iter()
        .map(|s| format!("{}|{}|{:?}|{}|{}", s.name, s.kind, s.layer, s.dur_ns, s.tid))
        .collect();
    spans.sort();
    (events, snap.counters.clone(), timings, spans)
}

/// Writes a contiguous partition of `items` across `shards` sidecars
/// (mirroring how trials shard) and returns the sidecar paths.
fn write_partition(dir: &std::path::Path, items: &[ObsBatch], shards: usize) -> Vec<PathBuf> {
    let chunk = items.len().div_ceil(shards.max(1)).max(1);
    (0..shards)
        .map(|shard| {
            let journal = dir.join(format!("shard-{shard:04}-of-{shards:04}.jsonl"));
            let path = sidecar_path(&journal, 0);
            let rec = SidecarRecorder::create(&path, shard, shards, 0).unwrap();
            let start = (shard * chunk).min(items.len());
            let end = ((shard + 1) * chunk).min(items.len());
            for batch in &items[start..end] {
                rec.merge(batch.clone());
            }
            rec.flush();
            path
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The same item stream partitioned across 1, 2, 3, or 5 shard sidecars
    /// merges to the same event/counter/timing/span multiset.
    #[test]
    fn sidecar_merge_is_shard_count_invariant(seed in any::<u64>(), n in 1usize..120) {
        let items = synth_items(seed, n);
        let dir = std::env::temp_dir().join(format!(
            "rustfi_obs_prop_{}_{seed:x}_{n}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();

        let reference = fingerprint(&merge_shard_telemetry(&write_partition(&dir, &items, 1)));
        for shards in [2usize, 3, 5] {
            let sub = dir.join(format!("k{shards}"));
            std::fs::create_dir_all(&sub).unwrap();
            let merged = merge_shard_telemetry(&write_partition(&sub, &items, shards));
            prop_assert_eq!(merged.lanes.len(), shards);
            prop_assert_eq!(&fingerprint(&merged), &reference,
                "merge differs at {} shards", shards);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// The flight ring retains exactly the last `min(pushes, cap)` items,
    /// in order, with a correct total count — under any wraparound factor.
    #[test]
    fn flight_ring_keeps_exactly_the_last_n(cap in 1usize..64, pushes in 0usize..300) {
        let rec = FlightRecorder::new(cap);
        for i in 0..pushes {
            rec.event(Event::TrialOutcome(TrialOutcomeEvent {
                trial: i,
                layer: 0,
                outcome: "masked",
                due_layer: None,
            }));
        }
        let entries = rec.entries();
        prop_assert_eq!(entries.len(), pushes.min(cap));
        prop_assert_eq!(rec.total_seen(), pushes as u64);
        let expect_first = pushes.saturating_sub(cap);
        for (offset, entry) in entries.iter().enumerate() {
            prop_assert_eq!(entry.seq, (expect_first + offset) as u64);
            prop_assert!(
                entry.payload.contains(&format!("\"trial\":{},", expect_first + offset)),
                "entry {} holds trial {}", offset, expect_first + offset
            );
        }
    }
}
