//! Typed observability events: what an injection did, what a guard saw, how
//! a trial ended.
//!
//! Events are plain data so recorders can buffer, merge, and export them
//! without caring what produced them. Serialization to JSON lives here too
//! (hand-rolled, like the campaign journal — the build environment is
//! hermetic), with non-finite floats encoded as the strings `"inf"`,
//! `"-inf"`, `"nan"` since JSON numbers cannot represent them.

use std::fmt::Write as _;

/// Where an injection landed inside a layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectionSite {
    /// A neuron in the layer's output feature map.
    Neuron {
        /// Batch element.
        batch: usize,
        /// Channel index.
        channel: usize,
        /// Feature-map row.
        y: usize,
        /// Feature-map column.
        x: usize,
    },
    /// A scalar in the layer's flattened weight tensor.
    Weight {
        /// Flat index into the weight tensor.
        index: usize,
    },
}

/// Full provenance of one value perturbation: the paper's "what did the
/// fault actually do" record, emitted by the injector at perturbation time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InjectionEvent {
    /// Campaign trial index, when the injection ran inside a campaign.
    pub trial: Option<usize>,
    /// Injectable-layer index (the model-profile index campaigns report).
    pub layer: usize,
    /// Exact tensor location.
    pub site: InjectionSite,
    /// The single flipped FP32 bit, when the perturbation was a single bit
    /// flip (derived; `None` for multi-bit or value-replacing models).
    pub bit: Option<u32>,
    /// Value before the perturbation.
    pub before: f32,
    /// Value after the perturbation.
    pub after: f32,
}

impl InjectionEvent {
    /// The single FP32 bit whose flip turns `before` into `after`, if the
    /// two differ in exactly one bit of their IEEE-754 representation.
    pub fn flipped_bit(before: f32, after: f32) -> Option<u32> {
        let xor = before.to_bits() ^ after.to_bits();
        (xor.count_ones() == 1).then(|| xor.trailing_zeros())
    }
}

/// What a guard hook observed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GuardEvent {
    /// First non-finite activation of a forward pass — DUE provenance.
    NonFinite {
        /// Network layer index where NaN/Inf first appeared.
        layer: usize,
        /// That layer's name.
        layer_name: String,
    },
    /// The step-budget watchdog tripped.
    Deadline {
        /// Leaf-layer dispatches counted when the budget tripped.
        steps: usize,
    },
}

/// How one campaign trial ended (streamed as it happens, unlike the final
/// [`CampaignResult`] summary).
///
/// [`CampaignResult`]: https://docs.rs/rustfi
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrialOutcomeEvent {
    /// Trial index.
    pub trial: usize,
    /// Injectable layer hit (`usize::MAX` when the trial crashed before a
    /// fault was planned).
    pub layer: usize,
    /// Stable outcome label (`masked`/`sdc`/`due`/`crash`/`hang`).
    pub outcome: &'static str,
    /// DUE layer provenance, when a guard attributed one.
    pub due_layer: Option<usize>,
}

/// Any observability event.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A value perturbation was applied.
    Injection(InjectionEvent),
    /// A guard hook fired.
    Guard(GuardEvent),
    /// A campaign trial finished.
    TrialOutcome(TrialOutcomeEvent),
}

impl Event {
    /// Stable event-type label (the `"type"` field of the JSON encoding).
    pub fn kind(&self) -> &'static str {
        match self {
            Event::Injection(_) => "injection",
            Event::Guard(_) => "guard",
            Event::TrialOutcome(_) => "trial_outcome",
        }
    }

    /// One-line JSON encoding (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(96);
        let _ = write!(s, "{{\"type\":\"{}\"", self.kind());
        match self {
            Event::Injection(e) => {
                s.push_str(",\"trial\":");
                push_opt_usize(&mut s, e.trial);
                let _ = write!(s, ",\"layer\":{},\"site\":", e.layer);
                match e.site {
                    InjectionSite::Neuron {
                        batch,
                        channel,
                        y,
                        x,
                    } => {
                        let _ = write!(
                            s,
                            "{{\"kind\":\"neuron\",\"batch\":{batch},\"channel\":{channel},\
                             \"y\":{y},\"x\":{x}}}"
                        );
                    }
                    InjectionSite::Weight { index } => {
                        let _ = write!(s, "{{\"kind\":\"weight\",\"index\":{index}}}");
                    }
                }
                s.push_str(",\"bit\":");
                match e.bit {
                    Some(b) => {
                        let _ = write!(s, "{b}");
                    }
                    None => s.push_str("null"),
                }
                s.push_str(",\"before\":");
                push_f32(&mut s, e.before);
                s.push_str(",\"after\":");
                push_f32(&mut s, e.after);
            }
            Event::Guard(GuardEvent::NonFinite { layer, layer_name }) => {
                let _ = write!(
                    s,
                    ",\"kind\":\"non_finite\",\"layer\":{layer},\"layer_name\":\""
                );
                escape_json_into(layer_name, &mut s);
                s.push('"');
            }
            Event::Guard(GuardEvent::Deadline { steps }) => {
                let _ = write!(s, ",\"kind\":\"deadline\",\"steps\":{steps}");
            }
            Event::TrialOutcome(e) => {
                let _ = write!(
                    s,
                    ",\"trial\":{},\"layer\":{},\"outcome\":\"{}\",\"due_layer\":",
                    e.trial, e.layer, e.outcome
                );
                push_opt_usize(&mut s, e.due_layer);
            }
        }
        s.push('}');
        s
    }
}

impl Event {
    /// Decodes an event from its [`Event::to_json`] encoding. The inverse is
    /// exact for every field except that unknown outcome labels collapse to
    /// `"unknown"` (outcome labels are `&'static str`, so only the closed
    /// taxonomy round-trips — which is all the campaign ever emits).
    pub fn from_json(v: &crate::json::Value) -> Result<Event, String> {
        use crate::json::Value;
        let kind = v
            .get("type")
            .and_then(Value::as_str)
            .ok_or("event missing \"type\"")?;
        let get_usize = |key: &str| -> Result<usize, String> {
            v.get(key)
                .and_then(Value::as_u64)
                .map(|n| n as usize)
                .ok_or_else(|| format!("event missing integer \"{key}\""))
        };
        let get_opt_usize =
            |key: &str| -> Option<usize> { v.get(key).and_then(Value::as_u64).map(|n| n as usize) };
        match kind {
            "injection" => {
                let site_v = v.get("site").ok_or("injection missing \"site\"")?;
                let site_kind = site_v
                    .get("kind")
                    .and_then(Value::as_str)
                    .ok_or("site missing \"kind\"")?;
                let site_field = |key: &str| -> Result<usize, String> {
                    site_v
                        .get(key)
                        .and_then(Value::as_u64)
                        .map(|n| n as usize)
                        .ok_or_else(|| format!("site missing \"{key}\""))
                };
                let site = match site_kind {
                    "neuron" => InjectionSite::Neuron {
                        batch: site_field("batch")?,
                        channel: site_field("channel")?,
                        y: site_field("y")?,
                        x: site_field("x")?,
                    },
                    "weight" => InjectionSite::Weight {
                        index: site_field("index")?,
                    },
                    other => return Err(format!("unknown site kind {other:?}")),
                };
                Ok(Event::Injection(InjectionEvent {
                    trial: get_opt_usize("trial"),
                    layer: get_usize("layer")?,
                    site,
                    bit: v.get("bit").and_then(Value::as_u64).map(|b| b as u32),
                    before: f32_from_value(v.get("before"))?,
                    after: f32_from_value(v.get("after"))?,
                }))
            }
            "guard" => match v.get("kind").and_then(Value::as_str) {
                Some("non_finite") => Ok(Event::Guard(GuardEvent::NonFinite {
                    layer: get_usize("layer")?,
                    layer_name: v
                        .get("layer_name")
                        .and_then(Value::as_str)
                        .unwrap_or_default()
                        .to_string(),
                })),
                Some("deadline") => Ok(Event::Guard(GuardEvent::Deadline {
                    steps: get_usize("steps")?,
                })),
                other => Err(format!("unknown guard kind {other:?}")),
            },
            "trial_outcome" => Ok(Event::TrialOutcome(TrialOutcomeEvent {
                trial: get_usize("trial")?,
                layer: get_usize("layer")?,
                outcome: outcome_label(
                    v.get("outcome").and_then(Value::as_str).unwrap_or_default(),
                ),
                due_layer: get_opt_usize("due_layer"),
            })),
            other => Err(format!("unknown event type {other:?}")),
        }
    }
}

/// Maps an outcome string back to the campaign's static label set.
fn outcome_label(s: &str) -> &'static str {
    match s {
        "masked" => "masked",
        "sdc" => "sdc",
        "due" => "due",
        "crash" => "crash",
        "hang" => "hang",
        _ => "unknown",
    }
}

/// Decodes an `f32` written by [`push_f32`]: a JSON number, or the strings
/// `"inf"` / `"-inf"` / `"nan"`.
fn f32_from_value(v: Option<&crate::json::Value>) -> Result<f32, String> {
    use crate::json::Value;
    match v {
        Some(Value::Num(n)) => Ok(*n as f32),
        Some(Value::Str(s)) => match s.as_str() {
            "inf" => Ok(f32::INFINITY),
            "-inf" => Ok(f32::NEG_INFINITY),
            "nan" => Ok(f32::NAN),
            other => Err(format!("bad float string {other:?}")),
        },
        other => Err(format!("expected float, got {other:?}")),
    }
}

fn push_opt_usize(out: &mut String, v: Option<usize>) {
    match v {
        Some(v) => {
            let _ = write!(out, "{v}");
        }
        None => out.push_str("null"),
    }
}

/// Writes an `f32` as a JSON value; non-finite values become the strings
/// `"inf"` / `"-inf"` / `"nan"` (JSON numbers cannot represent them).
pub(crate) fn push_f32(out: &mut String, v: f32) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else if v.is_nan() {
        out.push_str("\"nan\"");
    } else if v > 0.0 {
        out.push_str("\"inf\"");
    } else {
        out.push_str("\"-inf\"");
    }
}

/// Escapes a string for embedding inside JSON double quotes.
pub(crate) fn escape_json_into(raw: &str, out: &mut String) {
    for c in raw.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse_json;

    #[test]
    fn flipped_bit_detects_single_bit_flips() {
        for bit in 0..32u32 {
            let before = 1.5f32;
            let after = f32::from_bits(before.to_bits() ^ (1 << bit));
            assert_eq!(InjectionEvent::flipped_bit(before, after), Some(bit));
        }
        assert_eq!(InjectionEvent::flipped_bit(1.0, 1.0), None, "no change");
        assert_eq!(InjectionEvent::flipped_bit(1.0, 2.5), None, "multi-bit");
    }

    #[test]
    fn events_serialize_to_valid_json() {
        let events = vec![
            Event::Injection(InjectionEvent {
                trial: Some(7),
                layer: 2,
                site: InjectionSite::Neuron {
                    batch: 0,
                    channel: 3,
                    y: 1,
                    x: 4,
                },
                bit: Some(21),
                before: 0.25,
                after: f32::INFINITY,
            }),
            Event::Injection(InjectionEvent {
                trial: None,
                layer: 0,
                site: InjectionSite::Weight { index: 91 },
                bit: None,
                before: f32::NAN,
                after: -1.0,
            }),
            Event::Guard(GuardEvent::NonFinite {
                layer: 9,
                layer_name: "relu\"9\"\n".into(),
            }),
            Event::Guard(GuardEvent::Deadline { steps: 12 }),
            Event::TrialOutcome(TrialOutcomeEvent {
                trial: 4,
                layer: 1,
                outcome: "sdc",
                due_layer: None,
            }),
        ];
        for e in events {
            let json = e.to_json();
            let v = parse_json(&json).unwrap_or_else(|err| panic!("{err}: {json}"));
            assert_eq!(
                v.get("type").and_then(|t| t.as_str()),
                Some(e.kind()),
                "{json}"
            );
        }
    }

    #[test]
    fn events_round_trip_through_json() {
        let events = vec![
            Event::Injection(InjectionEvent {
                trial: Some(7),
                layer: 2,
                site: InjectionSite::Neuron {
                    batch: 0,
                    channel: 3,
                    y: 1,
                    x: 4,
                },
                bit: Some(21),
                before: 0.25,
                after: f32::INFINITY,
            }),
            Event::Injection(InjectionEvent {
                trial: None,
                layer: 0,
                site: InjectionSite::Weight { index: 91 },
                bit: None,
                before: -3.5,
                after: -1.0,
            }),
            Event::Guard(GuardEvent::NonFinite {
                layer: 9,
                layer_name: "relu\"9\"\n".into(),
            }),
            Event::Guard(GuardEvent::Deadline { steps: 12 }),
            Event::TrialOutcome(TrialOutcomeEvent {
                trial: 4,
                layer: 1,
                outcome: "sdc",
                due_layer: Some(3),
            }),
        ];
        for e in events {
            let v = parse_json(&e.to_json()).unwrap();
            let back = Event::from_json(&v).unwrap_or_else(|err| panic!("{err}"));
            assert_eq!(back, e);
        }
        // NaN compares unequal to itself; check the decode shape directly.
        let nan = Event::Injection(InjectionEvent {
            trial: None,
            layer: 0,
            site: InjectionSite::Weight { index: 1 },
            bit: None,
            before: f32::NAN,
            after: 1.0,
        });
        let v = parse_json(&nan.to_json()).unwrap();
        match Event::from_json(&v).unwrap() {
            Event::Injection(e) => assert!(e.before.is_nan() && e.after == 1.0),
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn non_finite_floats_become_strings() {
        let mut s = String::new();
        push_f32(&mut s, f32::NEG_INFINITY);
        assert_eq!(s, "\"-inf\"");
    }
}
