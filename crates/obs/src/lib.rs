//! # rustfi-obs
//!
//! A lightweight, dependency-free observability layer for the RustFI fault
//! injection stack: span-based timing, typed injection-provenance events,
//! monotonic counters/duration histograms, and exporters for the formats
//! people actually open.
//!
//! The paper this repo reproduces (PyTorchFI, DSN 2020) claims hook-based
//! perturbation adds negligible overhead (Fig. 3); this crate is how the repo
//! *measures* that claim — and how campaigns stop running dark. Design goals:
//!
//! - **Zero cost when off.** Instrumented code holds an
//!   `Option<Arc<dyn Recorder>>`; the disabled path is a single `None` check
//!   per layer, and [`NullRecorder`]'s methods are `#[inline]` no-ops (so an
//!   always-installed recorder costs only the virtual call). The
//!   `ablation_obs_overhead` Criterion bench in `rustfi-bench` verifies both
//!   paths sit within measurement noise of uninstrumented code, and a
//!   workspace property test verifies recording never changes campaign
//!   results bit-for-bit.
//! - **Provenance, not just timing.** [`InjectionEvent`] records exactly what
//!   an injection did: layer, tensor location, flipped bit (when derivable),
//!   and the value before/after. [`GuardEvent`] attributes DUEs to the layer
//!   that produced them; [`TrialOutcomeEvent`] streams the campaign taxonomy.
//! - **Standard formats.** [`chrome_trace_json`] emits Chrome `trace_event`
//!   JSON loadable in `chrome://tracing` / [Perfetto](https://ui.perfetto.dev);
//!   [`EventJsonlWriter`] streams line-atomic JSONL next to the campaign
//!   journal; [`prometheus_text`] snapshots counters/histograms in Prometheus
//!   exposition format.
//! - **Campaign-friendly aggregation.** Workers record into a per-thread
//!   [`LocalRecorder`] and merge into a shared [`TraceRecorder`] at trial
//!   boundaries via a lock-free batch stack, so observation never serializes
//!   the workers and never perturbs thread-count invariance.
//!
//! ```
//! use rustfi_obs::{Recorder, SpanCtx, TraceRecorder};
//! use std::sync::Arc;
//!
//! let rec = Arc::new(TraceRecorder::new());
//! let token = rec.layer_enter();
//! // ... run a layer ...
//! rec.layer_exit(&SpanCtx { name: "conv1", kind: "conv", layer: Some(1) }, token);
//! rec.counter_add("nn.hook_dispatches", 1);
//! let trace = rec.chrome_trace(); // open in Perfetto
//! assert!(trace.contains("\"conv1\""));
//! ```

pub mod chrome;
pub mod clock;
pub mod event;
pub mod flight;
pub mod json;
pub mod jsonl;
pub mod local;
pub mod merge;
pub mod names;
pub mod prom;
pub mod recorder;
pub mod sidecar;
pub mod stats;
pub mod timing;
pub mod trace;

pub use chrome::chrome_trace_json;
pub use clock::{now_ns, thread_tid};
pub use event::{Event, GuardEvent, InjectionEvent, InjectionSite, TrialOutcomeEvent};
pub use flight::{read_flight, FlightRead, FlightRecorder, DEFAULT_FLIGHT_CAP};
pub use jsonl::{write_events_jsonl, EventJsonlWriter};
pub use local::LocalRecorder;
pub use merge::{merge_shard_telemetry, MergedTelemetry, ShardLane};
pub use prom::{prometheus_text, prometheus_text_labeled};
pub use recorder::{
    FanoutRecorder, NullRecorder, ObsBatch, Recorder, SpanCtx, SpanRecord, SpanToken,
};
pub use sidecar::{
    flight_path, read_sidecar, sidecar_path, SidecarHeader, SidecarRead, SidecarRecorder,
};
pub use stats::{
    wilson_interval, CampaignStats, OutcomeCounts, StatsRecorder, StreamingHistogram, Z_95,
};
pub use timing::{mean_seconds, time, Stopwatch};
pub use trace::{LayerTimeRow, ObsSnapshot, TimingStat, TraceRecorder};

/// Name the satellite tasks use: the memory-collecting recorder whose
/// flagship export is the Chrome trace.
pub type ChromeTraceRecorder = TraceRecorder;
