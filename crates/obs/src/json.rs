//! Minimal JSON parser (the build environment is hermetic — no serde).
//! Originally test-only for round-trip-validating the exporters; now also the
//! runtime parser for telemetry sidecars and flight-recorder postmortems.
//! Supports the full value grammar the exporters emit: objects, arrays,
//! strings with escapes, numbers, booleans, null.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as a non-negative integer, if this is a whole number that
    /// fits `u64` exactly (the parser stores numbers as `f64`, so integers are
    /// exact up to 2^53 — far beyond any counter or nanosecond offset the
    /// telemetry layer writes).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 9.007_199_254_740_992e15 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Parses one JSON document, requiring it to consume the whole input.
pub fn parse_json(input: &str) -> Result<Value, String> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => Ok(Value::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Value::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        Some(c) => Err(format!("unexpected byte {c:?} at {pos:?}")),
        None => Err("unexpected end of input".into()),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("expected {lit} at byte {pos:?}"))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse().ok())
        .map(Value::Num)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    *pos += 1; // opening quote
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|e| format!("bad \\u: {e}"))?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input came from &str, so this
                // boundary arithmetic is safe).
                let s = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let c = s.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    *pos += 1; // '{'
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(map));
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos:?}"));
        }
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos:?}"));
        }
        *pos += 1;
        let value = parse_value(b, pos)?;
        map.insert(key, value);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(map));
            }
            other => return Err(format!("expected ',' or '}}', got {other:?}")),
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            other => return Err(format!("expected ',' or ']', got {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let v = parse_json(r#"{"a":[1,2.5,-3e2],"b":{"c":"x\"y\n"},"d":true,"e":null,"f":false}"#)
            .unwrap();
        assert_eq!(
            v.get("a").and_then(|a| a.as_array()).map(|a| a.len()),
            Some(3)
        );
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[2].as_f64(),
            Some(-300.0)
        );
        assert_eq!(
            v.get("b").and_then(|b| b.get("c")).and_then(|c| c.as_str()),
            Some("x\"y\n")
        );
        assert_eq!(v.get("e"), Some(&Value::Null));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse_json("{\"a\":1").is_err());
        assert!(parse_json("{\"a\":1}x").is_err());
        assert!(parse_json("[1,]").is_err());
        assert!(parse_json("\"unterminated").is_err());
    }

    #[test]
    fn unicode_escapes_decode() {
        let v = parse_json("{\"s\":\"\\u0041é\\u000a\"}").unwrap();
        assert_eq!(v.get("s").and_then(|s| s.as_str()), Some("Aé\n"));
    }
}
