//! Line-atomic JSONL event export, following the campaign journal's
//! discipline: one event per line, written and flushed as a unit, so a
//! reader tailing the file never sees a torn record and a crash loses at
//! most the final line.

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::Path;

use crate::event::Event;
use crate::trace::ObsSnapshot;

/// Streaming writer: one [`Event`] per line, flushed per line.
pub struct EventJsonlWriter {
    out: BufWriter<File>,
    lines: u64,
}

impl EventJsonlWriter {
    /// Creates (truncating) `path` and returns a writer.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        Ok(EventJsonlWriter {
            out: BufWriter::new(File::create(path)?),
            lines: 0,
        })
    }

    /// Opens `path` for appending (creating it if absent).
    pub fn append(path: &Path) -> std::io::Result<Self> {
        let f = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(EventJsonlWriter {
            out: BufWriter::new(f),
            lines: 0,
        })
    }

    /// Writes one event as a full line and flushes, so the line is atomic
    /// with respect to crashes and concurrent readers.
    pub fn write(&mut self, event: &Event) -> std::io::Result<()> {
        let mut line = event.to_json();
        line.push('\n');
        self.out.write_all(line.as_bytes())?;
        self.out.flush()?;
        self.lines += 1;
        Ok(())
    }

    /// Lines written through this writer.
    pub fn lines_written(&self) -> u64 {
        self.lines
    }
}

/// Writes every event in `snap` to `path` as JSONL (truncates first).
pub fn write_events_jsonl(snap: &ObsSnapshot, path: &Path) -> std::io::Result<()> {
    let mut w = EventJsonlWriter::create(path)?;
    for event in &snap.events {
        w.write(event)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{GuardEvent, TrialOutcomeEvent};
    use crate::json::parse_json;

    fn events() -> Vec<Event> {
        vec![
            Event::Guard(GuardEvent::NonFinite {
                layer: 2,
                layer_name: "conv2".into(),
            }),
            Event::TrialOutcome(TrialOutcomeEvent {
                trial: 0,
                layer: 2,
                outcome: "due",
                due_layer: Some(2),
            }),
        ]
    }

    #[test]
    fn every_line_is_one_complete_json_event() {
        let dir = std::env::temp_dir().join(format!("rustfi_obs_jsonl_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.jsonl");

        let snap = ObsSnapshot {
            events: events(),
            ..ObsSnapshot::default()
        };
        write_events_jsonl(&snap, &path).unwrap();

        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.ends_with('\n'), "file ends on a line boundary");
        let lines: Vec<_> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in &lines {
            let v = parse_json(line).unwrap_or_else(|e| panic!("{e}: {line}"));
            assert!(v.get("type").is_some());
        }

        // Appending keeps earlier lines intact.
        let mut w = EventJsonlWriter::append(&path).unwrap();
        w.write(&Event::Guard(GuardEvent::Deadline { steps: 3 }))
            .unwrap();
        assert_eq!(w.lines_written(), 1);
        drop(w);
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 3);
        for line in text.lines() {
            parse_json(line).unwrap();
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
