//! Fleet telemetry merge: reassembles any set of shard sidecars — torn,
//! partial, from restarted workers — into one clock-normalized view.
//!
//! Each sidecar's header anchors its process-local monotonic clock to the
//! wall clock (`anchor_ns` ↔ `anchor_unix_ms`). The merge picks the
//! earliest anchor as the fleet epoch and rebases every span:
//!
//! ```text
//! fleet_ns(span) = (anchor_unix_ms·10⁶ − fleet_epoch_ns) + (start_ns − anchor_ns)
//! ```
//!
//! so lanes line up to wall-clock accuracy (millisecond-ish skew — the
//! resolution of the anchor pair) while within-lane precision stays at full
//! nanoseconds.
//!
//! The merged Chrome trace gives every shard its own process lane
//! (`pid = shard + 1`) and every restart its own thread group within that
//! lane (`tid = attempt·1000 + worker tid`, named via `thread_name`
//! metadata), so a restarted shard reads as: lane 3, attempt 0 tracks go
//! quiet, attempt 1 tracks pick up where the orchestrator relaunched it.

use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use crate::chrome::micros;
use crate::event::escape_json_into;
use crate::recorder::ObsBatch;
use crate::sidecar::{read_sidecar, SidecarHeader};
use crate::trace::ObsSnapshot;

/// One sidecar's recovered contents: a (shard, attempt) lane on the fleet
/// timeline.
#[derive(Debug, Clone)]
pub struct ShardLane {
    /// Header (shard identity + clock anchor).
    pub header: SidecarHeader,
    /// Everything recovered from the sidecar body.
    pub batch: ObsBatch,
    /// Torn/unparseable lines dropped during recovery.
    pub torn_lines: usize,
    /// Where this lane came from.
    pub path: PathBuf,
}

impl ShardLane {
    /// This lane's clock anchor as nanoseconds since the Unix epoch.
    fn anchor_unix_ns(&self) -> i128 {
        self.header.anchor_unix_ms as i128 * 1_000_000
    }

    /// Rebases a process-local timestamp onto the fleet timeline.
    fn fleet_ns(&self, local_ns: u64, fleet_epoch_unix_ns: i128) -> u64 {
        let offset = self.anchor_unix_ns() - fleet_epoch_unix_ns;
        let rebased = offset + (local_ns as i128 - self.header.anchor_ns as i128);
        rebased.clamp(0, u64::MAX as i128) as u64
    }
}

/// The merged telemetry of a fleet run.
#[derive(Debug, Clone, Default)]
pub struct MergedTelemetry {
    /// All recovered lanes, sorted by (shard, attempt).
    pub lanes: Vec<ShardLane>,
    /// Files that could not be read or were not sidecars, with the reason.
    pub skipped: Vec<(PathBuf, String)>,
}

/// Merges any set of sidecar files. Unreadable or non-sidecar files are
/// reported in [`MergedTelemetry::skipped`] rather than failing the merge —
/// a fleet that lost a disk on one shard still gets a trace for the rest.
pub fn merge_shard_telemetry<P: AsRef<Path>>(paths: &[P]) -> MergedTelemetry {
    let mut merged = MergedTelemetry::default();
    for path in paths {
        let path = path.as_ref();
        match read_sidecar(path) {
            Ok(read) => merged.lanes.push(ShardLane {
                header: read.header,
                batch: read.batch,
                torn_lines: read.torn_lines,
                path: path.to_path_buf(),
            }),
            Err(e) => merged.skipped.push((path.to_path_buf(), e.to_string())),
        }
    }
    merged
        .lanes
        .sort_by_key(|l| (l.header.shard, l.header.attempt, l.path.clone()));
    merged
}

impl MergedTelemetry {
    /// Scans `dir` for `*.telemetry.jsonl` files and merges them (the
    /// orchestrator's harvest path). Deterministic: directory entries are
    /// sorted before reading.
    pub fn from_dir(dir: &Path) -> std::io::Result<MergedTelemetry> {
        let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.ends_with(".telemetry.jsonl"))
            })
            .collect();
        paths.sort();
        Ok(merge_shard_telemetry(&paths))
    }

    /// The earliest lane anchor, used as the fleet timeline's zero point.
    fn fleet_epoch_unix_ns(&self) -> i128 {
        self.lanes
            .iter()
            .map(|l| l.anchor_unix_ns() - l.header.anchor_ns as i128)
            .min()
            .unwrap_or(0)
    }

    /// Distinct shard indices present.
    pub fn shards_present(&self) -> BTreeSet<usize> {
        self.lanes.iter().map(|l| l.header.shard).collect()
    }

    /// Lanes for a given shard, sorted by attempt.
    pub fn attempts_for(&self, shard: usize) -> Vec<u32> {
        self.lanes
            .iter()
            .filter(|l| l.header.shard == shard)
            .map(|l| l.header.attempt)
            .collect()
    }

    /// One aggregated snapshot across every lane: counters summed, timing
    /// histograms folded, spans rebased onto the fleet timeline, events
    /// concatenated in lane order. This is what the fleet-level stats and
    /// Prometheus dump consume.
    pub fn aggregated_snapshot(&self) -> ObsSnapshot {
        let epoch = self.fleet_epoch_unix_ns();
        let mut snap = ObsSnapshot::default();
        for lane in &self.lanes {
            for span in &lane.batch.spans {
                let mut span = span.clone();
                span.start_ns = lane.fleet_ns(span.start_ns, epoch);
                snap.spans.push(span);
            }
            snap.events.extend(lane.batch.events.iter().cloned());
            for (name, delta) in &lane.batch.counters {
                *snap.counters.entry(name).or_insert(0) += delta;
            }
            for (name, ns) in &lane.batch.timings {
                snap.timings.entry(name).or_default().observe(*ns);
            }
        }
        snap
    }

    /// Per-lane snapshots (un-rebased), for labeled Prometheus export.
    fn lane_snapshot(lane: &ShardLane) -> ObsSnapshot {
        let mut snap = ObsSnapshot {
            spans: lane.batch.spans.clone(),
            events: lane.batch.events.clone(),
            ..ObsSnapshot::default()
        };
        for (name, delta) in &lane.batch.counters {
            *snap.counters.entry(name).or_insert(0) += delta;
        }
        for (name, ns) in &lane.batch.timings {
            snap.timings.entry(name).or_default().observe(*ns);
        }
        snap
    }

    /// Aggregated Prometheus exposition text: one `shard`/`attempt`-labeled
    /// sample per lane under a single family header.
    pub fn prometheus(&self) -> String {
        let snaps: Vec<ObsSnapshot> = self.lanes.iter().map(Self::lane_snapshot).collect();
        let labels: Vec<(String, String)> = self
            .lanes
            .iter()
            .map(|l| (l.header.shard.to_string(), l.header.attempt.to_string()))
            .collect();
        let labeled: Vec<(&ObsSnapshot, Vec<(&str, &str)>)> = snaps
            .iter()
            .zip(&labels)
            .map(|(s, (shard, attempt))| {
                (
                    s,
                    vec![("shard", shard.as_str()), ("attempt", attempt.as_str())],
                )
            })
            .collect();
        let borrowed: Vec<(&ObsSnapshot, &[(&str, &str)])> =
            labeled.iter().map(|(s, l)| (*s, l.as_slice())).collect();
        crate::prom::prometheus_text_labeled(&borrowed)
    }

    /// The merged fleet Chrome trace: one process lane per shard, one
    /// thread group per (attempt, worker thread) within it, all spans
    /// rebased onto the fleet timeline. Loadable in Perfetto /
    /// `chrome://tracing`.
    pub fn chrome_trace(&self) -> String {
        let epoch = self.fleet_epoch_unix_ns();
        let total: usize = self.lanes.iter().map(|l| l.batch.spans.len() + 2).sum();
        let mut out = String::with_capacity(64 + 160 * total);
        out.push_str("{\"traceEvents\":[");
        let mut first = true;
        // Metadata: name every shard lane and every attempt sub-lane.
        for shard in self.shards_present() {
            sep(&mut out, &mut first);
            let _ = write!(
                out,
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{},\"tid\":0,\
                 \"args\":{{\"name\":\"shard {shard}\"}}}}",
                shard + 1
            );
            sep(&mut out, &mut first);
            let _ = write!(
                out,
                "{{\"name\":\"process_sort_index\",\"ph\":\"M\",\"pid\":{},\"tid\":0,\
                 \"args\":{{\"sort_index\":{shard}}}}}",
                shard + 1
            );
        }
        for lane in &self.lanes {
            let pid = lane.header.shard + 1;
            let tids: BTreeSet<u32> = lane.batch.spans.iter().map(|s| s.tid).collect();
            for tid in tids {
                let fleet_tid = fleet_tid(lane.header.attempt, tid);
                sep(&mut out, &mut first);
                let _ = write!(
                    out,
                    "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{fleet_tid},\
                     \"args\":{{\"name\":\"attempt {} · worker {tid}\"}}}}",
                    lane.header.attempt
                );
            }
        }
        // Spans, rebased.
        for lane in &self.lanes {
            let pid = lane.header.shard + 1;
            for span in &lane.batch.spans {
                sep(&mut out, &mut first);
                out.push_str("{\"name\":\"");
                escape_json_into(&span.name, &mut out);
                let _ = write!(
                    out,
                    "\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{pid},\"tid\":{}",
                    span.kind,
                    micros(lane.fleet_ns(span.start_ns, epoch)),
                    micros(span.dur_ns),
                    fleet_tid(lane.header.attempt, span.tid)
                );
                if let Some(layer) = span.layer {
                    let _ = write!(out, ",\"args\":{{\"layer\":{layer}}}");
                }
                out.push('}');
            }
        }
        // Events, as instants on their shard's lane (events carry no
        // timestamp; anchor them at the lane's start like the
        // single-process exporter anchors at 0).
        for lane in &self.lanes {
            let pid = lane.header.shard + 1;
            let ts = lane.fleet_ns(lane.header.anchor_ns, epoch);
            for event in &lane.batch.events {
                sep(&mut out, &mut first);
                let _ = write!(
                    out,
                    "{{\"name\":\"{}\",\"cat\":\"fi\",\"ph\":\"i\",\"ts\":{},\"s\":\"p\",\
                     \"pid\":{pid},\"tid\":{},\"args\":{}}}",
                    event.kind(),
                    micros(ts),
                    fleet_tid(lane.header.attempt, 1),
                    event.to_json()
                );
            }
        }
        out.push_str("]}");
        out
    }

    /// Writes [`MergedTelemetry::chrome_trace`] to `path`.
    pub fn write_chrome_trace(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.chrome_trace())
    }
}

/// Namespaces a worker-local thread id by attempt so restarts render as
/// separate sub-lanes within the shard's process lane.
fn fleet_tid(attempt: u32, tid: u32) -> u64 {
    attempt as u64 * 1_000 + tid as u64
}

fn sep(out: &mut String, first: &mut bool) {
    if *first {
        *first = false;
    } else {
        out.push(',');
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, TrialOutcomeEvent};
    use crate::json::{parse_json, Value};
    use crate::recorder::{Recorder, SpanRecord};
    use crate::sidecar::{sidecar_path, SidecarRecorder};

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rustfi_merge_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn span(name: &str, start_ns: u64, tid: u32) -> SpanRecord {
        SpanRecord {
            name: name.into(),
            kind: "trial",
            layer: None,
            start_ns,
            dur_ns: 100,
            tid,
        }
    }

    fn outcome(trial: usize, outcome: &'static str) -> Event {
        Event::TrialOutcome(TrialOutcomeEvent {
            trial,
            layer: 0,
            outcome,
            due_layer: None,
        })
    }

    #[test]
    fn merges_lanes_and_rebases_clocks() {
        let dir = tmpdir("rebase");
        // Two shards plus a restart of shard 1; fake distinct clock anchors
        // by writing headers manually (the real recorder stamps live ones).
        let mk = |shard: usize, attempt: u32, anchor_ns: u64, anchor_unix_ms: u64, body: &str| {
            let journal = dir.join(format!("shard-{shard:04}-of-0002.jsonl"));
            let path = sidecar_path(&journal, attempt);
            let header = format!(
                "{{\"rustfi_telemetry\":1,\"shard\":{shard},\"shards\":2,\"attempt\":{attempt},\
                 \"anchor_ns\":{anchor_ns},\"anchor_unix_ms\":{anchor_unix_ms}}}\n"
            );
            std::fs::write(&path, format!("{header}{body}")).unwrap();
            path
        };
        // Shard 0 started at wall 1000ms with local clock at 500ns.
        let p0 = mk(
            0,
            0,
            500,
            1_000,
            "{\"span\":{\"name\":\"a\",\"kind\":\"trial\",\"layer\":null,\
             \"start_ns\":500,\"dur_ns\":100,\"tid\":1}}\n\
             {\"counter\":\"fi.injections\",\"delta\":2}\n",
        );
        // Shard 1 attempt 0 started 5ms later.
        let p1 = mk(
            1,
            0,
            0,
            1_005,
            "{\"span\":{\"name\":\"b\",\"kind\":\"trial\",\"layer\":null,\
             \"start_ns\":1000,\"dur_ns\":100,\"tid\":1}}\n\
             {\"event\":{\"type\":\"trial_outcome\",\"trial\":3,\"layer\":0,\
             \"outcome\":\"sdc\",\"due_layer\":null}}\n",
        );
        // Restart of shard 1, 20ms after the fleet epoch.
        let p2 = mk(
            1,
            1,
            0,
            1_020,
            "{\"span\":{\"name\":\"c\",\"kind\":\"trial\",\"layer\":null,\
             \"start_ns\":0,\"dur_ns\":100,\"tid\":1}}\n\
             {\"timing\":\"campaign.trial_ns\",\"ns\":77}\n",
        );

        let merged = merge_shard_telemetry(&[p0, p1, p2]);
        assert!(merged.skipped.is_empty());
        assert_eq!(merged.lanes.len(), 3);
        assert_eq!(merged.shards_present().len(), 2);
        assert_eq!(merged.attempts_for(1), vec![0, 1]);

        let snap = merged.aggregated_snapshot();
        assert_eq!(snap.counters.get("fi.injections"), Some(&2));
        assert_eq!(snap.timings.get("campaign.trial_ns").unwrap().count, 1);
        assert_eq!(snap.events.len(), 1);
        // Fleet epoch = shard 0's anchor (wall 1000ms, local 500ns →
        // epoch = 1000ms·1e6 − 500). Shard 0's span at local 500 lands at 500.
        let by_name = |name: &str| snap.spans.iter().find(|s| s.name == name).unwrap().start_ns;
        assert_eq!(by_name("a"), 500);
        // Shard 1 attempt 0: 5ms after epoch + local 1000ns + shard0 local anchor 500.
        assert_eq!(by_name("b"), 5_000_000 + 1_000 + 500);
        // Restart: 20ms after epoch.
        assert_eq!(by_name("c"), 20_000_000 + 500);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fleet_trace_has_lanes_and_restart_sublanes() {
        let dir = tmpdir("lanes");
        for (shard, attempt) in [(0usize, 0u32), (1, 0), (1, 1)] {
            let journal = dir.join(format!("shard-{shard:04}-of-0002.jsonl"));
            let rec = SidecarRecorder::create(&sidecar_path(&journal, attempt), shard, 2, attempt)
                .unwrap();
            rec.span(span(&format!("s{shard}a{attempt}"), 10, 1));
            rec.event(outcome(shard, "masked"));
        }
        let merged = MergedTelemetry::from_dir(&dir).unwrap();
        let trace = merged.chrome_trace();
        let v = parse_json(&trace).unwrap_or_else(|e| panic!("{e}"));
        let events = v.get("traceEvents").and_then(Value::as_array).unwrap();

        let pids: BTreeSet<u64> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Value::as_str) == Some("X"))
            .filter_map(|e| e.get("pid").and_then(Value::as_u64))
            .collect();
        assert_eq!(pids, BTreeSet::from([1, 2]), "one lane per shard");

        let shard1_tids: BTreeSet<u64> = events
            .iter()
            .filter(|e| {
                e.get("ph").and_then(Value::as_str) == Some("X")
                    && e.get("pid").and_then(Value::as_u64) == Some(2)
            })
            .filter_map(|e| e.get("tid").and_then(Value::as_u64))
            .collect();
        assert_eq!(
            shard1_tids,
            BTreeSet::from([1, 1001]),
            "restart is a separate sub-lane"
        );
        assert!(
            events.iter().any(|e| {
                e.get("name").and_then(Value::as_str) == Some("thread_name")
                    && e.get("args")
                        .and_then(|a| a.get("name"))
                        .and_then(Value::as_str)
                        == Some("attempt 1 · worker 1")
            }),
            "sub-lane is named"
        );
        assert_eq!(
            events
                .iter()
                .filter(|e| e.get("ph").and_then(Value::as_str) == Some("i"))
                .count(),
            3
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unreadable_files_are_skipped_not_fatal() {
        let dir = tmpdir("skip");
        let good = dir.join("good.telemetry.jsonl");
        SidecarRecorder::create(&good, 0, 1, 0).unwrap();
        let bad = dir.join("bad.telemetry.jsonl");
        std::fs::write(&bad, "not json\n").unwrap();
        let missing = dir.join("missing.telemetry.jsonl");

        let merged = merge_shard_telemetry(&[good, bad, missing]);
        assert_eq!(merged.lanes.len(), 1);
        assert_eq!(merged.skipped.len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn labeled_prometheus_emits_one_sample_per_lane() {
        let dir = tmpdir("prom");
        for shard in 0..2usize {
            let rec = SidecarRecorder::create(
                &dir.join(format!("s{shard}.telemetry.jsonl")),
                shard,
                2,
                0,
            )
            .unwrap();
            rec.counter_add("fi.injections", (shard + 1) as u64);
        }
        let merged = MergedTelemetry::from_dir(&dir).unwrap();
        let text = merged.prometheus();
        assert!(text.contains("rustfi_fi_injections_total{shard=\"0\",attempt=\"0\"} 1"));
        assert!(text.contains("rustfi_fi_injections_total{shard=\"1\",attempt=\"0\"} 2"));
        assert_eq!(text.matches("# TYPE rustfi_fi_injections_total").count(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
