//! Small shared timing utilities, so benches and binaries stop hand-rolling
//! `Instant::now()` pairs.

use std::time::{Duration, Instant};

/// A restartable stopwatch.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    started: Instant,
}

impl Default for Stopwatch {
    fn default() -> Self {
        Self::start()
    }
}

impl Stopwatch {
    /// A stopwatch running from now.
    pub fn start() -> Self {
        Stopwatch {
            started: Instant::now(),
        }
    }

    /// Time since start (or the last [`Stopwatch::lap`]).
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// [`Stopwatch::elapsed`] in seconds.
    pub fn elapsed_secs(&self) -> f64 {
        self.elapsed().as_secs_f64()
    }

    /// Returns the elapsed time and restarts the stopwatch.
    pub fn lap(&mut self) -> Duration {
        let now = Instant::now();
        let lap = now - self.started;
        self.started = now;
        lap
    }
}

/// Runs `f` once, returning its result and wall time.
pub fn time<R>(f: impl FnOnce() -> R) -> (R, Duration) {
    let sw = Stopwatch::start();
    let r = f();
    (r, sw.elapsed())
}

/// Mean wall-clock seconds of `n` runs of `f` (0.0 when `n` is 0).
pub fn mean_seconds(n: usize, mut f: impl FnMut()) -> f64 {
    if n == 0 {
        return 0.0;
    }
    let sw = Stopwatch::start();
    for _ in 0..n {
        f();
    }
    sw.elapsed_secs() / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_returns_result_and_duration() {
        let (v, d) = time(|| 40 + 2);
        assert_eq!(v, 42);
        assert!(d >= Duration::ZERO);
    }

    #[test]
    fn lap_restarts() {
        let mut sw = Stopwatch::start();
        std::thread::sleep(Duration::from_millis(1));
        let first = sw.lap();
        assert!(first >= Duration::from_millis(1));
        assert!(sw.elapsed() < first + Duration::from_millis(50));
    }

    #[test]
    fn mean_seconds_runs_exactly_n_times() {
        let mut calls = 0;
        let mean = mean_seconds(5, || calls += 1);
        assert_eq!(calls, 5);
        assert!(mean >= 0.0);
        assert_eq!(mean_seconds(0, || unreachable!()), 0.0);
    }
}
