//! The monotonic clock and thread identity every recorder shares.
//!
//! Timestamps are nanoseconds since a process-wide epoch (the first call to
//! [`now_ns`]), so spans recorded on different threads land on one timeline
//! and Chrome trace timestamps start near zero. Thread ids are small dense
//! integers assigned on first use, which is what trace viewers want for
//! per-track grouping.

use std::cell::Cell;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Nanoseconds since the process-wide observation epoch (monotonic).
pub fn now_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// A small, dense id for the calling thread (1-based; stable for the
/// thread's lifetime).
pub fn thread_tid() -> u32 {
    static NEXT: AtomicU32 = AtomicU32::new(1);
    thread_local! {
        static TID: Cell<u32> = const { Cell::new(0) };
    }
    TID.with(|t| {
        if t.get() == 0 {
            t.set(NEXT.fetch_add(1, Ordering::Relaxed));
        }
        t.get()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotonic() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }

    #[test]
    fn tid_is_stable_per_thread_and_distinct_across_threads() {
        let mine = thread_tid();
        assert_eq!(mine, thread_tid(), "stable within a thread");
        let other = std::thread::spawn(thread_tid).join().unwrap();
        assert_ne!(mine, other, "distinct across threads");
        assert!(mine >= 1 && other >= 1);
    }
}
