//! Prometheus exposition-format text snapshot of counters and duration
//! histograms.
//!
//! Counters render as `rustfi_<name>_total`; histograms render as
//! Prometheus summaries (`_count` / `_sum`, with the sum in seconds per
//! Prometheus base-unit convention) plus `_min_seconds` / `_max_seconds`
//! gauges. Dots in recorder names become underscores to satisfy the metric
//! name grammar. Every family carries a `# HELP` and `# TYPE` line, and
//! label values are escaped per the exposition-format rules (`\\`, `\"`,
//! `\n`), so the output is scrape-clean.
//!
//! [`prometheus_text`] renders one unlabeled snapshot (a single-process
//! campaign); [`prometheus_text_labeled`] renders any number of snapshots
//! with per-snapshot label sets (the fleet merge uses it to emit one
//! `shard="i"`-labeled sample per shard under a single family header).

use std::collections::BTreeSet;
use std::fmt::Write as _;

use crate::names::metric_help;
use crate::trace::ObsSnapshot;

/// Renders counters and timings in Prometheus exposition format.
pub fn prometheus_text(snap: &ObsSnapshot) -> String {
    prometheus_text_labeled(&[(snap, &[])])
}

/// Renders any number of snapshots, each with its own label set, grouping
/// samples by metric family so `# HELP` / `# TYPE` appear exactly once per
/// family (the exposition format forbids repeating them).
pub fn prometheus_text_labeled(snapshots: &[(&ObsSnapshot, &[(&str, &str)])]) -> String {
    let mut out = String::new();

    let counter_names: BTreeSet<&str> = snapshots
        .iter()
        .flat_map(|(s, _)| s.counters.keys().copied())
        .collect();
    for name in counter_names {
        let metric = sanitize(name);
        let _ = writeln!(out, "# HELP rustfi_{metric}_total {}", metric_help(name));
        let _ = writeln!(out, "# TYPE rustfi_{metric}_total counter");
        for (snap, labels) in snapshots {
            if let Some(value) = snap.counters.get(name) {
                let _ = writeln!(out, "rustfi_{metric}_total{} {value}", label_set(labels));
            }
        }
    }

    let timing_names: BTreeSet<&str> = snapshots
        .iter()
        .flat_map(|(s, _)| s.timings.keys().copied())
        .collect();
    for name in timing_names {
        let metric = sanitize(name);
        let _ = writeln!(out, "# HELP rustfi_{metric}_seconds {}", metric_help(name));
        let _ = writeln!(out, "# TYPE rustfi_{metric}_seconds summary");
        for (snap, labels) in snapshots {
            if let Some(stat) = snap.timings.get(name) {
                let ls = label_set(labels);
                let _ = writeln!(out, "rustfi_{metric}_seconds_count{ls} {}", stat.count);
                let _ = writeln!(
                    out,
                    "rustfi_{metric}_seconds_sum{ls} {}",
                    seconds(stat.total_ns)
                );
                let _ = writeln!(
                    out,
                    "rustfi_{metric}_seconds_min{ls} {}",
                    seconds(stat.min_ns)
                );
                let _ = writeln!(
                    out,
                    "rustfi_{metric}_seconds_max{ls} {}",
                    seconds(stat.max_ns)
                );
            }
        }
    }

    if snapshots.iter().any(|(s, _)| s.dropped_spans > 0) {
        let _ = writeln!(
            out,
            "# HELP rustfi_obs_dropped_spans_total Spans discarded after the recorder's span cap."
        );
        let _ = writeln!(out, "# TYPE rustfi_obs_dropped_spans_total counter");
        for (snap, labels) in snapshots {
            if snap.dropped_spans > 0 {
                let _ = writeln!(
                    out,
                    "rustfi_obs_dropped_spans_total{} {}",
                    label_set(labels),
                    snap.dropped_spans
                );
            }
        }
    }
    out
}

/// Renders a label set as `{k="v",...}`, or the empty string when there are
/// no labels. Label *names* are sanitized to the metric-name grammar; label
/// *values* are escaped (`\` → `\\`, `"` → `\"`, newline → `\n`) per the
/// exposition format.
fn label_set(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut out = String::from("{");
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}=\"{}\"", sanitize(k), escape_label_value(v));
    }
    out.push('}');
    out
}

/// Escapes a label value per the Prometheus text exposition format.
pub(crate) fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Maps a recorder metric name onto the Prometheus name grammar
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`): anything else becomes `_`.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Nanoseconds as decimal seconds without float formatting surprises.
fn seconds(ns: u64) -> String {
    format!("{}.{:09}", ns / 1_000_000_000, ns % 1_000_000_000)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TimingStat;
    use std::collections::BTreeMap;

    #[test]
    fn renders_counters_and_summaries() {
        let mut snap = ObsSnapshot::default();
        snap.counters.insert("fi.injections", 42);
        let mut stat = TimingStat::default();
        stat.observe(1_500_000_000);
        stat.observe(500_000_000);
        snap.timings.insert("campaign.trial_ns", stat);
        snap.dropped_spans = 3;

        let text = prometheus_text(&snap);
        assert!(text.contains("# HELP rustfi_fi_injections_total "));
        assert!(text.contains("# TYPE rustfi_fi_injections_total counter\n"));
        assert!(text.contains("rustfi_fi_injections_total 42\n"));
        assert!(text.contains("# HELP rustfi_campaign_trial_ns_seconds "));
        assert!(text.contains("rustfi_campaign_trial_ns_seconds_count 2\n"));
        assert!(text.contains("rustfi_campaign_trial_ns_seconds_sum 2.000000000\n"));
        assert!(text.contains("rustfi_campaign_trial_ns_seconds_min 0.500000000\n"));
        assert!(text.contains("rustfi_campaign_trial_ns_seconds_max 1.500000000\n"));
        assert!(text.contains("rustfi_obs_dropped_spans_total 3\n"));
        for line in text.lines() {
            assert!(
                line.starts_with('#') || line.split(' ').count() == 2,
                "exposition line shape: {line}"
            );
        }
    }

    #[test]
    fn empty_snapshot_renders_empty() {
        assert!(prometheus_text(&ObsSnapshot::default()).is_empty());
    }

    /// Minimal exposition-format reader for the round-trip test: parses
    /// sample lines back into `(metric, labels, value)` and checks every
    /// family is preceded by HELP and TYPE.
    fn parse_exposition(text: &str) -> Vec<(String, BTreeMap<String, String>, f64)> {
        let mut samples = Vec::new();
        let mut helped: BTreeSet<String> = BTreeSet::new();
        let mut typed: BTreeSet<String> = BTreeSet::new();
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("# HELP ") {
                helped.insert(rest.split(' ').next().unwrap().to_string());
                continue;
            }
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                typed.insert(rest.split(' ').next().unwrap().to_string());
                continue;
            }
            let (series, value) = line.rsplit_once(' ').expect("sample line");
            let (metric, labels) = match series.split_once('{') {
                None => (series.to_string(), BTreeMap::new()),
                Some((m, rest)) => {
                    let body = rest.strip_suffix('}').expect("closing brace");
                    let mut map = BTreeMap::new();
                    let mut chars = body.chars().peekable();
                    while chars.peek().is_some() {
                        let key: String = chars.by_ref().take_while(|c| *c != '=').collect();
                        assert_eq!(chars.next(), Some('"'), "label value opens with a quote");
                        let mut val = String::new();
                        loop {
                            match chars.next().expect("unterminated label value") {
                                '"' => break,
                                '\\' => match chars.next().expect("dangling escape") {
                                    '\\' => val.push('\\'),
                                    '"' => val.push('"'),
                                    'n' => val.push('\n'),
                                    other => panic!("unknown escape \\{other}"),
                                },
                                c => val.push(c),
                            }
                        }
                        map.insert(key, val);
                        if chars.peek() == Some(&',') {
                            chars.next();
                        }
                    }
                    (m.to_string(), map)
                }
            };
            // A sample's family is the metric name minus summary suffixes.
            let family = metric
                .strip_suffix("_count")
                .or_else(|| metric.strip_suffix("_sum"))
                .or_else(|| metric.strip_suffix("_min"))
                .or_else(|| metric.strip_suffix("_max"))
                .unwrap_or(&metric);
            assert!(
                helped.contains(family) || helped.contains(&metric),
                "family {family} has HELP"
            );
            assert!(
                typed.contains(family) || typed.contains(&metric),
                "family {family} has TYPE"
            );
            samples.push((metric, labels, value.parse().unwrap()));
        }
        samples
    }

    #[test]
    fn labeled_output_round_trips_including_hostile_label_values() {
        let mut a = ObsSnapshot::default();
        a.counters.insert("fi.injections", 7);
        let mut b = ObsSnapshot::default();
        b.counters.insert("fi.injections", 5);
        let mut stat = TimingStat::default();
        stat.observe(250_000_000);
        b.timings.insert("campaign.trial_ns", stat);

        let hostile = "sh\"ard\\one\nline";
        let text = prometheus_text_labeled(&[
            (&a, &[("shard", "0"), ("host", hostile)]),
            (&b, &[("shard", "1")]),
        ]);

        let samples = parse_exposition(&text);
        let totals: Vec<_> = samples
            .iter()
            .filter(|(m, _, _)| m == "rustfi_fi_injections_total")
            .collect();
        assert_eq!(totals.len(), 2);
        assert_eq!(totals[0].1.get("shard").map(String::as_str), Some("0"));
        assert_eq!(
            totals[0].1.get("host").map(String::as_str),
            Some(hostile),
            "hostile label value survives the escape/unescape round trip"
        );
        assert_eq!(totals[0].2, 7.0);
        assert_eq!(totals[1].1.get("shard").map(String::as_str), Some("1"));
        assert_eq!(totals[1].2, 5.0);
        assert_eq!(
            samples
                .iter()
                .filter(|(m, _, _)| m == "rustfi_campaign_trial_ns_seconds_count")
                .count(),
            1
        );
        // HELP/TYPE must not repeat per family.
        let help_lines: Vec<_> = text
            .lines()
            .filter(|l| l.starts_with("# HELP rustfi_fi_injections_total"))
            .collect();
        assert_eq!(help_lines.len(), 1);
    }

    #[test]
    fn escape_label_value_covers_the_exposition_specials() {
        assert_eq!(escape_label_value(r#"a\b"c"#), r#"a\\b\"c"#);
        assert_eq!(escape_label_value("x\ny"), "x\\ny");
        assert_eq!(escape_label_value("plain"), "plain");
    }
}
