//! Prometheus exposition-format text snapshot of counters and duration
//! histograms.
//!
//! Counters render as `rustfi_<name>_total`; histograms render as
//! Prometheus summaries (`_count` / `_sum`, with the sum in seconds per
//! Prometheus base-unit convention) plus `_min_seconds` / `_max_seconds`
//! gauges. Dots in recorder names become underscores to satisfy the metric
//! name grammar.

use std::fmt::Write as _;

use crate::trace::ObsSnapshot;

/// Renders counters and timings in Prometheus exposition format.
pub fn prometheus_text(snap: &ObsSnapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snap.counters {
        let metric = sanitize(name);
        let _ = writeln!(out, "# TYPE rustfi_{metric}_total counter");
        let _ = writeln!(out, "rustfi_{metric}_total {value}");
    }
    for (name, stat) in &snap.timings {
        let metric = sanitize(name);
        let _ = writeln!(out, "# TYPE rustfi_{metric}_seconds summary");
        let _ = writeln!(out, "rustfi_{metric}_seconds_count {}", stat.count);
        let _ = writeln!(
            out,
            "rustfi_{metric}_seconds_sum {}",
            seconds(stat.total_ns)
        );
        let _ = writeln!(out, "rustfi_{metric}_seconds_min {}", seconds(stat.min_ns));
        let _ = writeln!(out, "rustfi_{metric}_seconds_max {}", seconds(stat.max_ns));
    }
    if snap.dropped_spans > 0 {
        let _ = writeln!(out, "# TYPE rustfi_obs_dropped_spans_total counter");
        let _ = writeln!(out, "rustfi_obs_dropped_spans_total {}", snap.dropped_spans);
    }
    out
}

/// Maps a recorder metric name onto the Prometheus name grammar
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`): anything else becomes `_`.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Nanoseconds as decimal seconds without float formatting surprises.
fn seconds(ns: u64) -> String {
    format!("{}.{:09}", ns / 1_000_000_000, ns % 1_000_000_000)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TimingStat;

    #[test]
    fn renders_counters_and_summaries() {
        let mut snap = ObsSnapshot::default();
        snap.counters.insert("fi.injections", 42);
        let mut stat = TimingStat::default();
        stat.observe(1_500_000_000);
        stat.observe(500_000_000);
        snap.timings.insert("campaign.trial_ns", stat);
        snap.dropped_spans = 3;

        let text = prometheus_text(&snap);
        assert!(text.contains("# TYPE rustfi_fi_injections_total counter\n"));
        assert!(text.contains("rustfi_fi_injections_total 42\n"));
        assert!(text.contains("rustfi_campaign_trial_ns_seconds_count 2\n"));
        assert!(text.contains("rustfi_campaign_trial_ns_seconds_sum 2.000000000\n"));
        assert!(text.contains("rustfi_campaign_trial_ns_seconds_min 0.500000000\n"));
        assert!(text.contains("rustfi_campaign_trial_ns_seconds_max 1.500000000\n"));
        assert!(text.contains("rustfi_obs_dropped_spans_total 3\n"));
        for line in text.lines() {
            assert!(
                line.starts_with('#') || line.split(' ').count() == 2,
                "exposition line shape: {line}"
            );
        }
    }

    #[test]
    fn empty_snapshot_renders_empty() {
        assert!(prometheus_text(&ObsSnapshot::default()).is_empty());
    }
}
