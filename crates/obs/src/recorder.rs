//! The [`Recorder`] trait and the zero-cost [`NullRecorder`].
//!
//! Instrumented code (the `rustfi-nn` forward path, the `rustfi` injector
//! and campaign engine) talks to observation exclusively through this trait,
//! held as an `Option<Arc<dyn Recorder>>`. Disabled observation is therefore
//! one `None` branch at each instrumentation point; a [`NullRecorder`], for
//! code that wants a recorder unconditionally, reduces every method to an
//! `#[inline]` no-op — in particular [`NullRecorder::layer_enter`] does not
//! even read the clock.

use crate::clock::{now_ns, thread_tid};
use crate::event::Event;

/// Opaque token produced by [`Recorder::layer_enter`] and consumed by
/// [`Recorder::layer_exit`]. Collecting recorders use the span's start
/// timestamp in nanoseconds; [`NullRecorder`] returns `0` without touching
/// the clock.
pub type SpanToken = u64;

/// Identity of the code region a span covers, borrowed from the caller.
#[derive(Debug, Clone, Copy)]
pub struct SpanCtx<'a> {
    /// Human-readable name (layer name, phase name).
    pub name: &'a str,
    /// Short static category (`"conv"`, `"seq"`, `"trial"`, …) — becomes the
    /// Chrome trace `cat`.
    pub kind: &'static str,
    /// Network layer index, when the span covers a layer.
    pub layer: Option<usize>,
}

/// One finished span on the shared timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Name copied from the [`SpanCtx`].
    pub name: String,
    /// Category copied from the [`SpanCtx`].
    pub kind: &'static str,
    /// Network layer index, when the span covers a layer.
    pub layer: Option<usize>,
    /// Start, nanoseconds since the observation epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Dense id of the recording thread.
    pub tid: u32,
}

/// Everything a worker buffered between two merge points: finished spans,
/// events, counter increments, and raw histogram observations.
#[derive(Debug, Clone, Default)]
pub struct ObsBatch {
    /// Finished spans.
    pub spans: Vec<SpanRecord>,
    /// Typed events in emission order.
    pub events: Vec<Event>,
    /// Counter increments `(name, delta)`.
    pub counters: Vec<(&'static str, u64)>,
    /// Histogram observations `(name, nanoseconds)`.
    pub timings: Vec<(&'static str, u64)>,
}

impl ObsBatch {
    /// Whether the batch holds nothing.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
            && self.events.is_empty()
            && self.counters.is_empty()
            && self.timings.is_empty()
    }

    /// Appends another batch's contents.
    pub fn extend(&mut self, other: ObsBatch) {
        self.spans.extend(other.spans);
        self.events.extend(other.events);
        self.counters.extend(other.counters);
        self.timings.extend(other.timings);
    }
}

/// Sink for spans, events, counters, and duration histograms.
///
/// All methods take `&self`: recorders are shared (`Arc`) between the
/// network, the injector, and campaign workers. Implementations must be
/// cheap enough to call from inference hot paths — or be [`NullRecorder`].
pub trait Recorder: Send + Sync {
    /// Marks the start of a span (a layer forward, a trial). Returns the
    /// token to hand back to [`Recorder::layer_exit`].
    fn layer_enter(&self) -> SpanToken;

    /// Finishes the span opened by the matching [`Recorder::layer_enter`].
    fn layer_exit(&self, ctx: &SpanCtx<'_>, token: SpanToken);

    /// Records an already-finished span (used by batch merges and callers
    /// that timed a region themselves).
    fn span(&self, span: SpanRecord);

    /// Records a typed event.
    fn event(&self, event: Event);

    /// Adds `delta` to the named monotonic counter.
    fn counter_add(&self, name: &'static str, delta: u64);

    /// Records one observation into the named duration histogram.
    fn observe_ns(&self, name: &'static str, ns: u64);

    /// Bulk-merges a batch (campaigns call this once per trial per worker).
    /// The default replays every item through the single-item methods.
    fn merge(&self, batch: ObsBatch) {
        for s in batch.spans {
            self.span(s);
        }
        for e in batch.events {
            self.event(e);
        }
        for (name, delta) in batch.counters {
            self.counter_add(name, delta);
        }
        for (name, ns) in batch.timings {
            self.observe_ns(name, ns);
        }
    }

    /// Durability point: asks the recorder to push buffered state to its
    /// backing store (a sidecar file, a flight-recorder snapshot). Campaigns
    /// call this once at the end of a run; streaming recorders may also
    /// flush on their own cadence. In-memory recorders need not override the
    /// default no-op.
    fn flush(&self) {}
}

/// Tees every call to a set of inner recorders, in order.
///
/// This is how a fleet worker records to its telemetry sidecar *and* its
/// crash flight recorder (and optionally an in-memory [`TraceRecorder`]) at
/// once without the instrumented code knowing. `layer_enter` reads the clock
/// once and hands the same token to every inner recorder on exit, so fanned
/// spans carry identical timestamps.
///
/// [`TraceRecorder`]: crate::TraceRecorder
pub struct FanoutRecorder {
    inner: Vec<std::sync::Arc<dyn Recorder>>,
}

impl FanoutRecorder {
    /// Builds a fanout over the given recorders.
    pub fn new(inner: Vec<std::sync::Arc<dyn Recorder>>) -> Self {
        FanoutRecorder { inner }
    }
}

impl Recorder for FanoutRecorder {
    fn layer_enter(&self) -> SpanToken {
        now_ns()
    }

    fn layer_exit(&self, ctx: &SpanCtx<'_>, token: SpanToken) {
        let span = close_span(ctx, token);
        for rec in &self.inner {
            rec.span(span.clone());
        }
    }

    fn span(&self, span: SpanRecord) {
        for rec in &self.inner {
            rec.span(span.clone());
        }
    }

    fn event(&self, event: Event) {
        for rec in &self.inner {
            rec.event(event.clone());
        }
    }

    fn counter_add(&self, name: &'static str, delta: u64) {
        for rec in &self.inner {
            rec.counter_add(name, delta);
        }
    }

    fn observe_ns(&self, name: &'static str, ns: u64) {
        for rec in &self.inner {
            rec.observe_ns(name, ns);
        }
    }

    fn merge(&self, batch: ObsBatch) {
        match self.inner.split_last() {
            None => {}
            Some((last, rest)) => {
                for rec in rest {
                    rec.merge(batch.clone());
                }
                last.merge(batch);
            }
        }
    }

    fn flush(&self) {
        for rec in &self.inner {
            rec.flush();
        }
    }
}

/// Helper for collecting recorders: builds the [`SpanRecord`] for a span
/// closed *now* whose `layer_enter` returned `token`.
pub(crate) fn close_span(ctx: &SpanCtx<'_>, token: SpanToken) -> SpanRecord {
    let end = now_ns();
    SpanRecord {
        name: ctx.name.to_string(),
        kind: ctx.kind,
        layer: ctx.layer,
        start_ns: token,
        dur_ns: end.saturating_sub(token),
        tid: thread_tid(),
    }
}

/// The do-nothing recorder: every method is an `#[inline]` no-op, so code
/// that keeps a recorder installed unconditionally pays only the virtual
/// call (and no clock read). The `ablation_obs_overhead` bench demonstrates
/// this path is within noise of uninstrumented code.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    #[inline]
    fn layer_enter(&self) -> SpanToken {
        0
    }

    #[inline]
    fn layer_exit(&self, _ctx: &SpanCtx<'_>, _token: SpanToken) {}

    #[inline]
    fn span(&self, _span: SpanRecord) {}

    #[inline]
    fn event(&self, _event: Event) {}

    #[inline]
    fn counter_add(&self, _name: &'static str, _delta: u64) {}

    #[inline]
    fn observe_ns(&self, _name: &'static str, _ns: u64) {}

    #[inline]
    fn merge(&self, _batch: ObsBatch) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_recorder_accepts_everything_silently() {
        let rec = NullRecorder;
        let token = rec.layer_enter();
        assert_eq!(token, 0, "null recorder does not read the clock");
        rec.layer_exit(
            &SpanCtx {
                name: "x",
                kind: "test",
                layer: None,
            },
            token,
        );
        rec.counter_add("c", 1);
        rec.observe_ns("h", 5);
        rec.merge(ObsBatch::default());
    }

    #[test]
    fn batch_emptiness_and_extend() {
        let mut a = ObsBatch::default();
        assert!(a.is_empty());
        let b = ObsBatch {
            counters: vec![("c", 2)],
            ..ObsBatch::default()
        };
        a.extend(b);
        assert!(!a.is_empty());
        assert_eq!(a.counters, vec![("c", 2)]);
    }

    #[test]
    fn fanout_tees_to_every_inner_recorder() {
        use crate::trace::TraceRecorder;
        use std::sync::Arc;
        let a = Arc::new(TraceRecorder::new());
        let b = Arc::new(TraceRecorder::new());
        let fan = FanoutRecorder::new(vec![a.clone(), b.clone()]);
        let token = fan.layer_enter();
        fan.layer_exit(
            &SpanCtx {
                name: "conv1",
                kind: "conv",
                layer: Some(0),
            },
            token,
        );
        fan.counter_add("c", 3);
        fan.observe_ns("h", 10);
        fan.merge(ObsBatch {
            counters: vec![("c", 2)],
            ..ObsBatch::default()
        });
        fan.flush();
        for rec in [&a, &b] {
            let snap = rec.snapshot();
            assert_eq!(snap.spans.len(), 1);
            assert_eq!(snap.spans[0].name, "conv1");
            assert_eq!(snap.counters.get("c"), Some(&5));
            assert_eq!(snap.timings.get("h").map(|t| t.count), Some(1));
        }
    }

    #[test]
    fn close_span_measures_a_nonnegative_duration() {
        let ctx = SpanCtx {
            name: "conv1",
            kind: "conv",
            layer: Some(1),
        };
        let token = now_ns();
        let span = close_span(&ctx, token);
        assert_eq!(span.name, "conv1");
        assert_eq!(span.layer, Some(1));
        assert!(span.start_ns == token && span.tid >= 1);
    }
}
