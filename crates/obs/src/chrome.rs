//! Chrome `trace_event` JSON export — the format `chrome://tracing` and
//! [Perfetto](https://ui.perfetto.dev) load directly.
//!
//! Spans become `"ph":"X"` complete events (timestamps and durations in
//! microseconds, as the format requires); typed events become `"ph":"i"`
//! instant events carrying their payload under `"args"`. Everything runs
//! under `pid` 1 with the recorder's dense thread ids as `tid`, so the
//! viewer groups tracks per worker.

use std::fmt::Write as _;

use crate::event::{escape_json_into, Event};
use crate::trace::ObsSnapshot;

/// Renders a snapshot as a Chrome `trace_event` JSON object
/// (`{"traceEvents": [...]}`).
pub fn chrome_trace_json(snap: &ObsSnapshot) -> String {
    let mut out = String::with_capacity(64 + 160 * (snap.spans.len() + snap.events.len()));
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    for span in &snap.spans {
        sep(&mut out, &mut first);
        out.push_str("{\"name\":\"");
        escape_json_into(&span.name, &mut out);
        let _ = write!(
            out,
            "\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{}",
            span.kind,
            micros(span.start_ns),
            micros(span.dur_ns),
            span.tid
        );
        if let Some(layer) = span.layer {
            let _ = write!(out, ",\"args\":{{\"layer\":{layer}}}");
        }
        out.push('}');
    }
    for event in &snap.events {
        sep(&mut out, &mut first);
        instant_event(&mut out, event);
    }
    out.push_str("]}");
    out
}

fn sep(out: &mut String, first: &mut bool) {
    if *first {
        *first = false;
    } else {
        out.push(',');
    }
}

/// Micro-second rendering with nanosecond precision kept as decimals
/// (Chrome's `ts`/`dur` are floating-point microseconds).
pub(crate) fn micros(ns: u64) -> String {
    let whole = ns / 1_000;
    let frac = ns % 1_000;
    if frac == 0 {
        format!("{whole}")
    } else {
        format!("{whole}.{frac:03}")
    }
}

fn instant_event(out: &mut String, event: &Event) {
    let _ = write!(
        out,
        "{{\"name\":\"{}\",\"cat\":\"fi\",\"ph\":\"i\",\"ts\":0,\"s\":\"g\",\
         \"pid\":1,\"tid\":1,\"args\":{}}}",
        event.kind(),
        event.to_json()
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{GuardEvent, InjectionEvent, InjectionSite};
    use crate::json::parse_json;
    use crate::recorder::SpanRecord;

    fn snapshot() -> ObsSnapshot {
        ObsSnapshot {
            spans: vec![
                SpanRecord {
                    name: "conv\"1\"".into(),
                    kind: "conv",
                    layer: Some(0),
                    start_ns: 1_500,
                    dur_ns: 2_000,
                    tid: 1,
                },
                SpanRecord {
                    name: "fc".into(),
                    kind: "linear",
                    layer: None,
                    start_ns: 4_000,
                    dur_ns: 250,
                    tid: 2,
                },
            ],
            events: vec![
                Event::Injection(InjectionEvent {
                    trial: Some(3),
                    layer: 0,
                    site: InjectionSite::Neuron {
                        batch: 0,
                        channel: 1,
                        y: 2,
                        x: 3,
                    },
                    bit: Some(30),
                    before: 1.0,
                    after: f32::NAN,
                }),
                Event::Guard(GuardEvent::NonFinite {
                    layer: 4,
                    layer_name: "relu4".into(),
                }),
            ],
            ..ObsSnapshot::default()
        }
    }

    #[test]
    fn trace_is_valid_json_with_all_entries() {
        let json = chrome_trace_json(&snapshot());
        let v = parse_json(&json).unwrap_or_else(|e| panic!("{e}: {json}"));
        let events = v
            .get("traceEvents")
            .and_then(|t| t.as_array())
            .expect("traceEvents array");
        assert_eq!(events.len(), 4);
        assert_eq!(events[0].get("ph").and_then(|p| p.as_str()), Some("X"));
        assert_eq!(
            events[0].get("name").and_then(|n| n.as_str()),
            Some("conv\"1\""),
            "span names are escaped and round-trip"
        );
        assert_eq!(events[2].get("ph").and_then(|p| p.as_str()), Some("i"));
        assert_eq!(
            events[2]
                .get("args")
                .and_then(|a| a.get("type"))
                .and_then(|t| t.as_str()),
            Some("injection")
        );
    }

    #[test]
    fn timestamps_are_microseconds_with_ns_decimals() {
        assert_eq!(micros(0), "0");
        assert_eq!(micros(2_000), "2");
        assert_eq!(micros(1_500), "1.500");
        assert_eq!(micros(1_002), "1.002");
        let json = chrome_trace_json(&snapshot());
        assert!(json.contains("\"ts\":1.500"), "{json}");
        assert!(json.contains("\"dur\":2"), "{json}");
    }

    #[test]
    fn empty_snapshot_is_still_valid() {
        let json = chrome_trace_json(&ObsSnapshot::default());
        assert_eq!(json, "{\"traceEvents\":[]}");
        parse_json(&json).unwrap();
    }
}
