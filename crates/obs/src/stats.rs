//! Streaming campaign statistics: per-layer and overall SDC/DUE rates with
//! Wilson score intervals, and latency quantiles — all computed without
//! storing per-record data.
//!
//! The paper reports point-estimate SDC rates; TensorFI-style practice adds
//! statistical confidence, which matters exactly when rates are small (the
//! paper's headline is "<1% SDC for single INT8 flips" — a claim that is
//! meaningless without an interval at realistic trial counts). The Wilson
//! score interval behaves well at small `n` and extreme `p`, unlike the
//! normal approximation.
//!
//! Latency quantiles come from a fixed-size **log-linear histogram** (values
//! below 16 exact, then 16 sub-buckets per octave): ~8 KB of memory, ≤ ~6%
//! relative error at any quantile, no per-observation storage. This is what
//! lets the fleet's merged report quote p50/p90/p99 trial latency over
//! millions of trials from counters alone.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use parking_lot::Mutex;

use crate::event::Event;
use crate::names::{CAMPAIGN_FUSED_CHUNK_NS, CAMPAIGN_TRIAL_NS};
use crate::recorder::{ObsBatch, Recorder, SpanCtx, SpanRecord, SpanToken};
use crate::trace::ObsSnapshot;

/// The two-sided Wilson score interval for a binomial proportion:
/// `hits` successes in `n` trials at critical value `z` (1.96 ≈ 95%).
/// Returns `(lo, hi)` in `[0, 1]`; `(0, 1)` when `n == 0`.
pub fn wilson_interval(hits: u64, n: u64, z: f64) -> (f64, f64) {
    if n == 0 {
        return (0.0, 1.0);
    }
    let n_f = n as f64;
    let p = hits as f64 / n_f;
    let z2 = z * z;
    let denom = 1.0 + z2 / n_f;
    let center = (p + z2 / (2.0 * n_f)) / denom;
    let half = (z / denom) * (p * (1.0 - p) / n_f + z2 / (4.0 * n_f * n_f)).sqrt();
    ((center - half).max(0.0), (center + half).min(1.0))
}

/// The 95% critical value used by every rendered table.
pub const Z_95: f64 = 1.959_963_984_540_054;

const LINEAR_CUTOFF: u64 = 16;
const SUB_BUCKETS: usize = 16;
/// Octaves 4..=63 each get [`SUB_BUCKETS`] buckets after the linear range.
const BUCKETS: usize = LINEAR_CUTOFF as usize + (64 - 4) * SUB_BUCKETS;

/// Fixed-memory log-linear histogram over `u64` values (nanoseconds, in
/// practice): exact below 16, then 16 sub-buckets per power of two, giving
/// ≤ ~1/16 relative quantile error with ~8 KB of state.
#[derive(Clone)]
pub struct StreamingHistogram {
    buckets: Box<[u64; BUCKETS]>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for StreamingHistogram {
    fn default() -> Self {
        StreamingHistogram {
            buckets: Box::new([0; BUCKETS]),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl std::fmt::Debug for StreamingHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamingHistogram")
            .field("count", &self.count)
            .field("sum", &self.sum)
            .field("min", &self.min)
            .field("max", &self.max)
            .finish_non_exhaustive()
    }
}

fn bucket_index(v: u64) -> usize {
    if v < LINEAR_CUTOFF {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros() as usize; // ≥ 4
    let sub = ((v >> (msb - 4)) & 0xF) as usize;
    LINEAR_CUTOFF as usize + (msb - 4) * SUB_BUCKETS + sub
}

/// The midpoint of a bucket (its representative value for quantiles).
fn bucket_mid(idx: usize) -> u64 {
    if idx < LINEAR_CUTOFF as usize {
        return idx as u64;
    }
    let rel = idx - LINEAR_CUTOFF as usize;
    let msb = 4 + rel / SUB_BUCKETS;
    let sub = (rel % SUB_BUCKETS) as u64;
    let lo = (1u64 << msb) + (sub << (msb - 4));
    let width = 1u64 << (msb - 4);
    lo + width / 2
}

impl StreamingHistogram {
    /// Folds in one observation.
    pub fn observe(&mut self, v: u64) {
        self.buckets[bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// The `q`-quantile (`0.0 ..= 1.0`): exact at the extremes (tracked
    /// min/max), bucket-midpoint accurate (≤ ~6% relative error) elsewhere.
    /// Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if q <= 0.0 {
            return self.min;
        }
        if q >= 1.0 {
            return self.max;
        }
        let target = (q * (self.count - 1) as f64).round() as u64;
        let mut seen = 0u64;
        for (idx, c) in self.buckets.iter().enumerate() {
            if *c == 0 {
                continue;
            }
            seen += c;
            if seen > target {
                return bucket_mid(idx).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Folds another histogram into this one.
    pub fn merge_from(&mut self, other: &StreamingHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Outcome tallies for one layer (or the whole campaign).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OutcomeCounts {
    /// Trials whose output matched the golden run.
    pub masked: u64,
    /// Silent data corruptions (top-1 changed).
    pub sdc: u64,
    /// Detected uncorrectable errors (guard fired).
    pub due: u64,
    /// Trials that panicked.
    pub crash: u64,
    /// Trials that tripped the step watchdog.
    pub hang: u64,
    /// Unknown labels (foreign telemetry).
    pub unknown: u64,
}

impl OutcomeCounts {
    /// Total trials observed.
    pub fn total(&self) -> u64 {
        self.masked + self.sdc + self.due + self.crash + self.hang + self.unknown
    }

    fn add(&mut self, outcome: &str) {
        match outcome {
            "masked" => self.masked += 1,
            "sdc" => self.sdc += 1,
            "due" => self.due += 1,
            "crash" => self.crash += 1,
            "hang" => self.hang += 1,
            _ => self.unknown += 1,
        }
    }
}

/// Streaming statistics over a campaign's event/timing stream: per-layer and
/// overall outcome tallies plus latency histograms. Fixed memory — nothing
/// here grows with trial count.
#[derive(Debug, Clone, Default)]
pub struct CampaignStats {
    /// Outcome tallies by injectable layer index.
    pub per_layer: BTreeMap<usize, OutcomeCounts>,
    /// Whole-campaign outcome tallies.
    pub overall: OutcomeCounts,
    /// Per-trial latency (the `campaign.trial_ns` stream).
    pub trial_ns: StreamingHistogram,
    /// Per-fused-chunk latency (the `campaign.fused_chunk_ns` stream).
    pub fused_chunk_ns: StreamingHistogram,
}

impl CampaignStats {
    /// Consumes one event (only trial outcomes carry statistics).
    pub fn ingest_event(&mut self, event: &Event) {
        if let Event::TrialOutcome(e) = event {
            // A crash before fault planning reports layer usize::MAX;
            // keep it out of the per-layer table but in the overall row.
            self.overall.add(e.outcome);
            if e.layer != usize::MAX {
                self.per_layer.entry(e.layer).or_default().add(e.outcome);
            }
        }
    }

    /// Consumes one timing observation.
    pub fn ingest_timing(&mut self, name: &str, ns: u64) {
        if name == CAMPAIGN_TRIAL_NS {
            self.trial_ns.observe(ns);
        } else if name == CAMPAIGN_FUSED_CHUNK_NS {
            self.fused_chunk_ns.observe(ns);
        }
    }

    /// Builds stats from an already-collected snapshot. Timing histograms
    /// are approximated from the snapshot's [`TimingStat`] summaries when
    /// raw observations are gone; prefer feeding a [`StatsRecorder`] live
    /// or ingesting a raw [`ObsBatch`].
    ///
    /// [`TimingStat`]: crate::TimingStat
    pub fn from_events(events: &[Event]) -> CampaignStats {
        let mut stats = CampaignStats::default();
        for e in events {
            stats.ingest_event(e);
        }
        stats
    }

    /// Ingests a raw batch (events + timing observations), e.g. a merged
    /// sidecar lane.
    pub fn ingest_batch(&mut self, batch: &ObsBatch) {
        for e in &batch.events {
            self.ingest_event(e);
        }
        for (name, ns) in &batch.timings {
            self.ingest_timing(name, *ns);
        }
    }

    /// Ingests an aggregated snapshot (events plus raw-span-derived
    /// timings are already folded; only events remain to consume).
    pub fn ingest_snapshot_events(&mut self, snap: &ObsSnapshot) {
        for e in &snap.events {
            self.ingest_event(e);
        }
    }

    /// Folds another stats object into this one.
    pub fn merge_from(&mut self, other: &CampaignStats) {
        for (layer, counts) in &other.per_layer {
            let row = self.per_layer.entry(*layer).or_default();
            row.masked += counts.masked;
            row.sdc += counts.sdc;
            row.due += counts.due;
            row.crash += counts.crash;
            row.hang += counts.hang;
            row.unknown += counts.unknown;
        }
        let o = &other.overall;
        self.overall.masked += o.masked;
        self.overall.sdc += o.sdc;
        self.overall.due += o.due;
        self.overall.crash += o.crash;
        self.overall.hang += o.hang;
        self.overall.unknown += o.unknown;
        self.trial_ns.merge_from(&other.trial_ns);
        self.fused_chunk_ns.merge_from(&other.fused_chunk_ns);
    }

    /// Renders the per-layer SDC/DUE table with 95% Wilson intervals.
    pub fn sdc_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:>5} {:>8} {:>22} {:>22} {:>6} {:>6}",
            "layer", "trials", "sdc% [95% CI]", "due% [95% CI]", "crash", "hang"
        );
        for (layer, counts) in &self.per_layer {
            let _ = writeln!(out, "{:>5} {}", layer, rate_row(counts));
        }
        let _ = writeln!(out, "{:>5} {}", "all", rate_row(&self.overall));
        out
    }

    /// Renders the latency-quantile summary (empty string when no timing
    /// stream was observed).
    pub fn latency_summary(&self) -> String {
        let mut out = String::new();
        for (label, hist) in [
            ("trial", &self.trial_ns),
            ("fused chunk", &self.fused_chunk_ns),
        ] {
            if hist.count() == 0 {
                continue;
            }
            let _ = writeln!(
                out,
                "{label:>12} latency: n={} mean={} p50={} p90={} p99={} max={}",
                hist.count(),
                fmt_ns(hist.mean()),
                fmt_ns(hist.quantile(0.50)),
                fmt_ns(hist.quantile(0.90)),
                fmt_ns(hist.quantile(0.99)),
                fmt_ns(hist.max)
            );
        }
        out
    }
}

fn rate_row(c: &OutcomeCounts) -> String {
    let n = c.total();
    format!(
        "{:>8} {:>22} {:>22} {:>6} {:>6}",
        n,
        rate_ci(c.sdc, n),
        rate_ci(c.due, n),
        c.crash,
        c.hang
    )
}

/// `"x.xx% [lo.xx, hi.xx]"` with a 95% Wilson interval.
fn rate_ci(hits: u64, n: u64) -> String {
    let (lo, hi) = wilson_interval(hits, n, Z_95);
    let p = if n == 0 { 0.0 } else { hits as f64 / n as f64 };
    format!("{:.2}% [{:.2}, {:.2}]", p * 100.0, lo * 100.0, hi * 100.0)
}

/// Human nanoseconds: `950ns`, `12.3µs`, `4.56ms`, `1.23s`.
fn fmt_ns(ns: u64) -> String {
    match ns {
        0..=999 => format!("{ns}ns"),
        1_000..=999_999 => format!("{:.1}µs", ns as f64 / 1e3),
        1_000_000..=999_999_999 => format!("{:.2}ms", ns as f64 / 1e6),
        _ => format!("{:.2}s", ns as f64 / 1e9),
    }
}

/// A [`Recorder`] that folds the event/timing stream straight into
/// [`CampaignStats`] — fixed memory, suitable for fanning alongside a
/// sidecar or trace recorder in arbitrarily long campaigns.
#[derive(Default)]
pub struct StatsRecorder {
    stats: Mutex<CampaignStats>,
}

impl StatsRecorder {
    /// An empty stats recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Owned copy of the accumulated statistics.
    pub fn snapshot(&self) -> CampaignStats {
        self.stats.lock().clone()
    }
}

impl Recorder for StatsRecorder {
    fn layer_enter(&self) -> SpanToken {
        0
    }

    fn layer_exit(&self, _ctx: &SpanCtx<'_>, _token: SpanToken) {}

    fn span(&self, _span: SpanRecord) {}

    fn event(&self, event: Event) {
        self.stats.lock().ingest_event(&event);
    }

    fn counter_add(&self, _name: &'static str, _delta: u64) {}

    fn observe_ns(&self, name: &'static str, ns: u64) {
        self.stats.lock().ingest_timing(name, ns);
    }

    fn merge(&self, batch: ObsBatch) {
        self.stats.lock().ingest_batch(&batch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TrialOutcomeEvent;

    #[test]
    fn wilson_matches_known_values() {
        // 10/100 at 95%: the canonical Wilson example ≈ [0.0552, 0.1744].
        let (lo, hi) = wilson_interval(10, 100, Z_95);
        assert!((lo - 0.0552).abs() < 5e-4, "{lo}");
        assert!((hi - 0.1744).abs() < 5e-4, "{hi}");
        // Degenerate cases stay inside [0, 1] and are sensible.
        assert_eq!(wilson_interval(0, 0, Z_95), (0.0, 1.0));
        let (lo, hi) = wilson_interval(0, 50, Z_95);
        assert_eq!(lo, 0.0);
        assert!(hi > 0.0 && hi < 0.1, "zero successes still has width: {hi}");
        let (lo, hi) = wilson_interval(50, 50, Z_95);
        assert!(lo > 0.9 && lo < 1.0);
        assert_eq!(hi, 1.0);
    }

    #[test]
    fn histogram_buckets_are_total_and_ordered() {
        // Every value maps to a bucket whose midpoint is within 1/16.
        for v in [0u64, 1, 15, 16, 17, 1_000, 123_456, u64::MAX / 2, u64::MAX] {
            let idx = bucket_index(v);
            assert!(idx < BUCKETS, "{v}");
            let mid = bucket_mid(idx);
            if v >= 16 {
                let err = mid.abs_diff(v) as f64 / v as f64;
                assert!(err <= 1.0 / 16.0, "v={v} mid={mid} err={err}");
            } else {
                assert_eq!(mid, v, "linear range is exact");
            }
        }
        // Bucket index is monotone in the value.
        let mut prev = 0;
        for v in (0..10_000u64).step_by(7) {
            let idx = bucket_index(v);
            assert!(idx >= prev);
            prev = idx;
        }
    }

    #[test]
    fn quantiles_track_a_uniform_stream() {
        let mut h = StreamingHistogram::default();
        for v in 1..=10_000u64 {
            h.observe(v * 1_000); // 1µs .. 10ms
        }
        assert_eq!(h.count(), 10_000);
        assert_eq!(h.quantile(0.0), 1_000);
        assert_eq!(h.quantile(1.0), 10_000_000);
        for (q, expect) in [(0.5, 5_000_000.0), (0.9, 9_000_000.0), (0.99, 9_900_000.0)] {
            let got = h.quantile(q) as f64;
            let err = (got - expect).abs() / expect;
            assert!(err < 0.07, "q={q} got={got} expect={expect} err={err}");
        }
    }

    #[test]
    fn histogram_merge_equals_union() {
        let mut a = StreamingHistogram::default();
        let mut b = StreamingHistogram::default();
        let mut whole = StreamingHistogram::default();
        for v in 0..1_000u64 {
            let target = if v % 2 == 0 { &mut a } else { &mut b };
            target.observe(v * 17);
            whole.observe(v * 17);
        }
        a.merge_from(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.sum(), whole.sum());
        for q in [0.0, 0.25, 0.5, 0.75, 0.99, 1.0] {
            assert_eq!(a.quantile(q), whole.quantile(q), "q={q}");
        }
    }

    fn outcome(trial: usize, layer: usize, outcome: &'static str) -> Event {
        Event::TrialOutcome(TrialOutcomeEvent {
            trial,
            layer,
            outcome,
            due_layer: None,
        })
    }

    #[test]
    fn stats_recorder_accumulates_rates_and_latency() {
        let rec = StatsRecorder::new();
        for t in 0..80 {
            rec.event(outcome(
                t,
                t % 2,
                if t % 10 == 0 { "sdc" } else { "masked" },
            ));
            rec.observe_ns(CAMPAIGN_TRIAL_NS, 1_000 + t as u64);
        }
        rec.event(outcome(80, usize::MAX, "crash"));
        rec.observe_ns("some.other.timing", 5);

        let stats = rec.snapshot();
        assert_eq!(stats.overall.total(), 81);
        assert_eq!(stats.overall.sdc, 8);
        assert_eq!(stats.overall.crash, 1);
        assert_eq!(stats.per_layer.len(), 2, "usize::MAX layer excluded");
        assert_eq!(
            stats.per_layer[&0].total() + stats.per_layer[&1].total(),
            80
        );
        assert_eq!(stats.trial_ns.count(), 80);

        let table = stats.sdc_table();
        assert!(table.contains("sdc% [95% CI]"), "{table}");
        assert!(table.lines().count() >= 4, "{table}");
        let latency = stats.latency_summary();
        assert!(latency.contains("p99"), "{latency}");
    }
}
