//! [`LocalRecorder`]: a per-worker buffer that keeps hot-path recording off
//! the shared recorder's lock.
//!
//! Campaign workers each own one of these. Every recording call appends to a
//! thread-private batch behind an uncontended mutex; at trial boundaries
//! [`LocalRecorder::flush_into`] hands the whole batch to the shared
//! recorder's lock-free [`Recorder::merge`]. The result: observation costs
//! the worker one vector push per item and one CAS per trial, and can never
//! serialize workers against each other — which is what preserves the
//! campaign engine's thread-count-invariance guarantee.

use parking_lot::Mutex;

use crate::event::Event;
use crate::recorder::{close_span, ObsBatch, Recorder, SpanCtx, SpanRecord, SpanToken};

/// Buffering [`Recorder`] for one worker thread.
#[derive(Default)]
pub struct LocalRecorder {
    buf: Mutex<ObsBatch>,
}

impl LocalRecorder {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes the buffered batch, leaving the buffer empty.
    pub fn take(&self) -> ObsBatch {
        std::mem::take(&mut *self.buf.lock())
    }

    /// Moves everything buffered so far into `target` via one
    /// [`Recorder::merge`] call (no-op when the buffer is empty).
    pub fn flush_into(&self, target: &dyn Recorder) {
        let batch = self.take();
        if !batch.is_empty() {
            target.merge(batch);
        }
    }
}

impl Recorder for LocalRecorder {
    fn layer_enter(&self) -> SpanToken {
        crate::clock::now_ns()
    }

    fn layer_exit(&self, ctx: &SpanCtx<'_>, token: SpanToken) {
        self.buf.lock().spans.push(close_span(ctx, token));
    }

    fn span(&self, span: SpanRecord) {
        self.buf.lock().spans.push(span);
    }

    fn event(&self, event: Event) {
        self.buf.lock().events.push(event);
    }

    fn counter_add(&self, name: &'static str, delta: u64) {
        self.buf.lock().counters.push((name, delta));
    }

    fn observe_ns(&self, name: &'static str, ns: u64) {
        self.buf.lock().timings.push((name, ns));
    }

    fn merge(&self, batch: ObsBatch) {
        self.buf.lock().extend(batch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceRecorder;

    #[test]
    fn buffers_then_flushes_everything_once() {
        let local = LocalRecorder::new();
        let token = local.layer_enter();
        local.layer_exit(
            &SpanCtx {
                name: "fc",
                kind: "linear",
                layer: Some(2),
            },
            token,
        );
        local.counter_add("fi.injections", 1);
        local.observe_ns("campaign.trial_ns", 123);
        local.event(Event::Guard(crate::event::GuardEvent::Deadline {
            steps: 9,
        }));

        let shared = TraceRecorder::new();
        local.flush_into(&shared);
        let snap = shared.snapshot();
        assert_eq!(snap.spans.len(), 1);
        assert_eq!(snap.events.len(), 1);
        assert_eq!(snap.counters.get("fi.injections"), Some(&1));
        assert_eq!(snap.timings.get("campaign.trial_ns").unwrap().count, 1);

        // Buffer is now empty: a second flush merges nothing.
        local.flush_into(&shared);
        assert_eq!(shared.snapshot().spans.len(), 1);
    }
}
